//! Split-brain regression: a partitioned leader keeps acking feedback
//! while a standby promotes itself at a higher term; on heal, the first
//! higher-term handshake fences the old leader — typed
//! [`ServeError::Fenced`], frozen WAL — leaving exactly one unfenced
//! leader, and the surviving replicas converge byte-for-byte. Also covers
//! the demotion path (a promoted leader observing an even higher term)
//! and idempotent re-delivery accounting.

use lorentz::core::personalizer::WalRecord;
use lorentz::core::{LorentzConfig, LorentzPipeline, SatisfactionSignal, TrainedLorentz};
use lorentz::serve::{
    serve_replication, FollowerConfig, FollowerEngine, PromoteConfig, ReplicaState,
    ReplicationConfig, ReplicationError, ReplicationSource, ServeConfig, ServeError, ServingEngine,
    SourcePoll, SourcedEntry, TcpSource,
};
use lorentz::simdata::fleet::FleetConfig;
use lorentz::types::replication::HandshakeRejection;
use lorentz::types::{
    CustomerId, LambdaDelta, PathKey, ResourceGroupId, ResourcePath, ServerOffering, SubscriptionId,
};
use lorentz_chaos::proxy::FaultProxy;
use std::net::TcpListener;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

fn deployment() -> Arc<TrainedLorentz> {
    static DEPLOYMENT: OnceLock<Arc<TrainedLorentz>> = OnceLock::new();
    DEPLOYMENT
        .get_or_init(|| {
            let fleet = FleetConfig {
                n_servers: 80,
                seed: 20260809,
                ..FleetConfig::default()
            }
            .generate()
            .unwrap()
            .fleet;
            Arc::new(
                LorentzPipeline::new(LorentzConfig::paper_defaults())
                    .unwrap()
                    .train(&fleet)
                    .unwrap(),
            )
        })
        .clone()
}

fn scratch_dir(name: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("lorentz-split-brain-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn hot_path() -> ResourcePath {
    ResourcePath::new(CustomerId(7), SubscriptionId(8), ResourceGroupId(9))
}

fn signal(gamma: f64) -> SatisfactionSignal {
    SatisfactionSignal::new(hot_path(), ServerOffering::GeneralPurpose, gamma).unwrap()
}

fn wait_for_epoch(follower: &FollowerEngine, want: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while follower.stats().last_epoch < want {
        assert!(
            Instant::now() < deadline,
            "follower stuck at {:?}, want epoch {want}",
            follower.stats()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn wait_until(what: &str, timeout: Duration, mut done: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while !done() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn healed_partition_fences_the_old_leader_leaving_exactly_one() {
    let dir = scratch_dir("fence");
    let wal = dir.join("leader.wal");
    let (leader, _responses, repl) =
        ServingEngine::start_with_wal(deployment(), ServeConfig::default(), &wal)
            .map(|(engine, responses)| {
                let listener = TcpListener::bind("127.0.0.1:0").unwrap();
                let repl =
                    serve_replication(&engine, listener, ReplicationConfig::default()).unwrap();
                (engine, responses, repl)
            })
            .unwrap();
    assert_eq!(leader.leader_term(), 1, "a fresh WAL starts at term 1");

    // Standbys subscribe through a fault proxy so the replication path can
    // be severed without touching the leader itself.
    let proxy = FaultProxy::start(repl.local_addr()).unwrap();
    let proxy_addr = proxy.local_addr().to_string();
    let promote_addr = {
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        probe.local_addr().unwrap().to_string()
    };
    let standby = |name: &str| {
        let local = dir.join(format!("{name}.wal"));
        FollowerEngine::start_tcp(
            deployment(),
            &proxy_addr,
            FollowerConfig {
                local_wal: Some(local.clone()),
                promote: Some(PromoteConfig {
                    listen: Some(promote_addr.clone()),
                    detection_timeout: Duration::from_millis(200),
                    ..PromoteConfig::new(local)
                }),
                ..FollowerConfig::default()
            },
        )
        .unwrap()
    };
    let a = standby("standby-a");
    let b = standby("standby-b");

    for gamma in [1.0, -0.5, 1.0] {
        leader.submit_feedback(signal(gamma)).unwrap();
    }
    leader.flush_feedback();
    wait_for_epoch(&a, leader.lambda_version());
    wait_for_epoch(&b, leader.lambda_version());
    let common_len = std::fs::metadata(&wal).unwrap().len();

    // Partition replication only. The isolated leader still acks feedback:
    // this is the split-brain tail that fencing must contain.
    proxy.blackhole();
    leader.submit_feedback(signal(0.25)).unwrap();
    leader.submit_feedback(signal(-0.75)).unwrap();
    leader.flush_feedback();
    assert!(
        std::fs::metadata(&wal).unwrap().len() > common_len,
        "the isolated leader must have diverged for the scenario to bite"
    );

    // Exactly one standby promotes, at a strictly higher term.
    let deadline = Instant::now() + Duration::from_secs(15);
    let winner = loop {
        assert!(Instant::now() < deadline, "no standby promoted");
        match (a.is_leader(), b.is_leader()) {
            (true, true) => panic!("both standbys promoted"),
            (true, false) => break &a,
            (false, true) => break &b,
            (false, false) => std::thread::sleep(Duration::from_millis(10)),
        }
    };
    let loser = if std::ptr::eq(winner, &a) { &b } else { &a };
    assert_eq!(winner.leader_term(), 2);

    proxy.heal();

    // The first higher-term handshake to reach the old leader fences it.
    match TcpSource::connect_with_term(repl.local_addr().to_string(), 0, 2).map(|_| "accepted") {
        Err(ReplicationError::Rejected(HandshakeRejection::StaleLeader {
            leader_term,
            observed_term,
        })) => {
            assert_eq!(leader_term, 1);
            assert_eq!(observed_term, 2);
        }
        other => panic!("expected a typed StaleLeader rejection, got {other:?}"),
    }
    assert!(leader.is_fenced());
    assert_eq!(leader.fenced_by(), Some(2));

    // Feedback is refused with the typed error and the WAL is frozen: no
    // divergence past the fence point.
    let len_at_fence = std::fs::metadata(&wal).unwrap().len();
    match leader.submit_feedback(signal(1.0)) {
        Err(ServeError::Fenced {
            term: 1,
            observed: 2,
        }) => {}
        other => panic!("fenced leader must refuse feedback, got {other:?}"),
    }
    leader.flush_feedback();
    assert_eq!(
        std::fs::metadata(&wal).unwrap().len(),
        len_at_fence,
        "a fenced leader's WAL must not grow"
    );

    // Exactly one unfenced leader remains, and it is the term-2 winner:
    // a neutral subscribe succeeds there and nowhere else.
    let source = TcpSource::connect(promote_addr.clone(), 0).unwrap();
    assert_eq!(source.last_ack().unwrap().leader_term, 2);
    drop(source);
    match TcpSource::connect(repl.local_addr().to_string(), 0).map(|_| "accepted") {
        Err(ReplicationError::Rejected(HandshakeRejection::StaleLeader { .. })) => {}
        other => panic!("the fenced leader must refuse subscriptions, got {other:?}"),
    }

    // Post-heal convergence: the loser re-followed the winner, and the two
    // replica WALs agree byte-for-byte (the prefix property degenerates to
    // equality once the loser catches up).
    winner.submit_feedback(signal(0.5)).unwrap();
    let winner_wal = dir.join(if std::ptr::eq(winner, &a) {
        "standby-a.wal"
    } else {
        "standby-b.wal"
    });
    let loser_wal = dir.join(if std::ptr::eq(winner, &a) {
        "standby-b.wal"
    } else {
        "standby-a.wal"
    });
    wait_until("replica WAL convergence", Duration::from_secs(15), || {
        std::fs::read(&winner_wal).unwrap() == std::fs::read(&loser_wal).unwrap()
    });
    assert!(matches!(loser.state(), ReplicaState::Following));

    // The winner's lineage shares the pre-partition prefix with the old
    // leader's WAL; only the tails differ (term marker vs diverged acks).
    let old_bytes = std::fs::read(&wal).unwrap();
    let winner_bytes = std::fs::read(&winner_wal).unwrap();
    assert_eq!(
        old_bytes[..common_len as usize],
        winner_bytes[..common_len as usize],
        "pre-partition prefix must be shared"
    );

    a.stop();
    b.stop();
}

#[test]
fn promoted_leader_observing_a_higher_term_demotes_but_keeps_reads() {
    let dir = scratch_dir("demote");
    let wal = dir.join("leader.wal");
    let (leader, _responses, mut repl) =
        ServingEngine::start_with_wal(deployment(), ServeConfig::default(), &wal)
            .map(|(engine, responses)| {
                let listener = TcpListener::bind("127.0.0.1:0").unwrap();
                let repl =
                    serve_replication(&engine, listener, ReplicationConfig::default()).unwrap();
                (engine, responses, repl)
            })
            .unwrap();
    let addr = repl.local_addr().to_string();
    let promote_addr = {
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        probe.local_addr().unwrap().to_string()
    };
    let local = dir.join("standby.wal");
    let standby = FollowerEngine::start_tcp(
        deployment(),
        &addr,
        FollowerConfig {
            local_wal: Some(local.clone()),
            promote: Some(PromoteConfig {
                listen: Some(promote_addr.clone()),
                detection_timeout: Duration::from_millis(200),
                ..PromoteConfig::new(local)
            }),
            ..FollowerConfig::default()
        },
    )
    .unwrap();

    leader.submit_feedback(signal(1.0)).unwrap();
    leader.flush_feedback();
    wait_for_epoch(&standby, leader.lambda_version());

    repl.shutdown();
    drop(repl);
    drop(leader);
    wait_until("standby promotion", Duration::from_secs(15), || {
        standby.is_leader()
    });
    assert_eq!(standby.leader_term(), 2);
    let lambda_before = standby
        .lambda_snapshot()
        .lambda(&hot_path(), ServerOffering::GeneralPurpose);

    // A subscriber that has observed term 3 reaches the promoted leader:
    // the handshake is refused AND the watchdog demotes the replica.
    match TcpSource::connect_with_term(promote_addr, 0, 3).map(|_| "accepted") {
        Err(ReplicationError::Rejected(HandshakeRejection::StaleLeader {
            leader_term: 2,
            observed_term: 3,
        })) => {}
        other => panic!("expected StaleLeader from the promoted leader, got {other:?}"),
    }
    wait_until("demotion", Duration::from_secs(10), || {
        matches!(standby.state(), ReplicaState::Demoted { .. })
    });
    assert_eq!(
        standby.state(),
        ReplicaState::Demoted {
            term: 2,
            observed: 3
        }
    );

    // Feedback is refused with the typed error; reads keep serving from
    // the λ-state at demotion.
    match standby.submit_feedback(signal(0.5)) {
        Err(ServeError::Fenced {
            term: 2,
            observed: 3,
        }) => {}
        other => panic!("demoted replica must refuse feedback, got {other:?}"),
    }
    let lambda_after = standby
        .lambda_snapshot()
        .lambda(&hot_path(), ServerOffering::GeneralPurpose);
    assert_eq!(lambda_after.to_bits(), lambda_before.to_bits());
    standby.stop();
}

/// A source that re-delivers epochs: the overlap a resumed subscription
/// produces when the leader's replay window starts before the follower's
/// last applied epoch.
struct Redelivering {
    batches: Vec<Vec<u64>>,
}

impl ReplicationSource for Redelivering {
    fn poll(&mut self) -> SourcePoll {
        match self.batches.pop() {
            Some(epochs) => SourcePoll::Entries(
                epochs
                    .into_iter()
                    .map(|epoch| SourcedEntry {
                        entry: lorentz::core::WalEntry::Record(WalRecord {
                            signal: signal(1.0),
                            delta: LambdaDelta::new(
                                epoch,
                                vec![(PathKey::new(hot_path()), [0.0, 0.1, 0.0])],
                            ),
                        }),
                        raw: None,
                    })
                    .collect(),
            ),
            None => SourcePoll::Idle,
        }
    }

    fn describe(&self) -> String {
        "redelivering-stub".to_owned()
    }
}

#[test]
fn redelivered_epochs_are_idempotent_and_counted() {
    // Batches pop from the back: [2, 3] applies, then [2, 3] again is
    // pure re-delivery, then [3, 4] overlaps on 3 and advances on 4.
    let source = Redelivering {
        batches: vec![vec![3, 4], vec![2, 3], vec![2, 3]],
    };
    let follower = FollowerEngine::start_with_source(
        deployment(),
        Box::new(source),
        FollowerConfig::default(),
    )
    .unwrap();
    wait_for_epoch(&follower, 4);
    let lambda = follower
        .lambda_snapshot()
        .lambda(&hot_path(), ServerOffering::GeneralPurpose);
    let stats = follower.stop();
    assert_eq!(stats.applied, 3, "epochs 2, 3, 4 each apply exactly once");
    assert_eq!(stats.duplicates, 3, "re-delivered 2, 3 and overlapping 3");
    assert_eq!(stats.skipped, 0);

    // Idempotence: a twin follower fed the same epochs without any
    // re-delivery lands on the identical λ, bit for bit.
    let clean = FollowerEngine::start_with_source(
        deployment(),
        Box::new(Redelivering {
            batches: vec![vec![4], vec![3], vec![2]],
        }),
        FollowerConfig::default(),
    )
    .unwrap();
    wait_for_epoch(&clean, 4);
    let clean_lambda = clean
        .lambda_snapshot()
        .lambda(&hot_path(), ServerOffering::GeneralPurpose);
    let clean_stats = clean.stop();
    assert_eq!(clean_stats.duplicates, 0);
    assert_eq!(
        lambda.to_bits(),
        clean_lambda.to_bits(),
        "duplicates must not be applied twice"
    );
}
