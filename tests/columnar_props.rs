//! Property-based tests of the columnar training fast path: the SoA
//! telemetry layout must round-trip row traces losslessly, the columnar
//! Stage-1 optimizer must be *byte-identical* to the row path on arbitrary
//! fleets, and the parallel target-encoder fit must be independent of its
//! thread cap.

use lorentz::core::{Rightsizer, RightsizerConfig, Stage1Scratch};
use lorentz::ml::{MissingPolicy, TargetEncoder, TargetStatistic};
use lorentz::telemetry::{RegularSeries, TraceColumns, UsageTrace};
use lorentz::types::{Capacity, ProfileSchema, ProfileTable, ServerOffering, SkuCatalog};
use proptest::prelude::*;

fn sizer() -> Rightsizer {
    Rightsizer::new(&RightsizerConfig::default()).unwrap()
}

/// Arbitrary single-dimension workload: 1–64 bins of usage in [0, 140).
fn workload() -> impl Strategy<Value = UsageTrace> {
    proptest::collection::vec(0.0f64..140.0, 1..64)
        .prop_map(|values| UsageTrace::single(RegularSeries::new(300.0, values).unwrap()))
}

/// Arbitrary two-dimension workload (vcores + memory), equal bin counts.
fn workload_2d() -> impl Strategy<Value = UsageTrace> {
    proptest::collection::vec((0.0f64..140.0, 0.0f64..512.0), 1..32).prop_map(|pairs| {
        let (v, m): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
        UsageTrace::new(
            lorentz::types::ResourceSpace::vcores_memory(),
            vec![
                RegularSeries::new(300.0, v).unwrap(),
                RegularSeries::new(300.0, m).unwrap(),
            ],
        )
        .unwrap()
    })
}

/// A mixed fleet of single- and two-dimension traces.
fn fleet() -> impl Strategy<Value = Vec<UsageTrace>> {
    proptest::collection::vec(prop_oneof![workload(), workload_2d()], 1..12)
}

/// User capacities off the catalog ladder, to hit censored/uncensored and
/// every verdict branch.
fn user_primary() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(1.0),
        Just(2.0),
        Just(4.0),
        Just(16.0),
        Just(64.0),
        Just(128.0),
        0.5f64..140.0,
    ]
}

proptest! {
    /// `TraceColumns` packs and unpacks arbitrary mixed fleets without
    /// losing a value, a space, or a bin width.
    #[test]
    fn trace_columns_round_trip(traces in fleet()) {
        let cols = TraceColumns::from_traces(&traces);
        prop_assert_eq!(cols.len(), traces.len());
        let total: usize = traces.iter().map(|t| t.bins() * t.dims()).sum();
        prop_assert_eq!(cols.total_values(), total);
        for (i, t) in traces.iter().enumerate() {
            prop_assert_eq!(&cols.to_trace(i).unwrap(), t);
            let view = cols.trace(i);
            prop_assert_eq!(view.bins(), t.bins());
            prop_assert_eq!(view.dims(), t.dims());
            for r in 0..t.dims() {
                prop_assert_eq!(view.dim(r), t.resource(r).values());
            }
        }
    }

    /// The columnar optimizer returns the *bit-identical* outcome of the
    /// row optimizer for every trace of an arbitrary fleet — same SKU, same
    /// censoring, and `f64`s equal down to their bit patterns.
    #[test]
    fn columnar_rightsize_matches_row_on_arbitrary_fleets(
        traces in fleet(),
        primary in user_primary(),
    ) {
        let s = sizer();
        let cols = TraceColumns::from_traces(&traces);
        let mut scratch = Stage1Scratch::default();
        for (i, t) in traces.iter().enumerate() {
            let user = if t.dims() == 1 {
                Capacity::scalar(primary)
            } else {
                Capacity::new(vec![primary, primary * 4.0]).unwrap()
            };
            let catalog = if t.dims() == 1 {
                SkuCatalog::azure_postgres(ServerOffering::GeneralPurpose)
            } else {
                SkuCatalog::azure_postgres_with_memory(ServerOffering::GeneralPurpose)
            };
            let row = s.rightsize(t, &user, &catalog);
            let col = s.rightsize_columns(cols.trace(i), &user, &catalog, &mut scratch);
            match (row, col) {
                (Ok(row), Ok(col)) => {
                    prop_assert_eq!(row.sku_index, col.sku_index);
                    prop_assert_eq!(row.censored, col.censored);
                    prop_assert_eq!(
                        row.throttling_at_user.to_bits(),
                        col.throttling_at_user.to_bits()
                    );
                    prop_assert_eq!(row.slack_at_chosen.len(), col.slack_at_chosen.len());
                    for (a, b) in row.slack_at_chosen.iter().zip(&col.slack_at_chosen) {
                        prop_assert_eq!(a.to_bits(), b.to_bits());
                    }
                    prop_assert_eq!(row.capacity, col.capacity);
                    prop_assert_eq!(row.verdict, col.verdict);
                }
                (Err(row), Err(col)) => {
                    prop_assert_eq!(row.to_string(), col.to_string());
                }
                (row, col) => {
                    return Err(TestCaseError::fail(format!(
                        "row/columnar disagree on fallibility: {row:?} vs {col:?}"
                    )));
                }
            }
        }
    }

    /// The parallel target-encoder fit is exactly the serial fit at every
    /// thread cap, for arbitrary tables and labels.
    #[test]
    fn parallel_target_encoding_matches_serial(
        rows in proptest::collection::vec(
            (0u8..6, 0u8..10, 0u8..4, any::<bool>(), 0.5f64..128.0),
            1..40,
        ),
        smoothing in prop_oneof![Just(0.0), 0.1f64..20.0],
    ) {
        let schema = ProfileSchema::new(vec!["segment", "customer", "region"]).unwrap();
        let mut table = ProfileTable::new(schema);
        let mut labels = Vec::with_capacity(rows.len());
        for (seg, cust, reg, missing, label) in rows {
            let seg = format!("s{seg}");
            let cust = format!("c{cust}");
            let reg = format!("r{reg}");
            let seg_cell = if missing { None } else { Some(seg.as_str()) };
            table
                .push_row(&[seg_cell, Some(cust.as_str()), Some(reg.as_str())])
                .unwrap();
            labels.push(label);
        }
        let serial = TargetEncoder::fit_with_threads(
            &table,
            &labels,
            TargetStatistic::Percentile(50.0),
            MissingPolicy::GlobalMean,
            smoothing,
            1,
        )
        .unwrap();
        for threads in [0, 2, 8] {
            let parallel = TargetEncoder::fit_with_threads(
                &table,
                &labels,
                TargetStatistic::Percentile(50.0),
                MissingPolicy::GlobalMean,
                smoothing,
                threads,
            )
            .unwrap();
            prop_assert_eq!(&parallel, &serial);
        }
    }
}
