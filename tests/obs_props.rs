//! Property-based tests of the `lorentz-obs` metrics substrate: histogram
//! recording is order-insensitive and merge-consistent, quantiles are
//! monotone, and counters never lose concurrent increments.

use lorentz::obs::{Counter, Histogram, HistogramSnapshot};
use proptest::prelude::*;

proptest! {
    /// Any permutation of the same observations produces an identical
    /// histogram: recording forward and backward must agree on every
    /// snapshot field.
    #[test]
    fn histogram_recording_is_order_insensitive(values in collection::vec(any::<u64>(), 0..200)) {
        let (forward, backward) = (Histogram::new(), Histogram::new());
        for &v in &values {
            forward.record(v);
        }
        for &v in values.iter().rev() {
            backward.record(v);
        }
        prop_assert_eq!(
            HistogramSnapshot::of(&forward),
            HistogramSnapshot::of(&backward)
        );
    }

    /// Splitting a stream across shard histograms and merging them is
    /// indistinguishable from recording the whole stream into one.
    #[test]
    fn histogram_merge_equals_single_stream(
        values in collection::vec(any::<u32>(), 0..200),
        split in 0usize..200,
    ) {
        let split = split.min(values.len());
        let (merged, single) = (Histogram::new(), Histogram::new());
        let shard = Histogram::new();
        for &v in &values[..split] {
            merged.record(u64::from(v));
        }
        for &v in &values[split..] {
            shard.record(u64::from(v));
        }
        merged.merge(&shard);
        for &v in &values {
            single.record(u64::from(v));
        }
        prop_assert_eq!(HistogramSnapshot::of(&merged), HistogramSnapshot::of(&single));
    }

    /// Quantiles are monotone (`p50 ≤ p95 ≤ p99 ≤ max`), the maximum is
    /// exact, and the count/sum fields match the recorded stream.
    #[test]
    fn histogram_quantiles_are_monotone(values in collection::vec(any::<u32>(), 1..200)) {
        let h = Histogram::new();
        let mut sum = 0u64;
        let mut max = 0u64;
        for &v in &values {
            h.record(u64::from(v));
            sum += u64::from(v);
            max = max.max(u64::from(v));
        }
        let snap = HistogramSnapshot::of(&h);
        prop_assert!(snap.p50 <= snap.p95);
        prop_assert!(snap.p95 <= snap.p99);
        prop_assert!(snap.p99 <= snap.max);
        prop_assert_eq!(snap.max, max);
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(snap.sum, sum);
        // The median can never undershoot the smallest recorded value.
        prop_assert!(snap.p50 >= values.iter().copied().map(u64::from).min().unwrap());
    }

    /// A counter's total equals the sum of per-thread increments under
    /// concurrent recording — no update is ever lost.
    #[test]
    fn counter_totals_survive_concurrency(
        threads in 1usize..6,
        increments in 1u64..400,
        bump in 1u64..5,
    ) {
        let counter = Counter::new();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    for _ in 0..increments {
                        counter.add(bump);
                    }
                });
            }
        });
        prop_assert_eq!(counter.get(), threads as u64 * increments * bump);
    }

    /// Histogram recording from concurrent threads loses nothing either:
    /// the final count and sum equal the whole stream's.
    #[test]
    fn histogram_recording_survives_concurrency(
        threads in 1usize..6,
        per_thread in collection::vec(any::<u16>(), 1..50),
    ) {
        let h = Histogram::new();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    for &v in &per_thread {
                        h.record(u64::from(v));
                    }
                });
            }
        });
        let expected_sum: u64 = per_thread.iter().map(|&v| u64::from(v)).sum();
        prop_assert_eq!(h.count(), (threads * per_thread.len()) as u64);
        prop_assert_eq!(h.sum(), threads as u64 * expected_sum);
        prop_assert_eq!(h.max(), per_thread.iter().copied().max().map(u64::from).unwrap());
    }
}
