//! Property-based tests of the synthetic fleet generator: any valid
//! configuration must yield a physically consistent fleet.

use lorentz::simdata::fleet::{FleetConfig, UserBehavior};
use lorentz::telemetry::generators::SamplingConfig;
use lorentz::types::SkuCatalog;
use proptest::prelude::*;

fn config_strategy() -> impl Strategy<Value = FleetConfig> {
    (
        20usize..80,
        any::<u64>(),
        0.2f64..4.0,
        0.0f64..1.0,
        0.0f64..0.1,
        0.0f64..0.2,
        0.0f64..0.9,
    )
        .prop_map(
            |(n, seed, base, sigma, mis_entry, missing, p_default)| FleetConfig {
                n_servers: n,
                seed,
                base_demand: base,
                server_sigma: sigma,
                mis_entry_rate: mis_entry,
                missing_rate: missing,
                user: UserBehavior {
                    p_default_prod: p_default,
                    p_default_dev: (p_default + 0.1).min(1.0),
                    p_under: 0.2,
                    p_over: 0.3,
                },
                sampling: SamplingConfig {
                    duration_secs: 3600.0,
                    mean_interval_secs: 60.0,
                    jitter_frac: 0.2,
                },
                ..FleetConfig::default()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every generated fleet satisfies the physical invariants: telemetry
    /// censored at the selected capacity (Eq. 1), capacities drawn from the
    /// offering's catalog, aligned vectors, and schema-conformant profiles.
    #[test]
    fn generated_fleets_are_physically_consistent(config in config_strategy()) {
        let synth = config.generate().unwrap();
        prop_assert_eq!(synth.fleet.len(), config.n_servers);
        prop_assert_eq!(synth.ground_truth.len(), config.n_servers);
        prop_assert_eq!(synth.fleet.profiles().rows(), config.n_servers);
        for i in 0..synth.fleet.len() {
            let cap = &synth.fleet.user_capacities()[i];
            let catalog = SkuCatalog::azure_postgres(synth.fleet.offerings()[i]);
            prop_assert!(catalog.index_of(cap).is_some(), "server {i} off-catalog");
            // Eq. 1: observed telemetry never exceeds the selected capacity.
            prop_assert!(
                synth.fleet.traces()[i].peak()[0] <= cap.primary() + 1e-9,
                "server {i} telemetry exceeds capacity"
            );
            // Telemetry is the censored ground truth: equal wherever demand
            // fits under the cap.
            let truth = synth.ground_truth[i].resource(0).values();
            let seen = synth.fleet.traces()[i].resource(0).values();
            prop_assert_eq!(truth.len(), seen.len());
            for (t, s) in truth.iter().zip(seen) {
                prop_assert!(*s <= *t + 1e-9, "censoring can only reduce");
                if *t <= cap.primary() {
                    prop_assert!((t - s).abs() < 1e-9, "uncensored bins must match");
                }
            }
        }
    }

    /// Generation is a pure function of the configuration.
    #[test]
    fn generation_is_deterministic(config in config_strategy()) {
        let a = config.generate().unwrap();
        let b = config.generate().unwrap();
        prop_assert_eq!(a.needs, b.needs);
        for i in 0..a.fleet.len() {
            prop_assert_eq!(&a.fleet.user_capacities()[i], &b.fleet.user_capacities()[i]);
        }
    }

    /// The profile hierarchy stays learnable across the configuration space
    /// as long as mis-entry noise is mild: the chain contains at least the
    /// coarse half of the schema.
    #[test]
    fn hierarchy_remains_learnable(config in config_strategy()) {
        prop_assume!(config.mis_entry_rate < 0.05 && config.missing_rate < 0.1);
        prop_assume!(config.n_servers >= 40);
        let synth = config.generate().unwrap();
        let chain = lorentz::hierarchy::learn_hierarchy(
            synth.fleet.profiles(),
            &lorentz::hierarchy::HierarchyConfig::default(),
        )
        .unwrap();
        prop_assert!(
            chain.len() >= 3,
            "chain length {} too short for a 7-level hierarchy",
            chain.len()
        );
    }
}
