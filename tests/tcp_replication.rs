//! Replication over TCP, end to end: a leader fans its λ-WAL out to
//! socket-subscribed followers, resuming each from its last applied epoch;
//! a follower that loses the leader past the detection timeout promotes
//! itself — exactly once across racing standbys — and keeps serving.

use lorentz::core::personalizer::WalRecord;
use lorentz::core::{
    LorentzConfig, LorentzPipeline, SatisfactionSignal, SignalWal, TrainedLorentz,
};
use lorentz::serve::{
    serve_replication, FollowerConfig, FollowerEngine, PromoteConfig, ReplicaState,
    ReplicationConfig, ReplicationError, ReplicationSource, ServeConfig, ServeError, ServingEngine,
    SourcePoll, TcpSource,
};
use lorentz::simdata::fleet::FleetConfig;
use lorentz::types::replication::{HandshakeRejection, ResumeMode};
use lorentz::types::{
    CustomerId, LambdaDelta, PathKey, ResourceGroupId, ResourcePath, ServerOffering, SubscriptionId,
};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

fn deployment() -> Arc<TrainedLorentz> {
    static DEPLOYMENT: OnceLock<Arc<TrainedLorentz>> = OnceLock::new();
    DEPLOYMENT
        .get_or_init(|| {
            let fleet = FleetConfig {
                n_servers: 80,
                seed: 20240807,
                ..FleetConfig::default()
            }
            .generate()
            .unwrap()
            .fleet;
            Arc::new(
                LorentzPipeline::new(LorentzConfig::paper_defaults())
                    .unwrap()
                    .train(&fleet)
                    .unwrap(),
            )
        })
        .clone()
}

fn scratch_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("lorentz-tcp-repl-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn hot_path() -> ResourcePath {
    ResourcePath::new(CustomerId(7), SubscriptionId(8), ResourceGroupId(9))
}

fn signal(gamma: f64) -> SatisfactionSignal {
    SatisfactionSignal::new(hot_path(), ServerOffering::GeneralPurpose, gamma).unwrap()
}

/// A leader serving feedback into `wal` and replicating it on a loopback
/// listener.
fn start_leader(
    wal: &std::path::Path,
) -> (
    ServingEngine,
    std::sync::mpsc::Receiver<lorentz::serve::ServeResponse>,
    lorentz::serve::ReplicationListener,
) {
    let (engine, responses) =
        ServingEngine::start_with_wal(deployment(), ServeConfig::default(), wal).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let repl = serve_replication(&engine, listener, ReplicationConfig::default()).unwrap();
    (engine, responses, repl)
}

fn wait_for_epoch(follower: &FollowerEngine, want: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while follower.stats().last_epoch < want {
        assert!(
            Instant::now() < deadline,
            "follower stuck at {:?}, want epoch {want}",
            follower.stats()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn leader_lambda(leader: &ServingEngine) -> f64 {
    leader
        .lambda_snapshot()
        .lambda(&hot_path(), ServerOffering::GeneralPurpose)
}

#[test]
fn tcp_follower_serves_lambda_byte_identical_to_file_follower() {
    let dir = scratch_dir("equivalence");
    let wal = dir.join("leader.wal");
    let (leader, _responses, repl) = start_leader(&wal);
    let addr = repl.local_addr().to_string();

    let file_follower =
        FollowerEngine::start(deployment(), &wal, FollowerConfig::default()).unwrap();
    let tcp_follower =
        FollowerEngine::start_tcp(deployment(), &addr, FollowerConfig::default()).unwrap();

    for gamma in [1.0, 1.0, -0.5] {
        leader.submit_feedback(signal(gamma)).unwrap();
    }
    leader.flush_feedback();
    let want = leader.lambda_version();
    let lambda = leader_lambda(&leader);

    wait_for_epoch(&file_follower, want);
    wait_for_epoch(&tcp_follower, want);
    for follower in [&file_follower, &tcp_follower] {
        let replicated = follower
            .lambda_snapshot()
            .lambda(&hot_path(), ServerOffering::GeneralPurpose);
        assert_eq!(
            replicated.to_bits(),
            lambda.to_bits(),
            "replicated λ diverged from the leader's"
        );
        assert_eq!(follower.lambda_version(), want);
    }
    let tcp_stats = tcp_follower.stop();
    let file_stats = file_follower.stop();
    assert_eq!(tcp_stats.applied, file_stats.applied);
    assert_eq!(tcp_stats.skipped, 0);
    drop(repl);
    drop(leader);
}

#[test]
fn restarted_tcp_follower_resumes_from_its_last_epoch() {
    let dir = scratch_dir("resume");
    let wal = dir.join("leader.wal");
    let local = dir.join("replica.wal");
    let (leader, _responses, repl) = start_leader(&wal);
    let addr = repl.local_addr().to_string();

    let config = FollowerConfig {
        local_wal: Some(local.clone()),
        ..FollowerConfig::default()
    };
    let follower = FollowerEngine::start_tcp(deployment(), &addr, config.clone()).unwrap();
    for gamma in [1.0, 1.0, -0.5] {
        leader.submit_feedback(signal(gamma)).unwrap();
    }
    leader.flush_feedback();
    wait_for_epoch(&follower, leader.lambda_version());
    follower.stop();

    // More feedback lands while the follower is down.
    leader.submit_feedback(signal(0.5)).unwrap();
    leader.submit_feedback(signal(0.5)).unwrap();
    leader.flush_feedback();
    let want = leader.lambda_version();
    let lambda = leader_lambda(&leader);

    // The restarted follower replays its local log, subscribes with its
    // last epoch, and receives only the tail: were the leader to replay
    // the whole log, the duplicate frames would be re-appended locally and
    // the byte-for-byte comparison below would fail.
    let follower = FollowerEngine::start_tcp(deployment(), &addr, config).unwrap();
    wait_for_epoch(&follower, want);
    let replicated = follower
        .lambda_snapshot()
        .lambda(&hot_path(), ServerOffering::GeneralPurpose);
    assert_eq!(replicated.to_bits(), lambda.to_bits());
    follower.stop();
    drop(repl);
    drop(leader);

    let leader_bytes = std::fs::read(&wal).unwrap();
    let local_bytes = std::fs::read(&local).unwrap();
    assert_eq!(
        leader_bytes, local_bytes,
        "the replica's local WAL must be byte-identical to the leader's"
    );
}

/// A WAL whose epochs carry gaps (shard-local numbering: the globally
/// minted epoch sequence interleaves across shards, so any one stream has
/// holes). Resuming from a *present* epoch replays only the tail; resuming
/// from an epoch the log no longer holds (compacted past it) forces a full
/// resync.
fn gapped_wal(dir: &std::path::Path) -> std::path::PathBuf {
    let path = dir.join("gapped.wal");
    let (mut wal, _) = SignalWal::open(&path).unwrap();
    for epoch in [2u64, 5, 9] {
        let record = WalRecord {
            signal: signal(1.0),
            delta: LambdaDelta::new(
                epoch,
                vec![(PathKey::new(hot_path()), [0.0, 0.1 * epoch as f64, 0.0])],
            ),
        };
        wal.append_record(&record).unwrap();
    }
    path
}

#[test]
fn resume_from_a_present_epoch_replays_only_the_tail_across_gaps() {
    let dir = scratch_dir("gaps");
    let wal = gapped_wal(&dir);
    let (_leader, _responses, repl) = start_leader(&wal);
    let addr = repl.local_addr().to_string();

    let mut source = TcpSource::connect(addr, 5).unwrap();
    let ack = source.last_ack().unwrap();
    assert_eq!(ack.mode, ResumeMode::Resume);
    assert_eq!(ack.from_epoch, 5);
    assert_eq!(ack.leader_epoch, 9);

    let deadline = Instant::now() + Duration::from_secs(5);
    let mut epochs = Vec::new();
    while epochs.is_empty() && Instant::now() < deadline {
        match source.poll() {
            SourcePoll::Entries(batch) => {
                epochs.extend(batch.iter().filter_map(|e| e.entry.epoch()));
            }
            SourcePoll::Idle => std::thread::sleep(Duration::from_millis(5)),
            other => panic!("unexpected poll result: {other:?}"),
        }
    }
    assert_eq!(epochs, vec![9], "only the tail past epoch 5 is replayed");
}

#[test]
fn resume_from_a_compacted_epoch_forces_a_full_resync() {
    let dir = scratch_dir("compacted");
    let wal = gapped_wal(&dir);
    let (_leader, _responses, repl) = start_leader(&wal);
    let addr = repl.local_addr().to_string();

    // Epoch 3 is below the leader's epoch but absent from its log — the
    // log has been compacted past the follower's position.
    let mut source = TcpSource::connect(addr, 3).unwrap();
    let ack = source.last_ack().unwrap();
    assert_eq!(ack.mode, ResumeMode::FullResync);
    assert_eq!(ack.from_epoch, 0);

    // The source surfaces the reset before any entries, then streams the
    // log from its start.
    assert!(matches!(source.poll(), SourcePoll::Reset));
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut epochs = Vec::new();
    while epochs.len() < 3 && Instant::now() < deadline {
        match source.poll() {
            SourcePoll::Entries(batch) => {
                epochs.extend(batch.iter().filter_map(|e| e.entry.epoch()));
            }
            SourcePoll::Idle => std::thread::sleep(Duration::from_millis(5)),
            other => panic!("unexpected poll result: {other:?}"),
        }
    }
    assert_eq!(epochs, vec![2, 5, 9]);
}

#[test]
fn a_follower_ahead_of_the_leader_is_rejected_with_a_typed_error() {
    let dir = scratch_dir("ahead");
    let wal = gapped_wal(&dir);
    let (_leader, _responses, repl) = start_leader(&wal);
    let addr = repl.local_addr().to_string();

    match TcpSource::connect(addr, 99).map(|_| ()) {
        Err(ReplicationError::Rejected(HandshakeRejection::FollowerAhead { follower, leader })) => {
            assert_eq!(follower, 99);
            assert_eq!(leader, 9);
        }
        other => panic!("expected a follower_ahead rejection, got {other:?}"),
    }
}

#[test]
fn mid_handshake_disconnects_leave_the_leader_serving() {
    let dir = scratch_dir("disconnect");
    let wal = gapped_wal(&dir);
    let (_leader, _responses, repl) = start_leader(&wal);
    let addr = repl.local_addr();

    // A client that connects and vanishes without a subscribe frame, and
    // one that sends garbage: both are dropped without wedging the
    // acceptor.
    drop(TcpStream::connect(addr).unwrap());
    {
        use std::io::Write;
        let mut garbage = TcpStream::connect(addr).unwrap();
        let _ = garbage.write_all(&[0u8, 0, 0, 5, b'h', b'e', b'l', b'l', b'o']);
        // The leader answers a malformed subscribe with a typed rejection.
    }
    // A well-formed subscription still succeeds.
    let source = TcpSource::connect(addr.to_string(), 0).unwrap();
    assert_eq!(source.last_ack().unwrap().mode, ResumeMode::Resume);
}

#[test]
fn exactly_one_standby_promotes_and_the_loser_refollows_it() {
    let dir = scratch_dir("promotion");
    let wal = dir.join("leader.wal");
    let (leader, _responses, mut repl) = start_leader(&wal);
    let addr = repl.local_addr().to_string();

    // Reserve a loopback port for the promotion election, then free it so
    // the winning standby can bind it.
    let promote_addr = {
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        probe.local_addr().unwrap().to_string()
    };
    let standby = |name: &str| {
        let local = dir.join(format!("{name}.wal"));
        FollowerEngine::start_tcp(
            deployment(),
            &addr,
            FollowerConfig {
                local_wal: Some(local.clone()),
                promote: Some(PromoteConfig {
                    listen: Some(promote_addr.clone()),
                    detection_timeout: Duration::from_millis(200),
                    ..PromoteConfig::new(local)
                }),
                ..FollowerConfig::default()
            },
        )
        .unwrap()
    };
    let a = standby("standby-a");
    let b = standby("standby-b");

    for gamma in [1.0, 1.0, -0.5] {
        leader.submit_feedback(signal(gamma)).unwrap();
    }
    leader.flush_feedback();
    let epoch_at_kill = leader.lambda_version();
    let lambda_at_kill = leader_lambda(&leader);
    wait_for_epoch(&a, epoch_at_kill);
    wait_for_epoch(&b, epoch_at_kill);

    // Kill the leader. Both standbys detect the loss; the promotion
    // address bind arbitrates the race.
    repl.shutdown();
    drop(repl);
    drop(leader);

    let deadline = Instant::now() + Duration::from_secs(15);
    let promoted = loop {
        assert!(Instant::now() < deadline, "no standby promoted");
        match (a.is_leader(), b.is_leader()) {
            (true, true) => panic!("both standbys promoted"),
            (true, false) => break &a,
            (false, true) => break &b,
            (false, false) => std::thread::sleep(Duration::from_millis(10)),
        }
    };
    let loser = if std::ptr::eq(promoted, &a) { &b } else { &a };

    // The promoted replica replayed its local WAL: its λ equals the dead
    // leader's published λ and its epoch numbering continues the chain.
    assert_eq!(promoted.lambda_version(), epoch_at_kill);
    let served = promoted
        .lambda_snapshot()
        .lambda(&hot_path(), ServerOffering::GeneralPurpose);
    assert_eq!(served.to_bits(), lambda_at_kill.to_bits());

    // It now accepts feedback like any leader...
    promoted.submit_feedback(signal(0.5)).unwrap();
    assert_eq!(promoted.lambda_version(), epoch_at_kill + 1);

    // ...and the loser re-subscribed to it as its new upstream: it stays
    // a follower, never promotes, and converges on the new epoch.
    let deadline = Instant::now() + Duration::from_secs(15);
    while loser.stats().last_epoch < epoch_at_kill + 1 {
        assert!(
            Instant::now() < deadline,
            "loser never converged on the promoted leader: {:?} (state {:?})",
            loser.stats(),
            loser.state()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(loser.state(), ReplicaState::Following);
    let promoted_lambda = promoted
        .lambda_snapshot()
        .lambda(&hot_path(), ServerOffering::GeneralPurpose);
    let refollowed = loser
        .lambda_snapshot()
        .lambda(&hot_path(), ServerOffering::GeneralPurpose);
    assert_eq!(refollowed.to_bits(), promoted_lambda.to_bits());

    // A follower without promotion config stays read-only throughout.
    match loser.submit_feedback(signal(1.0)) {
        Err(ServeError::Draining) => {}
        other => panic!("a follower must reject feedback, got {other:?}"),
    }
}
