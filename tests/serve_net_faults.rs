//! Fault injection on the TCP front end, driven by the `serve.net.*` fail
//! points: a server killed mid-response leaves the client with a clean
//! truncated-frame error (never a corrupt-but-complete frame), a refused
//! accept is contained, and the engine ledger closes exactly either way.
//!
//! Run with `cargo test --features fault-injection --test serve_net_faults`.

#![cfg(feature = "fault-injection")]

use lorentz::core::{LorentzConfig, LorentzPipeline, TrainedLorentz};
use lorentz::fault::{registry, FailAction, Trigger};
use lorentz::serve::wire::{read_frame, write_frame, WireError};
use lorentz::serve::{serve_net, NetConfig, NetReport, ServeConfig, ServingEngine};
use lorentz::simdata::fleet::FleetConfig;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

fn deployment() -> Arc<TrainedLorentz> {
    static DEPLOYMENT: OnceLock<Arc<TrainedLorentz>> = OnceLock::new();
    DEPLOYMENT
        .get_or_init(|| {
            let fleet = FleetConfig {
                n_servers: 80,
                seed: 20240807,
                ..FleetConfig::default()
            }
            .generate()
            .unwrap()
            .fleet;
            Arc::new(
                LorentzPipeline::new(LorentzConfig::paper_defaults())
                    .unwrap()
                    .train(&fleet)
                    .unwrap(),
            )
        })
        .clone()
}

fn start_server() -> (SocketAddr, JoinHandle<NetReport>) {
    let deployment = deployment();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let (engine, responses) =
        ServingEngine::start(Arc::clone(&deployment), ServeConfig::default()).unwrap();
    let handle = std::thread::spawn(move || {
        serve_net(
            deployment,
            engine,
            responses,
            listener,
            NetConfig::default(),
        )
        .unwrap()
    });
    (addr, handle)
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    stream
}

fn drain(addr: SocketAddr, server: JoinHandle<NetReport>) -> NetReport {
    let mut stream = connect(addr);
    write_frame(&mut stream, b"{\"op\": \"drain\"}").unwrap();
    let _ = read_frame(&mut stream, 1 << 20).unwrap();
    server.join().unwrap()
}

#[test]
fn kill_mid_response_leaves_client_a_clean_error_and_ledger_exact() {
    let (addr, server) = start_server();
    // The first response write is torn at 50% and the connection killed —
    // the server falling over mid-response, as the client sees it.
    registry().configure("serve.net.write", Trigger::Once, FailAction::Partial(0.5));
    let mut stream = connect(addr);
    write_frame(
        &mut stream,
        b"{\"id\": 1, \"profile\": {}, \"customer\": 1}",
    )
    .unwrap();
    // The client never sees a corrupt-but-complete frame: the length
    // prefix promises more bytes than arrive, so the read fails with the
    // typed truncation error, not garbage JSON.
    match read_frame(&mut stream, 1 << 20) {
        Err(WireError::Truncated | WireError::Io(_)) => {}
        other => panic!("expected a truncated frame, got {other:?}"),
    }
    // The server survives: a fresh connection serves normally.
    let mut healthy = connect(addr);
    write_frame(
        &mut healthy,
        b"{\"id\": 2, \"profile\": {}, \"customer\": 2}",
    )
    .unwrap();
    let payload = read_frame(&mut healthy, 1 << 20).unwrap();
    assert!(String::from_utf8(payload).unwrap().contains("\"ok\""));
    let report = drain(addr, server);
    // The torn response was still ANSWERED by the engine — the wire loss
    // is accounted on the net side, never smudged into the ledger.
    assert_eq!(
        report.engine.submitted,
        report.engine.accepted + report.engine.rejected
    );
    assert_eq!(report.engine.accepted, report.engine.answered);
    assert_eq!(report.engine.answered, 2);
    assert_eq!(report.disconnects, 1);
}

#[test]
fn refused_accept_is_contained_and_later_connections_serve() {
    let (addr, server) = start_server();
    registry().configure("serve.net.accept", Trigger::Once, FailAction::Error);
    // The refused connection is simply dropped by the server; the client
    // observes EOF (or a reset) on its first read.
    {
        let mut refused = connect(addr);
        let _ = write_frame(&mut refused, b"{\"op\": \"ping\"}");
        assert!(
            read_frame(&mut refused, 1 << 20).is_err(),
            "the refused connection must never be served"
        );
    }
    std::thread::sleep(Duration::from_millis(20));
    let mut healthy = connect(addr);
    write_frame(&mut healthy, b"{\"op\": \"ping\"}").unwrap();
    let payload = read_frame(&mut healthy, 1 << 20).unwrap();
    assert!(String::from_utf8(payload).unwrap().contains("pong"));
    let report = drain(addr, server);
    assert_eq!(report.engine.submitted, 0);
    assert_eq!(report.disconnects, 1);
}
