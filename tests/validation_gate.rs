//! Cross-crate test of the Fig. 8-B validation gate: a model trained on one
//! fleet regime must pass validation on a fresh fleet from the same regime
//! and be flagged when the world drifts.

use lorentz::core::validation::{validate_deployment, PublishGate};
use lorentz::core::{LorentzConfig, LorentzPipeline, ModelKind};
use lorentz::simdata::fleet::FleetConfig;
use lorentz::simdata::scenarios;
use lorentz::telemetry::generators::SamplingConfig;

fn sized(mut config: FleetConfig, seed: u64) -> FleetConfig {
    config.n_servers = 300;
    config.seed = seed;
    config.sampling = SamplingConfig {
        duration_secs: 4.0 * 3600.0,
        mean_interval_secs: 60.0,
        jitter_frac: 0.2,
    };
    config
}

fn quick_config() -> LorentzConfig {
    let mut c = LorentzConfig::paper_defaults();
    c.hierarchical.min_bucket = 5;
    c.target_encoding.boosting.n_trees = 30;
    c
}

#[test]
fn same_regime_passes_drifted_regime_scores_worse() {
    // Train on one §2.2-calibrated fleet...
    let train = sized(scenarios::paper_section22(), 1).generate().unwrap();
    let deployment = LorentzPipeline::new(quick_config())
        .unwrap()
        .train(&train.fleet)
        .unwrap();

    // ...validate on a fresh fleet from the same generator (new seed, same
    // hierarchy-node need factors — the same "world").
    let same = sized(scenarios::paper_section22(), 1).generate().unwrap();
    let same_report =
        validate_deployment(&deployment, &same.fleet, ModelKind::Hierarchical).unwrap();

    // ...and on a *drifted* world: a different master seed redraws every
    // hierarchy node's capacity-need factor, so the learned profile→capacity
    // mapping no longer applies.
    let drifted = sized(scenarios::paper_section22(), 999).generate().unwrap();
    let drifted_report =
        validate_deployment(&deployment, &drifted.fleet, ModelKind::Hierarchical).unwrap();

    assert!(
        same_report.label_rmse_log2 < drifted_report.label_rmse_log2,
        "same-world RMSE {:.3} must beat drifted-world RMSE {:.3}",
        same_report.label_rmse_log2,
        drifted_report.label_rmse_log2
    );

    // The gate prefers the same-world report.
    let gate = PublishGate::default();
    let better = gate.better(&same_report, &drifted_report);
    assert_eq!(better.label_rmse_log2, same_report.label_rmse_log2);
}

#[test]
fn gate_holds_across_scenarios() {
    // A model trained on the clean enterprise scenario validates well on
    // enterprise data.
    let train = sized(scenarios::enterprise(), 5).generate().unwrap();
    let deployment = LorentzPipeline::new(quick_config())
        .unwrap()
        .train(&train.fleet)
        .unwrap();
    let validation = sized(scenarios::enterprise(), 5).generate().unwrap();
    let report =
        validate_deployment(&deployment, &validation.fleet, ModelKind::TargetEncoding).unwrap();
    assert!(report.rows == 300);
    assert!(
        report.label_rmse_log2 < 1.0,
        "enterprise profiles are clean; RMSE {:.3}",
        report.label_rmse_log2
    );
    // Stage-2 recommendations can't beat Stage 1, but must be in its
    // neighborhood on a learnable fleet.
    assert!(report.slack_overhead() < 3.0, "{}", report.slack_overhead());
}
