//! Property-based tests of the telemetry substrate: binning, censoring,
//! and catalog rounding.

use lorentz::telemetry::aggregate::percentile;
use lorentz::telemetry::{bin_series, Aggregator, EmptyBinPolicy, RawSeries};
use lorentz::types::{Capacity, ServerOffering, SkuCatalog};
use proptest::prelude::*;

/// Arbitrary irregular series: increasing timestamps, bounded values.
fn raw_series() -> impl Strategy<Value = RawSeries> {
    proptest::collection::vec((0.1f64..120.0, 0.0f64..64.0), 1..80).prop_map(|steps| {
        let mut t = 0.0;
        let samples: Vec<(f64, f64)> = steps
            .into_iter()
            .map(|(dt, v)| {
                t += dt;
                (t, v)
            })
            .collect();
        RawSeries::new(samples).unwrap()
    })
}

proptest! {
    /// Max binning preserves the global peak exactly for any bin width.
    #[test]
    fn max_binning_preserves_peak(raw in raw_series(), bin in 30.0f64..3600.0) {
        let w = bin_series(&raw, bin, Aggregator::Max, EmptyBinPolicy::HoldLast).unwrap();
        prop_assert!((w.max_value() - raw.max_value()).abs() < 1e-9);
    }

    /// Mean binning never exceeds max binning, bin by bin.
    #[test]
    fn mean_binning_below_max_binning(raw in raw_series(), bin in 30.0f64..3600.0) {
        let wm = bin_series(&raw, bin, Aggregator::Mean, EmptyBinPolicy::Zero).unwrap();
        let wx = bin_series(&raw, bin, Aggregator::Max, EmptyBinPolicy::Zero).unwrap();
        prop_assert_eq!(wm.len(), wx.len());
        for (m, x) in wm.values().iter().zip(wx.values()) {
            prop_assert!(m <= &(x + 1e-9));
        }
    }

    /// Censoring commutes with max binning: bin(min(u, c)) == min(bin(u), c).
    #[test]
    fn censoring_commutes_with_max_binning(raw in raw_series(), cap in 0.5f64..64.0) {
        let censored_first =
            bin_series(&raw.censored(cap), 300.0, Aggregator::Max, EmptyBinPolicy::HoldLast)
                .unwrap();
        let binned_first =
            bin_series(&raw, 300.0, Aggregator::Max, EmptyBinPolicy::HoldLast)
                .unwrap()
                .censored(cap);
        prop_assert_eq!(censored_first.len(), binned_first.len());
        for (a, b) in censored_first.values().iter().zip(binned_first.values()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// Censoring is a contraction: values never grow, and censoring at the
    /// peak is the identity.
    #[test]
    fn censoring_contracts(raw in raw_series(), cap in 0.0f64..64.0) {
        let c = raw.censored(cap);
        for ((_, a), (_, b)) in raw.samples().iter().zip(c.samples()) {
            prop_assert!(b <= a);
            prop_assert!(*b <= cap + 1e-12);
        }
        let identity = raw.censored(raw.max_value());
        prop_assert_eq!(identity, raw.clone());
    }

    /// Percentiles are monotone in p and bounded by the extremes.
    #[test]
    fn percentiles_monotone(values in proptest::collection::vec(0.0f64..100.0, 1..50)) {
        let mut prev = f64::NEG_INFINITY;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 100.0] {
            let q = percentile(&values, p);
            prop_assert!(q >= prev - 1e-12);
            prev = q;
        }
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!((percentile(&values, 0.0) - min).abs() < 1e-12);
        prop_assert!((percentile(&values, 100.0) - max).abs() < 1e-12);
    }

    /// Catalog rounding invariants: round_up dominates the target, round_up
    /// is the inverse of membership, and nearest_log2 returns a catalog SKU.
    #[test]
    fn catalog_rounding(target in 0.1f64..200.0) {
        for offering in ServerOffering::ALL {
            let cat = SkuCatalog::azure_postgres(offering);
            let t = Capacity::scalar(target);
            if let Some(sku) = cat.round_up(&t) {
                prop_assert!(sku.capacity.primary() >= target);
                // No smaller catalog SKU also dominates.
                if let Some(idx) = cat.index_of(&sku.capacity) {
                    if idx > 0 {
                        prop_assert!(cat.get(idx - 1).capacity.primary() < target);
                    }
                }
            } else {
                prop_assert!(target > cat.maximum().capacity.primary());
            }
            let nearest = cat.nearest_log2(&t);
            prop_assert!(cat.index_of(&nearest.capacity).is_some());
        }
    }
}
