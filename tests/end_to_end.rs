//! Cross-crate integration: the full Lorentz lifecycle from synthetic
//! fleet to personalized recommendations.

use lorentz::core::{
    evaluate, LorentzConfig, LorentzPipeline, ModelKind, RecommendRequest, Rightsizer,
    SatisfactionSignal,
};
use lorentz::simdata::fleet::FleetConfig;
use lorentz::simdata::upscale::{upscale_fleet, UpscaleConfig};
use lorentz::types::{
    Capacity, CustomerId, FeatureId, ResourceGroupId, ResourcePath, ServerOffering, SkuCatalog,
    SubscriptionId,
};

fn quick_config() -> LorentzConfig {
    let mut c = LorentzConfig::paper_defaults();
    c.hierarchical.min_bucket = 5;
    c.target_encoding.boosting.n_trees = 30;
    c
}

fn quick_fleet(seed: u64) -> lorentz::simdata::fleet::SyntheticFleet {
    FleetConfig {
        n_servers: 400,
        seed,
        base_demand: 1.2,
        sampling: lorentz::telemetry::generators::SamplingConfig {
            duration_secs: 6.0 * 3600.0,
            mean_interval_secs: 60.0,
            jitter_frac: 0.2,
        },
        ..FleetConfig::default()
    }
    .generate()
    .expect("fleet generation succeeds")
}

#[test]
fn full_pipeline_trains_and_recommends() {
    let synth = quick_fleet(1);
    let trained = LorentzPipeline::new(quick_config())
        .unwrap()
        .train(&synth.fleet)
        .unwrap();

    // Stage 1 produced catalog-valid labels for every server.
    assert_eq!(trained.labels().len(), synth.fleet.len());
    for (i, outcome) in trained.outcomes().iter().enumerate() {
        let cat = SkuCatalog::azure_postgres(synth.fleet.offerings()[i]);
        assert!(cat.index_of(&outcome.capacity).is_some());
    }

    // Stage 2: every training row can be served by both models, and every
    // recommendation is a valid SKU of the right offering.
    for row in (0..synth.fleet.len()).step_by(37) {
        let offering = synth.fleet.offerings()[row];
        let cat = SkuCatalog::azure_postgres(offering);
        for kind in [ModelKind::Hierarchical, ModelKind::TargetEncoding] {
            let Ok(model) = trained.provisioner(offering, kind) else {
                continue;
            };
            let (sku, _) = model.recommend(&synth.fleet.profiles().row(row)).unwrap();
            assert!(cat.index_of(&sku.capacity).is_some(), "row {row} {kind:?}");
        }
    }

    // Store agreement: the precomputed store serves the same capacities as
    // the live hierarchical model for profile-only requests.
    let schema = synth.fleet.profiles().schema();
    let mut checked = 0;
    for row in (0..synth.fleet.len()).step_by(53) {
        let offering = synth.fleet.offerings()[row];
        if trained
            .provisioner(offering, ModelKind::Hierarchical)
            .is_err()
        {
            continue;
        }
        let strings: Vec<Option<String>> = (0..schema.len())
            .map(|f| {
                synth
                    .fleet
                    .profiles()
                    .value_str(row, FeatureId(f))
                    .map(str::to_owned)
            })
            .collect();
        let req = RecommendRequest {
            profile: strings.iter().map(|v| v.as_deref()).collect(),
            offering,
            path: synth.fleet.paths()[row],
        };
        let live = trained.recommend(&req, ModelKind::Hierarchical).unwrap();
        let stored = trained.recommend_from_store(&req).unwrap();
        assert_eq!(
            live.sku.capacity, stored.sku.capacity,
            "row {row}: live vs store disagree"
        );
        checked += 1;
    }
    assert!(checked > 3, "store agreement checked on {checked} rows");
}

#[test]
fn rightsizing_never_throttles_observed_telemetry() {
    let synth = quick_fleet(2);
    let config = quick_config();
    let trained = LorentzPipeline::new(config.clone())
        .unwrap()
        .train(&synth.fleet)
        .unwrap();
    let rightsizer = Rightsizer::new(&config.rightsizer).unwrap();
    let capacities: Vec<Capacity> = trained
        .outcomes()
        .iter()
        .map(|o| o.capacity.clone())
        .collect();
    let st = evaluate::slack_throttle(&rightsizer, synth.fleet.traces(), &capacities, 0.0).unwrap();
    assert_eq!(
        st.throttling_ratio, 0.0,
        "Eq. 9 guarantees zero observed throttling at tau = 0"
    );
}

#[test]
fn upscaling_then_training_shifts_labels_upward() {
    let mut synth = quick_fleet(3);
    let before = LorentzPipeline::new(quick_config())
        .unwrap()
        .train(&synth.fleet)
        .unwrap();
    let mean_before: f64 = before.labels().iter().sum::<f64>() / before.labels().len() as f64;

    upscale_fleet(&mut synth, &UpscaleConfig::default()).unwrap();
    let after = LorentzPipeline::new(quick_config())
        .unwrap()
        .train(&synth.fleet)
        .unwrap();
    let mean_after: f64 = after.labels().iter().sum::<f64>() / after.labels().len() as f64;
    assert!(
        mean_after > mean_before,
        "upscaled labels {mean_after} should exceed original {mean_before}"
    );
}

#[test]
fn personalization_signals_move_recommendations_monotonically() {
    let synth = quick_fleet(4);
    let mut trained = LorentzPipeline::new(quick_config())
        .unwrap()
        .train(&synth.fleet)
        .unwrap();
    let path = ResourcePath::new(CustomerId(900), SubscriptionId(1), ResourceGroupId(1));
    let schema_len = synth.fleet.profiles().schema().len();
    let req = RecommendRequest {
        profile: vec![None; schema_len],
        offering: ServerOffering::GeneralPurpose,
        path,
    };
    let mut last = trained
        .recommend(&req, ModelKind::Hierarchical)
        .unwrap()
        .sku
        .capacity
        .primary();
    let base = last;
    for _ in 0..8 {
        trained.apply_signal(
            &SatisfactionSignal::new(path, ServerOffering::GeneralPurpose, 1.0).unwrap(),
        );
        let now = trained
            .recommend(&req, ModelKind::Hierarchical)
            .unwrap()
            .sku
            .capacity
            .primary();
        assert!(
            now >= last,
            "recommendations must not shrink under +1 signals"
        );
        last = now;
    }
    assert!(
        last > base,
        "eight +1 signals must raise the recommendation"
    );

    // Stage-2 output itself is untouched by personalization.
    let rec = trained.recommend(&req, ModelKind::Hierarchical).unwrap();
    assert!(rec.lambda > 0.0);
    assert_eq!(rec.stage2_capacity, base);
}

#[test]
fn offerings_are_stratified_models() {
    let synth = quick_fleet(5);
    let trained = LorentzPipeline::new(quick_config())
        .unwrap()
        .train(&synth.fleet)
        .unwrap();
    // A Burstable recommendation only ever uses the Burstable ladder.
    let schema_len = synth.fleet.profiles().schema().len();
    let req = RecommendRequest {
        profile: vec![None; schema_len],
        offering: ServerOffering::Burstable,
        path: ResourcePath::new(CustomerId(1), SubscriptionId(1), ResourceGroupId(1)),
    };
    if let Ok(rec) = trained.recommend(&req, ModelKind::Hierarchical) {
        let cat = SkuCatalog::azure_postgres(ServerOffering::Burstable);
        assert!(cat.index_of(&rec.sku.capacity).is_some());
    }
}
