//! Property-based tests of the typed-key serving engine: packed store-key
//! round trips and batched-vs-single recommend equivalence on random fleets.

use lorentz::core::{LorentzConfig, LorentzPipeline, ModelKind, RecommendRequest};
use lorentz::simdata::fleet::FleetConfig;
use lorentz::types::{
    CustomerId, FeatureId, ResourceGroupId, ResourcePath, ServerOffering, StoreKey, SubscriptionId,
    ValueId,
};
use proptest::prelude::*;

fn offering() -> impl Strategy<Value = ServerOffering> {
    (0u64..ServerOffering::ALL.len() as u64)
        .prop_map(|c| ServerOffering::from_code(c as u8).unwrap())
}

proptest! {
    /// `unpack(pack(k)) == k` over the full packed layout: every offering
    /// code, the whole 16-bit feature range, and arbitrary value ids.
    #[test]
    fn storekey_pack_roundtrips(
        o in offering(),
        feature in 0u64..=u16::MAX as u64,
        value in any::<u32>(),
    ) {
        let key = StoreKey::new(o, FeatureId(feature as usize), ValueId(value));
        let packed = key.pack();
        prop_assert_eq!(StoreKey::unpack(packed), Some(key));
        // The string form (the JSON snapshot encoding) round-trips too.
        prop_assert_eq!(key.to_string().parse::<StoreKey>().unwrap(), key);
    }

    /// Corrupted packings — non-zero top byte or an unknown offering code —
    /// never unpack into a key.
    #[test]
    fn storekey_rejects_corrupt_packings(
        top in 1u64..=u8::MAX as u64,
        code in ServerOffering::ALL.len() as u64..=u8::MAX as u64,
        low in any::<u64>(),
    ) {
        prop_assert_eq!(StoreKey::unpack((top << 56) | (low >> 8)), None);
        prop_assert_eq!(StoreKey::unpack((code << 48) | (low >> 16)), None);
    }
}

/// A random request mix: values sampled from the trained model's own
/// vocabularies (guaranteed store hits), values the model never saw,
/// missing tags, and one wrong-arity profile.
fn request_profiles(seed: u64, table: &lorentz::types::ProfileTable) -> Vec<Vec<Option<String>>> {
    let mut rng = proptest::TestRng::new(seed);
    let mut profiles = Vec::new();
    for _ in 0..12 {
        let profile = table
            .schema()
            .feature_ids()
            .map(|f| {
                let vocab = table.vocab(f);
                match rng.below(4) {
                    0 => None,
                    1 => Some(format!("unseen-{}", rng.below(1000))),
                    _ if !vocab.is_empty() => {
                        Some(vocab.value(rng.below(vocab.len() as u64) as u32).to_owned())
                    }
                    _ => None,
                }
            })
            .collect();
        profiles.push(profile);
    }
    profiles.push(vec![Some("wrong-arity".to_owned())]); // encode must fail
    profiles
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    /// `recommend_batch` (and the store-backed variant) is positionally
    /// identical to issuing each request through the single-request entry
    /// points, across random fleets and malformed inputs.
    #[test]
    fn batched_serving_equals_single_serving(seed in 1u64..1_000) {
        let fleet = FleetConfig {
            n_servers: 60 + (seed as usize % 40),
            seed,
            ..FleetConfig::default()
        }
        .generate()
        .unwrap()
        .fleet;
        let trained = LorentzPipeline::new(LorentzConfig::paper_defaults())
            .unwrap()
            .train(&fleet)
            .unwrap();

        let profiles = request_profiles(seed ^ 0xabcd, trained.profiles());
        let requests: Vec<RecommendRequest<'_>> = profiles
            .iter()
            .enumerate()
            .map(|(i, p)| RecommendRequest {
                profile: p.iter().map(|v| v.as_deref()).collect(),
                offering: ServerOffering::ALL[i % ServerOffering::ALL.len()],
                path: ResourcePath::new(
                    CustomerId(i as u32 % 5),
                    SubscriptionId(i as u32 % 3),
                    ResourceGroupId(i as u32),
                ),
            })
            .collect();

        for kind in [ModelKind::Hierarchical, ModelKind::TargetEncoding] {
            let batched = trained.recommend_batch(&requests, kind);
            prop_assert_eq!(batched.len(), requests.len());
            for (r, b) in requests.iter().zip(&batched) {
                match (trained.recommend(r, kind), b) {
                    (Ok(single), Ok(batch)) => prop_assert_eq!(&single, batch),
                    (Err(_), Err(_)) => {}
                    (s, b) => prop_assert!(false, "single={s:?} batch={b:?}"),
                }
            }
        }
        let batched = trained.recommend_batch_from_store(&requests);
        prop_assert_eq!(batched.len(), requests.len());
        for (r, b) in requests.iter().zip(&batched) {
            match (trained.recommend_from_store(r), b) {
                (Ok(single), Ok(batch)) => prop_assert_eq!(&single, batch),
                (Err(_), Err(_)) => {}
                (s, b) => prop_assert!(false, "single={s:?} batch={b:?}"),
            }
        }
    }
}

/// A small trained pipeline plus one profile drawn from its own vocabulary,
/// shared by the batch edge-case tests below.
fn tiny_trained() -> (lorentz::core::TrainedLorentz, Vec<Option<String>>) {
    let fleet = FleetConfig {
        n_servers: 80,
        seed: 424242,
        ..FleetConfig::default()
    }
    .generate()
    .unwrap()
    .fleet;
    let trained = LorentzPipeline::new(LorentzConfig::paper_defaults())
        .unwrap()
        .train(&fleet)
        .unwrap();
    let profile = trained
        .profiles()
        .schema()
        .feature_ids()
        .map(|f| {
            let vocab = trained.profiles().vocab(f);
            (!vocab.is_empty()).then(|| vocab.value(0).to_owned())
        })
        .collect();
    (trained, profile)
}

fn request_at<'a>(profile: &'a [Option<String>], i: u32) -> RecommendRequest<'a> {
    RecommendRequest {
        profile: profile.iter().map(|v| v.as_deref()).collect(),
        offering: ServerOffering::GeneralPurpose,
        path: ResourcePath::new(CustomerId(1), SubscriptionId(1), ResourceGroupId(i)),
    }
}

#[test]
fn empty_batch_serves_zero_results() {
    let (trained, _) = tiny_trained();
    let requests: Vec<RecommendRequest<'_>> = Vec::new();
    for kind in [ModelKind::Hierarchical, ModelKind::TargetEncoding] {
        assert!(trained.recommend_batch(&requests, kind).is_empty());
    }
    assert!(trained.recommend_batch_from_store(&requests).is_empty());
}

#[test]
fn single_element_batch_equals_single_request() {
    let (trained, profile) = tiny_trained();
    let requests = vec![request_at(&profile, 0)];
    for kind in [ModelKind::Hierarchical, ModelKind::TargetEncoding] {
        let batched = trained.recommend_batch(&requests, kind);
        assert_eq!(batched.len(), 1);
        assert_eq!(
            batched[0].as_ref().unwrap(),
            &trained.recommend(&requests[0], kind).unwrap()
        );
    }
    let batched = trained.recommend_batch_from_store(&requests);
    assert_eq!(batched.len(), 1);
    assert_eq!(
        batched[0].as_ref().unwrap(),
        &trained.recommend_from_store(&requests[0]).unwrap()
    );
}

#[test]
fn duplicate_profile_batch_repeats_the_single_answer() {
    // A batch of N identical requests must return the single-request answer
    // N times — batching must not share or mutate state across positions.
    let (trained, profile) = tiny_trained();
    let requests: Vec<RecommendRequest<'_>> = (0..8).map(|_| request_at(&profile, 3)).collect();
    for kind in [ModelKind::Hierarchical, ModelKind::TargetEncoding] {
        let single = trained.recommend(&requests[0], kind).unwrap();
        let batched = trained.recommend_batch(&requests, kind);
        assert_eq!(batched.len(), requests.len());
        for b in &batched {
            assert_eq!(b.as_ref().unwrap(), &single);
        }
    }
    let single = trained.recommend_from_store(&requests[0]).unwrap();
    for b in &trained.recommend_batch_from_store(&requests) {
        assert_eq!(b.as_ref().unwrap(), &single);
    }
}
