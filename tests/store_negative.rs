//! Negative-path regression tests for [`PredictionStore`] deserialization:
//! every rejection branch in the snapshot-compatibility shim must surface
//! as a typed error — never a panic — with one test per branch.

use lorentz::core::PredictionStore;

/// A minimal well-formed snapshot that every test below perturbs.
const GOOD: &str = r#"{
  "version": 3,
  "entries": { "general_purpose|0|7": 4.0, "burstable|2|1": 2.0 },
  "defaults": { "general_purpose": 8.0 }
}"#;

fn parse(json: &str) -> Result<PredictionStore, serde_json::Error> {
    serde_json::from_str(json)
}

#[test]
fn well_formed_snapshot_round_trips() {
    let store = parse(GOOD).expect("the reference snapshot must parse");
    let json = serde_json::to_string(&store).unwrap();
    let back: PredictionStore = serde_json::from_str(&json).unwrap();
    assert_eq!(serde_json::to_string(&back).unwrap(), json);
}

#[test]
fn missing_version_field_is_rejected() {
    let err = parse(r#"{"entries": {}, "defaults": {}}"#).unwrap_err();
    assert!(err.to_string().contains("version"), "got: {err}");
}

#[test]
fn missing_entries_field_is_rejected() {
    let err = parse(r#"{"version": 1, "defaults": {}}"#).unwrap_err();
    assert!(err.to_string().contains("entries"), "got: {err}");
}

#[test]
fn missing_defaults_field_is_rejected() {
    let err = parse(r#"{"version": 1, "entries": {}}"#).unwrap_err();
    assert!(err.to_string().contains("defaults"), "got: {err}");
}

#[test]
fn non_numeric_version_is_rejected() {
    assert!(parse(r#"{"version": "three", "entries": {}, "defaults": {}}"#).is_err());
}

#[test]
fn entries_as_array_is_rejected() {
    let err = parse(r#"{"version": 1, "entries": [1, 2], "defaults": {}}"#).unwrap_err();
    assert!(err.to_string().contains("entries"), "got: {err}");
}

#[test]
fn defaults_as_scalar_is_rejected() {
    let err = parse(r#"{"version": 1, "entries": {}, "defaults": 4.0}"#).unwrap_err();
    assert!(err.to_string().contains("defaults"), "got: {err}");
}

#[test]
fn malformed_store_key_missing_fields_is_rejected() {
    let json = r#"{"version": 1, "entries": {"general_purpose|0": 4.0}, "defaults": {}}"#;
    let err = parse(json).unwrap_err();
    assert!(err.to_string().contains("store key"), "got: {err}");
}

#[test]
fn malformed_store_key_non_numeric_index_is_rejected() {
    let json = r#"{"version": 1, "entries": {"general_purpose|x|7": 4.0}, "defaults": {}}"#;
    assert!(parse(json).is_err());
}

#[test]
fn store_key_feature_index_overflow_is_rejected() {
    // FeatureId is packed into 16 bits; 70000 must be refused, not wrapped.
    let json = r#"{"version": 1, "entries": {"general_purpose|70000|7": 4.0}, "defaults": {}}"#;
    assert!(parse(json).is_err());
}

#[test]
fn unknown_offering_in_store_key_is_rejected() {
    let json = r#"{"version": 1, "entries": {"warp_drive|0|7": 4.0}, "defaults": {}}"#;
    assert!(parse(json).is_err());
}

#[test]
fn unknown_offering_in_defaults_is_rejected() {
    let json = r#"{"version": 1, "entries": {}, "defaults": {"warp_drive": 4.0}}"#;
    assert!(parse(json).is_err());
}

#[test]
fn non_numeric_entry_capacity_is_rejected() {
    let json = r#"{"version": 1, "entries": {"general_purpose|0|7": "big"}, "defaults": {}}"#;
    assert!(parse(json).is_err());
}

#[test]
fn non_numeric_default_capacity_is_rejected() {
    let json = r#"{"version": 1, "entries": {}, "defaults": {"general_purpose": []}}"#;
    assert!(parse(json).is_err());
}

#[test]
fn truncated_json_is_an_error_not_a_panic() {
    // Every strict prefix of a valid snapshot must fail cleanly. This walks
    // the whole document so a panic anywhere in the lexer/shim surfaces.
    for cut in 0..GOOD.len() {
        assert!(
            parse(&GOOD[..cut]).is_err(),
            "prefix of length {cut} unexpectedly parsed"
        );
    }
}
