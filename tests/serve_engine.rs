//! Concurrency tests for the serving engine and the hot-swap store:
//! torn-read freedom under concurrent publish, graceful-drain accounting,
//! backpressure, deadlines, and degraded mode.

use lorentz::core::store::PublishBatch;
use lorentz::core::{
    LorentzConfig, LorentzPipeline, SatisfactionSignal, SharedPredictionStore, TrainedLorentz,
};
use lorentz::serve::{ServeConfig, ServeError, ServeRequest, ServingEngine};
use lorentz::simdata::fleet::FleetConfig;
use lorentz::types::{
    CustomerId, FeatureId, ResourceGroupId, ResourcePath, ServerOffering, StoreKey, SubscriptionId,
    ValueId,
};
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// One trained deployment shared by every engine test (training dominates
/// test runtime; the engine itself never mutates it).
fn deployment() -> Arc<TrainedLorentz> {
    static DEPLOYMENT: OnceLock<Arc<TrainedLorentz>> = OnceLock::new();
    DEPLOYMENT
        .get_or_init(|| {
            let fleet = FleetConfig {
                n_servers: 80,
                seed: 20240807,
                ..FleetConfig::default()
            }
            .generate()
            .unwrap()
            .fleet;
            let trained = LorentzPipeline::new(LorentzConfig::paper_defaults())
                .unwrap()
                .train(&fleet)
                .unwrap();
            Arc::new(trained)
        })
        .clone()
}

/// A valid all-missing-tags request (served by the fallback buckets and the
/// store's per-offering defaults).
fn request(deployment: &TrainedLorentz, id: u64) -> ServeRequest {
    ServeRequest {
        id,
        profile: vec![None; deployment.profiles().schema().len()],
        offering: ServerOffering::GeneralPurpose,
        path: ResourcePath::new(CustomerId(0), SubscriptionId(0), ResourceGroupId(0)),
        deadline: None,
    }
}

/// Publishes `n_keys` entries that ALL carry the same capacity `c` (plus a
/// matching default), so any mix of two store versions in one batched
/// lookup shows up as unequal capacities.
fn publish_uniform(store: &SharedPredictionStore, n_keys: usize, c: f64) -> u64 {
    let offering = ServerOffering::GeneralPurpose;
    store
        .publish(PublishBatch {
            entries: (0..n_keys)
                .map(|i| (StoreKey::new(offering, FeatureId(i), ValueId(i as u32)), c))
                .collect(),
            defaults: vec![(offering, c)],
        })
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A `lookup_batch` racing an arbitrary stream of publishes always
    /// observes a single consistent store version: every capacity in one
    /// batch is identical (all versions write uniform values, so a torn
    /// read would mix them), and the version sequence readers observe is
    /// monotone.
    #[test]
    fn concurrent_publish_and_lookup_batch_never_tear(
        n_keys in 1usize..6,
        n_publishes in 1usize..24,
    ) {
        let store = Arc::new(SharedPredictionStore::new());
        publish_uniform(&store, n_keys, 1.0);
        let done = Arc::new(AtomicBool::new(false));
        let publisher = {
            let store = Arc::clone(&store);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                for round in 0..n_publishes {
                    publish_uniform(&store, n_keys, 2.0 + round as f64);
                }
                done.store(true, Ordering::Release);
            })
        };
        let offering = ServerOffering::GeneralPurpose;
        let levels: Vec<[(FeatureId, ValueId); 1]> = (0..n_keys)
            .map(|i| [(FeatureId(i), ValueId(i as u32))])
            .collect();
        let requests: Vec<(ServerOffering, &[(FeatureId, ValueId)])> =
            levels.iter().map(|l| (offering, &l[..])).collect();
        let mut out = Vec::new();
        let mut last_version = 0u64;
        let mut rounds = 0usize;
        while rounds < 2 || !done.load(Ordering::Acquire) {
            rounds += 1;
            let version = store.version();
            prop_assert!(version >= last_version, "version went backwards");
            last_version = version;
            out.clear();
            store.lookup_batch(&requests, &mut out);
            let capacities: Vec<f64> = out
                .iter()
                .map(|r| r.as_ref().expect("uniform store always hits").0)
                .collect();
            for &c in &capacities[1..] {
                // A torn read would mix uniform values from two versions.
                prop_assert_eq!(c, capacities[0]);
            }
        }
        publisher.join().unwrap();
        prop_assert_eq!(store.version(), 1 + n_publishes as u64);
    }
}

#[test]
fn graceful_drain_answers_every_accepted_request_exactly_once() {
    let deployment = deployment();
    let (engine, responses) = ServingEngine::start(
        Arc::clone(&deployment),
        ServeConfig {
            workers: 3,
            queue_capacity: 1024,
            degraded_threshold: None,
            default_deadline: None,
            ..ServeConfig::default()
        },
    )
    .expect("engine start");
    let total = 64u64;
    for id in 0..total {
        engine.submit(request(&deployment, id)).unwrap();
    }
    let stats = engine.drain();
    assert_eq!(stats.submitted, total);
    assert_eq!(stats.rejected, 0);
    // The metrics accounting closes: everything offered was either
    // accepted or rejected, and every accepted request was answered.
    assert_eq!(stats.submitted, stats.accepted + stats.rejected);
    assert_eq!(stats.accepted, stats.answered);
    let ids: Vec<u64> = responses.into_iter().map(|r| r.id).collect();
    assert_eq!(ids.len() as u64, stats.answered);
    let unique: HashSet<u64> = ids.iter().copied().collect();
    assert_eq!(unique.len() as u64, total, "a request was answered twice");
    assert_eq!(unique, (0..total).collect::<HashSet<u64>>());
}

#[test]
fn saturated_queue_rejects_with_backpressure() {
    let deployment = deployment();
    let (engine, responses) = ServingEngine::start(
        Arc::clone(&deployment),
        ServeConfig {
            workers: 1,
            queue_capacity: 0,
            ..ServeConfig::default()
        },
    )
    .expect("engine start");
    for id in 0..5 {
        match engine.submit(request(&deployment, id)) {
            Err(ServeError::Saturated(depth)) => assert_eq!(depth, 0),
            other => panic!("expected Saturated, got {other:?}"),
        }
    }
    let stats = engine.drain();
    assert_eq!(stats.submitted, 5);
    assert_eq!(stats.rejected, 5);
    assert_eq!(stats.accepted, 0);
    assert_eq!(stats.answered, 0);
    assert_eq!(
        responses.into_iter().count(),
        0,
        "rejected requests must not be answered"
    );
}

#[test]
fn expired_deadlines_answer_with_deadline_error() {
    let deployment = deployment();
    let (engine, responses) = ServingEngine::start(
        Arc::clone(&deployment),
        ServeConfig {
            workers: 2,
            default_deadline: Some(Duration::ZERO),
            degraded_threshold: None,
            ..ServeConfig::default()
        },
    )
    .expect("engine start");
    for id in 0..8 {
        engine.submit(request(&deployment, id)).unwrap();
    }
    let stats = engine.drain();
    assert_eq!(stats.accepted, 8);
    // Deadline-expired requests are still *answered* — with an error —
    // so the drain invariant holds and the timeout tally matches.
    assert_eq!(stats.answered, 8);
    assert_eq!(stats.timed_out, 8);
    for response in responses {
        match response.result {
            Err(ServeError::DeadlineExceeded(_)) => {}
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }
}

#[test]
fn degraded_mode_serves_from_store_snapshots() {
    let deployment = deployment();
    let (engine, responses) = ServingEngine::start(
        Arc::clone(&deployment),
        ServeConfig {
            workers: 2,
            degraded_threshold: Some(0), // degrade every request
            default_deadline: None,
            ..ServeConfig::default()
        },
    )
    .expect("engine start");
    for id in 0..16 {
        engine.submit(request(&deployment, id)).unwrap();
    }
    let stats = engine.drain();
    assert_eq!(stats.degraded, 16);
    assert_eq!(stats.answered, 16);
    for response in responses {
        assert!(response.degraded, "request was admitted degraded");
        response
            .result
            .expect("store lookup with defaults succeeds");
    }
}

#[test]
fn publish_hot_swaps_store_while_engine_serves() {
    let deployment = deployment();
    let (engine, responses) = ServingEngine::start(
        Arc::clone(&deployment),
        ServeConfig {
            workers: 2,
            degraded_threshold: Some(0), // exercise the store path
            default_deadline: None,
            ..ServeConfig::default()
        },
    )
    .expect("engine start");
    let initial_version = engine.store_version();
    let mut submitted = 0u64;
    for round in 0..6u64 {
        for i in 0..8u64 {
            engine.submit(request(&deployment, round * 8 + i)).unwrap();
            submitted += 1;
        }
        let v = engine
            .publish(PublishBatch {
                entries: vec![],
                defaults: vec![(ServerOffering::GeneralPurpose, 1.0 + round as f64)],
            })
            .unwrap();
        assert_eq!(v, initial_version + round + 1);
    }
    let stats = engine.drain();
    assert_eq!(stats.accepted, submitted);
    assert_eq!(stats.answered, submitted);
    // Every request was answered despite six republishes mid-serve.
    assert_eq!(
        responses.into_iter().filter(|r| r.result.is_ok()).count() as u64,
        submitted
    );
}

/// A path the trained personalizer actually registered (feedback to an
/// unregistered customer is a no-op).
fn registered_path(deployment: &TrainedLorentz) -> ResourcePath {
    deployment
        .personalizer()
        .iter()
        .map(|(loc, _, _)| loc)
        .next()
        .expect("training registers every fleet path")
}

#[test]
fn feedback_shifts_recommendations_without_model_reload() {
    let deployment = deployment();
    let hot = registered_path(&deployment);
    let (engine, responses) = ServingEngine::start(
        Arc::clone(&deployment),
        ServeConfig {
            workers: 2,
            degraded_threshold: None,
            default_deadline: None,
            ..ServeConfig::default()
        },
    )
    .expect("engine start");
    let ask = |id| ServeRequest {
        path: hot,
        ..request(&deployment, id)
    };

    engine.submit(ask(0)).unwrap();
    let before = responses.recv().expect("first answer");
    let before = before.result.expect("recommendation succeeds");
    assert_eq!(before.lambda, 0.0, "no feedback yet, λ must be 0");

    let initial_version = engine.lambda_version();
    let signal = SatisfactionSignal::new(hot, ServerOffering::GeneralPurpose, 1.0).unwrap();
    for _ in 0..6 {
        engine.submit_feedback(signal).unwrap();
    }
    engine.flush_feedback();
    assert!(
        engine.lambda_version() > initial_version,
        "feedback must hot-publish a new λ snapshot"
    );

    engine.submit(ask(1)).unwrap();
    let after = responses.recv().expect("second answer");
    let after = after.result.expect("recommendation succeeds");
    // Same deployment, same model, no reload — only λ moved, and the
    // recommendation shifted up by 2^λ (snapped to the catalog).
    assert!(after.lambda > 0.0, "λ did not move: {}", after.lambda);
    assert_eq!(after.stage2_capacity, before.stage2_capacity);
    assert!(
        after.sku.capacity.primary() > before.sku.capacity.primary(),
        "positive feedback must shift the SKU up: {} -> {}",
        before.sku.capacity.primary(),
        after.sku.capacity.primary()
    );

    let stats = engine.drain();
    assert_eq!(stats.feedback_accepted, 6);
    assert_eq!(stats.feedback_applied, 6, "feedback ledger must close");
    assert_eq!(stats.answered, 2);
}

#[test]
fn feedback_wal_replays_lambda_on_restart() {
    let deployment = deployment();
    let hot = registered_path(&deployment);
    let wal_path = std::env::temp_dir().join(format!(
        "lorentz-serve-wal-{}-{:?}.log",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_file(&wal_path);

    let signal = SatisfactionSignal::new(hot, ServerOffering::GeneralPurpose, 1.0).unwrap();
    let learned = {
        let (engine, _responses) = ServingEngine::start_with_wal(
            Arc::clone(&deployment),
            ServeConfig::default(),
            &wal_path,
        )
        .expect("engine start");
        for _ in 0..4 {
            engine.submit_feedback(signal).unwrap();
        }
        engine.flush_feedback();
        let learned = engine
            .lambda_snapshot()
            .lambda(&hot, ServerOffering::GeneralPurpose);
        assert!(learned > 0.0);
        let stats = engine.drain();
        assert_eq!(stats.feedback_accepted, 4);
        assert_eq!(stats.feedback_applied, 4);
        learned
    };

    // A fresh engine on the same WAL recovers the learned λ before serving
    // anything — no feedback re-submitted, version bumped by the replay.
    let (restarted, _responses) =
        ServingEngine::start_with_wal(Arc::clone(&deployment), ServeConfig::default(), &wal_path)
            .expect("engine restart");
    assert!(restarted.lambda_version() > 1, "replay must publish");
    assert_eq!(
        restarted
            .lambda_snapshot()
            .lambda(&hot, ServerOffering::GeneralPurpose),
        learned
    );
    let stats = restarted.drain();
    assert_eq!(stats.feedback_accepted, 0);
    let _ = std::fs::remove_file(&wal_path);
}

#[test]
fn dropping_the_engine_drains_instead_of_dropping_work() {
    let deployment = deployment();
    let (engine, responses) = ServingEngine::start(Arc::clone(&deployment), ServeConfig::default())
        .expect("engine start");
    for id in 0..12 {
        engine.submit(request(&deployment, id)).unwrap();
    }
    drop(engine);
    assert_eq!(responses.into_iter().count(), 12);
}
