//! Panic isolation in the serving engine, driven by the `serve.worker.panic`
//! fail point. Lives in its own test binary: the fail-point registry is
//! process-wide, and every engine worker in this process hits the point.
//!
//! Run with `cargo test --features fault-injection --test serve_panic_isolation`.

#![cfg(feature = "fault-injection")]

use lorentz::core::{obs, LorentzConfig, LorentzPipeline};
use lorentz::fault::{registry, FailAction, Trigger};
use lorentz::serve::{ServeConfig, ServeError, ServeRequest, ServingEngine};
use lorentz::simdata::fleet::FleetConfig;
use lorentz::types::{CustomerId, ResourceGroupId, ResourcePath, ServerOffering, SubscriptionId};
use std::sync::Arc;

#[test]
fn injected_worker_panic_is_answered_and_worker_restarts() {
    let fleet = FleetConfig {
        n_servers: 80,
        seed: 20240807,
        ..FleetConfig::default()
    }
    .generate()
    .unwrap()
    .fleet;
    let deployment = Arc::new(
        LorentzPipeline::new(LorentzConfig::paper_defaults())
            .unwrap()
            .train(&fleet)
            .unwrap(),
    );

    // Exactly one job panics mid-handler; the rest must be unaffected.
    registry().configure("serve.worker.panic", Trigger::Once, FailAction::Panic);

    // A single worker makes the restart deterministic: the panic strands
    // the rest of the queue, which only a supervisor-spawned replacement
    // can serve.
    let (engine, responses) = ServingEngine::start(
        Arc::clone(&deployment),
        ServeConfig {
            workers: 1,
            degraded_threshold: None,
            default_deadline: None,
            ..ServeConfig::default()
        },
    )
    .expect("engine start");

    let total = 24u64;
    for id in 0..total {
        engine
            .submit(ServeRequest {
                id,
                profile: vec![None; deployment.profiles().schema().len()],
                offering: ServerOffering::GeneralPurpose,
                path: ResourcePath::new(CustomerId(0), SubscriptionId(0), ResourceGroupId(0)),
                deadline: None,
            })
            .unwrap();
    }
    let stats = engine.drain();

    // The drain ledger closes exactly, panic included: the panicked request
    // is still an *answered* request.
    assert_eq!(stats.submitted, total);
    assert_eq!(stats.rejected, 0);
    assert_eq!(stats.submitted, stats.accepted + stats.rejected);
    assert_eq!(stats.accepted, stats.answered);
    assert_eq!(stats.panicked, 1, "exactly one injected panic");

    let mut panicked = 0u64;
    let mut answered = 0u64;
    for response in responses {
        answered += 1;
        match response.result {
            Err(ServeError::Panicked(msg)) => {
                panicked += 1;
                assert!(
                    msg.contains("fail point"),
                    "panic message should carry the payload, got: {msg}"
                );
            }
            Err(other) => panic!("unexpected error: {other:?}"),
            Ok(_) => {}
        }
    }
    assert_eq!(answered, total, "every accepted request got a response");
    assert_eq!(panicked, 1, "exactly one Panicked response");

    // The supervisor replaced the crashed worker and the counters agree.
    let snapshot = obs::snapshot();
    assert_eq!(snapshot.counter("engine.worker_panics"), Some(1));
    let restarts = snapshot.counter("engine.worker_restarts").unwrap_or(0);
    assert!(restarts >= 1, "worker must have been restarted: {restarts}");
}
