//! Network integration tests for the TCP front end: multi-connection
//! request/response routing, half-open and mid-frame disconnects,
//! oversized/garbage frame rejection with typed errors, and exact
//! drain-on-shutdown accounting over real sockets.

use lorentz::core::{LorentzConfig, LorentzPipeline, TrainedLorentz};
use lorentz::serve::wire::{read_frame, write_frame};
use lorentz::serve::{serve_net, NetConfig, NetReport, ServeConfig, ServingEngine};
use lorentz::simdata::fleet::FleetConfig;
use serde::Deserialize;
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// One trained deployment shared by every server in this binary.
fn deployment() -> Arc<TrainedLorentz> {
    static DEPLOYMENT: OnceLock<Arc<TrainedLorentz>> = OnceLock::new();
    DEPLOYMENT
        .get_or_init(|| {
            let fleet = FleetConfig {
                n_servers: 80,
                seed: 20240807,
                ..FleetConfig::default()
            }
            .generate()
            .unwrap()
            .fleet;
            Arc::new(
                LorentzPipeline::new(LorentzConfig::paper_defaults())
                    .unwrap()
                    .train(&fleet)
                    .unwrap(),
            )
        })
        .clone()
}

/// Starts an engine + TCP front end on an ephemeral port; the handle
/// resolves to the post-drain [`NetReport`] once a client sends the drain
/// frame.
fn start_server(config: ServeConfig) -> (SocketAddr, JoinHandle<NetReport>) {
    let deployment = deployment();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let (engine, responses) = ServingEngine::start(Arc::clone(&deployment), config).unwrap();
    let net_config = NetConfig {
        max_frame_len: 4096,
        ..NetConfig::default()
    };
    let handle = std::thread::spawn(move || {
        serve_net(deployment, engine, responses, listener, net_config).unwrap()
    });
    (addr, handle)
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    stream
}

fn send_json(stream: &mut TcpStream, json: &str) {
    write_frame(stream, json.as_bytes()).unwrap();
}

fn recv_json(stream: &mut TcpStream) -> serde::Value {
    let payload = read_frame(stream, 1 << 20).unwrap();
    serde_json::parse(&String::from_utf8(payload).unwrap()).unwrap()
}

fn request_json(id: u64, customer: u64) -> String {
    format!("{{\"id\": {id}, \"profile\": {{}}, \"customer\": {customer}}}")
}

fn field_u64(value: &serde::Value, key: &str) -> Option<u64> {
    value.get_field(key).and_then(|v| u64::from_value(v).ok())
}

/// Sends the drain frame on a fresh connection and returns the report the
/// server thread exits with.
fn drain(addr: SocketAddr, server: JoinHandle<NetReport>) -> NetReport {
    let mut stream = connect(addr);
    send_json(&mut stream, "{\"op\": \"drain\"}");
    let ack = recv_json(&mut stream);
    assert_eq!(ack.get_field("ack").and_then(|v| v.as_str()), Some("drain"));
    server.join().unwrap()
}

/// The exact-ledger invariants every drained server must satisfy.
fn assert_ledger_exact(report: &NetReport) {
    let stats = report.engine;
    assert_eq!(stats.submitted, stats.accepted + stats.rejected);
    assert_eq!(stats.accepted, stats.answered);
    assert_eq!(stats.feedback_accepted, stats.feedback_applied);
}

#[test]
fn multi_connection_responses_route_back_without_crosstalk() {
    let (addr, server) = start_server(ServeConfig {
        shards: 4,
        ..ServeConfig::default()
    });
    // Three connections pipeline 20 requests each, with DELIBERATELY
    // overlapping client ids (0..20 on every connection): correct routing
    // is only possible if the server keys responses by connection, not id.
    const PER_CONN: u64 = 20;
    let mut conns: Vec<TcpStream> = (0..3).map(|_| connect(addr)).collect();
    for (c, stream) in conns.iter_mut().enumerate() {
        for id in 0..PER_CONN {
            send_json(stream, &request_json(id, c as u64));
        }
    }
    for stream in &mut conns {
        // Responses may arrive in any order (workers race) but each id
        // arrives exactly once per connection, each with a result.
        let mut seen = vec![false; PER_CONN as usize];
        for _ in 0..PER_CONN {
            let response = recv_json(stream);
            let id = field_u64(&response, "id").unwrap();
            assert!(!seen[id as usize], "id {id} answered twice on one conn");
            seen[id as usize] = true;
            assert!(
                response.get_field("ok").is_some(),
                "request {id} failed: {response:?}"
            );
        }
        assert!(seen.iter().all(|&s| s));
    }
    let report = drain(addr, server);
    assert_ledger_exact(&report);
    assert_eq!(report.engine.submitted, 3 * PER_CONN);
    assert_eq!(report.engine.answered, 3 * PER_CONN);
    assert_eq!(report.connections, 4); // 3 clients + the drain connection
    assert_eq!(report.frames_in, 3 * PER_CONN + 1);
    assert_eq!(report.frames_out, 3 * PER_CONN + 1);
    assert_eq!(report.disconnects, 0);
    assert_eq!(report.dropped_responses, 0);
}

#[test]
fn ping_and_feedback_are_acknowledged_in_order() {
    let (addr, server) = start_server(ServeConfig {
        shards: 2,
        ..ServeConfig::default()
    });
    let mut stream = connect(addr);
    send_json(&mut stream, "{\"op\": \"ping\"}");
    let pong = recv_json(&mut stream);
    assert_eq!(pong.get_field("pong"), Some(&serde::Value::Bool(true)));
    // Feedback is acked only after the λ publish lands, so a request sent
    // after the ack serves under the updated lambda.
    send_json(&mut stream, "{\"gamma\": 1.0, \"customer\": 5}");
    let ack = recv_json(&mut stream);
    assert_eq!(
        ack.get_field("ack").and_then(|v| v.as_str()),
        Some("feedback")
    );
    send_json(&mut stream, &request_json(9, 5));
    let response = recv_json(&mut stream);
    assert_eq!(field_u64(&response, "id"), Some(9));
    assert!(response.get_field("ok").is_some());
    let report = drain(addr, server);
    assert_ledger_exact(&report);
    assert_eq!(report.engine.feedback_applied, 1);
    // λ starts at the seed epoch 1; one published signal mints epoch 2.
    assert_eq!(report.lambda_version, 2);
}

#[test]
fn half_open_peer_is_a_clean_close_not_a_disconnect() {
    let (addr, server) = start_server(ServeConfig::default());
    let mut idle = connect(addr);
    let mut active = connect(addr);
    // The half-open peer: request in flight, then the client closes its
    // write side. The server must answer what was submitted, then treat
    // the EOF as a clean close.
    send_json(&mut idle, &request_json(1, 1));
    let response = recv_json(&mut idle);
    assert!(response.get_field("ok").is_some());
    idle.shutdown(Shutdown::Write).unwrap();
    // The other connection keeps serving after the neighbor went away.
    std::thread::sleep(Duration::from_millis(20));
    send_json(&mut active, &request_json(2, 2));
    assert!(recv_json(&mut active).get_field("ok").is_some());
    let report = drain(addr, server);
    assert_ledger_exact(&report);
    assert_eq!(report.disconnects, 0);
    assert_eq!(report.dropped_responses, 0);
}

#[test]
fn mid_frame_disconnect_is_counted_and_contained() {
    let (addr, server) = start_server(ServeConfig::default());
    {
        // A torn frame: the prefix declares 100 bytes, only 10 arrive
        // before the peer vanishes.
        let mut torn = connect(addr);
        torn.write_all(&100u32.to_be_bytes()).unwrap();
        torn.write_all(b"0123456789").unwrap();
        torn.flush().unwrap();
    }
    // Give the reader a beat to hit the truncated read before draining
    // (after the stop flag a truncated read is attributed to the drain).
    std::thread::sleep(Duration::from_millis(50));
    let mut healthy = connect(addr);
    send_json(&mut healthy, &request_json(7, 7));
    assert!(recv_json(&mut healthy).get_field("ok").is_some());
    let report = drain(addr, server);
    assert_ledger_exact(&report);
    assert_eq!(report.disconnects, 1);
    // The torn frame never became a request.
    assert_eq!(report.engine.submitted, 1);
}

#[test]
fn oversized_frames_get_a_typed_error_then_the_connection_closes() {
    let (addr, server) = start_server(ServeConfig::default());
    let mut stream = connect(addr);
    // Declare a payload over the server's 4096-byte cap; the server must
    // reject on the prefix alone, without waiting for (or buffering) it.
    stream.write_all(&(1u32 << 20).to_be_bytes()).unwrap();
    stream.flush().unwrap();
    let error = recv_json(&mut stream);
    assert_eq!(
        error.get_field("kind").and_then(|v| v.as_str()),
        Some("frame_too_large")
    );
    // The stream cannot be resynchronized, so the server closes it.
    assert!(read_frame(&mut stream, 1 << 20).is_err());
    let report = drain(addr, server);
    assert_ledger_exact(&report);
    assert_eq!(report.frame_errors, 1);
    assert_eq!(report.engine.submitted, 0);
}

#[test]
fn garbage_frames_get_a_typed_error_and_the_connection_survives() {
    let (addr, server) = start_server(ServeConfig::default());
    let mut stream = connect(addr);
    for garbage in [
        "not json at all",
        "[1, 2, 3]",
        "{\"offering\": \"warp_drive\"}",
    ] {
        send_json(&mut stream, garbage);
        let error = recv_json(&mut stream);
        assert_eq!(
            error.get_field("kind").and_then(|v| v.as_str()),
            Some("malformed"),
            "frame {garbage:?} should be malformed"
        );
    }
    // The frame boundary was intact each time: the same connection still
    // serves real requests.
    send_json(&mut stream, &request_json(3, 3));
    let response = recv_json(&mut stream);
    assert_eq!(field_u64(&response, "id"), Some(3));
    assert!(response.get_field("ok").is_some());
    let report = drain(addr, server);
    assert_ledger_exact(&report);
    assert_eq!(report.frame_errors, 3);
    assert_eq!(report.engine.submitted, 1);
}

#[test]
fn drain_ledger_stays_exact_under_admission_rejections() {
    // A one-deep queue behind one worker: a pipelined burst must produce
    // rejections, and the ledger still has to close exactly.
    let (addr, server) = start_server(ServeConfig {
        workers: 1,
        queue_capacity: 1,
        degraded_threshold: None,
        ..ServeConfig::default()
    });
    const BURST: u64 = 40;
    let mut stream = connect(addr);
    for id in 0..BURST {
        send_json(&mut stream, &request_json(id, id));
    }
    // Every frame is answered: an ok for accepted requests, a typed
    // rejection error for the ones the saturated queue refused.
    let (mut ok, mut rejected) = (0u64, 0u64);
    for _ in 0..BURST {
        let response = recv_json(&mut stream);
        if response.get_field("ok").is_some() {
            ok += 1;
        } else {
            assert_eq!(
                response.get_field("kind").and_then(|v| v.as_str()),
                Some("rejected")
            );
            rejected += 1;
        }
    }
    assert_eq!(ok + rejected, BURST);
    let report = drain(addr, server);
    assert_ledger_exact(&report);
    assert_eq!(report.engine.submitted, BURST);
    assert_eq!(report.engine.accepted, ok);
    assert_eq!(report.engine.rejected, rejected);
    assert_eq!(report.frames_out, BURST + 1);
    assert_eq!(report.dropped_responses, 0);
}
