//! Golden test of the deterministic metric fields: after a seeded train +
//! serve sequence, every count-valued metric is exactly reproducible, so the
//! counter map of the `--metrics-out` snapshot is byte-stable across runs.
//!
//! Metrics are process-wide statics, so everything lives in ONE test
//! function — parallel test threads in the same binary would race the
//! counters otherwise.

use lorentz::core::{LorentzConfig, LorentzPipeline, ModelKind, RecommendRequest, TrainedLorentz};
use lorentz::simdata::fleet::FleetConfig;
use lorentz::types::{CustomerId, ResourceGroupId, ResourcePath, ServerOffering, SubscriptionId};
use std::collections::BTreeMap;

fn quick_config() -> LorentzConfig {
    let mut config = LorentzConfig::paper_defaults();
    config.target_encoding.boosting.n_trees = 10;
    config
}

/// One seeded train + serve pass; returns the trained pipeline.
fn run_scenario() -> TrainedLorentz {
    let fleet = FleetConfig {
        n_servers: 120,
        seed: 77,
        ..FleetConfig::default()
    }
    .generate()
    .unwrap()
    .fleet;
    let trained = LorentzPipeline::new(quick_config())
        .unwrap()
        .train(&fleet)
        .unwrap();

    // Serve a fixed request mix: one in-vocabulary profile, one unseen
    // profile (store default fallback), one malformed profile (error).
    let good: Vec<Option<String>> = trained
        .profiles()
        .schema()
        .feature_ids()
        .map(|f| {
            let vocab = trained.profiles().vocab(f);
            (!vocab.is_empty()).then(|| vocab.value(0).to_owned())
        })
        .collect();
    let unseen: Vec<Option<String>> = good.iter().map(|_| None).collect();
    fn request<'a>(profile: &'a [Option<String>], i: u32) -> RecommendRequest<'a> {
        RecommendRequest {
            profile: profile.iter().map(|v| v.as_deref()).collect(),
            offering: ServerOffering::GeneralPurpose,
            path: ResourcePath::new(CustomerId(0), SubscriptionId(0), ResourceGroupId(i)),
        }
    }

    let _ = trained.recommend(&request(&good, 0), ModelKind::Hierarchical);
    let _ = trained.recommend_from_store(&request(&good, 1));
    let _ = trained.recommend_from_store(&request(&unseen, 2));
    let bad = vec![Some("wrong-arity")];
    let _ = trained.recommend(
        &RecommendRequest {
            profile: bad,
            offering: ServerOffering::Burstable,
            path: ResourcePath::new(CustomerId(0), SubscriptionId(0), ResourceGroupId(3)),
        },
        ModelKind::TargetEncoding,
    );
    let batch = vec![request(&good, 4), request(&unseen, 5)];
    let _ = trained.recommend_batch(&batch, ModelKind::Hierarchical);
    let _ = trained.recommend_batch_from_store(&batch);
    trained
}

fn counters_json(counters: &BTreeMap<String, u64>) -> String {
    serde_json::to_string(counters).unwrap()
}

#[test]
fn deterministic_counters_are_byte_stable_and_pinned() {
    lorentz::core::obs::reset();
    let trained = run_scenario();
    let first = lorentz::core::obs::snapshot();

    // Pin the structurally-determined counts. Training covers all three
    // offerings; the serve mix above is 4 live-model requests (one failing)
    // and 4 store-path requests.
    let c = |name: &str| {
        first
            .counter(name)
            .unwrap_or_else(|| panic!("counter '{name}' missing from snapshot"))
    };
    assert_eq!(c("train.stage1.records"), 120);
    assert_eq!(
        c("train.stage2.offerings"),
        ServerOffering::ALL.len() as u64
    );
    assert_eq!(c("train.publish.entries"), trained.store().len() as u64);
    assert_eq!(c("store.publishes"), 1);
    assert_eq!(c("serve.recommend.requests"), 4);
    assert_eq!(c("serve.recommend.errors"), 1);
    assert_eq!(c("serve.recommend_batch.batches"), 1);
    assert_eq!(c("serve.store.requests"), 4);
    assert_eq!(c("serve.store.errors"), 0);
    assert_eq!(c("serve.store_batch.batches"), 1);
    assert_eq!(
        c("store.lookup.hits") + c("store.lookup.defaults") + c("store.lookup.misses"),
        4,
        "every store-path request resolves to exactly one lookup outcome"
    );
    assert!(c("store.lookup.defaults") >= 2, "unseen profiles fall back");

    // Span histograms carry wall-clock time and are NOT golden; their
    // *counts* are. Each train stage span fires exactly once.
    for span in [
        "train.stage1.span_ns",
        "train.stage2.span_ns",
        "train.publish.span_ns",
        "train.personalizer.span_ns",
    ] {
        let h = first
            .histogram(span)
            .unwrap_or_else(|| panic!("histogram '{span}' missing from snapshot"));
        assert_eq!(h.count, 1, "{span} must record exactly one span");
    }

    // Byte-stability: rerunning the identical scenario reproduces the
    // counter map exactly — the golden half of the `--metrics-out` payload.
    lorentz::core::obs::reset();
    let _trained = run_scenario();
    let second = lorentz::core::obs::snapshot();
    assert_eq!(
        counters_json(&first.counters),
        counters_json(&second.counters),
        "deterministic counter fields must be byte-identical across runs"
    );

    // And the full snapshot serializes with sorted keys (BTreeMap-backed),
    // so the golden comparison above is order-independent by construction.
    let json = serde_json::to_string_pretty(&second).unwrap();
    let hits = json.find("store.lookup.hits").unwrap();
    let misses = json.find("store.lookup.misses").unwrap();
    assert!(hits < misses, "snapshot keys must serialize sorted");
}
