//! Property-based tests of [`Endpoint`] parsing: every endpoint the
//! grammar accepts survives a parse → Display → parse round trip, and the
//! malformed shapes operators actually type — out-of-range ports, IPv6
//! literals (whose colons would misparse the authority), empty paths —
//! are rejected for any generated instance, not just the handful of
//! fixtures in the unit tests.

use lorentz::types::Endpoint;
use proptest::prelude::*;
use std::path::PathBuf;

const HOST_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789.-";
const PATH_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789./-_";

fn host(ix: &[usize]) -> String {
    ix.iter()
        .map(|i| HOST_CHARS[i % HOST_CHARS.len()] as char)
        .collect()
}

fn path(ix: &[usize]) -> String {
    ix.iter()
        .map(|i| PATH_CHARS[i % PATH_CHARS.len()] as char)
        .collect()
}

proptest! {
    /// A well-formed `tcp://HOST:PORT` parses to the same authority it
    /// displays, and re-parsing the display lands on an equal endpoint.
    #[test]
    fn tcp_roundtrips(ix in collection::vec(0usize..1000, 1..16), port in any::<u16>()) {
        let h = host(&ix);
        let s = format!("tcp://{h}:{port}");
        let ep = Endpoint::parse(&s).expect("valid tcp endpoint");
        let authority = format!("{h}:{port}");
        prop_assert_eq!(ep.as_tcp(), Some(authority.as_str()));
        prop_assert_eq!(ep.to_string(), s.clone());
        prop_assert_eq!(Endpoint::parse(&ep.to_string()).unwrap(), ep);
    }

    /// A non-empty `file:PATH` parses to that path and the display form
    /// re-parses to an equal endpoint.
    #[test]
    fn file_roundtrips(ix in collection::vec(0usize..1000, 1..24)) {
        let p = path(&ix);
        let ep = Endpoint::parse(&format!("file:{p}")).expect("valid file endpoint");
        prop_assert_eq!(ep.as_file(), Some(&PathBuf::from(p)));
        prop_assert_eq!(Endpoint::parse(&ep.to_string()).unwrap(), ep);
    }

    /// Ports beyond u16 are rejected no matter the host.
    #[test]
    fn oversized_ports_are_rejected(
        ix in collection::vec(0usize..1000, 1..12),
        beyond in 0u32..1_000_000,
    ) {
        let port = u64::from(u16::MAX) + 1 + u64::from(beyond);
        let s = format!("tcp://{}:{port}", host(&ix));
        prop_assert!(Endpoint::parse(&s).is_err(), "{s} must not parse");
    }

    /// Any host containing a colon — an unbracketed or bracketed IPv6
    /// literal, or a stray separator — is rejected outright, because the
    /// authority split would otherwise silently cut inside the address.
    #[test]
    fn hosts_with_colons_are_rejected(
        ix in collection::vec(0usize..1000, 1..12),
        split in 0usize..12,
        port in any::<u16>(),
    ) {
        let h = host(&ix);
        let split = split.min(h.len());
        let spliced = format!("{}:{}", &h[..split], &h[split..]);
        for s in [
            format!("tcp://{spliced}:{port}"),
            format!("tcp://::1:{port}"),
            format!("tcp://[::1]:{port}"),
        ] {
            prop_assert!(Endpoint::parse(&s).is_err(), "{s} must not parse");
        }
    }

    /// The compat parser accepts exactly the bare paths (flagging them as
    /// deprecated) and never re-labels a scheme-carrying string.
    #[test]
    fn compat_flags_bare_paths(ix in collection::vec(0usize..1000, 1..24)) {
        let p = path(&ix);
        let (ep, deprecated) = Endpoint::parse_compat(&p).expect("bare path accepted");
        prop_assert!(deprecated);
        prop_assert_eq!(ep, Endpoint::File(PathBuf::from(p.clone())));
        let (ep, deprecated) = Endpoint::parse_compat(&format!("file:{p}")).unwrap();
        prop_assert!(!deprecated);
        prop_assert_eq!(ep, Endpoint::File(PathBuf::from(p)));
    }
}

#[test]
fn empty_and_schemeless_forms_are_rejected() {
    for s in [
        "file:",
        "file://",
        "",
        "   ",
        "tcp://",
        "tcp://h",
        "tcp://:7",
        "udp://h:7",
    ] {
        assert!(Endpoint::parse(s).is_err(), "{s:?} must not parse");
    }
}
