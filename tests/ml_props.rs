//! Property-based tests of the ML substrate: trees, ensembles, encodings,
//! and the ξ transform.

use lorentz::ml::{
    metrics, transform, Dataset, DecisionTree, GradientBoosting, GradientBoostingConfig,
    MissingPolicy, TargetEncoder, TargetStatistic, TreeConfig,
};
use lorentz::types::{ProfileSchema, ProfileTable};
use proptest::prelude::*;

/// Arbitrary small regression dataset: 1-3 features, 8-64 rows.
fn dataset() -> impl Strategy<Value = Dataset> {
    (1usize..=3, 8usize..=64).prop_flat_map(|(n_features, n_rows)| {
        let rows = proptest::collection::vec(
            proptest::collection::vec(-100.0f64..100.0, n_features),
            n_rows,
        );
        let labels = proptest::collection::vec(-50.0f64..50.0, n_rows);
        (rows, labels).prop_map(move |(rows, labels)| {
            let names = (0..n_features).map(|i| format!("f{i}")).collect();
            Dataset::from_rows(names, &rows, labels).unwrap()
        })
    })
}

proptest! {
    /// Tree predictions on training rows lie within the label range
    /// (leaves are label means).
    #[test]
    fn tree_predictions_bounded_by_labels(data in dataset()) {
        let tree = DecisionTree::fit(&data, &TreeConfig::default()).unwrap();
        let min = data.labels().iter().copied().fold(f64::INFINITY, f64::min);
        let max = data.labels().iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for p in tree.predict(&data) {
            prop_assert!(p >= min - 1e-9 && p <= max + 1e-9);
        }
    }

    /// Deeper trees never fit training data worse (squared loss is
    /// monotone in nesting).
    #[test]
    fn deeper_trees_fit_no_worse(data in dataset()) {
        let shallow = DecisionTree::fit(&data, &TreeConfig { max_depth: 2, ..TreeConfig::default() }).unwrap();
        let deep = DecisionTree::fit(&data, &TreeConfig { max_depth: 8, ..TreeConfig::default() }).unwrap();
        let r_shallow = metrics::rmse(&shallow.predict(&data), data.labels());
        let r_deep = metrics::rmse(&deep.predict(&data), data.labels());
        prop_assert!(r_deep <= r_shallow + 1e-9);
    }

    /// Boosting training error decreases (weakly) with more rounds.
    #[test]
    fn boosting_error_nonincreasing_in_rounds(data in dataset()) {
        let mk = |n_trees| GradientBoostingConfig {
            n_trees,
            learning_rate: 0.3,
            seed: 1,
            ..GradientBoostingConfig::default()
        };
        let few = GradientBoosting::fit(&data, &mk(3)).unwrap();
        let many = GradientBoosting::fit(&data, &mk(30)).unwrap();
        let r_few = metrics::rmse(&few.predict(&data), data.labels());
        let r_many = metrics::rmse(&many.predict(&data), data.labels());
        prop_assert!(r_many <= r_few + 1e-6);
    }

    /// ξ and ξ⁻¹ are inverse bijections on positive capacities.
    #[test]
    fn xi_round_trip(c in 0.01f64..1e6) {
        let z = transform::xi(c).unwrap();
        let back = transform::xi_inv(z).unwrap();
        prop_assert!((back - c).abs() / c < 1e-12);
    }

    /// Target encoding of any seen value lies within the label range, and
    /// the global statistic is used for unseen/missing values.
    #[test]
    fn target_encoding_bounded(labels in proptest::collection::vec(0.5f64..128.0, 4..40)) {
        let schema = ProfileSchema::new(vec!["k"]).unwrap();
        let mut table = ProfileTable::new(schema);
        for i in 0..labels.len() {
            let v = format!("v{}", i % 5);
            table.push_row(&[Some(v.as_str())]).unwrap();
        }
        let enc = TargetEncoder::fit(
            &table,
            &labels,
            TargetStatistic::Mean,
            MissingPolicy::GlobalMean,
            0.0,
        )
        .unwrap();
        let min = labels.iter().copied().fold(f64::INFINITY, f64::min);
        let max = labels.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for row in 0..table.rows() {
            let encoded = enc.encode_vector(&table.row(row));
            prop_assert!(encoded[0] >= min - 1e-9 && encoded[0] <= max + 1e-9);
        }
        let missing = enc.encode_value(lorentz::types::FeatureId(0), None);
        prop_assert!((missing - enc.global()).abs() < 1e-12);
    }

    /// R² of the label mean predictor is ~0; R² of perfect predictions is 1.
    #[test]
    fn r2_reference_properties(labels in proptest::collection::vec(-10.0f64..10.0, 3..30)) {
        let mean = labels.iter().sum::<f64>() / labels.len() as f64;
        let variance: f64 = labels.iter().map(|l| (l - mean) * (l - mean)).sum();
        prop_assume!(variance > 1e-6);
        let mean_preds = vec![mean; labels.len()];
        prop_assert!(metrics::r2(&mean_preds, &labels).abs() < 1e-9);
        prop_assert!((metrics::r2(&labels, &labels) - 1.0).abs() < 1e-12);
    }
}
