//! Golden determinism of the training pipeline: repeated runs — at any
//! Stage-2 thread count — publish byte-identical store snapshots, pinning
//! the "worker results are joined in job order" guarantee from the
//! typed-key serving engine PR.

use lorentz::core::{LorentzConfig, LorentzPipeline};
use lorentz::ml::TargetEncoder;
use lorentz::simdata::fleet::FleetConfig;

fn quick_config() -> LorentzConfig {
    let mut config = LorentzConfig::paper_defaults();
    config.target_encoding.boosting.n_trees = 15;
    config.hierarchical.min_bucket = 3;
    config
}

#[test]
fn training_is_byte_deterministic_across_runs_and_thread_counts() {
    let fleet = FleetConfig {
        n_servers: 150,
        seed: 20240807,
        ..FleetConfig::default()
    }
    .generate()
    .unwrap()
    .fleet;

    // Reference run: default threading (one worker per offering).
    let reference = LorentzPipeline::new(quick_config())
        .unwrap()
        .train(&fleet)
        .unwrap();
    let reference_store = serde_json::to_string(reference.store()).unwrap();
    let reference_deployment = reference.to_json().unwrap();
    assert!(
        reference_store.contains("\"entries\""),
        "sanity: snapshot has entries"
    );

    // Same call again: byte-identical store snapshot and deployment JSON.
    let rerun = LorentzPipeline::new(quick_config())
        .unwrap()
        .train(&fleet)
        .unwrap();
    assert_eq!(
        serde_json::to_string(rerun.store()).unwrap(),
        reference_store,
        "repeated train() must publish byte-identical store snapshots"
    );
    assert_eq!(rerun.to_json().unwrap(), reference_deployment);

    // Different Stage-2 thread counts: sequential (1), capped (2), and one
    // thread per offering (0 = uncapped) must all agree byte-for-byte.
    for max_threads in [1usize, 2, 0] {
        let trained = LorentzPipeline::new(quick_config())
            .unwrap()
            .train_with_stage2_threads(&fleet, max_threads)
            .unwrap();
        assert_eq!(
            serde_json::to_string(trained.store()).unwrap(),
            reference_store,
            "stage2 thread cap {max_threads} changed the store snapshot"
        );
        assert_eq!(
            trained.to_json().unwrap(),
            reference_deployment,
            "stage2 thread cap {max_threads} changed the deployment JSON"
        );
    }

    // Stage-1 thread counts: the columnar rightsizing sweep partitions the
    // fleet into contiguous chunks and joins workers in chunk order, so any
    // cap — sequential (1), capped (2 / 8), uncapped (0) — must reproduce
    // the reference bytes exactly.
    for stage1_threads in [1usize, 2, 8, 0] {
        let trained = LorentzPipeline::new(quick_config())
            .unwrap()
            .train_with_threads(&fleet, stage1_threads, 1)
            .unwrap();
        assert_eq!(
            serde_json::to_string(trained.store()).unwrap(),
            reference_store,
            "stage1 thread cap {stage1_threads} changed the store snapshot"
        );
        assert_eq!(
            trained.to_json().unwrap(),
            reference_deployment,
            "stage1 thread cap {stage1_threads} changed the deployment JSON"
        );
    }

    // Parallel target encoding on the real fleet profiles: fitting the
    // encoder at any thread cap must reproduce the sequential fit exactly,
    // so the cap chosen inside the pipeline can never leak into the model.
    let labels: Vec<f64> = (0..fleet.profiles().rows())
        .map(|i| 1.0 + (i % 7) as f64)
        .collect();
    let config = quick_config();
    let serial = TargetEncoder::fit_with_threads(
        fleet.profiles(),
        &labels,
        config.target_encoding.statistic,
        config.target_encoding.missing,
        config.target_encoding.smoothing,
        1,
    )
    .unwrap();
    for encoder_threads in [2usize, 8, 0] {
        let parallel = TargetEncoder::fit_with_threads(
            fleet.profiles(),
            &labels,
            config.target_encoding.statistic,
            config.target_encoding.missing,
            config.target_encoding.smoothing,
            encoder_threads,
        )
        .unwrap();
        assert_eq!(
            serde_json::to_string(&parallel).unwrap(),
            serde_json::to_string(&serial).unwrap(),
            "encoder thread cap {encoder_threads} changed the fitted encodings"
        );
    }
}
