//! Durable-store integrity: every `StoreCorruption` branch, recovery
//! fallback order, and write retries — all without the `fault-injection`
//! feature, by corrupting the persisted files directly.

use lorentz::core::retry::RetryPolicy;
use lorentz::core::store::PublishBatch;
use lorentz::core::{DurableStore, PredictionStore, StoreError};
use lorentz::fault::{RealIo, SnapshotIo};
use lorentz::types::{FeatureId, ServerOffering, StoreCorruption, StoreKey, ValueId};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lorentz-durable-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn sample_store(capacity: f64) -> PredictionStore {
    let mut store = PredictionStore::new();
    store
        .publish(PublishBatch {
            entries: vec![(
                StoreKey::new(ServerOffering::GeneralPurpose, FeatureId(0), ValueId(3)),
                capacity,
            )],
            defaults: vec![(ServerOffering::GeneralPurpose, 2.0)],
        })
        .unwrap();
    store
}

/// Saves two generations and returns the durable store; corruption is then
/// applied to gen 2 so load must fall back to gen 1.
fn two_generations(dir: &Path) -> DurableStore {
    let durable = DurableStore::open(dir);
    assert_eq!(durable.save(&sample_store(4.0)).unwrap(), 1);
    assert_eq!(durable.save(&sample_store(8.0)).unwrap(), 2);
    durable
}

fn gen_file(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("store.gen-{generation}.json"))
}

/// Asserts that load falls back from corrupt gen 2 to intact gen 1 and
/// reports the expected corruption kind.
fn assert_falls_back(durable: &DurableStore, check: impl Fn(&StoreCorruption) -> bool) {
    let recovered = durable.load().expect("gen 1 must still load");
    assert_eq!(recovered.generation, 1);
    assert_eq!(recovered.fallbacks, 1);
    assert_eq!(recovered.skipped.len(), 1);
    assert_eq!(recovered.skipped[0].0, 2);
    assert!(
        check(&recovered.skipped[0].1),
        "unexpected corruption kind: {:?}",
        recovered.skipped[0].1
    );
}

#[test]
fn truncated_payload_falls_back() {
    let dir = tmp_dir("truncated");
    let durable = two_generations(&dir);
    let path = gen_file(&dir, 2);
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
    assert_falls_back(&durable, |c| matches!(c, StoreCorruption::Truncated { .. }));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncation_into_the_header_falls_back() {
    let dir = tmp_dir("header-truncated");
    let durable = two_generations(&dir);
    let path = gen_file(&dir, 2);
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..11]).unwrap();
    assert_falls_back(&durable, |c| {
        matches!(c, StoreCorruption::HeaderTruncated { got: 11, need: 20 })
    });
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crc_mismatch_falls_back() {
    let dir = tmp_dir("crc");
    let durable = two_generations(&dir);
    let path = gen_file(&dir, 2);
    let mut bytes = std::fs::read(&path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x40; // single bit of rot in the payload
    std::fs::write(&path, &bytes).unwrap();
    assert_falls_back(&durable, |c| {
        matches!(c, StoreCorruption::ChecksumMismatch { .. })
    });
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_magic_falls_back() {
    let dir = tmp_dir("magic");
    let durable = two_generations(&dir);
    let path = gen_file(&dir, 2);
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[..4].copy_from_slice(b"NOPE");
    std::fs::write(&path, &bytes).unwrap();
    assert_falls_back(
        &durable,
        |c| matches!(c, StoreCorruption::BadMagic { found } if found == b"NOPE"),
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_format_version_falls_back() {
    let dir = tmp_dir("version");
    let durable = two_generations(&dir);
    let path = gen_file(&dir, 2);
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[4] = 0xFF;
    bytes[5] = 0xFF;
    std::fs::write(&path, &bytes).unwrap();
    assert_falls_back(&durable, |c| {
        matches!(c, StoreCorruption::UnknownVersion(0xFFFF))
    });
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn manifest_pointing_at_missing_generation_falls_back() {
    let dir = tmp_dir("missing-gen");
    let durable = two_generations(&dir);
    std::fs::remove_file(gen_file(&dir, 2)).unwrap();
    assert_falls_back(&durable, |c| {
        matches!(c, StoreCorruption::MissingGeneration { generation: 2, .. })
    });
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn valid_payload_bytes_that_are_not_a_store_fall_back() {
    let dir = tmp_dir("bad-payload");
    let durable = two_generations(&dir);
    // A perfectly framed file whose payload is not a store snapshot: the
    // frame passes, deserialization must still be treated as corruption.
    let framed = lorentz::core::store::durability::frame_snapshot(b"{\"not\": \"a store\"}");
    std::fs::write(gen_file(&dir, 2), framed).unwrap();
    assert_falls_back(&durable, |c| matches!(c, StoreCorruption::BadPayload(_)));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_manifest_recovers_via_directory_scan() {
    let dir = tmp_dir("bad-manifest");
    let durable = two_generations(&dir);
    std::fs::write(dir.join("store.manifest.json"), "{definitely not json").unwrap();
    let recovered = durable.load().expect("dir scan must recover");
    assert_eq!(recovered.generation, 2, "scan still finds the newest gen");
    assert_eq!(recovered.fallbacks, 0);
    assert!(
        matches!(
            recovered.manifest_error,
            Some(StoreCorruption::BadManifest(_))
        ),
        "manifest corruption must be reported: {:?}",
        recovered.manifest_error
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn every_generation_corrupt_is_unrecoverable() {
    let dir = tmp_dir("unrecoverable");
    let durable = two_generations(&dir);
    for generation in [1, 2] {
        std::fs::write(gen_file(&dir, generation), b"garbage").unwrap();
    }
    let err = durable.load().unwrap_err();
    match err {
        StoreError::Unrecoverable { attempts, .. } => assert_eq!(attempts, 2),
        other => panic!("expected Unrecoverable, got: {other}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn round_trip_preserves_store_contents() {
    let dir = tmp_dir("round-trip");
    let durable = two_generations(&dir);
    let recovered = durable.load().unwrap();
    assert_eq!(recovered.generation, 2);
    assert_eq!(recovered.fallbacks, 0);
    assert_eq!(recovered.store, sample_store(8.0));
    let _ = std::fs::remove_dir_all(&dir);
}

/// A [`SnapshotIo`] whose first N writes fail with `Interrupted` — the
/// retry layer in `DurableStore::save` must absorb them.
struct FlakyIo {
    inner: RealIo,
    failures_left: AtomicU32,
}

impl SnapshotIo for FlakyIo {
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        if self
            .failures_left
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok()
        {
            return Err(std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                "flaky disk",
            ));
        }
        self.inner.write_atomic(path, bytes)
    }

    fn read(&self, path: &Path) -> std::io::Result<Vec<u8>> {
        self.inner.read(path)
    }

    fn remove(&self, path: &Path) -> std::io::Result<()> {
        self.inner.remove(path)
    }

    fn list(&self, dir: &Path) -> std::io::Result<Vec<PathBuf>> {
        self.inner.list(dir)
    }
}

#[test]
fn transient_write_errors_are_retried() {
    let dir = tmp_dir("flaky");
    let fast_retry = RetryPolicy {
        base_delay: std::time::Duration::from_micros(50),
        max_delay: std::time::Duration::from_micros(200),
        ..RetryPolicy::default()
    };
    let durable = DurableStore::with_io(
        &dir,
        Box::new(FlakyIo {
            inner: RealIo,
            failures_left: AtomicU32::new(2),
        }),
    )
    .retry_policy(fast_retry);
    assert_eq!(durable.save(&sample_store(4.0)).unwrap(), 1);
    let recovered = durable.load().unwrap();
    assert_eq!(recovered.generation, 1);
    assert_eq!(recovered.fallbacks, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn persistent_write_errors_surface_as_io_errors() {
    let dir = tmp_dir("dead-disk");
    let durable = DurableStore::with_io(
        &dir,
        Box::new(FlakyIo {
            inner: RealIo,
            failures_left: AtomicU32::new(u32::MAX),
        }),
    )
    .retry_policy(RetryPolicy {
        max_attempts: 3,
        base_delay: std::time::Duration::from_micros(10),
        max_delay: std::time::Duration::from_micros(20),
        ..RetryPolicy::default()
    });
    let err = durable.save(&sample_store(4.0)).unwrap_err();
    assert!(matches!(err, StoreError::Io { .. }), "got: {err}");
    let _ = std::fs::remove_dir_all(&dir);
}
