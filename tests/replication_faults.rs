//! Fault injection on the replication stream, driven by the
//! `serve.replication.send` fail point: a frame torn mid-send kills that
//! follower's connection, but the follower never applies the torn bytes —
//! it reconnects, resumes from its last applied epoch, and converges
//! bit-for-bit anyway.
//!
//! Run with `cargo test --features fault-injection --test replication_faults`.

#![cfg(feature = "fault-injection")]

use lorentz::core::{LorentzConfig, LorentzPipeline, SatisfactionSignal, TrainedLorentz};
use lorentz::fault::{registry, FailAction, Trigger};
use lorentz::serve::{
    serve_replication, FollowerConfig, FollowerEngine, ReplicationConfig, ServeConfig,
    ServingEngine,
};
use lorentz::simdata::fleet::FleetConfig;
use lorentz::types::{CustomerId, ResourceGroupId, ResourcePath, ServerOffering, SubscriptionId};
use std::net::TcpListener;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

fn deployment() -> Arc<TrainedLorentz> {
    static DEPLOYMENT: OnceLock<Arc<TrainedLorentz>> = OnceLock::new();
    DEPLOYMENT
        .get_or_init(|| {
            let fleet = FleetConfig {
                n_servers: 80,
                seed: 20240807,
                ..FleetConfig::default()
            }
            .generate()
            .unwrap()
            .fleet;
            Arc::new(
                LorentzPipeline::new(LorentzConfig::paper_defaults())
                    .unwrap()
                    .train(&fleet)
                    .unwrap(),
            )
        })
        .clone()
}

fn hot_path() -> ResourcePath {
    ResourcePath::new(CustomerId(7), SubscriptionId(8), ResourceGroupId(9))
}

fn signal(gamma: f64) -> SatisfactionSignal {
    SatisfactionSignal::new(hot_path(), ServerOffering::GeneralPurpose, gamma).unwrap()
}

#[test]
fn torn_replication_send_is_survived_by_reconnect_and_resume() {
    let dir = std::env::temp_dir().join(format!("lorentz-repl-fault-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let wal = dir.join("leader.wal");
    let local = dir.join("replica.wal");

    let (leader, _responses) =
        ServingEngine::start_with_wal(deployment(), ServeConfig::default(), &wal).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let repl = serve_replication(&leader, listener, ReplicationConfig::default()).unwrap();
    let addr = repl.local_addr().to_string();

    let follower = FollowerEngine::start_tcp(
        deployment(),
        &addr,
        FollowerConfig {
            local_wal: Some(local.clone()),
            ..FollowerConfig::default()
        },
    )
    .unwrap();

    // Feed one signal through cleanly, then tear the next replicated frame
    // at 40% and kill the connection — the leader falling over mid-send,
    // as the follower sees it.
    leader.submit_feedback(signal(1.0)).unwrap();
    leader.flush_feedback();
    registry().configure(
        "serve.replication.send",
        Trigger::Once,
        FailAction::Partial(0.4),
    );
    for gamma in [1.0, -0.5] {
        leader.submit_feedback(signal(gamma)).unwrap();
    }
    leader.flush_feedback();
    let want = leader.lambda_version();
    let lambda = leader
        .lambda_snapshot()
        .lambda(&hot_path(), ServerOffering::GeneralPurpose);

    // The torn frame never reaches the follower's λ store or its local
    // WAL: the CRC framing rejects the partial bytes, the source drops the
    // connection, resubscribes with its last applied epoch, and the leader
    // replays exactly the missing tail.
    let deadline = Instant::now() + Duration::from_secs(15);
    while follower.stats().last_epoch < want {
        assert!(
            Instant::now() < deadline,
            "follower never recovered from the torn send: {:?}",
            follower.stats()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(registry().hits("serve.replication.send") >= 1);
    let replicated = follower
        .lambda_snapshot()
        .lambda(&hot_path(), ServerOffering::GeneralPurpose);
    assert_eq!(replicated.to_bits(), lambda.to_bits());
    follower.stop();
    drop(repl);
    drop(leader);

    // After the reconnect-and-resume dance the replica's local log is
    // still byte-identical to the leader's — no torn frame, no duplicate.
    assert_eq!(std::fs::read(&wal).unwrap(), std::fs::read(&local).unwrap());
}
