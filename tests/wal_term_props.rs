//! Property-based tests of term-record WAL framing: any interleaving of
//! term markers, delta records, and legacy bare signals survives a write →
//! reopen round trip (recovery reports the true maxima), a log with no
//! term markers recovers as term 0 (the legacy fallback), and a torn
//! final frame never corrupts what precedes it.

use lorentz::core::personalizer::WalRecord;
use lorentz::core::{SatisfactionSignal, SignalWal};
use lorentz::types::{
    CustomerId, LambdaDelta, PathKey, ResourceGroupId, ResourcePath, ServerOffering, SubscriptionId,
};
use proptest::prelude::*;

fn scratch(name: &str, case: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "lorentz-wal-term-props-{name}-{}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("case-{case}.wal"))
}

fn signal(gamma: f64) -> SatisfactionSignal {
    let path = ResourcePath::new(CustomerId(1), SubscriptionId(2), ResourceGroupId(3));
    SatisfactionSignal::new(path, ServerOffering::GeneralPurpose, gamma).unwrap()
}

/// One generated append: 0 = term marker, 1 = delta record, 2 = legacy
/// bare signal. Terms and epochs take strictly increasing values from
/// their own counters so the expected maxima are just the last minted.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Append {
    Term,
    Record,
    Legacy,
}

fn write_script(path: &std::path::Path, script: &[Append]) -> (u64, u64) {
    let _ = std::fs::remove_file(path);
    let (mut wal, recovery) = SignalWal::open(path).unwrap();
    assert_eq!(recovery.last_term, 0);
    assert_eq!(recovery.last_epoch, 0);
    let (mut term, mut epoch) = (0u64, 0u64);
    for step in script {
        match step {
            Append::Term => {
                term += 1;
                wal.append_term(term).unwrap();
            }
            Append::Record => {
                epoch += 1;
                let record = WalRecord {
                    signal: signal(1.0),
                    delta: LambdaDelta::new(
                        epoch,
                        vec![(
                            PathKey::new(ResourcePath::new(
                                CustomerId(1),
                                SubscriptionId(2),
                                ResourceGroupId(3),
                            )),
                            [0.0, 0.1, 0.0],
                        )],
                    ),
                };
                wal.append_record(&record).unwrap();
            }
            Append::Legacy => {
                wal.append(&signal(-0.5)).unwrap();
            }
        }
    }
    (term, epoch)
}

proptest! {
    /// Reopening any interleaving recovers the exact maxima: the highest
    /// minted term (0 when no marker was ever written — the legacy
    /// fallback) and the highest delta epoch, with no torn tail.
    #[test]
    fn recovery_reports_the_maxima(
        raw in collection::vec(0u8..3, 0..24),
        case in any::<u64>(),
    ) {
        let script: Vec<Append> = raw
            .iter()
            .map(|k| match k {
                0 => Append::Term,
                1 => Append::Record,
                _ => Append::Legacy,
            })
            .collect();
        let path = scratch("maxima", case);
        let (want_term, want_epoch) = write_script(&path, &script);

        let (_wal, recovery) = SignalWal::open(&path).unwrap();
        prop_assert_eq!(recovery.last_term, want_term);
        prop_assert_eq!(recovery.last_epoch, want_epoch);
        prop_assert_eq!(recovery.torn_tail_bytes, 0);
        let legacy = script.iter().filter(|s| **s == Append::Legacy).count();
        let records = script.iter().filter(|s| **s == Append::Record).count();
        prop_assert_eq!(recovery.signals.len(), legacy + records);

        // The read-only verifier agrees frame by frame: term markers
        // surface their term, records their epoch.
        let report = SignalWal::verify(&path).unwrap();
        prop_assert!(report.corrupt.is_none());
        prop_assert_eq!(report.records.len(), script.len());
        let verified_terms: Vec<u64> =
            report.records.iter().filter_map(|r| r.term).collect();
        prop_assert_eq!(verified_terms.len() as u64, want_term);
        prop_assert_eq!(verified_terms.iter().max().copied().unwrap_or(0), want_term);
        let _ = std::fs::remove_file(&path);
    }

    /// Cutting the log anywhere strictly inside its final frame loses
    /// only that frame: recovery equals the shorter script's recovery and
    /// the torn bytes are reported, never silently kept.
    #[test]
    fn torn_final_frame_falls_back_to_the_intact_prefix(
        raw in collection::vec(0u8..3, 1..12),
        cut_seed in any::<u64>(),
        case in any::<u64>(),
    ) {
        let script: Vec<Append> = raw
            .iter()
            .map(|k| match k {
                0 => Append::Term,
                1 => Append::Record,
                _ => Append::Legacy,
            })
            .collect();
        let full = scratch("torn-full", case);
        write_script(&full, &script);
        let prefix = scratch("torn-prefix", case);
        write_script(&prefix, &script[..script.len() - 1]);

        let full_len = std::fs::metadata(&full).unwrap().len();
        let prefix_len = std::fs::metadata(&prefix).unwrap().len();
        assert!(full_len > prefix_len, "every append must add bytes");
        // A cut strictly inside the final frame (keep at least one byte
        // of it so there is genuinely a torn tail to discard).
        let cut = prefix_len + 1 + cut_seed % (full_len - prefix_len - 1).max(1);

        let torn = scratch("torn-cut", case);
        let mut bytes = std::fs::read(&full).unwrap();
        bytes.truncate(cut as usize);
        std::fs::write(&torn, &bytes).unwrap();

        let (_wal, want) = SignalWal::open(&prefix).unwrap();
        let (_wal, got) = SignalWal::open(&torn).unwrap();
        prop_assert_eq!(got.last_term, want.last_term);
        prop_assert_eq!(got.last_epoch, want.last_epoch);
        prop_assert_eq!(got.signals, want.signals);
        prop_assert!(got.torn_tail_bytes > 0, "the cut frame must be reported");
        // Reopening truncated the torn tail: the file now equals the
        // intact prefix byte for byte.
        prop_assert_eq!(std::fs::read(&torn).unwrap(), std::fs::read(&prefix).unwrap());
        for p in [&full, &prefix, &torn] {
            let _ = std::fs::remove_file(p);
        }
    }
}
