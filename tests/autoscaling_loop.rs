//! The §3.3 extension end-to-end: a resource is first provisioned from
//! profile data alone (no telemetry exists), then — once telemetry
//! accumulates — re-provisioned by the trace-augmented model, which should
//! land closer to the rightsized capacity than the profile-only guess.

use lorentz::core::provisioner::{TraceAugmentedConfig, TraceAugmentedProvisioner};
use lorentz::core::{LorentzConfig, LorentzPipeline, ModelKind, Rightsizer};
use lorentz::ml::GradientBoostingConfig;
use lorentz::simdata::fleet::FleetConfig;
use lorentz::telemetry::generators::SamplingConfig;
use lorentz::types::{ServerOffering, SkuCatalog};

#[test]
fn trace_augmentation_improves_on_profile_only_provisioning() {
    // A fleet where per-server demand varies widely *within* profile
    // buckets (high server sigma): profile-only models can only predict
    // the bucket center, telemetry identifies the individual server.
    let synth = FleetConfig {
        n_servers: 500,
        seed: 77,
        base_demand: 1.5,
        server_sigma: 1.2, // large idiosyncratic spread
        sampling: SamplingConfig {
            duration_secs: 6.0 * 3600.0,
            mean_interval_secs: 60.0,
            jitter_frac: 0.2,
        },
        ..FleetConfig::default()
    }
    .generate()
    .unwrap();

    let mut config = LorentzConfig::paper_defaults();
    config.hierarchical.min_bucket = 5;
    config.target_encoding.boosting.n_trees = 40;
    let trained = LorentzPipeline::new(config)
        .unwrap()
        .train(&synth.fleet)
        .unwrap();

    // Fit the trace-augmented model on the General Purpose stratum.
    let rows = synth
        .fleet
        .rows_for_offering(ServerOffering::GeneralPurpose);
    assert!(rows.len() > 100);
    let (train_rows, test_rows) = rows.split_at(rows.len() * 8 / 10);
    let catalog = SkuCatalog::azure_postgres(ServerOffering::GeneralPurpose);

    let train_table = synth.fleet.profiles().subset(train_rows);
    let train_traces: Vec<_> = train_rows
        .iter()
        .map(|&r| synth.fleet.traces()[r].clone())
        .collect();
    let train_labels: Vec<f64> = train_rows.iter().map(|&r| trained.labels()[r]).collect();
    let augmented = TraceAugmentedProvisioner::fit(
        &train_table,
        &train_traces,
        &train_labels,
        catalog.clone(),
        TraceAugmentedConfig {
            boosting: GradientBoostingConfig {
                n_trees: 40,
                learning_rate: 0.3,
                ..GradientBoostingConfig::default()
            },
            ..TraceAugmentedConfig::default()
        },
    )
    .unwrap();

    // Compare squared log2 errors against the rightsized labels on the
    // held-out rows: day-2 (trace-augmented) must beat day-0
    // (profile-only).
    let profile_model = trained
        .provisioner(ServerOffering::GeneralPurpose, ModelKind::TargetEncoding)
        .unwrap();
    let mut profile_sq = 0.0;
    let mut augmented_sq = 0.0;
    for &r in test_rows {
        let truth = trained.labels()[r].log2();
        let x = synth.fleet.profiles().row(r);
        let p0 = profile_model.predict_raw(&x).unwrap().log2();
        let p1 = augmented
            .predict_raw_with_trace(&x, &synth.fleet.traces()[r])
            .unwrap()
            .log2();
        profile_sq += (p0 - truth) * (p0 - truth);
        augmented_sq += (p1 - truth) * (p1 - truth);
    }
    let n = test_rows.len() as f64;
    let profile_rmse = (profile_sq / n).sqrt();
    let augmented_rmse = (augmented_sq / n).sqrt();
    assert!(
        augmented_rmse < profile_rmse * 0.8,
        "telemetry should cut log2 RMSE by >20%: profile {profile_rmse:.3} vs augmented {augmented_rmse:.3}"
    );
}

#[test]
fn rightsizer_and_trace_model_agree_on_steady_workloads() {
    // For a steady workload the trace-augmented prediction and the direct
    // rightsizer should pick capacities within one ladder step.
    let synth = FleetConfig {
        n_servers: 300,
        seed: 78,
        base_demand: 1.5,
        sampling: SamplingConfig {
            duration_secs: 4.0 * 3600.0,
            mean_interval_secs: 60.0,
            jitter_frac: 0.2,
        },
        ..FleetConfig::default()
    }
    .generate()
    .unwrap();
    let mut config = LorentzConfig::paper_defaults();
    config.hierarchical.min_bucket = 5;
    config.target_encoding.boosting.n_trees = 30;
    let trained = LorentzPipeline::new(config.clone())
        .unwrap()
        .train(&synth.fleet)
        .unwrap();
    let rows = synth
        .fleet
        .rows_for_offering(ServerOffering::GeneralPurpose);
    let catalog = SkuCatalog::azure_postgres(ServerOffering::GeneralPurpose);
    let table = synth.fleet.profiles().subset(&rows);
    let traces: Vec<_> = rows
        .iter()
        .map(|&r| synth.fleet.traces()[r].clone())
        .collect();
    let labels: Vec<f64> = rows.iter().map(|&r| trained.labels()[r]).collect();
    let augmented = TraceAugmentedProvisioner::fit(
        &table,
        &traces,
        &labels,
        catalog.clone(),
        TraceAugmentedConfig {
            boosting: GradientBoostingConfig {
                n_trees: 30,
                learning_rate: 0.3,
                ..GradientBoostingConfig::default()
            },
            ..TraceAugmentedConfig::default()
        },
    )
    .unwrap();
    let rightsizer = Rightsizer::new(&config.rightsizer).unwrap();

    let mut within_one_step = 0usize;
    for (i, &r) in rows.iter().enumerate() {
        let (sku, _) = augmented
            .recommend_with_trace(&table.row(i), &traces[i])
            .unwrap();
        let outcome = rightsizer
            .rightsize(&traces[i], &synth.fleet.user_capacities()[r], &catalog)
            .unwrap();
        let steps = (sku.capacity.primary().log2() - outcome.capacity.primary().log2()).abs();
        if steps <= 1.0 + 1e-9 {
            within_one_step += 1;
        }
    }
    let share = within_one_step as f64 / rows.len() as f64;
    assert!(
        share > 0.9,
        "trace-augmented recommendations should track the rightsizer, got {share:.2}"
    );
}
