//! End-to-end WAL-streamed replication: a leader engine publishes λ deltas
//! into its feedback WAL, a follower tails the same file and converges —
//! including across a simulated kill-mid-append (torn final record) and
//! the leader's subsequent restart, which truncates the tear.

use lorentz::core::{LorentzConfig, LorentzPipeline, SatisfactionSignal, TrainedLorentz};
use lorentz::serve::{FollowerConfig, FollowerEngine, ServeConfig, ServingEngine};
use lorentz::simdata::fleet::FleetConfig;
use lorentz::types::{CustomerId, ResourceGroupId, ResourcePath, ServerOffering, SubscriptionId};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// One trained deployment shared by every test in this file (training
/// dominates test runtime; the engines never mutate it).
fn deployment() -> Arc<TrainedLorentz> {
    static DEPLOYMENT: OnceLock<Arc<TrainedLorentz>> = OnceLock::new();
    DEPLOYMENT
        .get_or_init(|| {
            let fleet = FleetConfig {
                n_servers: 80,
                seed: 20240807,
                ..FleetConfig::default()
            }
            .generate()
            .unwrap()
            .fleet;
            let trained = LorentzPipeline::new(LorentzConfig::paper_defaults())
                .unwrap()
                .train(&fleet)
                .unwrap();
            Arc::new(trained)
        })
        .clone()
}

fn wal_path(name: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("lorentz-replication-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("signals.wal")
}

fn hot_path() -> ResourcePath {
    ResourcePath::new(CustomerId(7), SubscriptionId(8), ResourceGroupId(9))
}

fn signal(gamma: f64) -> SatisfactionSignal {
    SatisfactionSignal::new(hot_path(), ServerOffering::GeneralPurpose, gamma).unwrap()
}

/// Waits until the follower has applied `want` deltas (10 s cap — the poll
/// interval is 20 ms, so a healthy follower converges in a few polls).
fn wait_for_applied(follower: &FollowerEngine, want: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while follower.stats().applied < want {
        assert!(
            Instant::now() < deadline,
            "follower stuck at {:?}, want {want} applied",
            follower.stats()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Asserts the follower's λ for the hot path is bit-identical to the
/// leader's published value.
fn assert_lambda_converged(follower: &FollowerEngine, leader_lambda: f64) {
    let replicated = follower
        .lambda_snapshot()
        .lambda(&hot_path(), ServerOffering::GeneralPurpose);
    assert_eq!(
        replicated.to_bits(),
        leader_lambda.to_bits(),
        "replicated λ {replicated} diverged from leader λ {leader_lambda}"
    );
}

#[test]
fn follower_converges_on_a_live_leader_wal() {
    let deployment = deployment();
    let wal = wal_path("live");
    let (leader, _responses) =
        ServingEngine::start_with_wal(Arc::clone(&deployment), ServeConfig::default(), &wal)
            .unwrap();

    // Start the follower against the (still empty) WAL, then stream
    // feedback through the leader: the follower picks the deltas up live.
    let follower =
        FollowerEngine::start(Arc::clone(&deployment), &wal, FollowerConfig::default()).unwrap();
    for gamma in [1.0, 1.0, -0.5] {
        leader.submit_feedback(signal(gamma)).unwrap();
    }
    leader.flush_feedback();
    let leader_lambda = leader
        .lambda_snapshot()
        .lambda(&hot_path(), ServerOffering::GeneralPurpose);
    let leader_version = leader.lambda_version();
    drop(leader);

    wait_for_applied(&follower, 3);
    assert_lambda_converged(&follower, leader_lambda);
    assert_eq!(follower.lambda_version(), leader_version);
    let stats = follower.stop();
    assert_eq!(stats.applied, 3);
    assert_eq!(stats.skipped, 0);
    assert_eq!(stats.legacy, 0);
}

#[test]
fn torn_record_stalls_the_follower_until_the_leader_truncates() {
    let deployment = deployment();
    let wal = wal_path("kill-mid-append");

    // Round 1: a leader accepts two signals, then the process "dies" —
    // and the kill lands mid-append, leaving a torn third record.
    {
        let (leader, _responses) =
            ServingEngine::start_with_wal(Arc::clone(&deployment), ServeConfig::default(), &wal)
                .unwrap();
        leader.submit_feedback(signal(1.0)).unwrap();
        leader.submit_feedback(signal(1.0)).unwrap();
        leader.flush_feedback();
        drop(leader);
    }
    let intact_len = std::fs::metadata(&wal).unwrap().len();
    let mut bytes = std::fs::read(&wal).unwrap();
    bytes.extend_from_slice(b"LSIG\xff\x00"); // half a header: torn append
    std::fs::write(&wal, &bytes).unwrap();

    // The follower catches up to the last good boundary and stalls there
    // without consuming (or repairing) the tear.
    let follower =
        FollowerEngine::start(Arc::clone(&deployment), &wal, FollowerConfig::default()).unwrap();
    wait_for_applied(&follower, 2);
    assert_eq!(follower.stats().applied, 2);

    // Round 2: the leader restarts on the same WAL — open truncates the
    // torn tail back to the intact boundary and replays the two durable
    // signals — then accepts one more.
    let (leader, _responses) =
        ServingEngine::start_with_wal(Arc::clone(&deployment), ServeConfig::default(), &wal)
            .unwrap();
    assert_eq!(std::fs::metadata(&wal).unwrap().len(), intact_len);
    leader.submit_feedback(signal(-1.0)).unwrap();
    leader.flush_feedback();
    let leader_lambda = leader
        .lambda_snapshot()
        .lambda(&hot_path(), ServerOffering::GeneralPurpose);
    drop(leader);

    // The follower resumes from the same boundary and reconverges on the
    // full three-signal history, bit for bit.
    wait_for_applied(&follower, 3);
    assert_lambda_converged(&follower, leader_lambda);
    let stats = follower.stop();
    assert_eq!(stats.applied, 3);
    assert_eq!(stats.legacy, 0);
}
