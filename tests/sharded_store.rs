//! Property-based concurrency tests for the sharded serving state: shard
//! routing totality/stability, sharded ≡ unsharded lookup equivalence for
//! arbitrary key sets, torn-read freedom under racing per-shard publishes,
//! and sharded ≡ flat λ equivalence under random signal streams.

use lorentz::core::store::PublishBatch;
use lorentz::core::{
    LambdaStore, Personalizer, PersonalizerConfig, PredictionStore, SatisfactionSignal,
    ShardedLambdaStore, ShardedPredictionStore,
};
use lorentz::types::{
    CustomerId, FeatureId, ResourceGroupId, ResourcePath, ServerOffering, ShardRouter, StoreKey,
    SubscriptionId, ValueId,
};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn offering() -> impl Strategy<Value = ServerOffering> {
    (0u64..ServerOffering::ALL.len() as u64)
        .prop_map(|c| ServerOffering::from_code(c as u8).unwrap())
}

fn store_key() -> impl Strategy<Value = StoreKey> {
    (offering(), 0u64..=u16::MAX as u64, any::<u32>())
        .prop_map(|(o, f, v)| StoreKey::new(o, FeatureId(f as usize), ValueId(v)))
}

/// Power-of-two shard counts across the supported range (including the
/// 1-shard degenerate case and a deliberately large count).
fn shard_count() -> impl Strategy<Value = usize> {
    (0u32..=10).prop_map(|log2| 1usize << log2)
}

proptest! {
    /// Routing is total and stable: every packed key maps to exactly one
    /// in-range shard, the mapping is a pure function of (key, count), and
    /// the u128 path routing obeys the same contract.
    #[test]
    fn shard_routing_is_total_and_stable(
        shards in shard_count(),
        keys in collection::vec(any::<u64>(), 1..64),
        path_key_halves in collection::vec((any::<u64>(), any::<u64>()), 1..64),
    ) {
        let router = ShardRouter::new(shards).unwrap();
        prop_assert_eq!(router.shards(), shards);
        for &key in &keys {
            let shard = router.route_u64(key);
            prop_assert!(shard < shards, "key {key} routed out of range: {shard}");
            // Stable: the same key re-routes identically, on this router
            // and on a freshly built router of the same count.
            prop_assert_eq!(router.route_u64(key), shard);
            prop_assert_eq!(ShardRouter::new(shards).unwrap().route_u64(key), shard);
        }
        for &(hi, lo) in &path_key_halves {
            let key = (u128::from(hi) << 64) | u128::from(lo);
            let shard = router.route_u128(key);
            prop_assert!(shard < shards, "path key {key} routed out of range: {shard}");
            prop_assert_eq!(router.route_u128(key), shard);
        }
    }

    /// Sharded lookup ≡ unsharded lookup for arbitrary key sets: same
    /// capacity, same explanation, same error, across every shard count —
    /// probing present keys, absent keys, and the default fallback.
    #[test]
    fn sharded_lookup_matches_unsharded_for_arbitrary_key_sets(
        shards in shard_count(),
        entries in collection::vec((store_key(), 0.1f64..100.0), 1..48),
        default_capacity in (any::<bool>(), 0.1f64..100.0).prop_map(|(some, c)| some.then_some(c)),
        probe_offering in offering(),
        absent in store_key(),
    ) {
        // Dedup: PublishBatch accepts duplicate keys (last wins) but the
        // comparison is cleaner over a deterministic set.
        let mut unique: HashMap<u64, (StoreKey, f64)> = HashMap::new();
        for (key, capacity) in entries {
            unique.insert(key.pack(), (key, capacity));
        }
        let entries: Vec<(StoreKey, f64)> = unique.into_values().collect();
        let batch = PublishBatch {
            entries: entries.clone(),
            defaults: default_capacity
                .map(|c| vec![(probe_offering, c)])
                .unwrap_or_default(),
        };
        let mut flat = PredictionStore::new();
        flat.publish(batch.clone()).unwrap();
        let sharded = ShardedPredictionStore::new(shards).unwrap();
        sharded.publish(batch).unwrap();
        prop_assert_eq!(sharded.len(), flat.len());
        // Probe every published key at its own level, an absent key, and
        // a multi-level stack that falls through to the default.
        // `LorentzError` is not `PartialEq`; the debug rendering pins the
        // full result — capacity, explanation, and error message alike.
        let snapshot = sharded.snapshot();
        for (key, _) in &entries {
            let (offering, feature, value) = (key.offering, key.feature, key.value);
            let levels = [(feature, value)];
            prop_assert_eq!(
                format!("{:?}", snapshot.lookup(offering, &levels)),
                format!("{:?}", flat.lookup(offering, &levels))
            );
        }
        let absent_levels = [(absent.feature, absent.value)];
        prop_assert_eq!(
            format!("{:?}", snapshot.lookup(absent.offering, &absent_levels)),
            format!("{:?}", flat.lookup(absent.offering, &absent_levels))
        );
        prop_assert_eq!(
            format!("{:?}", snapshot.lookup(probe_offering, &[])),
            format!("{:?}", flat.lookup(probe_offering, &[]))
        );
    }
}

/// A batch that fills `shard` of an N-shard store with uniform capacity
/// `c`: every key from the pool that routes to `shard`.
fn shard_batch(pool: &[StoreKey], router: &ShardRouter, shard: usize, c: f64) -> PublishBatch {
    PublishBatch {
        entries: pool
            .iter()
            .filter(|k| router.route_u64(k.pack()) == shard)
            .map(|&k| (k, c))
            .collect(),
        defaults: Vec::new(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A cross-shard `lookup_batch` racing a stream of per-shard publishes
    /// never observes a torn shard: the hot shard's keys always carry ONE
    /// publish's uniform value, the untouched shards never move off their
    /// seed value, and the store version stays monotone.
    #[test]
    fn per_shard_publish_never_tears_cross_shard_batches(
        n_publishes in 1usize..24,
        hot_shard in 0usize..8,
    ) {
        let shards = 8usize;
        let router = ShardRouter::new(shards).unwrap();
        // Enough keys that every shard owns a few.
        let pool: Vec<StoreKey> = (0..64)
            .map(|i| StoreKey::new(ServerOffering::GeneralPurpose, FeatureId(i), ValueId(i as u32)))
            .collect();
        let store = Arc::new(ShardedPredictionStore::new(shards).unwrap());
        store
            .publish(PublishBatch {
                entries: pool.iter().map(|&k| (k, 1.0)).collect(),
                defaults: Vec::new(),
            })
            .unwrap();
        let done = Arc::new(AtomicBool::new(false));
        let publisher = {
            let store = Arc::clone(&store);
            let done = Arc::clone(&done);
            let pool = pool.clone();
            std::thread::spawn(move || {
                for round in 0..n_publishes {
                    store
                        .publish_shard(
                            hot_shard,
                            shard_batch(&pool, &router, hot_shard, 2.0 + round as f64),
                        )
                        .unwrap();
                }
                done.store(true, Ordering::Release);
            })
        };
        let levels: Vec<[(FeatureId, ValueId); 1]> = pool
            .iter()
            .map(|k| [(k.feature, k.value)])
            .collect();
        let requests: Vec<(ServerOffering, &[(FeatureId, ValueId)])> = levels
            .iter()
            .map(|l| (ServerOffering::GeneralPurpose, &l[..]))
            .collect();
        let mut out = Vec::new();
        let mut last_version = 0u64;
        let mut rounds = 0usize;
        while rounds < 2 || !done.load(Ordering::Acquire) {
            rounds += 1;
            let version = store.version();
            prop_assert!(version >= last_version, "version went backwards");
            last_version = version;
            out.clear();
            store.lookup_batch(&requests, &mut out);
            let mut hot_value: Option<f64> = None;
            for (key, result) in pool.iter().zip(&out) {
                let (capacity, _) = result.as_ref().expect("every pool key is resident");
                if router.route_u64(key.pack()) == hot_shard {
                    // All hot-shard keys in one pinned batch agree: a torn
                    // read would mix uniform values from two publishes.
                    // A torn read would mix uniform values from two
                    // publishes inside one pinned batch.
                    let expected = *hot_value.get_or_insert(*capacity);
                    prop_assert_eq!(*capacity, expected);
                } else {
                    // Untouched shards never move off their seed value.
                    prop_assert_eq!(*capacity, 1.0);
                }
            }
        }
        publisher.join().unwrap();
        prop_assert_eq!(store.version(), 1 + n_publishes as u64);
    }

    /// Sharded λ serving ≡ the flat λ store under an arbitrary signal
    /// stream: after each publish, every affected customer reads the same
    /// λ through `snapshot_for` as through the flat snapshot.
    #[test]
    fn sharded_lambdas_match_flat_under_random_signals(
        signals in collection::vec((0u32..24, -1.0f64..=1.0), 1..16),
        shards in shard_count(),
    ) {
        let mut personalizer = Personalizer::new(PersonalizerConfig::default()).unwrap();
        for customer in 0..24 {
            for rg in 0..3 {
                personalizer.register(ResourcePath::new(
                    CustomerId(customer),
                    SubscriptionId(0),
                    ResourceGroupId(rg),
                ));
            }
        }
        let flat = LambdaStore::new(personalizer.clone());
        let sharded = ShardedLambdaStore::new(personalizer, shards).unwrap();
        for (customer, gamma) in signals {
            let path =
                ResourcePath::new(CustomerId(customer), SubscriptionId(0), ResourceGroupId(0));
            let signal =
                SatisfactionSignal::new(path, ServerOffering::GeneralPurpose, gamma).unwrap();
            flat.apply_signal(&signal);
            sharded.apply_signal(&signal);
            flat.publish();
            sharded.publish_delta_for(&path);
            for rg in 0..3 {
                let probe =
                    ResourcePath::new(CustomerId(customer), SubscriptionId(0), ResourceGroupId(rg));
                prop_assert_eq!(
                    sharded
                        .snapshot_for(&probe)
                        .lambda(&probe, ServerOffering::GeneralPurpose),
                    flat.snapshot().lambda(&probe, ServerOffering::GeneralPurpose)
                );
            }
        }
    }
}
