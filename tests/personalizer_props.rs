//! Property-based tests of Algorithm 1 (message propagation) and the λ
//! adjustment (Eq. 13-14).

use lorentz::core::{Personalizer, PersonalizerConfig, SatisfactionSignal};
use lorentz::types::{
    CustomerId, ResourceGroupId, ResourcePath, ServerOffering, SkuCatalog, SubscriptionId,
};
use proptest::prelude::*;

fn path(c: u32, s: u32, r: u32) -> ResourcePath {
    ResourcePath::new(CustomerId(c), SubscriptionId(s), ResourceGroupId(r))
}

fn config_strategy() -> impl Strategy<Value = PersonalizerConfig> {
    (0.05f64..1.0, 0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0).prop_map(|(lr, r, s, c)| {
        PersonalizerConfig {
            learning_rate: lr,
            rho_stratification: r,
            rho_resource_group: s,
            rho_subscription: c,
            lambda_clamp: 50.0,
        }
    })
}

fn gamma_strategy() -> impl Strategy<Value = f64> {
    prop_oneof![Just(-1.0), Just(1.0), -1.0f64..1.0]
}

proptest! {
    /// The propagation respects the locality ordering of Algorithm 1
    /// whenever the decays themselves are ordered (ρ_S >= ρ_C, the natural
    /// configuration): |update(same RG)| >= |update(same subscription)| >=
    /// |update(other subscription)|, and other customers receive nothing.
    #[test]
    fn propagation_locality_ordering(cfg in config_strategy(), gamma in gamma_strategy()) {
        prop_assume!(cfg.rho_resource_group >= cfg.rho_subscription);
        let mut p = Personalizer::new(cfg).unwrap();
        let origin = path(1, 1, 11);
        let sibling_rg = path(1, 1, 12);
        let other_sub = path(1, 2, 21);
        let other_customer = path(2, 9, 91);
        for loc in [origin, sibling_rg, other_sub, other_customer] {
            p.register(loc);
        }
        let st = ServerOffering::GeneralPurpose;
        p.apply_signal(&SatisfactionSignal::new(origin, st, gamma).unwrap());

        let at = |loc: &ResourcePath| p.lambda(loc, st).abs();
        prop_assert!(at(&origin) >= at(&sibling_rg) - 1e-12);
        prop_assert!(at(&sibling_rg) >= at(&other_sub) - 1e-12);
        prop_assert_eq!(p.lambda(&other_customer, st), 0.0);
    }

    /// Signal sign determines update sign everywhere it propagates.
    #[test]
    fn update_sign_matches_signal(cfg in config_strategy(), gamma in gamma_strategy()) {
        prop_assume!(gamma != 0.0);
        let mut p = Personalizer::new(cfg).unwrap();
        let origin = path(1, 1, 1);
        let sibling = path(1, 1, 2);
        p.register(origin);
        p.register(sibling);
        let st = ServerOffering::Burstable;
        p.apply_signal(&SatisfactionSignal::new(origin, st, gamma).unwrap());
        for loc in [origin, sibling] {
            for off in ServerOffering::ALL {
                let l = p.lambda(&loc, off);
                prop_assert!(l * gamma >= 0.0, "lambda {l} disagrees with gamma {gamma}");
            }
        }
    }

    /// Opposite signals of equal magnitude cancel exactly.
    #[test]
    fn opposite_signals_cancel(cfg in config_strategy(), gamma in 0.05f64..1.0) {
        let mut p = Personalizer::new(cfg).unwrap();
        let origin = path(3, 3, 3);
        p.register(origin);
        p.register(path(3, 3, 4));
        p.register(path(3, 5, 6));
        let st = ServerOffering::MemoryOptimized;
        p.apply_signal(&SatisfactionSignal::new(origin, st, gamma).unwrap());
        p.apply_signal(&SatisfactionSignal::new(origin, st, -gamma).unwrap());
        for (loc, off, l) in p.iter() {
            prop_assert!(l.abs() < 1e-9, "{loc} [{off}] kept residual {l}");
        }
    }

    /// λ values never exceed the clamp regardless of signal volume.
    #[test]
    fn lambda_is_clamped(signals in proptest::collection::vec(gamma_strategy(), 1..60)) {
        let cfg = PersonalizerConfig { lambda_clamp: 2.0, ..PersonalizerConfig::default() };
        let mut p = Personalizer::new(cfg).unwrap();
        let origin = path(1, 1, 1);
        p.register(origin);
        let st = ServerOffering::GeneralPurpose;
        for g in signals {
            p.apply_signal(&SatisfactionSignal::new(origin, st, g).unwrap());
            let l = p.lambda(&origin, st);
            prop_assert!(l.abs() <= 2.0 + 1e-12);
        }
    }

    /// Eq. 14: the adjusted capacity is the catalog point nearest
    /// 2^λ · c* in log space, and λ = 0 is the identity on catalog values.
    #[test]
    fn adjustment_matches_eq14(
        lambda in -4.0f64..4.0,
        c_star_idx in 0usize..9,
    ) {
        let cat = SkuCatalog::azure_postgres(ServerOffering::GeneralPurpose);
        let c_star = cat.get(c_star_idx).capacity.primary();
        let mut p = Personalizer::new(PersonalizerConfig::default()).unwrap();
        let loc = path(1, 1, 1);
        p.set_lambda(loc, ServerOffering::GeneralPurpose, lambda);
        let adjusted = p.adjust(c_star, &loc, ServerOffering::GeneralPurpose, &cat);
        let expect = cat
            .nearest_log2(&lorentz::types::Capacity::scalar(lambda.exp2() * c_star))
            .capacity
            .primary();
        prop_assert_eq!(adjusted.capacity.primary(), expect);
        if lambda.abs() < 1e-12 {
            prop_assert_eq!(adjusted.capacity.primary(), c_star);
        }
    }
}
