//! Property-based tests of Algorithm 1 (message propagation), the λ
//! adjustment (Eq. 13-14), and the live λ-table ([`LambdaStore`]) behind
//! it.

use lorentz::core::{LambdaStore, Personalizer, PersonalizerConfig, SatisfactionSignal};
use lorentz::types::{
    CustomerId, ResourceGroupId, ResourcePath, ServerOffering, SkuCatalog, SubscriptionId,
};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn path(c: u32, s: u32, r: u32) -> ResourcePath {
    ResourcePath::new(CustomerId(c), SubscriptionId(s), ResourceGroupId(r))
}

fn config_strategy() -> impl Strategy<Value = PersonalizerConfig> {
    (0.05f64..1.0, 0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0).prop_map(|(lr, r, s, c)| {
        PersonalizerConfig {
            learning_rate: lr,
            rho_stratification: r,
            rho_resource_group: s,
            rho_subscription: c,
            lambda_clamp: 50.0,
        }
    })
}

fn gamma_strategy() -> impl Strategy<Value = f64> {
    prop_oneof![Just(-1.0), Just(1.0), -1.0f64..1.0]
}

proptest! {
    /// The propagation respects the locality ordering of Algorithm 1
    /// whenever the decays themselves are ordered (ρ_S >= ρ_C, the natural
    /// configuration): |update(same RG)| >= |update(same subscription)| >=
    /// |update(other subscription)|, and other customers receive nothing.
    #[test]
    fn propagation_locality_ordering(cfg in config_strategy(), gamma in gamma_strategy()) {
        prop_assume!(cfg.rho_resource_group >= cfg.rho_subscription);
        let mut p = Personalizer::new(cfg).unwrap();
        let origin = path(1, 1, 11);
        let sibling_rg = path(1, 1, 12);
        let other_sub = path(1, 2, 21);
        let other_customer = path(2, 9, 91);
        for loc in [origin, sibling_rg, other_sub, other_customer] {
            p.register(loc);
        }
        let st = ServerOffering::GeneralPurpose;
        p.apply_signal(&SatisfactionSignal::new(origin, st, gamma).unwrap());

        let at = |loc: &ResourcePath| p.lambda(loc, st).abs();
        prop_assert!(at(&origin) >= at(&sibling_rg) - 1e-12);
        prop_assert!(at(&sibling_rg) >= at(&other_sub) - 1e-12);
        prop_assert_eq!(p.lambda(&other_customer, st), 0.0);
    }

    /// Signal sign determines update sign everywhere it propagates.
    #[test]
    fn update_sign_matches_signal(cfg in config_strategy(), gamma in gamma_strategy()) {
        prop_assume!(gamma != 0.0);
        let mut p = Personalizer::new(cfg).unwrap();
        let origin = path(1, 1, 1);
        let sibling = path(1, 1, 2);
        p.register(origin);
        p.register(sibling);
        let st = ServerOffering::Burstable;
        p.apply_signal(&SatisfactionSignal::new(origin, st, gamma).unwrap());
        for loc in [origin, sibling] {
            for off in ServerOffering::ALL {
                let l = p.lambda(&loc, off);
                prop_assert!(l * gamma >= 0.0, "lambda {l} disagrees with gamma {gamma}");
            }
        }
    }

    /// Opposite signals of equal magnitude cancel exactly.
    #[test]
    fn opposite_signals_cancel(cfg in config_strategy(), gamma in 0.05f64..1.0) {
        let mut p = Personalizer::new(cfg).unwrap();
        let origin = path(3, 3, 3);
        p.register(origin);
        p.register(path(3, 3, 4));
        p.register(path(3, 5, 6));
        let st = ServerOffering::MemoryOptimized;
        p.apply_signal(&SatisfactionSignal::new(origin, st, gamma).unwrap());
        p.apply_signal(&SatisfactionSignal::new(origin, st, -gamma).unwrap());
        for (loc, off, l) in p.iter() {
            prop_assert!(l.abs() < 1e-9, "{loc} [{off}] kept residual {l}");
        }
    }

    /// λ values never exceed the clamp regardless of signal volume.
    #[test]
    fn lambda_is_clamped(signals in proptest::collection::vec(gamma_strategy(), 1..60)) {
        let cfg = PersonalizerConfig { lambda_clamp: 2.0, ..PersonalizerConfig::default() };
        let mut p = Personalizer::new(cfg).unwrap();
        let origin = path(1, 1, 1);
        p.register(origin);
        let st = ServerOffering::GeneralPurpose;
        for g in signals {
            p.apply_signal(&SatisfactionSignal::new(origin, st, g).unwrap());
            let l = p.lambda(&origin, st);
            prop_assert!(l.abs() <= 2.0 + 1e-12);
        }
    }

    /// Every λ in the whole tree — origin, propagated siblings, every
    /// stratum — stays within ±`lambda_clamp` under arbitrary interleaved
    /// signal sequences across paths, offerings, and clamp settings.
    #[test]
    fn lambda_clamped_under_arbitrary_sequences(
        clamp in 0.1f64..4.0,
        signals in proptest::collection::vec(
            (0usize..4, 0usize..3, gamma_strategy()),
            1..80,
        ),
    ) {
        let cfg = PersonalizerConfig { lambda_clamp: clamp, ..PersonalizerConfig::default() };
        let mut p = Personalizer::new(cfg).unwrap();
        let paths = [path(1, 1, 1), path(1, 1, 2), path(1, 2, 3), path(2, 1, 1)];
        for loc in paths {
            p.register(loc);
        }
        for (pi, oi, g) in signals {
            let st = ServerOffering::ALL[oi];
            p.apply_signal(&SatisfactionSignal::new(paths[pi], st, g).unwrap());
            for (loc, off, l) in p.iter() {
                prop_assert!(
                    l.abs() <= clamp + 1e-12,
                    "{loc} [{off}] escaped the clamp: {l} vs ±{clamp}"
                );
            }
        }
    }

    /// The batched entry point is exactly the sequential one: applying a
    /// signal vector through `apply_signals` leaves the personalizer in the
    /// same state as one-at-a-time `apply_signal`.
    #[test]
    fn apply_signals_matches_sequential(
        cfg in config_strategy(),
        signals in proptest::collection::vec(
            (0usize..4, 0usize..3, gamma_strategy()),
            0..40,
        ),
    ) {
        let paths = [path(1, 1, 1), path(1, 1, 2), path(1, 2, 3), path(2, 1, 1)];
        let build = || {
            let mut p = Personalizer::new(cfg).unwrap();
            for loc in paths {
                p.register(loc);
            }
            p
        };
        let sigs: Vec<SatisfactionSignal> = signals
            .iter()
            .map(|&(pi, oi, g)| {
                SatisfactionSignal::new(paths[pi], ServerOffering::ALL[oi], g).unwrap()
            })
            .collect();
        let mut sequential = build();
        for s in &sigs {
            sequential.apply_signal(s);
        }
        let mut batched = build();
        batched.apply_signals(&sigs);
        prop_assert_eq!(sequential, batched);
    }

    /// Delta/overlay replay is byte-identical to the legacy full-flatten
    /// path: a follower applying only the published [`LambdaDelta`]s
    /// reaches exactly the λ table a direct `Personalizer` holds — and so
    /// does the leader's own generational-overlay epoch, merges and
    /// compactions included.
    #[test]
    fn delta_replay_matches_full_flatten(
        cfg in config_strategy(),
        signals in proptest::collection::vec(
            (0usize..4, 0usize..3, gamma_strategy()),
            1..60,
        ),
    ) {
        let paths = [path(1, 1, 1), path(1, 1, 2), path(1, 2, 3), path(2, 1, 1)];
        let build = || {
            let mut p = Personalizer::new(cfg).unwrap();
            for loc in paths {
                p.register(loc);
            }
            p
        };
        let leader = LambdaStore::new(build());
        let follower = LambdaStore::new(build());
        let mut reference = build();
        for &(pi, oi, g) in &signals {
            let sig = SatisfactionSignal::new(paths[pi], ServerOffering::ALL[oi], g).unwrap();
            reference.apply_signal(&sig);
            leader.apply_signal(&sig);
            let delta = follower.apply_delta(&leader.publish_delta());
            prop_assert!(delta.is_ok(), "leader epochs always advance the follower");
        }
        let l = leader.snapshot();
        let f = follower.snapshot();
        prop_assert_eq!(f.version(), l.version());
        for (loc, off, lambda) in reference.iter() {
            prop_assert_eq!(l.lambda(&loc, off).to_bits(), lambda.to_bits());
            prop_assert_eq!(f.lambda(&loc, off).to_bits(), lambda.to_bits());
        }
    }

    /// Eq. 14: the adjusted capacity is the catalog point nearest
    /// 2^λ · c* in log space, and λ = 0 is the identity on catalog values.
    #[test]
    fn adjustment_matches_eq14(
        lambda in -4.0f64..4.0,
        c_star_idx in 0usize..9,
    ) {
        let cat = SkuCatalog::azure_postgres(ServerOffering::GeneralPurpose);
        let c_star = cat.get(c_star_idx).capacity.primary();
        let mut p = Personalizer::new(PersonalizerConfig::default()).unwrap();
        let loc = path(1, 1, 1);
        p.set_lambda(loc, ServerOffering::GeneralPurpose, lambda);
        let adjusted = p.adjust(c_star, &loc, ServerOffering::GeneralPurpose, &cat);
        let expect = cat
            .nearest_log2(&lorentz::types::Capacity::scalar(lambda.exp2() * c_star))
            .capacity
            .primary();
        prop_assert_eq!(adjusted.capacity.primary(), expect);
        if lambda.abs() < 1e-12 {
            prop_assert_eq!(adjusted.capacity.primary(), c_star);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The λ-store mirror of the PR-3 torn-read store test: readers racing
    /// a publish stream always observe one consistent snapshot. With every
    /// decay at 1.0 each signal bumps *all* of a customer's λ values by
    /// exactly `learning_rate`, so a torn read (some profiles updated, some
    /// not, or strata from different rounds) shows up as unequal values;
    /// versions and values must also be monotone across snapshots.
    #[test]
    fn lambda_publish_never_tears_concurrent_reads(
        n_paths in 2usize..6,
        n_signals in 1usize..30,
    ) {
        let cfg = PersonalizerConfig {
            learning_rate: 0.25,
            rho_stratification: 1.0,
            rho_resource_group: 1.0,
            rho_subscription: 1.0,
            lambda_clamp: 50.0,
        };
        let mut p = Personalizer::new(cfg).unwrap();
        let paths: Vec<ResourcePath> = (0..n_paths)
            .map(|i| path(1, i as u32, 100 + i as u32))
            .collect();
        for &loc in &paths {
            p.register(loc);
        }
        let store = Arc::new(LambdaStore::new(p));
        let done = Arc::new(AtomicBool::new(false));
        let origin = paths[0];
        let writer = {
            let store = Arc::clone(&store);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let sig =
                    SatisfactionSignal::new(origin, ServerOffering::GeneralPurpose, 1.0).unwrap();
                for _ in 0..n_signals {
                    store.apply_signal(&sig);
                    store.publish();
                }
                done.store(true, Ordering::Release);
            })
        };
        let step = 0.25; // learning_rate × γ, exact in binary
        let mut last_version = 0u64;
        let mut last_lambda = 0.0f64;
        let mut rounds = 0usize;
        while rounds < 2 || !done.load(Ordering::Acquire) {
            rounds += 1;
            let snap = store.snapshot();
            prop_assert!(snap.version() >= last_version, "version went backwards");
            let l0 = snap.lambda(&paths[0], ServerOffering::ALL[0]);
            for loc in &paths {
                for off in ServerOffering::ALL {
                    // A torn read would mix rounds across profiles/strata.
                    prop_assert_eq!(snap.lambda(loc, off), l0);
                }
            }
            let steps = l0 / step;
            prop_assert!(
                (steps - steps.round()).abs() < 1e-9,
                "λ {l0} is not a whole number of signal steps"
            );
            if snap.version() == last_version {
                // Same version must mean the same λ.
                prop_assert_eq!(l0, last_lambda);
            } else {
                prop_assert!(l0 >= last_lambda, "λ went backwards across versions");
            }
            last_version = snap.version();
            last_lambda = l0;
        }
        writer.join().unwrap();
        prop_assert_eq!(store.version(), 1 + n_signals as u64);
        let final_snap = store.snapshot();
        let expect = n_signals as f64 * step;
        prop_assert_eq!(
            final_snap.lambda(&paths[n_paths - 1], ServerOffering::MemoryOptimized),
            expect
        );
    }
}
