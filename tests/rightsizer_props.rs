//! Property-based tests of the Stage-1 rightsizer invariants (Eq. 3–9)
//! against arbitrary workloads.

use lorentz::core::{Rightsizer, RightsizerConfig};
use lorentz::telemetry::{RegularSeries, UsageTrace};
use lorentz::types::{Capacity, ServerOffering, SkuCatalog};
use proptest::prelude::*;

fn sizer() -> Rightsizer {
    Rightsizer::new(&RightsizerConfig::default()).unwrap()
}

fn catalog() -> SkuCatalog {
    SkuCatalog::azure_postgres(ServerOffering::GeneralPurpose)
}

/// Arbitrary bounded workload: 4–64 bins of usage in [0, 140).
fn workload() -> impl Strategy<Value = UsageTrace> {
    proptest::collection::vec(0.0f64..140.0, 4..64)
        .prop_map(|values| UsageTrace::single(RegularSeries::new(300.0, values).unwrap()))
}

/// Catalog capacities to test against.
fn capacity() -> impl Strategy<Value = Capacity> {
    prop_oneof![
        Just(2.0),
        Just(4.0),
        Just(8.0),
        Just(16.0),
        Just(32.0),
        Just(48.0),
        Just(64.0),
        Just(96.0),
        Just(128.0),
    ]
    .prop_map(Capacity::scalar)
}

proptest! {
    /// Throttling is monotone non-increasing in capacity (Eq. 3-4).
    #[test]
    fn throttling_decreases_with_capacity(trace in workload()) {
        let s = sizer();
        let mut prev = f64::INFINITY;
        for c in catalog().capacities() {
            let t = s.throttling(&trace, c).unwrap();
            prop_assert!((0.0..=1.0).contains(&t));
            prop_assert!(t <= prev + 1e-12, "throttling must not grow with capacity");
            prev = t;
        }
    }

    /// Mean slack ratio is monotone non-decreasing in capacity and bounded
    /// above by 1 (Eq. 5-6).
    #[test]
    fn slack_increases_with_capacity(trace in workload()) {
        let s = sizer();
        let mut prev = f64::NEG_INFINITY;
        for c in catalog().capacities() {
            let slack = s.slack_ratio(&trace, c).unwrap()[0];
            prop_assert!(slack <= 1.0 + 1e-12);
            prop_assert!(slack >= prev - 1e-12, "slack must not shrink with capacity");
            prev = slack;
        }
    }

    /// The complete optimizer (Eq. 9) always returns a catalog SKU, never
    /// throttles the observed workload when uncensored, and scales up at
    /// least 2^K when censored.
    #[test]
    fn rightsize_respects_eq9(trace in workload(), user in capacity()) {
        let s = sizer();
        let cat = catalog();
        // Telemetry is physically censored at the user capacity (Eq. 1).
        let observed = trace.censored(&user).unwrap();
        let out = s.rightsize(&observed, &user, &cat).unwrap();
        prop_assert!(cat.index_of(&out.capacity).is_some());
        if out.censored {
            let k = f64::from(2u32.pow(s.config().k));
            let saturated = (out.capacity.primary() - cat.maximum().capacity.primary()).abs() < 1e-9;
            prop_assert!(
                out.capacity.primary() >= k * user.primary() - 1e-9 || saturated,
                "censored branch must scale up 2^K or saturate: got {} for user {}",
                out.capacity.primary(),
                user.primary()
            );
        } else {
            let t = s.throttling(&observed, &out.capacity).unwrap();
            prop_assert!(t <= s.config().tau + 1e-12, "uncensored branch must respect tau");
        }
    }

    /// Rightsizing is idempotent on uncensored workloads: re-rightsizing at
    /// the chosen capacity returns the same capacity.
    #[test]
    fn rightsize_is_idempotent_when_uncensored(trace in workload()) {
        let s = sizer();
        let cat = catalog();
        let user = cat.maximum().capacity.clone(); // never censored at 128? may still throttle
        let observed = trace.censored(&user).unwrap();
        let first = s.rightsize(&observed, &user, &cat).unwrap();
        if !first.censored {
            // The workload fits under the chosen capacity's telemetry too.
            let observed2 = trace.censored(&first.capacity).unwrap();
            let second = s.rightsize(&observed2, &first.capacity, &cat).unwrap();
            if !second.censored {
                prop_assert_eq!(first.capacity, second.capacity);
            }
        }
    }

    /// Absolute slack equals slack ratio times capacity.
    #[test]
    fn absolute_slack_consistency(trace in workload(), c in capacity()) {
        let s = sizer();
        let ratio = s.slack_ratio(&trace, &c).unwrap()[0];
        let abs = s.absolute_slack(&trace, &c).unwrap()[0];
        prop_assert!((abs - ratio * c.primary()).abs() < 1e-9);
    }
}
