//! # Lorentz
//!
//! A Rust implementation of **Lorentz: Learned SKU Recommendation Using
//! Profile Data** (SIGMOD 2024). Lorentz recommends the initial SKU
//! (capacity) for newly-provisioned cloud resources *before any telemetry
//! exists*, using only customer/server profile data, through three stages:
//!
//! 1. **Rightsizing** existing workloads into training labels
//!    ([`core::rightsizer`]);
//! 2. **Provisioning** capacities for new resources from profile data via a
//!    hierarchical bucket model or target encoding + gradient-boosted trees
//!    ([`core::provisioner`]);
//! 3. **Personalizing** recommendations with learned cost/performance
//!    sensitivity scores λ ([`core::personalizer`]).
//!
//! This facade crate re-exports the entire workspace under stable module
//! names; see the README for a tour and `examples/` for runnable programs.
//!
//! ```
//! use lorentz::types::{Capacity, ServerOffering, SkuCatalog};
//!
//! let catalog = SkuCatalog::azure_postgres(ServerOffering::GeneralPurpose);
//! let sku = catalog.round_up(&Capacity::scalar(3.0)).unwrap();
//! assert_eq!(sku.capacity.primary(), 4.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use lorentz_core as core;
pub use lorentz_fault as fault;
pub use lorentz_hierarchy as hierarchy;
pub use lorentz_ml as ml;
pub use lorentz_obs as obs;
pub use lorentz_serve as serve;
pub use lorentz_simdata as simdata;
pub use lorentz_telemetry as telemetry;
pub use lorentz_types as types;

/// The crate version, for experiment provenance lines.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
