//! A minimal parser for the items a derive macro receives, shared by the
//! offline `serde_derive` and `thiserror` stubs.
//!
//! Parses non-generic structs and enums from `proc_macro2`-free token
//! streams (we work directly on `proc_macro::TokenStream` re-tokenized as
//! strings of `TokenTree`s). Supports exactly the shapes this workspace
//! uses: named structs, tuple structs, and enums whose variants are unit,
//! named, or tuple. Attributes are collected per item/field/variant so the
//! derive stubs can honor `#[serde(skip)]` and `#[error("...")]`.

extern crate proc_macro;

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed attribute: its path ident (e.g. `serde`, `error`, `doc`) and
/// the raw tokens inside its argument group, if any.
#[derive(Debug, Clone)]
pub struct Attr {
    /// Attribute name (`serde`, `error`, `doc`, ...).
    pub name: String,
    /// Tokens inside the parenthesized argument list, stringified.
    pub args: Vec<TokenTree>,
}

impl Attr {
    /// Whether the argument list contains a bare ident `word` (e.g.
    /// `#[serde(skip)]`).
    pub fn has_word(&self, word: &str) -> bool {
        self.args
            .iter()
            .any(|t| matches!(t, TokenTree::Ident(i) if i.to_string() == word))
    }

    /// The first string literal among the arguments, with its surrounding
    /// quotes intact (e.g. `"invalid capacity: {0}"`).
    pub fn string_literal(&self) -> Option<String> {
        self.args.iter().find_map(|t| match t {
            TokenTree::Literal(l) => {
                let s = l.to_string();
                if s.starts_with('"') {
                    Some(s)
                } else {
                    None
                }
            }
            _ => None,
        })
    }
}

/// A named or positional field.
#[derive(Debug, Clone)]
pub struct Field {
    /// Field name (`None` for tuple fields).
    pub name: Option<String>,
    /// Attributes attached to the field.
    pub attrs: Vec<Attr>,
}

/// The field layout of a struct or enum variant.
#[derive(Debug, Clone)]
pub enum Fields {
    /// `struct S;` or a unit enum variant.
    Unit,
    /// `struct S { a: T, ... }`.
    Named(Vec<Field>),
    /// `struct S(T, ...);`.
    Tuple(Vec<Field>),
}

/// One enum variant.
#[derive(Debug, Clone)]
pub struct Variant {
    /// Variant name.
    pub name: String,
    /// Variant attributes (e.g. `#[error("...")]`).
    pub attrs: Vec<Attr>,
    /// Variant fields.
    pub fields: Fields,
}

/// A parsed derive input item.
#[derive(Debug, Clone)]
pub enum Item {
    /// A struct with its name and fields.
    Struct {
        /// Type name.
        name: String,
        /// Field layout.
        fields: Fields,
    },
    /// An enum with its name and variants.
    Enum {
        /// Type name.
        name: String,
        /// The variants in declaration order.
        variants: Vec<Variant>,
    },
}

impl Item {
    /// The type name.
    pub fn name(&self) -> &str {
        match self {
            Item::Struct { name, .. } | Item::Enum { name, .. } => name,
        }
    }
}

/// Flattens `Delimiter::None` groups (inserted around tokens that came
/// through `macro_rules!` metavariables) into their inner token streams.
fn flatten_none_groups(stream: TokenStream) -> Vec<TokenTree> {
    let mut out = Vec::new();
    for t in stream {
        match t {
            TokenTree::Group(g) if g.delimiter() == Delimiter::None => {
                out.extend(flatten_none_groups(g.stream()));
            }
            other => out.push(other),
        }
    }
    out
}

fn parse_attr(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> Attr {
    // Caller consumed the leading '#'. An inner-attribute '!' never appears
    // in derive input.
    let group = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
        other => panic!("malformed attribute: expected [..], got {other:?}"),
    };
    let mut inner = flatten_none_groups(group.stream()).into_iter();
    let name = match inner.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("malformed attribute: expected ident, got {other:?}"),
    };
    let mut args = Vec::new();
    for t in inner {
        match t {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                args.extend(g.stream());
            }
            // `#[doc = "..."]` form: keep the literal as an arg.
            other => args.push(other),
        }
    }
    Attr { name, args }
}

fn collect_attrs(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> Vec<Attr> {
    let mut attrs = Vec::new();
    while matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        tokens.next();
        attrs.push(parse_attr(tokens));
    }
    attrs
}

fn skip_visibility(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        tokens.next();
        if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            tokens.next(); // pub(crate) / pub(super)
        }
    }
}

/// Skips a type, stopping at a top-level `,` (consumed) or end of stream.
fn skip_type(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    let mut angle_depth = 0i32;
    for t in tokens.by_ref() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
            _ => {}
        }
    }
}

fn parse_named_fields(group: TokenStream) -> Vec<Field> {
    let mut tokens = flatten_none_groups(group).into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let attrs = collect_attrs(&mut tokens);
        skip_visibility(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => panic!("expected field name, got {other:?}"),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected ':' after field '{name}', got {other:?}"),
        }
        skip_type(&mut tokens);
        fields.push(Field {
            name: Some(name),
            attrs,
        });
    }
    fields
}

fn parse_tuple_fields(group: TokenStream) -> Vec<Field> {
    let mut tokens = flatten_none_groups(group).into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let attrs = collect_attrs(&mut tokens);
        skip_visibility(&mut tokens);
        if tokens.peek().is_none() {
            break;
        }
        skip_type(&mut tokens);
        fields.push(Field { name: None, attrs });
    }
    fields
}

fn parse_variants(group: TokenStream) -> Vec<Variant> {
    let mut tokens = flatten_none_groups(group).into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        let attrs = collect_attrs(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => panic!("expected variant name, got {other:?}"),
        };
        let fields = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                tokens.next();
                Fields::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.stream();
                tokens.next();
                Fields::Tuple(parse_tuple_fields(g))
            }
            _ => Fields::Unit,
        };
        // Consume a trailing comma if present (discriminants unsupported).
        match tokens.next() {
            None => {
                variants.push(Variant {
                    name,
                    attrs,
                    fields,
                });
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                variants.push(Variant {
                    name,
                    attrs,
                    fields,
                });
            }
            other => panic!("expected ',' after variant '{name}', got {other:?}"),
        }
    }
    variants
}

/// Parses a derive input item (struct or enum). Panics with a readable
/// message on unsupported shapes (generics, unions).
pub fn parse_item(input: TokenStream) -> Item {
    let mut tokens = flatten_none_groups(input).into_iter().peekable();
    let _ = collect_attrs(&mut tokens);
    skip_visibility(&mut tokens);
    let kind = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected 'struct' or 'enum', got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected type name, got {other:?}"),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive stub does not support generic type '{name}'");
    }
    match kind.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Struct {
                name,
                fields: Fields::Named(parse_named_fields(g.stream())),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Item::Struct {
                name,
                fields: Fields::Tuple(parse_tuple_fields(g.stream())),
            },
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::Struct {
                name,
                fields: Fields::Unit,
            },
            other => panic!("unsupported struct body for '{name}': {other:?}"),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("unsupported enum body for '{name}': {other:?}"),
        },
        other => panic!("derive stub supports struct/enum only, got '{other}'"),
    }
}
