//! Offline stand-in for `thiserror`.
//!
//! `#[derive(Error)]` generates `Display` from each variant's
//! `#[error("...")]` format string plus an empty `std::error::Error` impl.
//! Positional interpolations (`{0}`) are rewritten to the generated tuple
//! binding names; named interpolations (`{field}`) resolve through Rust's
//! inline format-args capture of the destructured bindings.

// The emitted source keeps one statement per line; the trailing `\n`s in
// these `write!` format strings are codegen layout, not message text.
#![allow(clippy::write_with_newline)]

use mini_syn::{parse_item, Fields, Item, Variant};
use proc_macro::TokenStream;
use std::fmt::Write;

/// Derives `Display` (from `#[error("...")]`) and `std::error::Error`.
#[proc_macro_derive(Error, attributes(error, source, from))]
pub fn derive_error(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = item.name().to_string();
    let variants: &[Variant] = match &item {
        Item::Enum { variants, .. } => variants,
        Item::Struct { .. } => panic!("thiserror stub supports enums only"),
    };
    let mut arms = String::new();
    for v in variants {
        let fmt = v
            .attrs
            .iter()
            .find(|a| a.name == "error")
            .and_then(|a| a.string_literal())
            .unwrap_or_else(|| panic!("variant '{}' is missing #[error(\"...\")]", v.name));
        match &v.fields {
            Fields::Unit => {
                write!(arms, "Self::{} => ::std::write!(__f, {fmt}),\n", v.name).unwrap();
            }
            Fields::Named(fields) => {
                let binds: Vec<&str> = fields
                    .iter()
                    .map(|f| f.name.as_deref().expect("named field"))
                    .collect();
                write!(
                    arms,
                    "Self::{} {{ {} }} => {{ {} ::std::write!(__f, {fmt}) }},\n",
                    v.name,
                    binds.join(", "),
                    binds
                        .iter()
                        .map(|b| format!("let _ = {b};"))
                        .collect::<Vec<_>>()
                        .join(" ")
                )
                .unwrap();
            }
            Fields::Tuple(fields) => {
                let binds: Vec<String> = (0..fields.len()).map(|i| format!("__f{i}")).collect();
                write!(
                    arms,
                    "Self::{}({}) => {{ {} ::std::write!(__f, {}) }},\n",
                    v.name,
                    binds.join(", "),
                    binds
                        .iter()
                        .map(|b| format!("let _ = {b};"))
                        .collect::<Vec<_>>()
                        .join(" "),
                    rewrite_positional(&fmt)
                )
                .unwrap();
            }
        }
    }
    let out = format!(
        "impl ::std::fmt::Display for {name} {{\n\
         fn fmt(&self, __f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {{\n\
         match self {{\n{arms}}}\n}}\n}}\n\
         impl ::std::error::Error for {name} {{}}\n"
    );
    out.parse().expect("error impl parses")
}

/// Rewrites `{0}` / `{1:...}` interpolations to the `__fN` tuple bindings,
/// leaving `{{` / `}}` escapes untouched.
fn rewrite_positional(fmt: &str) -> String {
    let mut out = String::with_capacity(fmt.len() + 8);
    let mut chars = fmt.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '{' {
            if chars.peek() == Some(&'{') {
                out.push_str("{{");
                chars.next();
                continue;
            }
            out.push('{');
            if chars.peek().is_some_and(|c| c.is_ascii_digit()) {
                out.push_str("__f");
            }
        } else {
            out.push(c);
        }
    }
    out
}
