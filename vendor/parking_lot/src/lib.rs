//! Offline stand-in for `parking_lot`: thin wrappers over `std::sync`
//! primitives exposing parking_lot's poison-free API (`lock`/`read`/`write`
//! return guards directly). A poisoned std lock propagates the inner value —
//! parking_lot semantics, where a panicking holder does not poison the lock.

use std::sync::{Mutex as StdMutex, MutexGuard, RwLock as StdRwLock};
use std::sync::{RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock with non-poisoning guards.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A mutual-exclusion lock with non-poisoning guards.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_guards_round_trip() {
        let lock = RwLock::new(5u32);
        assert_eq!(*lock.read(), 5);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 6);
        assert_eq!(lock.into_inner(), 6);
    }

    #[test]
    fn mutex_guards_round_trip() {
        let m = Mutex::new(String::from("a"));
        m.lock().push('b');
        assert_eq!(*m.lock(), "ab");
    }
}
