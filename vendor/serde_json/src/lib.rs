//! Offline stand-in for `serde_json`: renders the `serde` stub's value tree
//! to JSON text and parses it back.
//!
//! Follows serde_json's observable conventions where they matter for
//! round-tripping: integer map keys are stringified, non-finite floats
//! serialize as `null`, and numbers parse back as integers when they carry
//! no fraction or exponent (the stub's numeric `from_value` accepts either).

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to compact JSON text.
///
/// # Errors
/// Returns [`Error`] if a map key is not string-like.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to two-space-indented JSON text.
///
/// # Errors
/// Returns [`Error`] if a map key is not string-like.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Deserializes a value from JSON text.
///
/// # Errors
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

/// Parses JSON text into the generic value tree.
///
/// # Errors
/// Returns [`Error`] on malformed JSON.
pub fn parse(s: &str) -> Result<Value> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Rust's shortest-round-trip Display; integral floats keep
                // no fraction (the lenient numeric from_value re-widens).
                out.push_str(&f.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<()> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(Error::new(format!("expected '{lit}' at byte {pos}")))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(Error::new("unexpected end of input")),
        Some(b'n') => expect(b, pos, "null").map(|()| Value::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Value::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Value::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Seq(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Seq(items));
                    }
                    _ => return Err(Error::new(format!("expected ',' or ']' at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Map(entries));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let value = parse_value(b, pos)?;
                entries.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Map(entries));
                    }
                    _ => return Err(Error::new(format!("expected ',' or '}}' at byte {pos}"))),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(Error::new(format!("expected string at byte {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(Error::new("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error::new("truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| Error::new("non-ascii \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error::new("bad \\u escape"))?;
                        *pos += 4;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(Error::new(format!("bad escape {other:?}"))),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance over one UTF-8 char.
                let rest = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                let c = rest.chars().next().expect("nonempty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("ascii number");
    if text.is_empty() || text == "-" {
        return Err(Error::new(format!("expected number at byte {start}")));
    }
    if is_float {
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("bad number '{text}'")))
    } else if text.starts_with('-') {
        text.parse::<i64>()
            .map(Value::Int)
            .map_err(|_| Error::new(format!("integer '{text}' out of range")))
    } else {
        text.parse::<u64>()
            .map(Value::UInt)
            .map_err(|_| Error::new(format!("integer '{text}' out of range")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn text_round_trips() {
        let mut m: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        m.insert("a\"b".into(), vec![1.0, 2.5, -3.0]);
        let json = to_string(&m).unwrap();
        let back: BTreeMap<String, Vec<f64>> = from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a": [1, 2.5, null, true, "x\n"], "b": {}}"#).unwrap();
        assert_eq!(v.get_field("a").unwrap().as_seq().unwrap().len(), 5);
        assert!(v.get_field("b").unwrap().as_map().unwrap().is_empty());
        assert!(parse("{bad}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
    }

    #[test]
    fn pretty_output_is_reparseable() {
        let mut m: BTreeMap<String, Vec<u32>> = BTreeMap::new();
        m.insert("k".into(), vec![1, 2]);
        let pretty = to_string_pretty(&m).unwrap();
        assert!(pretty.contains('\n'));
        let back: BTreeMap<String, Vec<u32>> = from_str(&pretty).unwrap();
        assert_eq!(back, m);
    }
}
