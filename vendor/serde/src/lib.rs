//! Offline stand-in for `serde`, built for air-gapped builds of this
//! workspace.
//!
//! The real `serde` models serialization as a visitor pipeline; this stub
//! models it as conversion through a self-describing [`Value`] tree, which
//! is all the workspace needs (every serialized type round-trips through
//! `serde_json` text). The public surface mirrors the subset of serde the
//! workspace uses:
//!
//! * `#[derive(Serialize, Deserialize)]` (via the sibling `serde_derive`
//!   stub) on plain structs, tuple structs, and externally-tagged enums;
//! * the `#[serde(skip)]` field attribute (skipped on write, `Default` on
//!   read);
//! * maps with string-like keys (integers and newtype ids are stringified,
//!   exactly like `serde_json` does for integer map keys).
//!
//! Anything outside that subset fails loudly at compile time (derive) or
//! with a descriptive [`Error`] at runtime.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (used when the value does not fit `i64` or was
    /// serialized from an unsigned type).
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (JSON object).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// String contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a map entry by key.
    pub fn get_field<'a>(&'a self, key: &str) -> Option<&'a Value> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A type that can be converted to a [`Value`].
pub trait Serialize {
    /// Converts `self` into the value tree.
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Marker alias matching serde's `DeserializeOwned` bound.
pub trait DeserializeOwned: Deserialize {}
impl<T: Deserialize> DeserializeOwned for T {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

// Identity impls: a `Value` serializes to itself, so pre-built value trees
// can be passed anywhere a `Serialize`/`Deserialize` type is expected.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n: i64 = match v {
                    Value::Int(n) => *n,
                    Value::UInt(n) => i64::try_from(*n)
                        .map_err(|_| Error::custom("unsigned value out of signed range"))?,
                    Value::Float(f) if f.fract() == 0.0 => *f as i64,
                    // Map keys arrive stringified (serde_json integer-key
                    // convention).
                    Value::Str(s) => s
                        .parse()
                        .map_err(|_| Error::custom(format!("bad integer string '{s}'")))?,
                    other => return Err(Error::custom(format!("expected integer, got {other:?}"))),
                };
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n: u64 = match v {
                    Value::UInt(n) => *n,
                    Value::Int(n) => u64::try_from(*n)
                        .map_err(|_| Error::custom("negative value for unsigned type"))?,
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    Value::Str(s) => s
                        .parse()
                        .map_err(|_| Error::custom(format!("bad integer string '{s}'")))?,
                    other => return Err(Error::custom(format!("expected integer, got {other:?}"))),
                };
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let f = *self as f64;
                // JSON has no NaN/Infinity; serde_json writes null.
                if f.is_finite() { Value::Float(f) } else { Value::Null }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(n) => Ok(*n as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    Value::Null => Ok(<$t>::NAN),
                    Value::Str(s) => s
                        .parse()
                        .map_err(|_| Error::custom(format!("bad float string '{s}'"))),
                    other => Err(Error::custom(format!("expected number, got {other:?}"))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v
            .as_str()
            .ok_or_else(|| Error::custom("expected single-char string"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom(format!("expected string, got {v:?}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::custom(format!("expected sequence, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        <[T; N]>::try_from(items)
            .map_err(|items| Error::custom(format!("expected {N} elements, got {}", items.len())))
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let s = v
                    .as_seq()
                    .ok_or_else(|| Error::custom("expected tuple sequence"))?;
                let mut it = s.iter();
                let out = ($(
                    $t::from_value(
                        it.next().ok_or_else(|| Error::custom("tuple too short"))?,
                    )?,
                )+);
                if it.next().is_some() {
                    return Err(Error::custom("tuple too long"));
                }
                Ok(out)
            }
        }
    )*};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Converts a serialized map key to its string form (the serde_json
/// integer-key convention: non-string scalar keys are stringified).
fn key_string(v: &Value) -> Result<String, Error> {
    match v {
        Value::Str(s) => Ok(s.clone()),
        Value::Int(n) => Ok(n.to_string()),
        Value::UInt(n) => Ok(n.to_string()),
        Value::Bool(b) => Ok(b.to_string()),
        other => Err(Error::custom(format!("unsupported map key {other:?}"))),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| {
                    (
                        key_string(&k.to_value()).expect("map key must be string-like"),
                        v.to_value(),
                    )
                })
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_map()
            .ok_or_else(|| Error::custom(format!("expected map, got {v:?}")))?
            .iter()
            .map(|(k, val)| Ok((K::from_value(&Value::Str(k.clone()))?, V::from_value(val)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| {
                (
                    key_string(&k.to_value()).expect("map key must be string-like"),
                    v.to_value(),
                )
            })
            .collect();
        // Deterministic output independent of hasher state.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize
    for HashMap<K, V, S>
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_map()
            .ok_or_else(|| Error::custom(format!("expected map, got {v:?}")))?
            .iter()
            .map(|(k, val)| Ok((K::from_value(&Value::Str(k.clone()))?, V::from_value(val)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(f64::from_value(&f64::NAN.to_value()).unwrap().is_nan());
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn integer_map_keys_stringify() {
        let mut m = BTreeMap::new();
        m.insert(3u32, vec![1.0f64, 2.0]);
        let v = m.to_value();
        assert_eq!(v.as_map().unwrap()[0].0, "3");
        let back: BTreeMap<u32, Vec<f64>> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn arrays_and_tuples_round_trip() {
        let a = [1.0f64, 2.0, 3.0];
        let back: [f64; 3] = Deserialize::from_value(&a.to_value()).unwrap();
        assert_eq!(back, a);
        let t = (1u32, "x".to_string(), 2.5f64);
        let back: (u32, String, f64) = Deserialize::from_value(&t.to_value()).unwrap();
        assert_eq!(back, t);
    }
}
