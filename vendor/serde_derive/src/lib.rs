//! Offline stand-in for `serde_derive`.
//!
//! Generates `Serialize`/`Deserialize` impls against the value-tree model of
//! the sibling `serde` stub. Supports non-generic named structs, tuple
//! structs (newtype structs serialize transparently), and externally-tagged
//! enums, plus the `#[serde(skip)]` field attribute — the exact subset this
//! workspace uses.

// The emitted source keeps one statement per line; the trailing `\n`s in
// these `write!` format strings are codegen layout, not message text.
#![allow(clippy::write_with_newline)]

use mini_syn::{parse_item, Attr, Field, Fields, Item};
use proc_macro::TokenStream;
use std::fmt::Write;

fn is_skipped(attrs: &[Attr]) -> bool {
    attrs
        .iter()
        .any(|a| a.name == "serde" && (a.has_word("skip") || a.has_word("skip_serializing")))
}

fn unsupported_serde_attrs(attrs: &[Attr]) {
    for a in attrs {
        if a.name == "serde" && !a.has_word("skip") && !a.has_word("skip_serializing") {
            panic!(
                "serde derive stub supports only #[serde(skip)], got #[serde({})]",
                a.args
                    .iter()
                    .map(|t| t.to_string())
                    .collect::<Vec<_>>()
                    .join("")
            );
        }
    }
}

/// Derives the value-tree `Serialize` impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = item.name().to_string();
    let mut body = String::new();
    match &item {
        Item::Struct { fields, .. } => {
            write!(body, "{}", serialize_fields_expr(fields, "self.", true)).unwrap();
        }
        Item::Enum { variants, .. } => {
            body.push_str("match self {\n");
            for v in variants {
                unsupported_serde_attrs(&v.attrs);
                match &v.fields {
                    Fields::Unit => {
                        write!(
                            body,
                            "Self::{0} => ::serde::Value::Str(\"{0}\".to_string()),\n",
                            v.name
                        )
                        .unwrap();
                    }
                    Fields::Named(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone().unwrap()).collect();
                        write!(
                            body,
                            "Self::{0} {{ {1} }} => {{\n\
                             let mut __fields: Vec<(String, ::serde::Value)> = Vec::new();\n",
                            v.name,
                            binds.join(", ")
                        )
                        .unwrap();
                        for f in fields {
                            unsupported_serde_attrs(&f.attrs);
                            let fname = f.name.as_ref().unwrap();
                            if is_skipped(&f.attrs) {
                                write!(body, "let _ = {fname};\n").unwrap();
                            } else {
                                write!(
                                    body,
                                    "__fields.push((\"{fname}\".to_string(), ::serde::Serialize::to_value({fname})));\n"
                                )
                                .unwrap();
                            }
                        }
                        write!(
                            body,
                            "::serde::Value::Map(vec![(\"{0}\".to_string(), ::serde::Value::Map(__fields))])\n}}\n",
                            v.name
                        )
                        .unwrap();
                    }
                    Fields::Tuple(fields) => {
                        let binds: Vec<String> =
                            (0..fields.len()).map(|i| format!("__f{i}")).collect();
                        let payload = if fields.len() == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            format!(
                                "::serde::Value::Seq(vec![{}])",
                                binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect::<Vec<_>>()
                                    .join(", ")
                            )
                        };
                        write!(
                            body,
                            "Self::{0}({1}) => ::serde::Value::Map(vec![(\"{0}\".to_string(), {2})]),\n",
                            v.name,
                            binds.join(", "),
                            payload
                        )
                        .unwrap();
                    }
                }
            }
            body.push_str("}\n");
        }
    }
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    );
    out.parse().expect("serialize impl parses")
}

/// The expression serializing a struct's fields. `prefix` is `self.` for
/// structs; named enum variants inline their own version above.
fn serialize_fields_expr(fields: &Fields, prefix: &str, _top: bool) -> String {
    let mut s = String::new();
    match fields {
        Fields::Unit => s.push_str("::serde::Value::Null"),
        Fields::Named(fields) => {
            s.push_str("{ let mut __fields: Vec<(String, ::serde::Value)> = Vec::new();\n");
            for f in fields {
                unsupported_serde_attrs(&f.attrs);
                if is_skipped(&f.attrs) {
                    continue;
                }
                let fname = f.name.as_ref().unwrap();
                write!(
                    s,
                    "__fields.push((\"{fname}\".to_string(), ::serde::Serialize::to_value(&{prefix}{fname})));\n"
                )
                .unwrap();
            }
            s.push_str("::serde::Value::Map(__fields) }");
        }
        Fields::Tuple(fields) if fields.len() == 1 => {
            write!(s, "::serde::Serialize::to_value(&{prefix}0)").unwrap();
        }
        Fields::Tuple(fields) => {
            s.push_str("::serde::Value::Seq(vec![");
            for i in 0..fields.len() {
                write!(s, "::serde::Serialize::to_value(&{prefix}{i}), ").unwrap();
            }
            s.push_str("])");
        }
    }
    s
}

/// Derives the value-tree `Deserialize` impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = item.name().to_string();
    let mut body = String::new();
    match &item {
        Item::Struct { fields, .. } => match fields {
            Fields::Unit => body.push_str("Ok(Self)"),
            Fields::Named(fields) => {
                body.push_str(&named_fields_ctor(&name, "Self", fields, "__v"));
            }
            Fields::Tuple(fields) if fields.len() == 1 => {
                body.push_str("Ok(Self(::serde::Deserialize::from_value(__v)?))");
            }
            Fields::Tuple(fields) => {
                write!(
                    body,
                    "let __s = __v.as_seq().ok_or_else(|| ::serde::Error::custom(\"{name}: expected sequence\"))?;\n\
                     if __s.len() != {n} {{ return Err(::serde::Error::custom(\"{name}: wrong tuple arity\")); }}\n\
                     Ok(Self(",
                    n = fields.len()
                )
                .unwrap();
                for i in 0..fields.len() {
                    write!(body, "::serde::Deserialize::from_value(&__s[{i}])?, ").unwrap();
                }
                body.push_str("))");
            }
        },
        Item::Enum { variants, .. } => {
            // Externally tagged: "Variant" | {"Variant": payload}.
            body.push_str("match __v {\n::serde::Value::Str(__s) => match __s.as_str() {\n");
            for v in variants {
                if matches!(v.fields, Fields::Unit) {
                    write!(body, "\"{0}\" => Ok(Self::{0}),\n", v.name).unwrap();
                }
            }
            write!(
                body,
                "__other => Err(::serde::Error::custom(format!(\"{name}: unknown variant '{{__other}}'\"))),\n}},\n"
            )
            .unwrap();
            body.push_str(
                "::serde::Value::Map(__m) if __m.len() == 1 => {\nlet (__tag, __payload) = &__m[0];\nmatch __tag.as_str() {\n",
            );
            for v in variants {
                match &v.fields {
                    Fields::Unit => {}
                    Fields::Named(fields) => {
                        write!(body, "\"{0}\" => {{\n", v.name).unwrap();
                        body.push_str(&named_fields_ctor(
                            &name,
                            &format!("Self::{}", v.name),
                            fields,
                            "__payload",
                        ));
                        body.push_str("\n},\n");
                    }
                    Fields::Tuple(fields) if fields.len() == 1 => {
                        write!(
                            body,
                            "\"{0}\" => Ok(Self::{0}(::serde::Deserialize::from_value(__payload)?)),\n",
                            v.name
                        )
                        .unwrap();
                    }
                    Fields::Tuple(fields) => {
                        write!(
                            body,
                            "\"{0}\" => {{\nlet __s = __payload.as_seq().ok_or_else(|| ::serde::Error::custom(\"{name}::{0}: expected sequence\"))?;\n\
                             if __s.len() != {n} {{ return Err(::serde::Error::custom(\"{name}::{0}: wrong arity\")); }}\n\
                             Ok(Self::{0}(",
                            v.name,
                            n = fields.len()
                        )
                        .unwrap();
                        for i in 0..fields.len() {
                            write!(body, "::serde::Deserialize::from_value(&__s[{i}])?, ").unwrap();
                        }
                        body.push_str("))\n},\n");
                    }
                }
            }
            write!(
                body,
                "__other => Err(::serde::Error::custom(format!(\"{name}: unknown variant '{{__other}}'\"))),\n}}\n}},\n\
                 __other => Err(::serde::Error::custom(format!(\"{name}: unexpected value {{__other:?}}\"))),\n}}"
            )
            .unwrap();
        }
    }
    let out = format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n"
    );
    out.parse().expect("deserialize impl parses")
}

/// `Ok(Ctor { f1: ..., f2: ... })` reading named fields from map `src`.
fn named_fields_ctor(type_name: &str, ctor: &str, fields: &[Field], src: &str) -> String {
    let mut s = String::new();
    write!(
        s,
        "let __m = {src}.as_map().ok_or_else(|| ::serde::Error::custom(\"{type_name}: expected map\"))?;\n\
         Ok({ctor} {{\n"
    )
    .unwrap();
    for f in fields {
        unsupported_serde_attrs(&f.attrs);
        let fname = f.name.as_ref().unwrap();
        if is_skipped(&f.attrs) {
            write!(s, "{fname}: ::std::default::Default::default(),\n").unwrap();
        } else {
            write!(
                s,
                "{fname}: match __m.iter().find(|(__k, _)| __k == \"{fname}\") {{\n\
                 Some((_, __x)) => ::serde::Deserialize::from_value(__x)?,\n\
                 None => return Err(::serde::Error::custom(\"{type_name}: missing field '{fname}'\")),\n}},\n"
            )
            .unwrap();
        }
    }
    s.push_str("})");
    s
}
