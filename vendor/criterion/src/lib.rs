//! Offline stand-in for `criterion`.
//!
//! Implements the harness subset the workspace benches use —
//! `criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with `bench_with_input`/`sample_size`, `BenchmarkId`,
//! and `black_box` — with real timing: each benchmark warms up briefly,
//! then runs timed batches for a fixed measurement window and prints the
//! median per-iteration time with spread. No statistics beyond that, no
//! HTML reports, no baseline comparison.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(300);
const MEASURE: Duration = Duration::from_millis(1500);

/// The benchmark driver handed to each group function.
pub struct Criterion {
    /// Minimum timed batches per benchmark.
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_benchmark(id, self.sample_size, &mut f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 30,
        }
    }
}

/// A named parameterized benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id carrying just a parameter (group name supplies the rest).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the minimum number of timed batches per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        run_benchmark(&full, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Runs one benchmark without an explicit input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: BenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        run_benchmark(&full, self.sample_size, &mut f);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Collects timing for one benchmark body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` for the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_once<F: FnMut(&mut Bencher)>(f: &mut F, iters: u64) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, f: &mut F) {
    // Warm up and find an iteration count giving batches of ~MEASURE/samples.
    let mut iters = 1u64;
    let warmup_start = Instant::now();
    let mut per_iter = loop {
        let t = run_once(f, iters);
        if warmup_start.elapsed() >= WARMUP || t >= Duration::from_millis(50) {
            break t.as_secs_f64() / iters as f64;
        }
        iters = iters.saturating_mul(2);
    };
    if per_iter <= 0.0 {
        per_iter = 1e-9;
    }
    let batch_secs = (MEASURE.as_secs_f64() / sample_size as f64).max(1e-4);
    let batch_iters = ((batch_secs / per_iter) as u64).max(1);

    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    let measure_start = Instant::now();
    while samples.len() < sample_size
        || (measure_start.elapsed() < MEASURE && samples.len() < sample_size * 4)
    {
        let t = run_once(f, batch_iters);
        samples.push(t.as_secs_f64() / batch_iters as f64);
        if measure_start.elapsed() >= MEASURE && samples.len() >= sample_size {
            break;
        }
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let lo = samples[samples.len() / 20];
    let hi = samples[samples.len() - 1 - samples.len() / 20];
    println!(
        "{id:<55} time: [{} {} {}]  ({} samples x {batch_iters} iters)",
        fmt_time(lo),
        fmt_time(median),
        fmt_time(hi),
        samples.len()
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{:.2} s", secs)
    }
}

/// Declares a benchmark group function list, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_times_a_trivial_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }
}
