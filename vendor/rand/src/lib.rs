//! Offline stand-in for `rand` 0.8.
//!
//! Provides a deterministic [`rngs::SmallRng`] (Xoshiro256++ seeded through
//! SplitMix64, the same construction rand 0.8 uses on 64-bit targets) and
//! the trait surface this workspace touches: [`RngCore`], [`Rng`]
//! (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`], and
//! [`seq::SliceRandom`] (`shuffle`, `choose`, `choose_multiple`).
//!
//! Streams are deterministic per seed but are NOT bit-compatible with the
//! real crate; everything downstream treats the RNG as an opaque seeded
//! source, so only internal reproducibility matters.

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution subset).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = uniform_u128(rng, span);
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = uniform_u128(rng, span);
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform draw in `[0, span)` by rejection sampling on 64-bit words
/// (`span == 0` means the full 2^64 range and never occurs for our callers,
/// where spans come from non-empty ranges no wider than `u64`).
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u64 {
    debug_assert!(span > 0 && span <= 1 << 64);
    let span = span as u64 as u128;
    if span == 0 {
        return rng.next_u64();
    }
    let span = span as u64;
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as StandardSample>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as StandardSample>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution for `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0, 1]");
        <f64 as StandardSample>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named RNGs.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Xoshiro256++ — small, fast, and deterministic per seed.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand does for seed_from_u64.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice sampling helpers.
pub mod seq {
    use super::RngCore;

    /// Iterator over elements sampled without replacement.
    pub struct SliceChooseIter<'a, T>(std::vec::IntoIter<&'a T>);

    impl<'a, T> Iterator for SliceChooseIter<'a, T> {
        type Item = &'a T;
        fn next(&mut self) -> Option<&'a T> {
            self.0.next()
        }
        fn size_hint(&self) -> (usize, Option<usize>) {
            self.0.size_hint()
        }
    }

    /// Randomized operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns one uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Returns `amount` elements sampled without replacement (or the
        /// whole slice if shorter), in random order.
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> SliceChooseIter<'_, Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::uniform_u128(rng, i as u128 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = super::uniform_u128(rng, self.len() as u128) as usize;
                Some(&self[i])
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> SliceChooseIter<'_, T> {
            let amount = amount.min(self.len());
            // Partial Fisher–Yates over an index vector.
            let mut indices: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = i + super::uniform_u128(rng, (self.len() - i) as u128) as usize;
                indices.swap(i, j);
            }
            let picked: Vec<&T> = indices[..amount].iter().map(|&i| &self[i]).collect();
            SliceChooseIter(picked.into_iter())
        }
    }
}

/// `use rand::prelude::*` convenience.
pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..4).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0..2.0f64);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&i));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.7)).count();
        assert!((6500..7500).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_and_choose_cover_slice() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");

        let picked: Vec<u32> = v.choose_multiple(&mut rng, 10).copied().collect();
        assert_eq!(picked.len(), 10);
        let mut uniq = picked.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 10, "choose_multiple repeated an element");

        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn dyn_rngcore_receivers_work() {
        // generators.rs passes `&mut dyn RngCore` everywhere.
        let mut rng = SmallRng::seed_from_u64(4);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let v = dyn_rng.gen_range(0.0..1.0f64);
        assert!((0.0..1.0).contains(&v));
        assert!(dyn_rng.gen_bool(1.0));
    }
}
