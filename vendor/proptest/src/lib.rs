//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use: `proptest!`
//! with `arg in strategy` bindings and an optional
//! `#![proptest_config(...)]` header, range and `any::<T>()` strategies,
//! `prop_map`, `prop_oneof!`, `collection::vec`, `Just`, and the
//! `prop_assert*` family. Sampling is deterministic (seeded per case
//! index), and failing cases report their inputs but are not shrunk.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator state for one sampling session.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator for the given case seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x5DEE_CE66_D1CE_4E5B,
        }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A failed or rejected test case.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-`proptest!` configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases sampled per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A source of values for one property argument.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

impl_float_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7);
}

/// Types with a canonical full-domain strategy ([`any`]).
pub trait Arbitrary: Debug + Sized {
    /// Samples one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite-only: reinterpret bits, resampling NaN/inf.
        loop {
            let v = f64::from_bits(rng.next_u64());
            if v.is_finite() {
                return v;
            }
        }
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyValue<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyValue<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyValue<T> {
    AnyValue(std::marker::PhantomData)
}

/// Object-safe strategy view used by [`Union`] / `prop_oneof!`.
pub trait AnyStrategy<V> {
    /// Samples one value.
    fn sample_any(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> AnyStrategy<S::Value> for S {
    fn sample_any(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// Uniformly picks among alternative strategies (see `prop_oneof!`).
pub struct Union<V> {
    alts: Vec<Box<dyn AnyStrategy<V>>>,
}

impl<V> Union<V> {
    /// Builds a union over the given alternatives.
    pub fn new(alts: Vec<Box<dyn AnyStrategy<V>>>) -> Self {
        assert!(!alts.is_empty(), "prop_oneof! needs at least one arm");
        Union { alts }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.alts.len() as u64) as usize;
        self.alts[i].sample_any(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        /// Minimum length.
        pub min: usize,
        /// Maximum length (inclusive).
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for vectors of `element` with length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates `Vec`s from an element strategy.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len =
                self.size.min + rng.below((self.size.max - self.size.min + 1) as u64) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Common imports for property tests.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        AnyStrategy, Arbitrary, Just, ProptestConfig, Strategy, TestCaseError, TestRng, Union,
    };
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { ... }`
/// becomes a `#[test]` sampling its strategies `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                // Seed derived from the test name so cases are stable
                // across runs but differ between properties.
                let __name_seed: u64 = stringify!($name)
                    .bytes()
                    .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                        (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
                    });
                for __case in 0..__config.cases {
                    let mut __rng = $crate::TestRng::new(
                        __name_seed.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(__case as u64 + 1)),
                    );
                    $(let $arg = $crate::Strategy::sample(&$strat, &mut __rng);)+
                    let __inputs = format!(concat!($(stringify!($arg), " = {:?}; "),+), $(&$arg),+);
                    let __result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let Err(e) = __result {
                        panic!(
                            "proptest case {}/{} failed: {}\n  inputs: {}",
                            __case + 1, __config.cases, e, __inputs
                        );
                    }
                }
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($arg in $strat),+) $body)*
        }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {}\n  left: {:?}\n  right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Skips the current case when `cond` is false (counted as passing).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Ok(());
        }
    };
}

/// Uniformly picks one of several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(Box::new($strat) as Box<dyn $crate::AnyStrategy<_>>),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        fn ranges_stay_in_bounds(x in 3..17usize, f in -2.0..2.0f64) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        fn vec_lengths_respect_size(v in collection::vec(0u32..10, 2..=5)) {
            prop_assert!((2..=5).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        fn map_and_oneof_compose(
            x in prop_oneof![Just(1u32), Just(2u32), (5u32..8).prop_map(|v| v * 10)],
            y in any::<u64>(),
        ) {
            prop_assert!(x == 1 || x == 2 || (50u32..80).contains(&x));
            prop_assert_eq!(y, y);
            prop_assume!(x != 0);
            prop_assert_ne!(x, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]
        #[should_panic(expected = "proptest case")]
        fn failing_property_reports_inputs(x in 0u32..10) {
            prop_assert!(x > 100, "x was {x}");
        }
    }
}
