//! Quickstart: train Lorentz on a synthetic fleet and recommend SKUs for
//! new databases.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use lorentz::core::{LorentzConfig, LorentzPipeline, ModelKind, RecommendRequest};
use lorentz::simdata::fleet::FleetConfig;
use lorentz::types::{CustomerId, ResourceGroupId, ResourcePath, ServerOffering, SubscriptionId};

fn main() {
    // 1. A fleet of "existing" databases: profiles, user-selected SKUs, and
    //    telemetry censored at those SKUs — what a cloud operator actually
    //    has on hand. In production this comes from the billing and
    //    telemetry stores; here a simulator builds it.
    let synthetic = FleetConfig {
        n_servers: 600,
        seed: 7,
        base_demand: 1.3,
        server_sigma: 0.7,
        ..FleetConfig::default()
    }
    .generate()
    .expect("fleet generation succeeds");
    println!(
        "fleet: {} servers, {} profile features",
        synthetic.fleet.len(),
        synthetic.fleet.profiles().schema().len()
    );

    // 2. Train the three-stage pipeline with the paper's Table-2 defaults:
    //    Stage 1 rightsizes every existing workload, Stage 2 fits both
    //    provisioners per server offering, Stage 3 initializes the
    //    personalization profiles.
    let mut config = LorentzConfig::paper_defaults();
    config.hierarchical.min_bucket = 5; // small fleet, small buckets
    let trained = LorentzPipeline::new(config)
        .expect("config is valid")
        .train(&synthetic.fleet)
        .expect("training succeeds");
    println!(
        "trained: {} rightsized labels, prediction store v{} with {} keys",
        trained.labels().len(),
        trained.store().version(),
        trained.store().len()
    );

    // 3. Recommend a capacity for a brand-new database. Only profile data
    //    is available — no telemetry exists yet.
    let schema = synthetic.fleet.profiles().schema();
    println!("schema: {:?}", schema.names());
    // Reuse an existing vertical so the recommender has neighbors; the
    // customer itself is new.
    let reference = synthetic.fleet.profiles().row(0);
    let reference_strings: Vec<Option<String>> = (0..schema.len())
        .map(|f| {
            synthetic
                .fleet
                .profiles()
                .value_str(0, lorentz::types::FeatureId(f))
                .map(str::to_owned)
        })
        .collect();
    let mut profile: Vec<Option<&str>> = reference_strings.iter().map(|v| v.as_deref()).collect();
    profile[4] = Some("brand-new-customer"); // CloudCustomerGuid
    profile[5] = Some("new-subscription");
    profile[6] = Some("new-rg");
    let _ = reference;

    let request = RecommendRequest {
        profile,
        offering: ServerOffering::GeneralPurpose,
        path: ResourcePath::new(CustomerId(9001), SubscriptionId(1), ResourceGroupId(1)),
    };

    for kind in [ModelKind::Hierarchical, ModelKind::TargetEncoding] {
        match trained.recommend(&request, kind) {
            Ok(rec) => println!("{kind:?} -> {rec}"),
            Err(e) => println!("{kind:?} failed: {e}"),
        }
    }

    // 4. The same request served from the precomputed prediction store
    //    (the paper's low-latency production path).
    let stored = trained
        .recommend_from_store(&request)
        .expect("store lookup succeeds");
    println!("store -> {stored}");
}
