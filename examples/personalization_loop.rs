//! The §5.3 personalization loop: three customers with different
//! cost/performance preferences converge to personalized recommendations
//! from sparse, noisy satisfaction signals.
//!
//! ```text
//! cargo run --release --example personalization_loop
//! ```

use lorentz::simdata::persim::{PersonalizationSim, PersonalizationSimConfig};

fn main() {
    // Alice (λ=0), Bob (λ=+1.5, performance-hungry), Charlie (λ=−1.5,
    // cost-conscious); each with Dev (−1), Prod1 (+0.5), Prod2 (+1.5)
    // subscriptions. True preference = customer λ + subscription λ.
    let config = PersonalizationSimConfig::default();
    println!(
        "world: {} customers x {} subscriptions x {} resource groups",
        config.customer_lambdas.len(),
        config.subscription_lambdas.len(),
        config.resource_groups
    );
    println!(
        "signals: rate {:.0}%, noise {:.0}%, stage-2 error sigma {}",
        100.0 * config.signal_rate,
        100.0 * config.signal_noise,
        config.stage2_sigma
    );

    let mut sim = PersonalizationSim::new(config).expect("config is valid");
    println!("{} resources provisioned\n", sim.resources());

    println!(
        "{:>5} {:>10} {:>12} {:>12} {:>9}",
        "iter", "rmse", "p80 |error|", "% correct", "signals"
    );
    let initial = sim.metrics();
    println!(
        "{:>5} {:>10.3} {:>12.3} {:>12.1} {:>9}",
        0,
        initial.rmse,
        initial.p80_abs_error,
        100.0 * initial.correctly_provisioned,
        "-"
    );
    let mut converged_at = None;
    for iter in 1..=40 {
        let m = sim.step();
        if iter % 4 == 0 || iter == 1 {
            println!(
                "{:>5} {:>10.3} {:>12.3} {:>12.1} {:>9}",
                iter,
                m.rmse,
                m.p80_abs_error,
                100.0 * m.correctly_provisioned,
                m.signals
            );
        }
        if converged_at.is_none() && m.p80_abs_error <= 0.5 {
            converged_at = Some(iter);
        }
    }

    match converged_at {
        Some(iter) => println!(
            "\nconverged at iteration {iter}: 80% of profiles within half a\n\
             ladder step of the true preference (the paper's criterion)"
        ),
        None => println!("\ndid not converge within 40 iterations"),
    }

    // Show a few learned profiles vs their structure.
    println!("\nsample of learned lambda profiles:");
    for (path, offering, lambda) in sim.personalizer().iter().take(9) {
        println!("  {path} [{offering}] -> lambda {lambda:+.2}");
    }
}
