//! The production batch architecture of §4 (Fig. 8), end to end:
//!
//! 1. **Data integration** — ingest profile + telemetry batches (simulated);
//! 2. **Training pipeline** — retrain Lorentz, validate against the
//!    previous model, publish precomputed predictions;
//! 3. **Publish** — versioned prediction-store swap;
//! 4. **Serve** — low-latency lookups for incoming provisioning requests,
//!    with λ personalization applied per customer.
//!
//! ```text
//! cargo run --release --example fleet_provisioning
//! ```

use lorentz::core::evaluate;
use lorentz::core::{
    LorentzConfig, LorentzPipeline, ModelKind, RecommendRequest, Rightsizer, TrainedLorentz,
};
use lorentz::simdata::fleet::FleetConfig;
use lorentz::types::{
    Capacity, CustomerId, FeatureId, ResourceGroupId, ResourcePath, ServerOffering, SubscriptionId,
};

/// One daily batch: generate "fresh" fleet data, retrain, and gate the
/// publish on validation metrics.
fn daily_batch(day: u64, previous: Option<&TrainedLorentz>) -> TrainedLorentz {
    // (A) Data integration: a fresh batch of profile + usage data.
    let synthetic = FleetConfig {
        n_servers: 500,
        seed: 100 + day,
        base_demand: 1.3,
        server_sigma: 0.7,
        ..FleetConfig::default()
    }
    .generate()
    .expect("fleet generation succeeds");

    // (B) Training pipeline.
    let mut config = LorentzConfig::paper_defaults();
    config.hierarchical.min_bucket = 5;
    config.target_encoding.boosting.n_trees = 40;
    let trained = LorentzPipeline::new(config)
        .expect("config is valid")
        .train(&synthetic.fleet)
        .expect("training succeeds");

    // Validation gate: the fresh model's rightsized capacities must not
    // throttle the observed workloads (the Stage-1 guarantee), otherwise we
    // would keep serving the previous model.
    let rightsizer = Rightsizer::new(&trained.config().rightsizer).expect("valid");
    let capacities: Vec<Capacity> = trained
        .outcomes()
        .iter()
        .map(|o| o.capacity.clone())
        .collect();
    let st = evaluate::slack_throttle(&rightsizer, synthetic.fleet.traces(), &capacities, 0.0)
        .expect("evaluation succeeds");
    println!(
        "day {day}: retrained on {} servers | rightsized throttling {:.1}% | store v{} ({} keys)",
        synthetic.fleet.len(),
        100.0 * st.throttling_ratio,
        trained.store().version(),
        trained.store().len()
    );
    if st.throttling_ratio > 0.0 {
        if let Some(prev) = previous {
            println!("day {day}: validation failed, keeping previous model");
            // In a real deployment we would return the previous model; the
            // clone here stands in for "serve yesterday's store".
            let _ = prev;
        }
    }
    trained
}

fn main() {
    // Three daily batches; each publish bumps the (per-deployment) store
    // version.
    let day1 = daily_batch(1, None);
    let day2 = daily_batch(2, Some(&day1));
    let mut serving = daily_batch(3, Some(&day2));

    // (C) Serving: provisioning requests answered from the precomputed
    // store, most-granular hierarchy level first.
    // The trained deployment keeps a vocab-only view of the profile table
    // (no rows), so a known value comes from the vocabulary, not a row.
    let schema_len = serving.profiles().schema().len();
    let vertical_vocab = serving.profiles().vocab(FeatureId(2));
    let known_vertical = (!vertical_vocab.is_empty()).then(|| vertical_vocab.value(0).to_owned());
    let mut profile: Vec<Option<&str>> = vec![None; schema_len];
    profile[2] = known_vertical.as_deref();

    let path = ResourcePath::new(CustomerId(777), SubscriptionId(1), ResourceGroupId(1));
    let request = RecommendRequest {
        profile: profile.clone(),
        offering: ServerOffering::GeneralPurpose,
        path,
    };
    let rec = serving
        .recommend_from_store(&request)
        .expect("store lookup succeeds");
    println!("request (vertical known, rest missing) -> {rec}");

    // A fully-anonymous request falls back to the per-offering default.
    let anonymous = RecommendRequest {
        profile: vec![None; schema_len],
        offering: ServerOffering::GeneralPurpose,
        path,
    };
    let rec = serving
        .recommend_from_store(&anonymous)
        .expect("default lookup succeeds");
    println!("anonymous request -> {rec}");

    // Feedback loop: the customer keeps filing throttling complaints; each
    // one nudges λ up by the learning rate until the recommendation climbs
    // a ladder step.
    let mut gamma = 0.0;
    for _ in 0..3 {
        gamma = serving.apply_ticket(
            path,
            ServerOffering::GeneralPurpose,
            &lorentz::core::personalizer::signals::CriTicket::new(
                "high cpu utilization every evening",
                "db too slow",
                "scaled up",
            ),
        );
    }
    let rec = serving
        .recommend_from_store(&request)
        .expect("store lookup succeeds");
    println!("after 3 CRIs (each gamma={gamma:+.0}) -> {rec}");

    // Live-model comparison (the alternate online architecture of §4).
    let live = serving
        .recommend(&request, ModelKind::Hierarchical)
        .expect("live recommendation succeeds");
    println!("live hierarchical model -> {live}");
}
