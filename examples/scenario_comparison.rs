//! Compares Lorentz across fleet regimes: the paper's two calibrations, a
//! data-scarce startup, and a clean enterprise estate — showing where each
//! provisioner earns its keep.
//!
//! ```text
//! cargo run --release --example scenario_comparison
//! ```

use lorentz::core::validation::validate_deployment;
use lorentz::core::{fleet_report, CostModel, LorentzConfig, LorentzPipeline, ModelKind};
use lorentz::ml::three_way_split;
use lorentz::simdata::fleet::FleetConfig;
use lorentz::simdata::scenarios;
use lorentz::telemetry::generators::SamplingConfig;

fn sized(mut config: FleetConfig) -> FleetConfig {
    config.n_servers = 400;
    config.seed = 31;
    config.sampling = SamplingConfig {
        duration_secs: 6.0 * 3600.0,
        mean_interval_secs: 60.0,
        jitter_frac: 0.2,
    };
    config
}

fn main() {
    let mut lorentz_config = LorentzConfig::paper_defaults();
    lorentz_config.hierarchical.min_bucket = 5;
    lorentz_config.target_encoding.boosting.n_trees = 40;

    println!(
        "{:<22} {:>10} {:>12} {:>14} {:>14}",
        "scenario", "savings", "censored", "hier RMSE", "te RMSE"
    );
    for (name, scenario) in [
        ("paper-5.2", scenarios::paper_section52()),
        ("paper-2.2", scenarios::paper_section22()),
        ("startup (scarce)", scenarios::data_scarce_startup()),
        ("enterprise (clean)", scenarios::enterprise()),
    ] {
        let synth = sized(scenario).generate().expect("generation succeeds");

        // Fleet health: projected rightsizing savings.
        let report = fleet_report(&lorentz_config, &CostModel::default(), &synth.fleet)
            .expect("report builds");

        // Train on 80%, validate the provisioners on the 10% test split.
        let split = three_way_split(synth.fleet.len(), 0.8, 0.1, 0.1, 31).expect("splits");
        let deployment = LorentzPipeline::new(lorentz_config.clone())
            .expect("config valid")
            .train(&synth.fleet.subset(&split.train))
            .expect("training succeeds");
        let validation = synth.fleet.subset(&split.test);
        let rmse = |kind: ModelKind| -> String {
            validate_deployment(&deployment, &validation, kind)
                .map(|r| format!("{:.3}", r.label_rmse_log2))
                .unwrap_or_else(|_| "n/a".into())
        };

        println!(
            "{name:<22} {:>9.1}% {:>11.1}% {:>14} {:>14}",
            100.0 * report.projected_savings,
            100.0 * report.censored as f64 / report.servers as f64,
            rmse(ModelKind::Hierarchical),
            rmse(ModelKind::TargetEncoding),
        );
    }
    println!(
        "\nRMSE = held-out log2 error vs rightsized labels; lower is better.\n\
         The concentrated paper-5.2 fleet is near-trivially predictable (most\n\
         labels are the minimum SKU); regimes with diverse demand are harder\n\
         but also waste more, so rightsizing saves the most where prediction\n\
         is hardest."
    );
}
