//! Multi-resource rightsizing (the paper's §7 extension: "Lorentz can be
//! extended to suggest capacities for multiple resources").
//!
//! The rightsizer is dimension-generic: this example provisions over a
//! (vCores, memory) space with per-dimension thresholds — memory throttling
//! is destructive (OOM kills), so its `η` is stricter and its slack target
//! lower, exactly the reprioritization §3.2 describes.
//!
//! ```text
//! cargo run --release --example multi_resource
//! ```

use lorentz::core::{Rightsizer, RightsizerConfig};
use lorentz::telemetry::generators::{SamplingConfig, WorkloadGenerator};
use lorentz::telemetry::{Aggregator, EmptyBinPolicy, UsageTrace, WorkloadSpec};
use lorentz::types::{Capacity, ResourceSpace, ServerOffering, SkuCatalog};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    // A two-dimensional catalog: vCores with 4 GiB of memory per core.
    let catalog = SkuCatalog::azure_postgres_with_memory(ServerOffering::GeneralPurpose);
    println!("catalog: {catalog}");
    for sku in catalog.skus() {
        println!("  {sku}");
    }

    // Per-dimension rightsizing policy: memory is throttle-averse (lower
    // eta headroom trigger) and kept at a lower slack target than CPU.
    let config = RightsizerConfig {
        eta: vec![0.95, 0.90],
        slack_target: vec![0.5, 0.4],
        ..RightsizerConfig::default()
    };
    let rightsizer = Rightsizer::new(&config).expect("config is valid");

    // A workload that is CPU-light but memory-heavy (a caching layer):
    // demand peaks ~2.5 vCores but ~24 GiB of memory.
    let sampling = SamplingConfig {
        duration_secs: 86_400.0,
        mean_interval_secs: 60.0,
        jitter_frac: 0.2,
    };
    let mut rng = SmallRng::seed_from_u64(11);
    let cpu = WorkloadSpec::typical_oltp(2.0).generate(&sampling, &mut rng);
    let memory = WorkloadSpec::Sum(vec![
        WorkloadSpec::Constant { level: 18.0 },
        WorkloadSpec::Diurnal {
            base: 0.0,
            amplitude: 6.0,
            period_secs: 86_400.0,
            phase: 0.0,
        },
    ])
    .generate(&sampling, &mut rng);

    let space = ResourceSpace::vcores_memory();
    let trace = UsageTrace::from_raw(
        space,
        &[cpu, memory],
        300.0,
        Aggregator::Max,
        EmptyBinPolicy::HoldLast,
    )
    .expect("trace builds");
    println!(
        "\nworkload peaks: {:.1} vCores, {:.1} GiB memory",
        trace.peak()[0],
        trace.peak()[1]
    );

    // The user picked 4 vCores / 16 GiB: CPU is fine, memory throttles.
    let user = Capacity::new(vec![4.0, 16.0]).expect("positive");
    let throttling = rightsizer.throttling(&trace, &user).expect("arity matches");
    println!(
        "user selection {user}: throttling {:.1}% of bins (memory-driven)",
        100.0 * throttling
    );

    // Telemetry is censored per dimension (Eq. 1), then rightsized.
    let observed = trace.censored(&user).expect("arity matches");
    let outcome = rightsizer
        .rightsize(&observed, &user, &catalog)
        .expect("rightsizing succeeds");
    println!(
        "rightsized -> {} (censored branch: {})",
        catalog.get(outcome.sku_index),
        outcome.censored
    );
    println!(
        "slack at chosen capacity: CPU {:.0}%, memory {:.0}%",
        100.0 * outcome.slack_at_chosen[0],
        100.0 * outcome.slack_at_chosen[1]
    );
    println!(
        "\nbecause memory and vCores are coupled on this ladder, the memory\n\
         demand drives the SKU up even though the CPU alone would fit a\n\
         smaller one — the multi-dimension form of Eq. 3's 'any dimension\n\
         throttles' rule."
    );
}
