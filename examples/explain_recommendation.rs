//! Explainability (challenge C3): every Lorentz recommendation ships with
//! the "search result" behind it — which similar customers were consulted,
//! what they were provisioned, and what λ adjustment was applied — and the
//! user can override their λ.
//!
//! ```text
//! cargo run --release --example explain_recommendation
//! ```

use lorentz::core::{Explanation, LorentzConfig, LorentzPipeline, ModelKind, RecommendRequest};
use lorentz::simdata::fleet::FleetConfig;
use lorentz::types::{
    CustomerId, FeatureId, ResourceGroupId, ResourcePath, ServerOffering, SubscriptionId,
};

fn main() {
    let synthetic = FleetConfig {
        n_servers: 800,
        seed: 21,
        base_demand: 1.3,
        server_sigma: 0.7,
        ..FleetConfig::default()
    }
    .generate()
    .expect("fleet generation succeeds");

    let mut config = LorentzConfig::paper_defaults();
    config.hierarchical.min_bucket = 5;
    config.target_encoding.boosting.n_trees = 40;
    let mut trained = LorentzPipeline::new(config)
        .expect("config is valid")
        .train(&synthetic.fleet)
        .expect("training succeeds");

    // The learned hierarchy itself is part of the explanation surface.
    let hierarchical = trained
        .hierarchical(ServerOffering::GeneralPurpose)
        .expect("model trained");
    let schema = synthetic.fleet.profiles().schema();
    let chain: Vec<&str> = hierarchical
        .chain()
        .features()
        .iter()
        .map(|&f| schema.name(f))
        .collect();
    println!(
        "learned profile hierarchy (coarse -> fine): {}",
        chain.join(" > ")
    );

    // A request from a known vertical but an unknown customer.
    let vertical = synthetic.fleet.profiles().value_str(0, FeatureId(2));
    let segment = synthetic.fleet.profiles().value_str(0, FeatureId(0));
    let industry = synthetic.fleet.profiles().value_str(0, FeatureId(1));
    let profile: Vec<Option<&str>> = vec![
        segment,
        industry,
        vertical,
        None, // VerticalCategoryName missing
        Some("unknown-customer"),
        Some("unknown-subscription"),
        Some("unknown-rg"),
    ];
    let path = ResourcePath::new(CustomerId(4242), SubscriptionId(7), ResourceGroupId(3));
    let request = RecommendRequest {
        profile,
        offering: ServerOffering::GeneralPurpose,
        path,
    };

    println!("\n--- hierarchical recommendation ---");
    let rec = trained
        .recommend(&request, ModelKind::Hierarchical)
        .expect("recommendation succeeds");
    println!("SKU: {}", rec.sku);
    println!("why: {}", rec.explanation);
    if let Explanation::HierarchicalBucket { bucket, .. } = &rec.explanation {
        println!(
            "reference instances: {} similar DBs, rightsized to {}..{} vCores (median {})",
            bucket.size, bucket.min, bucket.max, bucket.median
        );
    }

    println!("\n--- target-encoding recommendation ---");
    let rec = trained
        .recommend(&request, ModelKind::TargetEncoding)
        .expect("recommendation succeeds");
    println!("SKU: {}", rec.sku);
    println!("why: {}", rec.explanation);

    // The user disagrees: they want more headroom. §4 lets them adjust
    // their perceived cost/performance preference directly.
    println!("\n--- user overrides lambda to +1 (one ladder step up) ---");
    trained
        .personalizer_mut()
        .set_lambda(path, ServerOffering::GeneralPurpose, 1.0);
    let rec = trained
        .recommend(&request, ModelKind::Hierarchical)
        .expect("recommendation succeeds");
    println!(
        "SKU: {} (stage-2 said {:.0} vCores, lambda {:+.1})",
        rec.sku, rec.stage2_capacity, rec.lambda
    );
}
