//! Synthetic workload upscaling (§5.2).
//!
//! The production Azure PostgreSQL dataset is so left-skewed (mean max
//! utilization 1.2 vCores; the rightsizer picks the minimum SKU for 86% of
//! DBs) that all provisioners trivially recommend the smallest choices. To
//! make the label set diverse enough to differentiate models, the paper
//! upscales workloads as a function of their profile data:
//!
//! 1. select three hierarchy features and give them global scale factors —
//!    `ResourceGroup: 1`, `CloudCustomerGuid: 1`, `VerticalName: 3`;
//! 2. per unique value of each feature, assign either that feature's global
//!    factor or 0 with equal likelihood;
//! 3. each workload's total factor `χ_w` is the sum of its values' assigned
//!    factors (between 0 and 1 + 1 + 3 = 5);
//! 4. upscale the workload to `2^χ_w · w[n]`;
//! 5. recompute the rightsized capacities (done by re-running Stage 1).
//!
//! Because the scaling is keyed on profile *values*, the upscaled demand
//! stays learnable from profile data — the whole point of the exercise.
//!
//! We also lift each user-selected capacity to the SKU covering
//! `2^χ_w · c⁰` (saturating at the catalog top) and re-censor telemetry at
//! the lifted capacity, keeping the telemetry physically consistent
//! (Eq. 1). Max-aggregation commutes with censoring, so censoring the
//! binned ground truth is exact.

use crate::fleet::SyntheticFleet;
use lorentz_types::{Capacity, FeatureId, LorentzError, SkuCatalog};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Upscaling parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UpscaleConfig {
    /// `(feature name, global scale factor)` pairs — the paper's step 1.
    pub feature_factors: Vec<(String, f64)>,
    /// Seed for the per-value factor assignment (step 2).
    pub seed: u64,
}

impl Default for UpscaleConfig {
    fn default() -> Self {
        Self {
            feature_factors: vec![
                ("ResourceGroup".to_owned(), 1.0),
                ("CloudCustomerGuid".to_owned(), 1.0),
                ("VerticalName".to_owned(), 3.0),
            ],
            seed: 1,
        }
    }
}

/// Summary of an upscaling pass.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UpscaleReport {
    /// Mean `χ_w` across workloads.
    pub mean_chi: f64,
    /// Maximum possible `χ` (sum of the global factors).
    pub max_chi: f64,
    /// Mean ground-truth peak demand before upscaling.
    pub mean_peak_before: f64,
    /// Mean ground-truth peak demand after upscaling.
    pub mean_peak_after: f64,
    /// Number of workloads whose `χ_w > 0`.
    pub scaled_rows: usize,
}

/// Applies the §5.2 upscaling in place.
///
/// # Errors
/// Returns [`LorentzError::InvalidProfile`] if a configured feature is not
/// in the fleet's schema, or [`LorentzError::InvalidConfig`] for
/// non-finite/negative factors.
pub fn upscale_fleet(
    synth: &mut SyntheticFleet,
    config: &UpscaleConfig,
) -> Result<UpscaleReport, LorentzError> {
    let schema = synth.fleet.profiles().schema().clone();
    let mut rng = SmallRng::seed_from_u64(config.seed);

    // Steps 1-2: per-value factor assignment.
    let mut assignments: Vec<(FeatureId, HashMap<u32, f64>)> = Vec::new();
    for (name, factor) in &config.feature_factors {
        if !factor.is_finite() || *factor < 0.0 {
            return Err(LorentzError::InvalidConfig(format!(
                "scale factor for {name} must be finite and >= 0, got {factor}"
            )));
        }
        let feature = schema.feature_id(name).ok_or_else(|| {
            LorentzError::InvalidProfile(format!("upscale feature '{name}' not in schema"))
        })?;
        let cardinality = synth.fleet.profiles().cardinality(feature);
        let map: HashMap<u32, f64> = (0..cardinality as u32)
            .map(|v| (v, if rng.gen_bool(0.5) { *factor } else { 0.0 }))
            .collect();
        assignments.push((feature, map));
    }

    let n = synth.fleet.len();
    let mean_peak_before = synth.ground_truth.iter().map(|t| t.peak()[0]).sum::<f64>() / n as f64;

    // Steps 3-4: per-workload χ and scaling.
    let mut chi_sum = 0.0;
    let mut scaled_rows = 0usize;
    for row in 0..n {
        let mut chi = 0.0;
        for (feature, map) in &assignments {
            if let Some(v) = synth.fleet.profiles().value_id(row, *feature) {
                chi += map.get(&v).copied().unwrap_or(0.0);
            }
        }
        chi_sum += chi;
        if chi == 0.0 {
            continue;
        }
        scaled_rows += 1;
        let scale = chi.exp2();

        // Scale the ground truth.
        let truth = synth.ground_truth[row].scaled(scale)?;

        // Lift the user capacity to the SKU covering the scaled choice and
        // re-censor the telemetry at it.
        let offering = synth.fleet.offerings()[row];
        let catalog = SkuCatalog::azure_postgres(offering);
        let old_cap = synth.fleet.user_capacities()[row].primary();
        let target = Capacity::scalar(old_cap * scale);
        let new_cap = catalog
            .round_up(&target)
            .map(|s| s.capacity.clone())
            .unwrap_or_else(|| catalog.maximum().capacity.clone());
        let telemetry = truth.censored(&new_cap)?;

        synth.fleet.replace_user_capacity(row, new_cap)?;
        synth.fleet.replace_trace(row, telemetry)?;
        synth.ground_truth[row] = truth;
    }

    let mean_peak_after = synth.ground_truth.iter().map(|t| t.peak()[0]).sum::<f64>() / n as f64;

    Ok(UpscaleReport {
        mean_chi: chi_sum / n as f64,
        max_chi: config.feature_factors.iter().map(|(_, f)| f).sum(),
        mean_peak_before,
        mean_peak_after,
        scaled_rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::FleetConfig;
    use lorentz_telemetry::generators::SamplingConfig;

    fn small_fleet() -> SyntheticFleet {
        FleetConfig {
            n_servers: 150,
            sampling: SamplingConfig {
                duration_secs: 7200.0,
                mean_interval_secs: 60.0,
                jitter_frac: 0.2,
            },
            ..FleetConfig::default()
        }
        .generate()
        .unwrap()
    }

    #[test]
    fn upscaling_increases_demand_diversity() {
        let mut f = small_fleet();
        let report = upscale_fleet(&mut f, &UpscaleConfig::default()).unwrap();
        assert!(report.mean_peak_after > report.mean_peak_before);
        assert!(report.scaled_rows > 20, "scaled {}", report.scaled_rows);
        assert!(report.mean_chi > 0.0 && report.mean_chi < report.max_chi);
        assert_eq!(report.max_chi, 5.0);
    }

    #[test]
    fn chi_is_bounded_by_factor_sum() {
        let mut f = small_fleet();
        let before: Vec<f64> = f.ground_truth.iter().map(|t| t.peak()[0]).collect();
        upscale_fleet(&mut f, &UpscaleConfig::default()).unwrap();
        for (row, &b) in before.iter().enumerate() {
            let after = f.ground_truth[row].peak()[0];
            let ratio = after / b;
            assert!(
                (1.0 - 1e-9..=32.0 + 1e-9).contains(&ratio),
                "row {row}: ratio {ratio} outside [1, 2^5]"
            );
        }
    }

    #[test]
    fn telemetry_stays_censored_after_upscaling() {
        let mut f = small_fleet();
        upscale_fleet(&mut f, &UpscaleConfig::default()).unwrap();
        for row in 0..f.fleet.len() {
            let cap = f.fleet.user_capacities()[row].primary();
            let peak = f.fleet.traces()[row].peak()[0];
            assert!(peak <= cap + 1e-9, "row {row}: {peak} > {cap}");
        }
    }

    #[test]
    fn same_profile_value_scales_together() {
        let mut f = small_fleet();
        let feature = f
            .fleet
            .profiles()
            .schema()
            .feature_id("VerticalName")
            .unwrap();
        let before: Vec<f64> = f.ground_truth.iter().map(|t| t.peak()[0]).collect();
        upscale_fleet(
            &mut f,
            &UpscaleConfig {
                feature_factors: vec![("VerticalName".into(), 3.0)],
                seed: 1,
            },
        )
        .unwrap();
        // Group rows by vertical value; each group's ratio is constant
        // (either 1 or 8).
        let mut ratios: HashMap<u32, f64> = HashMap::new();
        for (row, peak_before) in before.iter().enumerate() {
            if let Some(v) = f.fleet.profiles().value_id(row, feature) {
                let ratio = f.ground_truth[row].peak()[0] / peak_before;
                let entry = ratios.entry(v).or_insert(ratio);
                assert!(
                    (*entry - ratio).abs() < 1e-9,
                    "vertical {v} has inconsistent ratios {entry} vs {ratio}"
                );
            }
        }
        // Both factor outcomes occur.
        assert!(ratios.values().any(|&r| (r - 1.0).abs() < 1e-9));
        assert!(ratios.values().any(|&r| (r - 8.0).abs() < 1e-9));
    }

    #[test]
    fn unknown_feature_rejected() {
        let mut f = small_fleet();
        let bad = UpscaleConfig {
            feature_factors: vec![("NoSuchFeature".into(), 1.0)],
            seed: 0,
        };
        assert!(upscale_fleet(&mut f, &bad).is_err());
        let bad = UpscaleConfig {
            feature_factors: vec![("VerticalName".into(), -1.0)],
            seed: 0,
        };
        assert!(upscale_fleet(&mut f, &bad).is_err());
    }

    #[test]
    fn upscaling_is_deterministic_per_seed() {
        let mut a = small_fleet();
        let mut b = small_fleet();
        upscale_fleet(&mut a, &UpscaleConfig::default()).unwrap();
        upscale_fleet(&mut b, &UpscaleConfig::default()).unwrap();
        let pa: Vec<f64> = a.ground_truth.iter().map(|t| t.peak()[0]).collect();
        let pb: Vec<f64> = b.ground_truth.iter().map(|t| t.peak()[0]).collect();
        assert_eq!(pa, pb);
    }
}
