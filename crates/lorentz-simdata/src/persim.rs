//! The §5.3 personalization simulation.
//!
//! Three customers (Alice λ=0, Bob λ=1.5, Charlie λ=−1.5), each with three
//! subscriptions ("Dev" λ=−1, "Prod1" λ=0.5, "Prod2" λ=1.5); the true
//! sensitivity of a resource is the sum of its customer's and
//! subscription's λ. Each subscription holds three resource groups with
//! 1–5 resources each; every resource gets a random Stage-2 recommendation
//! `c*` from `C = {1, 2, 4, ..., 128}` and a log-normal Stage-2 error ε
//! (`log2 ε ~ N(0, σ²)`), making the customer-optimal capacity
//! `c̄** = 2^λtrue (c* + ε)`.
//!
//! The simulation loop (Steps 1–3 of §5.3): generate ±1 signals for
//! mis-provisioned resources (subject to a signal rate and sign-flipping
//! noise), propagate them through the personalizer (Algorithm 1), and
//! recompute predictions `c_t** = 2^λ̂ c*` discretized to `C`.

use lorentz_core::{Personalizer, PersonalizerConfig, SatisfactionSignal};
use lorentz_types::{
    Capacity, CustomerId, LorentzError, ResourceGroupId, ResourcePath, ResourceSpace,
    ServerOffering, Sku, SkuCatalog, SubscriptionId,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Simulation parameters (§5.3 defaults).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PersonalizationSimConfig {
    /// True per-customer sensitivities (paper: Alice 0, Bob 1.5, Charlie
    /// −1.5).
    pub customer_lambdas: Vec<f64>,
    /// True per-subscription sensitivities (paper: Dev −1, Prod1 0.5,
    /// Prod2 1.5).
    pub subscription_lambdas: Vec<f64>,
    /// Resource groups per subscription.
    pub resource_groups: usize,
    /// Resources per resource group are drawn uniformly from
    /// `1..=max_resources`.
    pub max_resources: usize,
    /// Stage-2 error σ: `log2 ε ~ N(0, σ²)`.
    pub stage2_sigma: f64,
    /// Half-width of an additional per-resource-group preference offset,
    /// drawn uniformly from `[-spread, +spread]` and added to the
    /// customer + subscription λ. The paper's §5.3 world sets this to 0
    /// (all RGs in a subscription share one preference); the
    /// signal-sharing ablation uses it to create the "RG-specific
    /// preferences" of §3.4.2 under which ρ_S > 0 hurts convergence.
    pub rg_lambda_spread: f64,
    /// Probability a mis-provisioned resource emits a signal each
    /// iteration.
    pub signal_rate: f64,
    /// Probability an emitted signal has its sign flipped.
    pub signal_noise: f64,
    /// Personalizer hyperparameters (Table 2: lr 0.3, decay 0.25).
    pub personalizer: PersonalizerConfig,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PersonalizationSimConfig {
    fn default() -> Self {
        Self {
            customer_lambdas: vec![0.0, 1.5, -1.5],
            subscription_lambdas: vec![-1.0, 0.5, 1.5],
            resource_groups: 3,
            max_resources: 5,
            stage2_sigma: 0.1,
            rg_lambda_spread: 0.0,
            signal_rate: 0.4,
            signal_noise: 0.13,
            // §3.4.2: "as signals become more common, it may be preferable
            // to set ρ_S = 0 ... allowing better convergence of λ to the
            // true preference in each RG". The §5.3 simulation emits
            // signals at a 40% rate — common — and the true λ differs per
            // subscription, so cross-RG/subscription sharing would bias
            // λ̂ toward the customer mean and stall below the paper's
            // reported accuracy. Stratification decay keeps Table 2's 0.25.
            personalizer: PersonalizerConfig {
                rho_resource_group: 0.0,
                rho_subscription: 0.0,
                ..PersonalizerConfig::default()
            },
            seed: 0,
        }
    }
}

impl PersonalizationSimConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns [`LorentzError::InvalidConfig`] for out-of-range values.
    pub fn validate(&self) -> Result<(), LorentzError> {
        if self.customer_lambdas.is_empty() || self.subscription_lambdas.is_empty() {
            return Err(LorentzError::InvalidConfig(
                "need at least one customer and one subscription".into(),
            ));
        }
        if self.resource_groups == 0 || self.max_resources == 0 {
            return Err(LorentzError::InvalidConfig(
                "resource_groups and max_resources must be >= 1".into(),
            ));
        }
        for (name, p) in [
            ("signal_rate", self.signal_rate),
            ("signal_noise", self.signal_noise),
        ] {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(LorentzError::InvalidConfig(format!(
                    "{name} must be in [0, 1], got {p}"
                )));
            }
        }
        if !self.stage2_sigma.is_finite() || self.stage2_sigma < 0.0 {
            return Err(LorentzError::InvalidConfig(
                "stage2_sigma must be finite and >= 0".into(),
            ));
        }
        if !self.rg_lambda_spread.is_finite() || self.rg_lambda_spread < 0.0 {
            return Err(LorentzError::InvalidConfig(
                "rg_lambda_spread must be finite and >= 0".into(),
            ));
        }
        self.personalizer.validate()
    }
}

/// One simulated resource.
#[derive(Debug, Clone)]
struct SimResource {
    path: ResourcePath,
    offering: ServerOffering,
    /// Stage-2 recommendation `c*`.
    c_star: f64,
    /// Customer-optimal capacity `c̄**` (continuous).
    c_opt: f64,
    /// True sensitivity `λ*` for error reporting.
    lambda_true: f64,
}

/// Per-iteration convergence metrics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimMetrics {
    /// RMSE of `λ̂ − λ*` across resources.
    pub rmse: f64,
    /// 80th percentile of `|λ̂ − λ*|`.
    pub p80_abs_error: f64,
    /// Fraction of resources whose discretized prediction equals the
    /// discretized optimal capacity.
    pub correctly_provisioned: f64,
    /// Signals emitted this iteration.
    pub signals: usize,
}

/// The simulation world.
pub struct PersonalizationSim {
    config: PersonalizationSimConfig,
    catalog: SkuCatalog,
    resources: Vec<SimResource>,
    personalizer: Personalizer,
    rng: SmallRng,
}

impl PersonalizationSim {
    /// Builds the world: customers × subscriptions × resource groups ×
    /// resources, with random `c*` and Stage-2 error.
    ///
    /// # Errors
    /// Returns [`LorentzError::InvalidConfig`] for invalid configs.
    pub fn new(config: PersonalizationSimConfig) -> Result<Self, LorentzError> {
        config.validate()?;
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let catalog = sim_catalog();
        let mut personalizer = Personalizer::new(config.personalizer)?;
        let mut resources = Vec::new();

        for (ci, &cl) in config.customer_lambdas.iter().enumerate() {
            for (si, &sl) in config.subscription_lambdas.iter().enumerate() {
                for rg in 0..config.resource_groups {
                    let rg_offset = if config.rg_lambda_spread > 0.0 {
                        rng.gen_range(-config.rg_lambda_spread..=config.rg_lambda_spread)
                    } else {
                        0.0
                    };
                    let lambda_true = cl + sl + rg_offset;
                    let path = ResourcePath::new(
                        CustomerId(ci as u32),
                        SubscriptionId((ci * config.subscription_lambdas.len() + si) as u32),
                        ResourceGroupId(
                            (ci * config.subscription_lambdas.len() * config.resource_groups
                                + si * config.resource_groups
                                + rg) as u32,
                        ),
                    );
                    personalizer.register(path);
                    let n_resources = rng.gen_range(1..=config.max_resources);
                    for _ in 0..n_resources {
                        let c_star = *catalog
                            .skus()
                            .get(rng.gen_range(0..catalog.len()))
                            .map(|s| &s.capacity)
                            .expect("catalog non-empty")
                            .as_slice()
                            .first()
                            .expect("scalar capacity");
                        // ε: log2 ε ~ N(0, σ²) — ε multiplies c* (the paper
                        // writes c* + ε with ε log-normal; a multiplicative
                        // log-normal error is the consistent reading in
                        // log2 space).
                        let eps = (config.stage2_sigma * gauss(&mut rng)).exp2();
                        let offering = ServerOffering::ALL[rng.gen_range(0..3usize)];
                        let c_opt = lambda_true.exp2() * c_star * eps;
                        resources.push(SimResource {
                            path,
                            offering,
                            c_star,
                            c_opt,
                            lambda_true,
                        });
                    }
                }
            }
        }

        Ok(Self {
            config,
            catalog,
            resources,
            personalizer,
            rng,
        })
    }

    /// Number of simulated resources.
    pub fn resources(&self) -> usize {
        self.resources.len()
    }

    /// Read access to the evolving personalizer.
    pub fn personalizer(&self) -> &Personalizer {
        &self.personalizer
    }

    /// The current discretized prediction for resource `i`
    /// (`c_t** = 2^λ̂ c*`, snapped to `C`).
    fn predicted(&self, r: &SimResource) -> Sku {
        self.personalizer
            .adjust(r.c_star, &r.path, r.offering, &self.catalog)
    }

    /// Runs one simulation iteration (Steps 1–3) and returns the metrics
    /// *after* the profile update.
    pub fn step(&mut self) -> SimMetrics {
        // Step 1: generate signals for mis-provisioned resources.
        let mut signals = Vec::new();
        for r in &self.resources {
            // §5.3 Step 1: over-provisioned (c_t** > c̄**) yields −1,
            // under-provisioned (c_t** < c̄**) yields +1. We compare in
            // continuous space (2^λ̂ · c* vs c̄**): comparing the
            // *discretized* prediction either freezes λ̂ up to half a
            // ladder step away from the preference (silencing on nearest-
            // SKU equality) or diverges at the catalog edges (never
            // silencing, since a saturated prediction stays "under" for
            // ever). The continuous comparison makes λ̂ oscillate with
            // amplitude ≈ lr/2 around the true preference, which is what
            // reproduces the paper's reported resting RMSE ≈ 0.15.
            let lambda_hat = self.personalizer.lambda(&r.path, r.offering);
            let continuous_pred = lambda_hat.exp2() * r.c_star;
            let direction = if continuous_pred > r.c_opt {
                -1.0
            } else if continuous_pred < r.c_opt {
                1.0
            } else {
                continue;
            };
            if !self.rng.gen_bool(self.config.signal_rate) {
                continue;
            }
            let gamma = if self.rng.gen_bool(self.config.signal_noise) {
                -direction
            } else {
                direction
            };
            signals.push(SatisfactionSignal::new(r.path, r.offering, gamma).expect("gamma is ±1"));
        }
        // Step 2: update profiles.
        let emitted = signals.len();
        self.personalizer.apply_signals(&signals);
        // Step 3 metrics: recompute predictions and errors.
        let mut m = self.metrics();
        m.signals = emitted;
        m
    }

    /// Current error metrics without advancing the simulation.
    pub fn metrics(&self) -> SimMetrics {
        let mut sq = 0.0;
        let mut abs: Vec<f64> = Vec::with_capacity(self.resources.len());
        let mut correct = 0usize;
        for r in &self.resources {
            let lambda_hat = self.personalizer.lambda(&r.path, r.offering);
            let err = lambda_hat - r.lambda_true;
            sq += err * err;
            abs.push(err.abs());
            let predicted = self.predicted(r).capacity.primary();
            let optimal = self
                .catalog
                .nearest_log2(&Capacity::scalar(r.c_opt))
                .capacity
                .primary();
            if (predicted - optimal).abs() < 1e-9 {
                correct += 1;
            }
        }
        abs.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite"));
        let n = self.resources.len();
        SimMetrics {
            rmse: (sq / n as f64).sqrt(),
            p80_abs_error: lorentz_telemetry::aggregate::percentile_of_sorted(&abs, 80.0),
            correctly_provisioned: correct as f64 / n as f64,
            signals: 0,
        }
    }

    /// Runs until the convergence criterion of §5.3 is met — the first
    /// iteration where the 80th percentile of `|λ̂ − λ*|` drops to ≤ 0.5 —
    /// or `max_iters` is reached. Returns `(iterations, trace of metrics)`;
    /// `iterations == max_iters` means no convergence.
    pub fn run_to_convergence(&mut self, max_iters: usize) -> (usize, Vec<SimMetrics>) {
        let mut trace = Vec::with_capacity(max_iters);
        for iter in 1..=max_iters {
            let m = self.step();
            let converged = m.p80_abs_error <= 0.5;
            trace.push(m);
            if converged {
                return (iter, trace);
            }
        }
        (max_iters, trace)
    }
}

/// The §5.3 candidate set `C = {1, 2, 4, ..., 128}`.
fn sim_catalog() -> SkuCatalog {
    let space = ResourceSpace::vcores_only();
    let skus = (0..8)
        .map(|e| {
            let c = f64::from(1u32 << e);
            Sku::new(format!("sim-{c}vc"), Capacity::scalar(c))
        })
        .collect();
    SkuCatalog::new(ServerOffering::GeneralPurpose, space, skus).expect("sim catalog is valid")
}

fn gauss(rng: &mut SmallRng) -> f64 {
    lorentz_telemetry::generators::gaussian(rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(seed: u64) -> PersonalizationSim {
        PersonalizationSim::new(PersonalizationSimConfig {
            seed,
            ..PersonalizationSimConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn world_has_paper_structure() {
        let s = sim(0);
        // 3 customers x 3 subscriptions x 3 RGs, 1-5 resources each.
        assert!(s.resources() >= 27 && s.resources() <= 27 * 5);
        assert_eq!(s.personalizer().profiles(), 27);
    }

    #[test]
    fn initial_error_reflects_true_lambdas() {
        let s = sim(1);
        let m = s.metrics();
        // λ̂ starts at 0; true λ ranges over {-2.5 .. 3}; RMSE must be
        // substantial.
        assert!(m.rmse > 1.0, "rmse={}", m.rmse);
        assert!(m.p80_abs_error > 0.5);
    }

    #[test]
    fn converges_with_paper_settings() {
        let mut s = sim(2);
        let (iters, trace) = s.run_to_convergence(100);
        assert!(iters < 100, "did not converge in 100 iterations");
        let final_m = trace.last().unwrap();
        assert!(final_m.p80_abs_error <= 0.5);
        // Error decreased monotonically-ish: final much lower than start.
        assert!(final_m.rmse < trace[0].rmse / 2.0);
    }

    #[test]
    fn perfect_signals_converge_faster_than_noisy() {
        let mk = |noise, rate| {
            let mut s = PersonalizationSim::new(PersonalizationSimConfig {
                signal_noise: noise,
                signal_rate: rate,
                seed: 1,
                ..PersonalizationSimConfig::default()
            })
            .unwrap();
            s.run_to_convergence(300).0
        };
        let clean = mk(0.0, 1.0);
        let noisy = mk(0.4, 0.4);
        assert!(
            clean < noisy,
            "clean={clean} should converge faster than noisy={noisy}"
        );
    }

    #[test]
    fn no_signals_means_no_learning() {
        let mut s = PersonalizationSim::new(PersonalizationSimConfig {
            signal_rate: 0.0,
            seed: 4,
            ..PersonalizationSimConfig::default()
        })
        .unwrap();
        let before = s.metrics();
        let after = s.step();
        assert_eq!(after.signals, 0);
        assert!((before.rmse - after.rmse).abs() < 1e-12);
    }

    #[test]
    fn correctly_provisioned_share_rises() {
        let mut s = sim(5);
        let start = s.metrics().correctly_provisioned;
        for _ in 0..50 {
            s.step();
        }
        let end = s.metrics().correctly_provisioned;
        assert!(end > start, "{start} -> {end}");
        assert!(end > 0.6, "end={end}");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = sim(6);
        let mut b = sim(6);
        for _ in 0..5 {
            let ma = a.step();
            let mb = b.step();
            assert_eq!(ma, mb);
        }
    }

    #[test]
    fn config_validation() {
        let bad_rate = PersonalizationSimConfig {
            signal_rate: 1.5,
            ..PersonalizationSimConfig::default()
        };
        assert!(bad_rate.validate().is_err());
        let no_customers = PersonalizationSimConfig {
            customer_lambdas: vec![],
            ..PersonalizationSimConfig::default()
        };
        assert!(no_customers.validate().is_err());
        let bad_sigma = PersonalizationSimConfig {
            stage2_sigma: -0.1,
            ..PersonalizationSimConfig::default()
        };
        assert!(bad_sigma.validate().is_err());
        assert!(PersonalizationSimConfig::default().validate().is_ok());
    }
}
