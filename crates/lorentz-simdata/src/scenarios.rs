//! Named fleet scenarios.
//!
//! Reusable [`FleetConfig`] presets: the two calibrations the paper's
//! evaluation is reported from, plus stress scenarios for library users
//! exploring other regimes. All presets leave `n_servers`, `seed`, and
//! `sampling` at the defaults — override them per experiment.

use crate::fleet::{FleetConfig, HierarchyLevel, HierarchySpec, UserBehavior};

/// The §5.2 calibration: a concentrated, left-skewed fleet (mean max
/// utilization ≈ 1 vCore; ~90% of DBs rightsize to the minimum SKU). This
/// is the starting point of the paper's provisioner evaluation, which then
/// applies the synthetic workload upscaling.
pub fn paper_section52() -> FleetConfig {
    FleetConfig::default()
}

/// The §2.2 calibration: demand straddles the smallest SKUs' capacity so
/// the minimum default is right only about half the time — the regime in
/// which the paper's 43% well / 19% over / 38% under provisioning mix
/// arises, with a heavy over-provisioning tail from "safety buyers".
pub fn paper_section22() -> FleetConfig {
    FleetConfig {
        base_demand: 1.3,
        server_sigma: 0.7,
        user: UserBehavior {
            p_default_prod: 0.45,
            p_default_dev: 0.80,
            p_under: 0.22,
            p_over: 0.45,
        },
        ..FleetConfig::default()
    }
}

/// A data-scarce early-service regime: a shallow two-level hierarchy with
/// few distinct values and noisy tags — the situation the paper recommends
/// the hierarchical provisioner for (Fig. 12 discussion).
pub fn data_scarce_startup() -> FleetConfig {
    let mk = |name: &str, branching, need_sigma| HierarchyLevel {
        name: name.to_owned(),
        branching,
        need_sigma,
    };
    FleetConfig {
        hierarchy: HierarchySpec {
            levels: vec![
                mk("IndustryName", 3, 0.5),
                mk("CloudCustomerGuid", 3, 0.4),
                mk("SubscriptionId", 2, 0.2),
                mk("ResourceGroup", 2, 0.3),
            ],
            skew: 0.9,
        },
        mis_entry_rate: 0.05,
        missing_rate: 0.10,
        base_demand: 0.8,
        ..FleetConfig::default()
    }
}

/// A mature enterprise estate: deep, clean hierarchy, strongly clustered
/// demand (profile data is very informative), users that rarely accept the
/// default.
pub fn enterprise() -> FleetConfig {
    let mk = |name: &str, branching, need_sigma| HierarchyLevel {
        name: name.to_owned(),
        branching,
        need_sigma,
    };
    FleetConfig {
        hierarchy: HierarchySpec {
            levels: vec![
                mk("SegmentName", 3, 0.4),
                mk("IndustryName", 2, 0.5),
                mk("VerticalName", 2, 0.6),
                mk("VerticalCategoryName", 2, 0.3),
                mk("CloudCustomerGuid", 2, 0.5),
                mk("SubscriptionId", 2, 0.2),
                mk("ResourceGroup", 2, 0.2),
            ],
            skew: 0.4,
        },
        mis_entry_rate: 0.002,
        missing_rate: 0.005,
        base_demand: 2.5,
        server_sigma: 0.25,
        user: UserBehavior {
            p_default_prod: 0.15,
            p_default_dev: 0.5,
            p_under: 0.2,
            p_over: 0.4,
        },
        ..FleetConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lorentz_telemetry::generators::SamplingConfig;

    fn shrink(mut c: FleetConfig) -> FleetConfig {
        c.n_servers = 150;
        c.sampling = SamplingConfig {
            duration_secs: 7200.0,
            mean_interval_secs: 60.0,
            jitter_frac: 0.2,
        };
        c
    }

    #[test]
    fn all_presets_validate_and_generate() {
        for preset in [
            paper_section52(),
            paper_section22(),
            data_scarce_startup(),
            enterprise(),
        ] {
            let c = shrink(preset);
            c.validate().unwrap();
            let f = c.generate().unwrap();
            assert_eq!(f.fleet.len(), 150);
        }
    }

    #[test]
    fn section22_has_more_demand_than_section52() {
        let a = shrink(paper_section52()).generate().unwrap();
        let b = shrink(paper_section22()).generate().unwrap();
        let mean = |f: &crate::fleet::SyntheticFleet| {
            f.ground_truth.iter().map(|t| t.peak()[0]).sum::<f64>() / f.fleet.len() as f64
        };
        assert!(mean(&b) > mean(&a));
    }

    #[test]
    fn enterprise_users_rarely_take_the_default() {
        let f = shrink(enterprise()).generate().unwrap();
        let minimums = (0..f.fleet.len())
            .filter(|&i| {
                let cat = lorentz_types::SkuCatalog::azure_postgres(f.fleet.offerings()[i]);
                f.fleet.user_capacities()[i] == cat.minimum().capacity
            })
            .count();
        let share = minimums as f64 / f.fleet.len() as f64;
        assert!(share < 0.5, "enterprise default share {share}");
    }

    #[test]
    fn startup_scenario_is_noisy_and_shallow() {
        let c = data_scarce_startup();
        assert_eq!(c.hierarchy.levels.len(), 4);
        assert!(c.missing_rate >= 0.1);
        let f = shrink(c).generate().unwrap();
        assert!(f.fleet.profiles().missing_fraction() > 0.05);
    }
}
