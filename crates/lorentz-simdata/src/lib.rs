//! Synthetic data for the Lorentz reproduction.
//!
//! The paper evaluates on 77,584 production Azure PostgreSQL DBs with
//! telemetry, billing-team profile hierarchies, and ~4,400 CRI tickets —
//! none of which are public. This crate builds the closest synthetic
//! equivalents so every experiment still runs end-to-end:
//!
//! * [`fleet`] — a configurable fleet generator: profile hierarchies with
//!   mis-entry noise, hierarchy-node capacity-need factors that causally
//!   link profile values to workload scale, per-offering workload shapes,
//!   a calibrated user SKU-selection behaviour model, and telemetry
//!   censoring at the user-selected capacity (Eq. 1);
//! * [`upscale`] — the paper's own §5.2 synthetic workload upscaling,
//!   reimplemented step by step;
//! * [`persim`] — the §5.3 personalization simulation world (three
//!   customers × three subscriptions × RGs × resources, signal rate/noise,
//!   Stage-2 error σ);
//! * [`cri`] — a synthetic CRI-ticket generator matching the paper's
//!   sentiment mix for exercising the Table-1 keyword classifier.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cri;
pub mod fleet;
pub mod persim;
pub mod scenarios;
pub mod upscale;

pub use fleet::{FleetConfig, HierarchySpec, SyntheticFleet, UserBehavior};
pub use persim::{PersonalizationSim, PersonalizationSimConfig, SimMetrics};
pub use upscale::{upscale_fleet, UpscaleConfig, UpscaleReport};
