//! Synthetic fleet generation.
//!
//! Builds a fleet of "existing" DBs whose telemetry, profile data, and user
//! SKU selections statistically resemble the Azure PostgreSQL population of
//! §2.2:
//!
//! * a strict-ish profile hierarchy (`SegmentName > IndustryName > ... >
//!   ResourceGroup`) with configurable branching, value-popularity skew,
//!   mis-entry noise and missing tags;
//! * *capacity-need factors* attached to hierarchy nodes, so that servers
//!   sharing a vertical or customer genuinely need similar capacities —
//!   the causal assumption behind profile-based recommendation (§1: "Coca-
//!   Cola and Pepsi might have similar needs");
//! * left-skewed demand (most DBs are tiny; the paper's mean max
//!   utilization is 1.2 vCores);
//! * a user-selection behaviour model calibrated to the paper's findings
//!   (users pick the minimum default 63% of the time overall and 80% for
//!   dev servers; the rest guess near their demand with ladder noise);
//! * telemetry censored at the user-selected capacity (Eq. 1), while the
//!   uncensored ground-truth demand is kept separately for evaluation.

use lorentz_core::FleetDataset;
use lorentz_telemetry::generators::{SamplingConfig, WorkloadGenerator};
use lorentz_telemetry::{Aggregator, EmptyBinPolicy, UsageTrace, WorkloadSpec};
use lorentz_types::{
    Capacity, CustomerId, LorentzError, ProfileSchema, ProfileTable, ResourceGroupId, ResourcePath,
    ResourceSpace, ServerId, ServerOffering, SkuCatalog, SubscriptionId,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One level of the synthetic profile hierarchy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HierarchyLevel {
    /// Feature name (e.g. `IndustryName`).
    pub name: String,
    /// Children per parent node.
    pub branching: usize,
    /// Standard deviation of the node's log2 capacity-need factor. Larger
    /// values make this level more predictive of demand.
    pub need_sigma: f64,
}

/// The hierarchy shape: levels from coarsest to finest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HierarchySpec {
    /// Levels, coarsest first. The 5th-from-last, 2nd-from-last, and last
    /// levels are interpreted as customer, subscription, and resource group
    /// for [`ResourcePath`] construction when present.
    pub levels: Vec<HierarchyLevel>,
    /// Zipf-like skew of child popularity (0 = uniform).
    pub skew: f64,
}

impl HierarchySpec {
    /// The seven-feature Azure PostgreSQL hierarchy (Fig. 5 shape) at a
    /// scale suitable for a few thousand servers.
    pub fn azure_like() -> Self {
        let mk = |name: &str, branching, need_sigma| HierarchyLevel {
            name: name.to_owned(),
            branching,
            need_sigma,
        };
        Self {
            levels: vec![
                mk("SegmentName", 3, 0.3),
                mk("IndustryName", 2, 0.4),
                mk("VerticalName", 2, 0.5),
                mk("VerticalCategoryName", 2, 0.2),
                mk("CloudCustomerGuid", 2, 0.4),
                mk("SubscriptionId", 2, 0.2),
                mk("ResourceGroup", 2, 0.2),
            ],
            skew: 0.7,
        }
    }

    /// Total number of distinct values at level `l`.
    pub fn values_at(&self, l: usize) -> usize {
        self.levels[..=l].iter().map(|lv| lv.branching).product()
    }

    fn schema(&self) -> ProfileSchema {
        ProfileSchema::new(
            self.levels
                .iter()
                .map(|l| l.name.clone())
                .collect::<Vec<_>>(),
        )
        .expect("hierarchy levels have unique names")
    }
}

/// How users pick their initial SKU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UserBehavior {
    /// Probability of blindly accepting the minimum (default) SKU on a
    /// production offering (§2.2: 63% pick the minimum overall).
    pub p_default_prod: f64,
    /// Probability of accepting the default on the dev (Burstable)
    /// offering (§2.2: 80%).
    pub p_default_dev: f64,
    /// For informed guesses: probability of landing one ladder step below
    /// the demand-covering SKU (under-provisioning).
    pub p_under: f64,
    /// Probability of landing one ladder step above (over-provisioning).
    pub p_over: f64,
}

impl Default for UserBehavior {
    fn default() -> Self {
        Self {
            p_default_prod: 0.55,
            p_default_dev: 0.80,
            p_under: 0.20,
            p_over: 0.35,
        }
    }
}

impl UserBehavior {
    fn validate(&self) -> Result<(), LorentzError> {
        for (name, p) in [
            ("p_default_prod", self.p_default_prod),
            ("p_default_dev", self.p_default_dev),
            ("p_under", self.p_under),
            ("p_over", self.p_over),
        ] {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(LorentzError::InvalidConfig(format!(
                    "{name} must be in [0, 1], got {p}"
                )));
            }
        }
        if self.p_under + self.p_over > 1.0 {
            return Err(LorentzError::InvalidConfig(
                "p_under + p_over must be <= 1".into(),
            ));
        }
        Ok(())
    }
}

/// Fleet generation parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Number of servers to generate.
    pub n_servers: usize,
    /// Master RNG seed; everything downstream is deterministic in it.
    pub seed: u64,
    /// Telemetry sampling window.
    pub sampling: SamplingConfig,
    /// Bin width for the produced [`UsageTrace`]s, seconds (match the
    /// rightsizer's `T`).
    pub bin_seconds: f64,
    /// Hierarchy shape.
    pub hierarchy: HierarchySpec,
    /// Probability a profile cell is mis-entered (replaced by a random
    /// other value of the same feature) — makes hierarchies nearly-strict.
    pub mis_entry_rate: f64,
    /// Probability a profile cell is missing.
    pub missing_rate: f64,
    /// User SKU-selection behaviour.
    pub user: UserBehavior,
    /// Median peak demand of the smallest workloads, in vCores. The fleet
    /// is left-skewed around this (paper: mean max utilization 1.2 vCores).
    pub base_demand: f64,
    /// Log2 standard deviation of per-server idiosyncratic demand noise.
    pub server_sigma: f64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            n_servers: 1000,
            seed: 42,
            sampling: SamplingConfig {
                duration_secs: 86_400.0,
                mean_interval_secs: 60.0,
                jitter_frac: 0.2,
            },
            bin_seconds: 300.0,
            hierarchy: HierarchySpec::azure_like(),
            mis_entry_rate: 0.01,
            missing_rate: 0.03,
            user: UserBehavior::default(),
            base_demand: 0.5,
            server_sigma: 0.5,
        }
    }
}

impl FleetConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns [`LorentzError::InvalidConfig`] for out-of-range values.
    pub fn validate(&self) -> Result<(), LorentzError> {
        if self.n_servers == 0 {
            return Err(LorentzError::InvalidConfig("n_servers must be >= 1".into()));
        }
        if self.hierarchy.levels.is_empty() {
            return Err(LorentzError::InvalidConfig(
                "hierarchy needs at least one level".into(),
            ));
        }
        for (name, p) in [
            ("mis_entry_rate", self.mis_entry_rate),
            ("missing_rate", self.missing_rate),
        ] {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(LorentzError::InvalidConfig(format!(
                    "{name} must be in [0, 1], got {p}"
                )));
            }
        }
        if !self.base_demand.is_finite() || self.base_demand <= 0.0 {
            return Err(LorentzError::InvalidConfig(
                "base_demand must be positive".into(),
            ));
        }
        self.user.validate()
    }

    /// Generates the fleet.
    ///
    /// # Errors
    /// Returns [`LorentzError`] on invalid configuration.
    pub fn generate(&self) -> Result<SyntheticFleet, LorentzError> {
        self.validate()?;
        Generator::new(self).run()
    }
}

/// A generated fleet: the training view (telemetry censored at user
/// capacities, Eq. 1) plus the evaluation view (uncensored ground-truth
/// demand).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SyntheticFleet {
    /// The training fleet (profiles, user capacities, censored telemetry).
    pub fleet: FleetDataset,
    /// Uncensored demand traces, aligned with the fleet rows.
    pub ground_truth: Vec<UsageTrace>,
    /// The workload shape of each server.
    pub specs: Vec<WorkloadSpec>,
    /// The latent per-server demand scale (peak vCores before shaping).
    pub needs: Vec<f64>,
}

struct Generator<'a> {
    config: &'a FleetConfig,
    rng: SmallRng,
}

impl<'a> Generator<'a> {
    fn new(config: &'a FleetConfig) -> Self {
        Self {
            config,
            rng: SmallRng::seed_from_u64(config.seed),
        }
    }

    fn run(mut self) -> Result<SyntheticFleet, LorentzError> {
        let schema = self.config.hierarchy.schema();
        let mut fleet = FleetDataset::new(ProfileTable::new(schema));
        let mut ground_truth = Vec::with_capacity(self.config.n_servers);
        let mut specs = Vec::with_capacity(self.config.n_servers);
        let mut needs = Vec::with_capacity(self.config.n_servers);

        for i in 0..self.config.n_servers {
            let offering = self.draw_offering();
            let chain = self.draw_chain();
            let need = self.need_for(&chain, offering);
            let spec = self.shape_for(offering, need);

            // Ground-truth demand (uncensored).
            let raw = spec.generate(&self.config.sampling, &mut self.rng);
            let catalog = SkuCatalog::azure_postgres(offering);
            let user_capacity = self.user_choice(&catalog, raw.max_value(), offering);

            // Telemetry view: censored at the user-selected capacity.
            let censored = raw.censored(user_capacity.primary());
            let truth_trace = UsageTrace::from_raw(
                ResourceSpace::vcores_only(),
                &[raw],
                self.config.bin_seconds,
                Aggregator::Max,
                EmptyBinPolicy::HoldLast,
            )?;
            let telemetry = UsageTrace::from_raw(
                ResourceSpace::vcores_only(),
                &[censored],
                self.config.bin_seconds,
                Aggregator::Max,
                EmptyBinPolicy::HoldLast,
            )?;

            let path = self.path_for(&chain);
            let profile = self.profile_row(&chain);
            let profile_refs: Vec<Option<&str>> = profile.iter().map(|v| v.as_deref()).collect();
            fleet.push(
                ServerId(i as u32),
                path,
                offering,
                &profile_refs,
                user_capacity,
                telemetry,
            )?;
            ground_truth.push(truth_trace);
            specs.push(spec);
            needs.push(need);
        }

        Ok(SyntheticFleet {
            fleet,
            ground_truth,
            specs,
            needs,
        })
    }

    fn draw_offering(&mut self) -> ServerOffering {
        let u: f64 = self.rng.gen();
        let mut acc = 0.0;
        for &o in &ServerOffering::ALL {
            acc += o.fleet_share();
            if u < acc {
                return o;
            }
        }
        ServerOffering::MemoryOptimized
    }

    /// Draws a hierarchy chain as per-level value indices (value index at
    /// level l is global within that level).
    fn draw_chain(&mut self) -> Vec<usize> {
        let mut chain = Vec::with_capacity(self.config.hierarchy.levels.len());
        let mut parent = 0usize;
        for level in &self.config.hierarchy.levels {
            let child = self.skewed_child(level.branching);
            let value = parent * level.branching + child;
            chain.push(value);
            parent = value;
        }
        chain
    }

    fn skewed_child(&mut self, branching: usize) -> usize {
        if branching == 1 {
            return 0;
        }
        let skew = self.config.hierarchy.skew;
        let weights: Vec<f64> = (0..branching)
            .map(|j| 1.0 / ((j + 1) as f64).powf(skew))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut u: f64 = self.rng.gen_range(0.0..total);
        for (j, w) in weights.iter().enumerate() {
            if u < *w {
                return j;
            }
            u -= w;
        }
        branching - 1
    }

    /// The latent peak demand: base × hierarchy-node factors × per-server
    /// noise × offering scale. Node factors are deterministic in
    /// (seed, level, value) so every server under the same node shares
    /// them — the signal the provisioners learn.
    fn need_for(&mut self, chain: &[usize], offering: ServerOffering) -> f64 {
        let mut log2_need = self.config.base_demand.log2();
        for (l, &value) in chain.iter().enumerate() {
            let sigma = self.config.hierarchy.levels[l].need_sigma;
            if sigma > 0.0 {
                log2_need += sigma * node_gauss(self.config.seed, l, value);
            }
        }
        log2_need += self.config.server_sigma * gauss(&mut self.rng);
        let offering_scale = match offering {
            ServerOffering::Burstable => 0.5,
            ServerOffering::GeneralPurpose => 1.0,
            ServerOffering::MemoryOptimized => 1.6,
        };
        (log2_need.exp2() * offering_scale).clamp(0.02, 160.0)
    }

    fn shape_for(&mut self, offering: ServerOffering, need: f64) -> WorkloadSpec {
        match offering {
            ServerOffering::Burstable => WorkloadSpec::dev_box(need),
            ServerOffering::GeneralPurpose => {
                if self.rng.gen_bool(0.7) {
                    WorkloadSpec::typical_oltp(need)
                } else {
                    WorkloadSpec::Bursty {
                        low: 0.1 * need,
                        high: need,
                        mean_on_secs: 3600.0,
                        mean_off_secs: 7200.0,
                    }
                }
            }
            ServerOffering::MemoryOptimized => {
                if self.rng.gen_bool(0.5) {
                    WorkloadSpec::typical_oltp(need)
                } else {
                    WorkloadSpec::Sum(vec![
                        WorkloadSpec::Constant { level: 0.4 * need },
                        WorkloadSpec::Spiky {
                            base: 0.0,
                            spike_height: 0.6 * need,
                            spikes_per_day: 12.0,
                            spike_duration_secs: 1800.0,
                        },
                    ])
                }
            }
        }
    }

    /// The user's SKU choice, calibrated to §2.2 (default-happy users plus
    /// noisy informed guesses).
    fn user_choice(
        &mut self,
        catalog: &SkuCatalog,
        peak_demand: f64,
        offering: ServerOffering,
    ) -> Capacity {
        let p_default = if offering.is_development() {
            self.config.user.p_default_dev
        } else {
            self.config.user.p_default_prod
        };
        if self.rng.gen_bool(p_default) {
            return catalog.minimum().capacity.clone();
        }
        // Informed guess: the SKU covering the peak, shifted by ladder
        // noise. Over-provisioning is heavy-tailed — "safety buyers" take
        // two or three rungs extra (the production fleet's Fig. 2 shows
        // users on 32-64 vCores for single-vCore workloads).
        let covering = catalog
            .round_up(&Capacity::scalar(peak_demand.max(0.01)))
            .map(|s| catalog.index_of(&s.capacity).expect("sku from catalog"))
            .unwrap_or(catalog.len() - 1);
        let u: f64 = self.rng.gen();
        let offset: i64 = if u < self.config.user.p_under {
            -1
        } else if u < self.config.user.p_under + self.config.user.p_over {
            let v: f64 = self.rng.gen();
            if v < 0.5 {
                1
            } else if v < 0.8 {
                2
            } else {
                3
            }
        } else {
            0
        };
        let idx = (covering as i64 + offset).clamp(0, catalog.len() as i64 - 1) as usize;
        catalog.get(idx).capacity.clone()
    }

    fn path_for(&self, chain: &[usize]) -> ResourcePath {
        let n = chain.len();
        // Customer / subscription / RG are the 3rd-from-last, 2nd-from-last,
        // and last levels when the hierarchy is deep enough.
        let pick = |back: usize| -> u32 {
            if n > back {
                chain[n - 1 - back] as u32
            } else {
                chain[0] as u32
            }
        };
        ResourcePath::new(
            CustomerId(pick(2)),
            SubscriptionId(pick(1)),
            ResourceGroupId(pick(0)),
        )
    }

    /// Renders the chain as profile strings with mis-entry and missing
    /// noise applied.
    fn profile_row(&mut self, chain: &[usize]) -> Vec<Option<String>> {
        let levels = &self.config.hierarchy.levels;
        chain
            .iter()
            .enumerate()
            .map(|(l, &value)| {
                if self.rng.gen_bool(self.config.missing_rate) {
                    return None;
                }
                let v = if self.rng.gen_bool(self.config.mis_entry_rate) {
                    // Mis-entry: a random other value of this feature.
                    self.rng.gen_range(0..self.config.hierarchy.values_at(l))
                } else {
                    value
                };
                Some(format!("{}-{v}", levels[l].name.to_lowercase()))
            })
            .collect()
    }
}

/// Deterministic standard-normal value for a hierarchy node, derived from
/// (seed, level, value) by hashing — every server under the node sees the
/// same factor.
fn node_gauss(seed: u64, level: usize, value: usize) -> f64 {
    let mixed = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((level as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add((value as u64).wrapping_mul(0x94D0_49BB_1331_11EB));
    let mut rng = SmallRng::seed_from_u64(mixed);
    gauss(&mut rng)
}

fn gauss(rng: &mut SmallRng) -> f64 {
    lorentz_telemetry::generators::gaussian(rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> FleetConfig {
        FleetConfig {
            n_servers: 120,
            sampling: SamplingConfig {
                duration_secs: 7200.0,
                mean_interval_secs: 60.0,
                jitter_frac: 0.2,
            },
            ..FleetConfig::default()
        }
    }

    #[test]
    fn generates_aligned_fleet() {
        let f = small_config().generate().unwrap();
        assert_eq!(f.fleet.len(), 120);
        assert_eq!(f.ground_truth.len(), 120);
        assert_eq!(f.specs.len(), 120);
        assert_eq!(f.needs.len(), 120);
        assert_eq!(f.fleet.profiles().schema().len(), 7);
    }

    #[test]
    fn telemetry_is_censored_at_user_capacity() {
        let f = small_config().generate().unwrap();
        for i in 0..f.fleet.len() {
            let cap = f.fleet.user_capacities()[i].primary();
            let peak = f.fleet.traces()[i].peak()[0];
            assert!(
                peak <= cap + 1e-9,
                "server {i}: telemetry peak {peak} exceeds capacity {cap}"
            );
        }
    }

    #[test]
    fn ground_truth_can_exceed_user_capacity() {
        // The default calibration is the concentrated §5.2 starting point,
        // so use a demand level near the minimum SKU to exercise
        // under-provisioning.
        let f = FleetConfig {
            base_demand: 1.3,
            ..small_config()
        }
        .generate()
        .unwrap();
        let throttled = (0..f.fleet.len())
            .filter(|&i| f.ground_truth[i].peak()[0] > f.fleet.user_capacities()[i].primary())
            .count();
        assert!(
            throttled > 10,
            "default-happy users should under-provision some servers, got {throttled}"
        );
    }

    #[test]
    fn user_capacities_are_catalog_values() {
        let f = small_config().generate().unwrap();
        for i in 0..f.fleet.len() {
            let off = f.fleet.offerings()[i];
            let cat = SkuCatalog::azure_postgres(off);
            assert!(
                cat.index_of(&f.fleet.user_capacities()[i]).is_some(),
                "server {i} capacity not in catalog"
            );
        }
    }

    #[test]
    fn many_users_pick_the_minimum_default() {
        let f = FleetConfig {
            n_servers: 400,
            ..small_config()
        }
        .generate()
        .unwrap();
        let minimums = (0..f.fleet.len())
            .filter(|&i| {
                let cat = SkuCatalog::azure_postgres(f.fleet.offerings()[i]);
                f.fleet.user_capacities()[i] == cat.minimum().capacity
            })
            .count();
        let share = minimums as f64 / f.fleet.len() as f64;
        // §2.2: 63% overall pick the minimum; informed guesses of tiny
        // workloads also land there, so expect a solid majority.
        assert!(share > 0.45 && share < 0.95, "share={share}");
    }

    #[test]
    fn hierarchy_values_nest() {
        let f = small_config().generate().unwrap();
        let t = f.fleet.profiles();
        let schema = t.schema();
        let seg = schema.feature_id("SegmentName").unwrap();
        let ind = schema.feature_id("IndustryName").unwrap();
        // For rows without noise, each industry value should imply one
        // segment value; with 1% mis-entry + 3% missing a handful of
        // exceptions exist. Check determinism holds for >= 90% of pairs.
        let mut mapping: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        let mut consistent = 0usize;
        let mut total = 0usize;
        for row in 0..t.rows() {
            if let (Some(s), Some(i)) = (t.value_id(row, seg), t.value_id(row, ind)) {
                total += 1;
                match mapping.get(&i) {
                    Some(&expect) if expect == s => consistent += 1,
                    Some(_) => {}
                    None => {
                        mapping.insert(i, s);
                        consistent += 1;
                    }
                }
            }
        }
        assert!(total > 0);
        assert!(
            consistent as f64 / total as f64 > 0.9,
            "hierarchy too noisy: {consistent}/{total}"
        );
    }

    #[test]
    fn need_factors_cluster_by_hierarchy_node() {
        // Two servers in the same vertical share node factors, so their
        // needs correlate more than across verticals on average. Check via
        // the generator's determinism: same seed -> same needs.
        let a = small_config().generate().unwrap();
        let b = small_config().generate().unwrap();
        assert_eq!(a.needs, b.needs, "generation must be deterministic");
        let c = FleetConfig {
            seed: 43,
            ..small_config()
        }
        .generate()
        .unwrap();
        assert_ne!(a.needs, c.needs);
    }

    #[test]
    fn demand_is_left_skewed() {
        let f = FleetConfig {
            n_servers: 300,
            ..small_config()
        }
        .generate()
        .unwrap();
        let mut peaks: Vec<f64> = f.ground_truth.iter().map(|t| t.peak()[0]).collect();
        peaks.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        let median = peaks[peaks.len() / 2];
        let mean = peaks.iter().sum::<f64>() / peaks.len() as f64;
        assert!(
            mean > median,
            "left-skew means mean {mean} > median {median}"
        );
        assert!(median < 4.0, "most DBs are small, median={median}");
    }

    #[test]
    fn offering_mix_roughly_matches_shares() {
        let f = FleetConfig {
            n_servers: 1000,
            ..small_config()
        }
        .generate()
        .unwrap();
        let gp = f
            .fleet
            .offerings()
            .iter()
            .filter(|&&o| o == ServerOffering::GeneralPurpose)
            .count() as f64
            / 1000.0;
        assert!((gp - 0.49).abs() < 0.08, "gp share={gp}");
    }

    #[test]
    fn config_validation() {
        let mut c = small_config();
        c.n_servers = 0;
        assert!(c.validate().is_err());
        let mut c = small_config();
        c.missing_rate = 1.5;
        assert!(c.validate().is_err());
        let mut c = small_config();
        c.user.p_under = 0.8;
        c.user.p_over = 0.8;
        assert!(c.validate().is_err());
        assert!(small_config().validate().is_ok());
    }
}
