//! Synthetic CRI ticket generation.
//!
//! The paper's preliminary dataset holds ≈4,400 tickets: ≈2,400 neutral,
//! ≈2,000 performance-sensitive, and 5 price-sensitive (§2.2). This module
//! generates ticket corpora with that mix from templates that do (or do
//! not) trip the Table-1 keyword filters, for exercising the classifier
//! end-to-end.

use lorentz_core::personalizer::signals::CriTicket;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Ticket-mix configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CriCorpusConfig {
    /// Neutral tickets.
    pub neutral: usize,
    /// Performance-sensitive tickets.
    pub performance: usize,
    /// Price-sensitive tickets.
    pub price: usize,
    /// RNG seed for template selection.
    pub seed: u64,
}

impl CriCorpusConfig {
    /// The paper's observed mix (§2.2), scaled down 10x by default use
    /// sites.
    pub fn paper_mix() -> Self {
        Self {
            neutral: 2400,
            performance: 2000,
            price: 5,
            seed: 0,
        }
    }
}

/// A generated ticket with its ground-truth sentiment (−1, 0, +1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabeledTicket {
    /// The ticket text fields.
    pub ticket: CriTicket,
    /// Ground-truth sentiment.
    pub sentiment: i8,
}

const PERF_TEMPLATES: &[(&str, &str, &str)] = &[
    (
        "Customer reports high CPU utilization during business hours",
        "DB slow under load",
        "Scaled up the server to the next vCore tier",
    ),
    (
        "Queries time out; monitoring shows high cpu usage",
        "Performance degradation on flexible server",
        "Increased vCores from 4 to 8",
    ),
    (
        "Application latency spikes",
        "CPU at 100% on production database",
        "Recommended scaling up",
    ),
    (
        "Throughput drops every evening",
        "High CPU utilisation alerts firing",
        "Customer scaled up after guidance",
    ),
];

const PRICE_TEMPLATES: &[(&str, &str, &str)] = &[
    (
        "Customer says the monthly bill is too expensive for a small workload",
        "Cost concern on flexible server",
        "Scaled down from 16 to 8 vCores",
    ),
    (
        "Asking how to reduce spend; utilization is low",
        "Billing question - downgrade options",
        "Decreased the provisioned tier",
    ),
];

const NEUTRAL_TEMPLATES: &[(&str, &str, &str)] = &[
    (
        "Cannot connect from the new VNet",
        "Connectivity issue after network change",
        "Fixed firewall rule",
    ),
    (
        "Backup restore failed with an internal error",
        "Restore failure",
        "Retried restore successfully",
    ),
    (
        "Extension installation blocked",
        "pg_cron enablement request",
        "Enabled extension allowlist",
    ),
    (
        "Password reset needed for admin user",
        "Access issue",
        "Reset credentials",
    ),
];

/// Generates a labeled corpus with the configured mix, shuffled
/// deterministically.
pub fn generate_corpus(config: &CriCorpusConfig) -> Vec<LabeledTicket> {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut corpus = Vec::with_capacity(config.neutral + config.performance + config.price);
    let mut push =
        |templates: &[(&str, &str, &str)], n: usize, sentiment: i8, rng: &mut SmallRng| {
            for _ in 0..n {
                let (sym, sub, res) = templates[rng.gen_range(0..templates.len())];
                corpus.push(LabeledTicket {
                    ticket: CriTicket::new(sym, sub, res),
                    sentiment,
                });
            }
        };
    push(NEUTRAL_TEMPLATES, config.neutral, 0, &mut rng);
    push(PERF_TEMPLATES, config.performance, 1, &mut rng);
    push(PRICE_TEMPLATES, config.price, -1, &mut rng);
    // Deterministic shuffle.
    for i in (1..corpus.len()).rev() {
        let j = rng.gen_range(0..=i);
        corpus.swap(i, j);
    }
    corpus
}

#[cfg(test)]
mod tests {
    use super::*;
    use lorentz_core::personalizer::signals::classify_ticket;

    #[test]
    fn corpus_has_requested_mix() {
        let c = generate_corpus(&CriCorpusConfig {
            neutral: 10,
            performance: 7,
            price: 3,
            seed: 1,
        });
        assert_eq!(c.len(), 20);
        assert_eq!(c.iter().filter(|t| t.sentiment == 0).count(), 10);
        assert_eq!(c.iter().filter(|t| t.sentiment == 1).count(), 7);
        assert_eq!(c.iter().filter(|t| t.sentiment == -1).count(), 3);
    }

    #[test]
    fn classifier_recovers_ground_truth_on_templates() {
        let c = generate_corpus(&CriCorpusConfig {
            neutral: 40,
            performance: 40,
            price: 10,
            seed: 2,
        });
        let correct = c
            .iter()
            .filter(|t| classify_ticket(&t.ticket) as i8 == t.sentiment)
            .count();
        assert_eq!(
            correct,
            c.len(),
            "templates are built to be unambiguous for the Table-1 filters"
        );
    }

    #[test]
    fn corpus_is_shuffled_and_deterministic() {
        let cfg = CriCorpusConfig {
            neutral: 30,
            performance: 30,
            price: 5,
            seed: 3,
        };
        let a = generate_corpus(&cfg);
        let b = generate_corpus(&cfg);
        assert_eq!(a, b);
        // Not all neutral tickets first (shuffled).
        assert!(a[..10].iter().any(|t| t.sentiment != 0));
    }
}
