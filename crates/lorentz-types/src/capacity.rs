//! Capacity vectors.
//!
//! A [`Capacity`] is a point in a [`ResourceSpace`](crate::ResourceSpace):
//! one provisioned amount per resource dimension, e.g. `[4 vCores, 16 GB]`
//! (the paper's `c`, `c⁰`, `ĉ⁰`, `c*`, `c**`). Capacities support the
//! element-wise comparisons the rightsizer needs (`dominates`,
//! `is_dominated_by`) and the `log2` transform `ξ` used for model fitting
//! (§3.3 "Transformations").

use crate::error::LorentzError;
use crate::resource::ResourceSpace;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A provisioned (or candidate) amount of each resource dimension.
///
/// Entries are aligned with the dimensions of the owning
/// [`ResourceSpace`](crate::ResourceSpace); `Capacity` itself stores only the
/// numbers so that it stays cheap to copy around hot loops.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Capacity {
    dims: Vec<f64>,
}

impl Capacity {
    /// Creates a capacity from per-dimension amounts.
    ///
    /// # Errors
    /// Returns [`LorentzError::InvalidCapacity`] if `dims` is empty or any
    /// entry is non-finite or non-positive.
    pub fn new(dims: Vec<f64>) -> Result<Self, LorentzError> {
        if dims.is_empty() {
            return Err(LorentzError::InvalidCapacity("no dimensions".into()));
        }
        for (i, &v) in dims.iter().enumerate() {
            if !v.is_finite() || v <= 0.0 {
                return Err(LorentzError::InvalidCapacity(format!(
                    "dimension {i} has invalid amount {v}"
                )));
            }
        }
        Ok(Self { dims })
    }

    /// Creates a single-dimension capacity (the common vCores-only case).
    pub fn scalar(amount: f64) -> Self {
        Self::new(vec![amount]).expect("scalar capacity must be positive and finite")
    }

    /// Number of dimensions.
    pub fn len(&self) -> usize {
        self.dims.len()
    }

    /// Whether the capacity has no dimensions (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.dims.is_empty()
    }

    /// Amount for dimension index `r`.
    pub fn get(&self, r: usize) -> f64 {
        self.dims[r]
    }

    /// All amounts in dimension order.
    pub fn as_slice(&self) -> &[f64] {
        &self.dims
    }

    /// The first dimension, by convention vCores in the paper's spaces.
    pub fn primary(&self) -> f64 {
        self.dims[0]
    }

    /// Whether this capacity is at least as large as `other` in every
    /// dimension (i.e. provisioning `self` can host anything `other` can).
    pub fn dominates(&self, other: &Capacity) -> bool {
        debug_assert_eq!(self.len(), other.len());
        self.dims.iter().zip(other.dims.iter()).all(|(a, b)| a >= b)
    }

    /// Whether this capacity is strictly smaller than `other` in at least one
    /// dimension (candidates for which censoring applies, §3.2).
    pub fn below_anywhere(&self, other: &Capacity) -> bool {
        debug_assert_eq!(self.len(), other.len());
        self.dims.iter().zip(other.dims.iter()).any(|(a, b)| a < b)
    }

    /// The transform `ξ = log2` applied element-wise (§3.3
    /// "Transformations"). Capacities are positive by construction, so the
    /// result is always finite.
    pub fn log2(&self) -> Vec<f64> {
        self.dims.iter().map(|v| v.log2()).collect()
    }

    /// Inverse transform `ξ⁻¹ = 2^x` applied element-wise.
    ///
    /// # Errors
    /// Returns [`LorentzError::InvalidCapacity`] if any exponent is
    /// non-finite (the result would not be a valid capacity).
    pub fn from_log2(exponents: &[f64]) -> Result<Self, LorentzError> {
        Self::new(exponents.iter().map(|&e| e.exp2()).collect())
    }

    /// Multiplies every dimension by `factor` (used by the Pareto-curve scale
    /// sweep in §5.2 and the λ adjustment `c** = 2^λ · c*` in Eq. 14).
    ///
    /// # Errors
    /// Returns [`LorentzError::InvalidCapacity`] if `factor` is non-positive
    /// or non-finite.
    pub fn scaled(&self, factor: f64) -> Result<Self, LorentzError> {
        Self::new(self.dims.iter().map(|v| v * factor).collect())
    }

    /// Checks that the capacity has one entry per dimension of `space`.
    ///
    /// # Errors
    /// Returns [`LorentzError::DimensionMismatch`] on arity mismatch.
    pub fn check_space(&self, space: &ResourceSpace) -> Result<(), LorentzError> {
        if self.len() != space.len() {
            return Err(LorentzError::DimensionMismatch {
                expected: space.len(),
                got: self.len(),
            });
        }
        Ok(())
    }
}

impl fmt::Display for Capacity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("[")?;
        for (i, v) in self.dims.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v}")?;
        }
        f.write_str("]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_capacity_has_one_dim() {
        let c = Capacity::scalar(4.0);
        assert_eq!(c.len(), 1);
        assert_eq!(c.primary(), 4.0);
        assert_eq!(c.get(0), 4.0);
    }

    #[test]
    fn rejects_invalid_amounts() {
        assert!(Capacity::new(vec![]).is_err());
        assert!(Capacity::new(vec![0.0]).is_err());
        assert!(Capacity::new(vec![-1.0]).is_err());
        assert!(Capacity::new(vec![f64::NAN]).is_err());
        assert!(Capacity::new(vec![f64::INFINITY]).is_err());
        assert!(Capacity::new(vec![4.0, 0.0]).is_err());
    }

    #[test]
    fn dominates_is_elementwise() {
        let big = Capacity::new(vec![8.0, 32.0]).unwrap();
        let small = Capacity::new(vec![4.0, 16.0]).unwrap();
        let mixed = Capacity::new(vec![16.0, 8.0]).unwrap();
        assert!(big.dominates(&small));
        assert!(!small.dominates(&big));
        assert!(!mixed.dominates(&big));
        assert!(big.dominates(&big));
        assert!(small.below_anywhere(&big));
        assert!(mixed.below_anywhere(&big));
        assert!(!big.below_anywhere(&small));
    }

    #[test]
    fn log2_round_trips() {
        let c = Capacity::new(vec![4.0, 16.0]).unwrap();
        let logs = c.log2();
        assert_eq!(logs, vec![2.0, 4.0]);
        let back = Capacity::from_log2(&logs).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn scaled_multiplies_every_dimension() {
        let c = Capacity::new(vec![4.0, 16.0]).unwrap();
        let s = c.scaled(2.0).unwrap();
        assert_eq!(s.as_slice(), &[8.0, 32.0]);
        assert!(c.scaled(0.0).is_err());
        assert!(c.scaled(-1.0).is_err());
    }

    #[test]
    fn check_space_enforces_arity() {
        let c = Capacity::scalar(4.0);
        let one = ResourceSpace::vcores_only();
        let two = ResourceSpace::vcores_memory();
        assert!(c.check_space(&one).is_ok());
        assert!(c.check_space(&two).is_err());
    }

    #[test]
    fn display_formats_vector() {
        let c = Capacity::new(vec![4.0, 16.0]).unwrap();
        assert_eq!(c.to_string(), "[4, 16]");
    }
}
