//! Typed transport endpoints (`file:PATH` / `tcp://HOST:PORT`).
//!
//! Every place the CLI names a transport — the client front end's listen
//! address, a follower's replication upstream, the leader's replication
//! listener — parses one [`Endpoint`] instead of growing its own flag
//! grammar. Two schemes exist:
//!
//! * `file:PATH` (or `file://PATH`) — a path on a filesystem shared with
//!   the leader, tailed directly;
//! * `tcp://HOST:PORT` — a socket address, resolved at connect/bind time.
//!
//! A bare path with no scheme is accepted only through
//! [`Endpoint::parse_compat`], which flags it so callers can print a
//! deprecation warning; new code and docs always write the scheme.

use std::fmt;
use std::path::PathBuf;

use crate::error::LorentzError;

/// A parsed transport endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A filesystem path (`file:PATH`).
    File(PathBuf),
    /// A TCP authority (`tcp://HOST:PORT`), kept as a string and resolved
    /// by `ToSocketAddrs` at connect/bind time so hostnames work.
    Tcp(String),
}

impl Endpoint {
    /// Parse an endpoint URI. Requires an explicit scheme; a scheme-less
    /// string is an error (use [`Endpoint::parse_compat`] at CLI surfaces
    /// that must keep the deprecated bare-path form working).
    pub fn parse(s: &str) -> Result<Endpoint, LorentzError> {
        let s = s.trim();
        if let Some(rest) = s
            .strip_prefix("file://")
            .or_else(|| s.strip_prefix("file:"))
        {
            if rest.is_empty() {
                return Err(LorentzError::InvalidConfig(format!(
                    "endpoint '{s}' has an empty path"
                )));
            }
            return Ok(Endpoint::File(PathBuf::from(rest)));
        }
        if let Some(rest) = s.strip_prefix("tcp://") {
            let authority = rest.trim_end_matches('/');
            let port_ok = authority.rsplit_once(':').is_some_and(|(host, port)| {
                // An unbracketed IPv6 literal (`tcp://::1:7400`) would
                // silently misparse — the last colon is inside the
                // address — so hosts with colons are rejected outright.
                !host.is_empty() && !host.contains(':') && port.parse::<u16>().is_ok()
            });
            if !port_ok {
                return Err(LorentzError::InvalidConfig(format!(
                    "endpoint '{s}' must be tcp://HOST:PORT with a numeric port \
                     (IPv6 literals are not supported)"
                )));
            }
            return Ok(Endpoint::Tcp(authority.to_owned()));
        }
        if let Some((scheme, _)) = s.split_once("://") {
            return Err(LorentzError::InvalidConfig(format!(
                "unsupported endpoint scheme '{scheme}' (expected file:PATH or tcp://HOST:PORT)"
            )));
        }
        Err(LorentzError::InvalidConfig(format!(
            "endpoint '{s}' has no scheme (expected file:PATH or tcp://HOST:PORT)"
        )))
    }

    /// Parse an endpoint, additionally accepting the deprecated bare-path
    /// form. Returns `(endpoint, used_bare_path_alias)` so the caller can
    /// warn on the second component.
    pub fn parse_compat(s: &str) -> Result<(Endpoint, bool), LorentzError> {
        match Endpoint::parse(s) {
            Ok(ep) => Ok((ep, false)),
            Err(e) => {
                let bare = !s.contains("://")
                    && !s.starts_with("file:")
                    && !s.starts_with("tcp:")
                    && !s.trim().is_empty();
                if bare {
                    Ok((Endpoint::File(PathBuf::from(s.trim())), true))
                } else {
                    Err(e)
                }
            }
        }
    }

    /// The filesystem path, if this is a `file:` endpoint.
    pub fn as_file(&self) -> Option<&PathBuf> {
        match self {
            Endpoint::File(p) => Some(p),
            Endpoint::Tcp(_) => None,
        }
    }

    /// The TCP authority (`HOST:PORT`), if this is a `tcp://` endpoint.
    pub fn as_tcp(&self) -> Option<&str> {
        match self {
            Endpoint::Tcp(a) => Some(a),
            Endpoint::File(_) => None,
        }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::File(p) => write!(f, "file:{}", p.display()),
            Endpoint::Tcp(a) => write!(f, "tcp://{a}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_both_schemes() {
        assert_eq!(
            Endpoint::parse("file:/var/lorentz/signals.wal").unwrap(),
            Endpoint::File(PathBuf::from("/var/lorentz/signals.wal"))
        );
        assert_eq!(
            Endpoint::parse("file:///var/run/x.wal").unwrap(),
            Endpoint::File(PathBuf::from("/var/run/x.wal"))
        );
        assert_eq!(
            Endpoint::parse("tcp://127.0.0.1:7400").unwrap(),
            Endpoint::Tcp("127.0.0.1:7400".to_owned())
        );
        assert_eq!(
            Endpoint::parse("tcp://standby.internal:7400").unwrap(),
            Endpoint::Tcp("standby.internal:7400".to_owned())
        );
    }

    #[test]
    fn rejects_malformed_endpoints() {
        assert!(Endpoint::parse("tcp://no-port").is_err());
        assert!(Endpoint::parse("tcp://:7400").is_err());
        assert!(Endpoint::parse("tcp://host:notaport").is_err());
        assert!(Endpoint::parse("udp://host:1").is_err());
        assert!(Endpoint::parse("file:").is_err());
        assert!(Endpoint::parse("/bare/path.wal").is_err());
        // IPv6 hosts would misparse around the colons; rejected outright.
        assert!(Endpoint::parse("tcp://::1:7400").is_err());
        assert!(Endpoint::parse("tcp://[::1]:7400").is_err());
    }

    #[test]
    fn compat_accepts_bare_paths_and_flags_them() {
        let (ep, deprecated) = Endpoint::parse_compat("/tmp/replica.wal").unwrap();
        assert_eq!(ep, Endpoint::File(PathBuf::from("/tmp/replica.wal")));
        assert!(deprecated);
        let (ep, deprecated) = Endpoint::parse_compat("tcp://h:1").unwrap();
        assert_eq!(ep, Endpoint::Tcp("h:1".to_owned()));
        assert!(!deprecated);
        assert!(Endpoint::parse_compat("tcp://h").is_err());
    }

    #[test]
    fn display_roundtrips() {
        for s in ["file:/a/b.wal", "tcp://127.0.0.1:7400"] {
            assert_eq!(Endpoint::parse(s).unwrap().to_string(), s);
        }
    }
}
