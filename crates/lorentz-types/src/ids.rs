//! Typed identifiers for the customer / subscription / resource-group /
//! server hierarchy.
//!
//! The paper structures both profile data (§2.2) and the personalization
//! store (§3.4.2) along the chain
//! `CloudCustomerGuid > SubscriptionId > ResourceGroup > Server`. Newtype
//! wrappers keep those id spaces from being mixed up at compile time.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// The raw numeric id.
            pub fn raw(self) -> u32 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "-{:06}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                Self(v)
            }
        }
    };
}

id_type!(
    /// A cloud customer account (the paper's `CloudCustomerGuid`).
    CustomerId,
    "cust"
);
id_type!(
    /// A billing subscription owned by a customer.
    SubscriptionId,
    "sub"
);
id_type!(
    /// A resource group within a subscription, usually created per
    /// application or project.
    ResourceGroupId,
    "rg"
);
id_type!(
    /// A provisioned server / DB instance (one VM).
    ServerId,
    "srv"
);

/// Fully-qualified location of a provisioned resource in the customer
/// hierarchy, used as the routing key for personalization signals
/// (Algorithm 1's `CU, SU, RG`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ResourcePath {
    /// Owning customer.
    pub customer: CustomerId,
    /// Owning subscription.
    pub subscription: SubscriptionId,
    /// Owning resource group.
    pub resource_group: ResourceGroupId,
}

impl ResourcePath {
    /// Creates a path from its components.
    pub fn new(
        customer: CustomerId,
        subscription: SubscriptionId,
        resource_group: ResourceGroupId,
    ) -> Self {
        Self {
            customer,
            subscription,
            resource_group,
        }
    }
}

impl fmt::Display for ResourcePath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}/{}",
            self.customer, self.subscription, self.resource_group
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_display_with_prefixes() {
        assert_eq!(CustomerId(7).to_string(), "cust-000007");
        assert_eq!(SubscriptionId(42).to_string(), "sub-000042");
        assert_eq!(ResourceGroupId(1).to_string(), "rg-000001");
        assert_eq!(ServerId(123456).to_string(), "srv-123456");
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(CustomerId(1));
        set.insert(CustomerId(1));
        set.insert(CustomerId(2));
        assert_eq!(set.len(), 2);
        assert!(CustomerId(1) < CustomerId(2));
    }

    #[test]
    fn resource_path_display_joins_components() {
        let p = ResourcePath::new(CustomerId(1), SubscriptionId(2), ResourceGroupId(3));
        assert_eq!(p.to_string(), "cust-000001/sub-000002/rg-000003");
    }

    #[test]
    fn from_u32_round_trips() {
        let id: ServerId = 9u32.into();
        assert_eq!(id.raw(), 9);
    }
}
