//! Server offerings (stratification).
//!
//! Azure PostgreSQL DB stratifies services into three *server offerings*
//! (§2.1), each with its own ladder of candidate vCore capacities. Lorentz
//! trains a distinct parameter set per offering and assumes the offering is
//! pre-selected by the user.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A server offering ("stratification") of the database service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ServerOffering {
    /// Development / burstable workloads (5% of the fleet in §2.1).
    Burstable,
    /// Small production workloads (49% of the fleet).
    GeneralPurpose,
    /// Large production workloads (46% of the fleet).
    MemoryOptimized,
}

impl ServerOffering {
    /// All offerings in canonical order.
    pub const ALL: [ServerOffering; 3] = [
        ServerOffering::Burstable,
        ServerOffering::GeneralPurpose,
        ServerOffering::MemoryOptimized,
    ];

    /// The candidate vCore capacities for this offering (§2.1).
    pub fn vcore_options(self) -> &'static [f64] {
        match self {
            ServerOffering::Burstable => &[1.0, 2.0, 4.0, 8.0, 20.0],
            ServerOffering::GeneralPurpose => &[2.0, 4.0, 8.0, 16.0, 32.0, 48.0, 64.0, 96.0, 128.0],
            ServerOffering::MemoryOptimized => {
                &[2.0, 4.0, 8.0, 16.0, 20.0, 32.0, 48.0, 64.0, 96.0, 128.0]
            }
        }
    }

    /// Fraction of the analyzed fleet provisioned under this offering
    /// (§2.1: 5% / 49% / 46%). Used to calibrate the synthetic fleet.
    pub fn fleet_share(self) -> f64 {
        match self {
            ServerOffering::Burstable => 0.05,
            ServerOffering::GeneralPurpose => 0.49,
            ServerOffering::MemoryOptimized => 0.46,
        }
    }

    /// GiB of memory provisioned per vCore for this offering (the flexible
    /// server ladder couples memory to vCores; Memory-Optimized doubles the
    /// ratio).
    pub fn memory_gb_per_vcore(self) -> f64 {
        match self {
            ServerOffering::Burstable => 2.0,
            ServerOffering::GeneralPurpose => 4.0,
            ServerOffering::MemoryOptimized => 8.0,
        }
    }

    /// Whether this offering hosts development (vs production) workloads —
    /// the dev/prod breakdown of §2.2 treats Burstable as dev.
    pub fn is_development(self) -> bool {
        matches!(self, ServerOffering::Burstable)
    }

    /// Stable short name.
    pub fn name(self) -> &'static str {
        match self {
            ServerOffering::Burstable => "burstable",
            ServerOffering::GeneralPurpose => "general_purpose",
            ServerOffering::MemoryOptimized => "memory_optimized",
        }
    }

    /// Stable numeric code (the position in [`ServerOffering::ALL`]), used
    /// by the packed prediction-store key and dense per-offering tables.
    pub fn code(self) -> u8 {
        match self {
            ServerOffering::Burstable => 0,
            ServerOffering::GeneralPurpose => 1,
            ServerOffering::MemoryOptimized => 2,
        }
    }

    /// Reverses [`ServerOffering::code`].
    pub fn from_code(code: u8) -> Option<Self> {
        Self::ALL.get(usize::from(code)).copied()
    }
}

impl std::str::FromStr for ServerOffering {
    type Err = crate::error::LorentzError;

    /// Parses the stable short name ([`ServerOffering::name`]).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::ALL
            .iter()
            .copied()
            .find(|o| o.name() == s)
            .ok_or_else(|| {
                crate::error::LorentzError::InvalidConfig(format!(
                    "unknown offering '{s}' (use burstable, general_purpose, or memory_optimized)"
                ))
            })
    }
}

impl fmt::Display for ServerOffering {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vcore_ladders_match_the_paper() {
        assert_eq!(
            ServerOffering::Burstable.vcore_options(),
            &[1.0, 2.0, 4.0, 8.0, 20.0]
        );
        assert_eq!(ServerOffering::GeneralPurpose.vcore_options().len(), 9);
        assert_eq!(ServerOffering::MemoryOptimized.vcore_options().len(), 10);
        // Memory-Optimized adds the 20-vCore step General Purpose lacks.
        assert!(ServerOffering::MemoryOptimized
            .vcore_options()
            .contains(&20.0));
        assert!(!ServerOffering::GeneralPurpose
            .vcore_options()
            .contains(&20.0));
    }

    #[test]
    fn ladders_are_strictly_increasing() {
        for off in ServerOffering::ALL {
            let opts = off.vcore_options();
            assert!(opts.windows(2).all(|w| w[0] < w[1]), "{off} not sorted");
        }
    }

    #[test]
    fn fleet_shares_sum_to_one() {
        let total: f64 = ServerOffering::ALL.iter().map(|o| o.fleet_share()).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn codes_and_names_round_trip() {
        for o in ServerOffering::ALL {
            assert_eq!(ServerOffering::from_code(o.code()), Some(o));
            assert_eq!(o.name().parse::<ServerOffering>().unwrap(), o);
        }
        assert_eq!(ServerOffering::from_code(3), None);
        assert!("biggest".parse::<ServerOffering>().is_err());
    }

    #[test]
    fn burstable_is_the_dev_offering() {
        assert!(ServerOffering::Burstable.is_development());
        assert!(!ServerOffering::GeneralPurpose.is_development());
        assert!(!ServerOffering::MemoryOptimized.is_development());
    }
}
