//! Versioned λ-delta records for epoch publishing and replication.
//!
//! Stage-3 personalization (Algorithm 1) updates a handful of
//! `(path, stratum)` λ entries per satisfaction signal, but a naive
//! publish re-materializes the whole fleet table. [`LambdaDelta`] is the
//! wire/WAL record of one publish: the epoch number it produced plus the
//! changed [`PathKey`] → [`StratLambdas`] entries, and nothing else. A
//! follower that applies every delta in epoch order reconstructs the
//! leader's λ table exactly (λ values are carried as full replacement
//! rows, so deltas are idempotent per epoch and safe to re-apply after a
//! truncated tail is rescanned).
//!
//! Two encodings are provided:
//!
//! * JSON via the workspace serde stub — the human-readable form embedded
//!   in SignalWal records (`lorentz wal-verify` prints it);
//! * a fixed-layout binary pack ([`LambdaDelta::pack`] /
//!   [`LambdaDelta::unpack`]) for the socket replication path, with
//!   [`DeltaCorruption`] variants mirroring the
//!   [`StoreCorruption`](crate::StoreCorruption) discipline.

use crate::error::DeltaCorruption;
use crate::offering::ServerOffering;
use crate::pathkey::PathKey;
use serde::{Deserialize, Serialize, Value};

/// Per-stratum λ values for one resource path, indexed by
/// [`ServerOffering::ALL`] position.
pub type StratLambdas = [f64; ServerOffering::ALL.len()];

/// Number of server-offering strata (the length of a [`StratLambdas`]).
pub const N_STRATA: usize = ServerOffering::ALL.len();

/// Bytes per packed delta entry: a `u128` key plus one `f64` per stratum.
const ENTRY_LEN: usize = 16 + 8 * N_STRATA;

/// Bytes in the packed header: epoch (`u64`) + entry count (`u32`).
const PACK_HEADER_LEN: usize = 12;

/// One epoch's worth of λ changes: the entries touched by the signals
/// applied since the previous publish, stamped with the epoch number the
/// publish produced.
///
/// Entries are full replacement rows (every stratum), sorted by packed
/// key, so applying a delta is a plain upsert per entry and two deltas
/// for the same epoch are byte-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct LambdaDelta {
    /// The epoch this delta produced when published on the leader.
    pub epoch: u64,
    /// Changed profiles with their post-update λ rows, sorted by
    /// `PathKey::pack` order.
    pub entries: Vec<(PathKey, StratLambdas)>,
}

impl LambdaDelta {
    /// Builds a delta, sorting entries into canonical packed-key order.
    pub fn new(epoch: u64, mut entries: Vec<(PathKey, StratLambdas)>) -> Self {
        entries.sort_by_key(|(k, _)| k.pack());
        LambdaDelta { epoch, entries }
    }

    /// Whether the delta changes nothing (an epoch bump with no entries).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Packs the delta into the fixed binary layout:
    /// `[8 epoch LE][4 n_entries LE]` then per entry
    /// `[16 packed key LE][8 × N_STRATA f64-bits LE]`.
    pub fn pack(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(PACK_HEADER_LEN + ENTRY_LEN * self.entries.len());
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for (key, lambdas) in &self.entries {
            out.extend_from_slice(&key.pack().to_le_bytes());
            for l in lambdas {
                out.extend_from_slice(&l.to_bits().to_le_bytes());
            }
        }
        out
    }

    /// Reverses [`LambdaDelta::pack`], reporting which integrity check
    /// failed on malformed input. λ bit patterns round-trip exactly.
    pub fn unpack(bytes: &[u8]) -> Result<Self, DeltaCorruption> {
        if bytes.len() < PACK_HEADER_LEN {
            return Err(DeltaCorruption::Truncated {
                need: PACK_HEADER_LEN,
                got: bytes.len(),
            });
        }
        let epoch = u64::from_le_bytes(bytes[0..8].try_into().expect("8 bytes"));
        let n = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) as usize;
        let need = PACK_HEADER_LEN + ENTRY_LEN * n;
        if bytes.len() < need {
            return Err(DeltaCorruption::Truncated {
                need,
                got: bytes.len(),
            });
        }
        if bytes.len() > need {
            return Err(DeltaCorruption::TrailingBytes {
                extra: bytes.len() - need,
            });
        }
        let mut entries = Vec::with_capacity(n);
        let mut at = PACK_HEADER_LEN;
        for _ in 0..n {
            let packed = u128::from_le_bytes(bytes[at..at + 16].try_into().expect("16 bytes"));
            let key = PathKey::unpack(packed).ok_or(DeltaCorruption::BadEntryKey { packed })?;
            at += 16;
            let mut lambdas = [0.0f64; N_STRATA];
            for l in &mut lambdas {
                *l = f64::from_bits(u64::from_le_bytes(
                    bytes[at..at + 8].try_into().expect("8 bytes"),
                ));
                at += 8;
            }
            entries.push((key, lambdas));
        }
        Ok(LambdaDelta { epoch, entries })
    }
}

impl Serialize for LambdaDelta {
    fn to_value(&self) -> Value {
        let entries: Vec<Value> = self
            .entries
            .iter()
            .map(|(key, lambdas)| Value::Seq(vec![key.to_value(), lambdas.to_value()]))
            .collect();
        Value::Map(vec![
            ("epoch".to_owned(), self.epoch.to_value()),
            ("entries".to_owned(), Value::Seq(entries)),
        ])
    }
}

impl Deserialize for LambdaDelta {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        if v.as_map().is_none() {
            return Err(serde::Error::custom("lambda delta must be a map"));
        }
        let field = |name: &str| {
            v.get_field(name)
                .ok_or_else(|| serde::Error::custom(format!("delta missing field '{name}'")))
        };
        let epoch = u64::from_value(field("epoch")?)?;
        let raw = field("entries")?
            .as_seq()
            .ok_or_else(|| serde::Error::custom("delta entries must be a sequence"))?;
        let mut entries = Vec::with_capacity(raw.len());
        for entry in raw {
            let pair = entry
                .as_seq()
                .filter(|s| s.len() == 2)
                .ok_or_else(|| serde::Error::custom("delta entry must be a [key, lambdas] pair"))?;
            let key = PathKey::from_value(&pair[0])?;
            let lambdas = <StratLambdas>::from_value(&pair[1])?;
            entries.push((key, lambdas));
        }
        Ok(LambdaDelta { epoch, entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{CustomerId, ResourceGroupId, ResourcePath, SubscriptionId};

    fn key(c: u32, s: u32, r: u32) -> PathKey {
        PathKey::new(ResourcePath::new(
            CustomerId(c),
            SubscriptionId(s),
            ResourceGroupId(r),
        ))
    }

    fn sample() -> LambdaDelta {
        LambdaDelta::new(
            7,
            vec![
                (key(2, 1, 1), [0.5, -0.25, 8.0]),
                (key(1, 1, 1), [0.1, 0.2, 0.3]),
            ],
        )
    }

    #[test]
    fn new_sorts_entries_by_packed_key() {
        let d = sample();
        assert_eq!(d.entries[0].0, key(1, 1, 1));
        assert_eq!(d.entries[1].0, key(2, 1, 1));
    }

    #[test]
    fn pack_unpack_round_trips_bit_exact() {
        let d = LambdaDelta::new(
            u64::MAX,
            vec![(key(u32::MAX, 0, 7), [f64::MIN_POSITIVE, -0.0, 1.0 / 3.0])],
        );
        let back = LambdaDelta::unpack(&d.pack()).unwrap();
        assert_eq!(back.epoch, d.epoch);
        for ((ka, la), (kb, lb)) in d.entries.iter().zip(&back.entries) {
            assert_eq!(ka, kb);
            for (a, b) in la.iter().zip(lb) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn unpack_reports_each_corruption_kind() {
        let d = sample();
        let bytes = d.pack();
        // Short header.
        assert!(matches!(
            LambdaDelta::unpack(&bytes[..4]),
            Err(DeltaCorruption::Truncated { need: 12, .. })
        ));
        // Truncated entry payload.
        assert!(matches!(
            LambdaDelta::unpack(&bytes[..bytes.len() - 1]),
            Err(DeltaCorruption::Truncated { .. })
        ));
        // Trailing garbage.
        let mut long = bytes.clone();
        long.push(0xFF);
        assert!(matches!(
            LambdaDelta::unpack(&long),
            Err(DeltaCorruption::TrailingBytes { extra: 1 })
        ));
        // Reserved key bits set.
        let mut bad = bytes;
        bad[PACK_HEADER_LEN + 15] = 0x80;
        assert!(matches!(
            LambdaDelta::unpack(&bad),
            Err(DeltaCorruption::BadEntryKey { .. })
        ));
    }

    #[test]
    fn json_round_trips_exactly() {
        let d = sample();
        let json = serde_json::to_string(&d).unwrap();
        assert!(json.contains("\"epoch\":7"));
        assert!(json.contains("\"1|1|1\""));
        let back: LambdaDelta = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn empty_delta_is_empty() {
        let d = LambdaDelta::new(3, vec![]);
        assert!(d.is_empty());
        assert_eq!(LambdaDelta::unpack(&d.pack()).unwrap(), d);
    }
}
