//! Shared frame codec for every length-prefixed byte stream in the workspace.
//!
//! Three subsystems frame payloads onto a byte stream or an append-only
//! file, and before this module each hand-rolled the layout:
//!
//! * the TCP client front end (`lorentz-serve::wire`): `[4 len u32 BE][payload]`;
//! * the signal WAL (`lorentz-core::personalizer::wal`):
//!   `[4 magic "LSIG"][4 len u32 LE][4 CRC32C u32 LE][payload]`;
//! * the replication stream, which carries the WAL's frames verbatim over a
//!   socket so the follower decodes exactly the bytes the leader fsynced.
//!
//! [`FrameCodec`] captures the layout as data (optional magic, length
//! endianness, optional CRC32C, payload cap) so cap enforcement, torn-frame
//! detection, and checksum validation are implemented once. Both historical
//! byte layouts are preserved bit-for-bit: [`FrameCodec::wire`] and
//! [`FrameCodec::wal`] encode exactly what the hand-rolled versions did, so
//! on-disk WALs and on-wire clients need no migration.
//!
//! Two decode surfaces are offered because the two call sites differ:
//!
//! * **Buffer decode** ([`FrameCodec::decode`]) for the WAL, which slurps a
//!   file and walks frames, treating an incomplete tail as a torn write;
//! * **Stream decode** ([`FrameCodec::read_frame`]) for sockets, which
//!   distinguishes a clean close at a frame boundary ([`StreamError::Closed`])
//!   from a connection dropped mid-frame ([`StreamError::Truncated`]).

use std::io::{self, Read, Write};

/// Hard ceiling any codec will accept, regardless of configuration.
pub const ABSOLUTE_MAX_PAYLOAD: usize = 1 << 30;

const fn crc32c_table() -> [u32; 256] {
    // CRC-32C (Castagnoli), reflected polynomial 0x82F63B78.
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0x82F6_3B78
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC32C_TABLE: [u32; 256] = crc32c_table();

/// CRC-32C (Castagnoli) over `bytes`, the checksum used by every framed
/// byte stream in the workspace (store snapshots, the signal WAL, and the
/// replication stream).
pub fn crc32c(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in bytes {
        let idx = ((crc ^ b as u32) & 0xFF) as usize;
        crc = (crc >> 8) ^ CRC32C_TABLE[idx];
    }
    !crc
}

/// Byte order of the u32 length prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LenEndian {
    /// Big-endian length prefix (network order; the client wire protocol).
    Big,
    /// Little-endian length prefix (the WAL's on-disk layout).
    Little,
}

/// A frame-layout description: optional 4-byte magic, a u32 length prefix,
/// an optional CRC32C of the payload, and a payload cap enforced *before*
/// any payload bytes are buffered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameCodec {
    magic: Option<[u8; 4]>,
    len_endian: LenEndian,
    checksum: bool,
    max_payload: usize,
}

/// Structural frame violations shared by buffer and stream decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The declared payload length exceeds the codec's cap. Detected from
    /// the header alone, before any payload is buffered.
    TooLarge {
        /// Declared payload length.
        len: usize,
        /// The codec's configured cap.
        max: usize,
    },
    /// The frame did not start with the codec's magic bytes.
    BadMagic {
        /// The four bytes found where the magic was expected.
        found: [u8; 4],
    },
    /// The payload failed its CRC32C check.
    ChecksumMismatch {
        /// Checksum recorded in the frame header.
        expected: u32,
        /// Checksum computed over the received payload.
        actual: u32,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::TooLarge { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds cap of {max}")
            }
            FrameError::BadMagic { found } => write!(f, "bad frame magic {found:02x?}"),
            FrameError::ChecksumMismatch { expected, actual } => write!(
                f,
                "frame checksum mismatch: header says {expected:#010x}, payload hashes to {actual:#010x}"
            ),
        }
    }
}

impl std::error::Error for FrameError {}

/// Result of decoding one frame out of an in-memory buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decoded<'a> {
    /// A complete frame: its payload and the total bytes consumed
    /// (header + payload).
    Frame {
        /// The frame's payload bytes.
        payload: &'a [u8],
        /// Total encoded size of the frame, header included.
        consumed: usize,
    },
    /// The buffer ends before the frame does (a torn tail, or simply the
    /// end of what has been written so far).
    Incomplete {
        /// Bytes available past the decode offset.
        got: usize,
        /// The declared payload length, when the header itself was intact.
        declared: Option<usize>,
    },
}

/// Errors from stream ([`Read`]) decoding.
#[derive(Debug)]
pub enum StreamError {
    /// The stream closed cleanly at a frame boundary.
    Closed,
    /// The stream closed mid-frame (inside the header or the payload).
    Truncated,
    /// A structural violation: oversized frame, bad magic, bad checksum.
    Frame(FrameError),
    /// An I/O error other than EOF.
    Io(io::Error),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Closed => write!(f, "stream closed at a frame boundary"),
            StreamError::Truncated => write!(f, "stream closed mid-frame"),
            StreamError::Frame(e) => write!(f, "{e}"),
            StreamError::Io(e) => write!(f, "frame i/o error: {e}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<FrameError> for StreamError {
    fn from(e: FrameError) -> Self {
        StreamError::Frame(e)
    }
}

impl FrameCodec {
    /// The client wire layout: `[4 len u32 BE][payload]`, no magic, no
    /// checksum (TCP already checksums; the JSON payloads are self-framing).
    pub fn wire(max_payload: usize) -> Self {
        FrameCodec {
            magic: None,
            len_endian: LenEndian::Big,
            checksum: false,
            max_payload: max_payload.min(ABSOLUTE_MAX_PAYLOAD),
        }
    }

    /// The WAL layout: `[4 magic][4 len u32 LE][4 CRC32C u32 LE][payload]`.
    pub fn wal(magic: [u8; 4], max_payload: usize) -> Self {
        FrameCodec {
            magic: Some(magic),
            len_endian: LenEndian::Little,
            checksum: true,
            max_payload: max_payload.min(ABSOLUTE_MAX_PAYLOAD),
        }
    }

    /// Bytes of header preceding the payload.
    pub fn header_len(&self) -> usize {
        (if self.magic.is_some() { 4 } else { 0 }) + 4 + (if self.checksum { 4 } else { 0 })
    }

    /// The payload cap this codec enforces.
    pub fn max_payload(&self) -> usize {
        self.max_payload
    }

    /// Frame `payload`, appending header + payload to `out`.
    ///
    /// # Panics
    /// Panics if `payload` exceeds the codec's cap — encoding an oversized
    /// frame is a programming error, not a runtime condition.
    pub fn encode_into(&self, payload: &[u8], out: &mut Vec<u8>) {
        assert!(
            payload.len() <= self.max_payload,
            "frame payload of {} bytes exceeds cap of {}",
            payload.len(),
            self.max_payload
        );
        if let Some(magic) = self.magic {
            out.extend_from_slice(&magic);
        }
        let len = payload.len() as u32;
        match self.len_endian {
            LenEndian::Big => out.extend_from_slice(&len.to_be_bytes()),
            LenEndian::Little => out.extend_from_slice(&len.to_le_bytes()),
        }
        if self.checksum {
            out.extend_from_slice(&crc32c(payload).to_le_bytes());
        }
        out.extend_from_slice(payload);
    }

    /// Frame `payload` into a fresh buffer.
    pub fn encode(&self, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.header_len() + payload.len());
        self.encode_into(payload, &mut out);
        out
    }

    /// Decode the frame starting at `buf[offset..]`.
    ///
    /// Returns [`Decoded::Incomplete`] when the buffer ends before the frame
    /// does — callers decide whether that means "torn tail, truncate" (WAL
    /// open) or "wait for more bytes" (tailer).
    pub fn decode<'a>(&self, buf: &'a [u8], offset: usize) -> Result<Decoded<'a>, FrameError> {
        let rest = &buf[offset.min(buf.len())..];
        let header_len = self.header_len();
        if rest.len() < header_len {
            return Ok(Decoded::Incomplete {
                got: rest.len(),
                declared: None,
            });
        }
        let mut pos = 0;
        if let Some(magic) = self.magic {
            let found: [u8; 4] = rest[..4].try_into().expect("4-byte slice");
            if found != magic {
                return Err(FrameError::BadMagic { found });
            }
            pos += 4;
        }
        let len_bytes: [u8; 4] = rest[pos..pos + 4].try_into().expect("4-byte slice");
        let len = match self.len_endian {
            LenEndian::Big => u32::from_be_bytes(len_bytes),
            LenEndian::Little => u32::from_le_bytes(len_bytes),
        } as usize;
        pos += 4;
        if len > self.max_payload {
            return Err(FrameError::TooLarge {
                len,
                max: self.max_payload,
            });
        }
        let expected = if self.checksum {
            let crc_bytes: [u8; 4] = rest[pos..pos + 4].try_into().expect("4-byte slice");
            pos += 4;
            Some(u32::from_le_bytes(crc_bytes))
        } else {
            None
        };
        if rest.len() < pos + len {
            return Ok(Decoded::Incomplete {
                got: rest.len(),
                declared: Some(len),
            });
        }
        let payload = &rest[pos..pos + len];
        if let Some(expected) = expected {
            let actual = crc32c(payload);
            if actual != expected {
                return Err(FrameError::ChecksumMismatch { expected, actual });
            }
        }
        Ok(Decoded::Frame {
            payload,
            consumed: pos + len,
        })
    }

    /// Read one frame from a stream.
    ///
    /// EOF before the first header byte is [`StreamError::Closed`]; EOF
    /// anywhere inside the frame is [`StreamError::Truncated`]. The length
    /// is validated against the cap before any payload is buffered, and
    /// `ErrorKind::Interrupted` is retried.
    pub fn read_frame(&self, reader: &mut impl Read) -> Result<Vec<u8>, StreamError> {
        let mut header = vec![0u8; self.header_len()];
        read_exact_or_eof(reader, &mut header)?;
        let mut pos = 0;
        if let Some(magic) = self.magic {
            let found: [u8; 4] = header[..4].try_into().expect("4-byte slice");
            if found != magic {
                return Err(FrameError::BadMagic { found }.into());
            }
            pos += 4;
        }
        let len_bytes: [u8; 4] = header[pos..pos + 4].try_into().expect("4-byte slice");
        let len = match self.len_endian {
            LenEndian::Big => u32::from_be_bytes(len_bytes),
            LenEndian::Little => u32::from_le_bytes(len_bytes),
        } as usize;
        pos += 4;
        if len > self.max_payload {
            return Err(FrameError::TooLarge {
                len,
                max: self.max_payload,
            }
            .into());
        }
        let expected = if self.checksum {
            let crc_bytes: [u8; 4] = header[pos..pos + 4].try_into().expect("4-byte slice");
            Some(u32::from_le_bytes(crc_bytes))
        } else {
            None
        };
        let mut payload = vec![0u8; len];
        read_body(reader, &mut payload)?;
        if let Some(expected) = expected {
            let actual = crc32c(&payload);
            if actual != expected {
                return Err(FrameError::ChecksumMismatch { expected, actual }.into());
            }
        }
        Ok(payload)
    }

    /// Frame `payload` onto a stream and flush.
    pub fn write_frame(&self, writer: &mut impl Write, payload: &[u8]) -> io::Result<()> {
        if payload.len() > self.max_payload {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "frame payload of {} bytes exceeds cap of {}",
                    payload.len(),
                    self.max_payload
                ),
            ));
        }
        let frame = self.encode(payload);
        writer.write_all(&frame)?;
        writer.flush()
    }
}

/// Read exactly `buf.len()` bytes; EOF at byte 0 is `Closed`, EOF later is
/// `Truncated`, `Interrupted` is retried.
fn read_exact_or_eof(reader: &mut impl Read, buf: &mut [u8]) -> Result<(), StreamError> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if filled == 0 {
                    StreamError::Closed
                } else {
                    StreamError::Truncated
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(StreamError::Io(e)),
        }
    }
    Ok(())
}

/// Like [`read_exact_or_eof`] but EOF anywhere (including byte 0) is
/// `Truncated`: the header already committed us to a frame.
fn read_body(reader: &mut impl Read, buf: &mut [u8]) -> Result<(), StreamError> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => return Err(StreamError::Truncated),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(StreamError::Io(e)),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32c_matches_known_vector() {
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(b""), 0);
    }

    #[test]
    fn wire_layout_is_len_be_then_payload() {
        let codec = FrameCodec::wire(1 << 20);
        let frame = codec.encode(b"hello");
        assert_eq!(&frame[..4], &5u32.to_be_bytes());
        assert_eq!(&frame[4..], b"hello");
    }

    #[test]
    fn wal_layout_is_magic_len_crc_payload() {
        let codec = FrameCodec::wal(*b"LSIG", 1 << 24);
        let frame = codec.encode(b"hello");
        assert_eq!(&frame[..4], b"LSIG");
        assert_eq!(&frame[4..8], &5u32.to_le_bytes());
        assert_eq!(&frame[8..12], &crc32c(b"hello").to_le_bytes());
        assert_eq!(&frame[12..], b"hello");
    }

    #[test]
    fn buffer_decode_roundtrips_and_reports_torn_tail() {
        let codec = FrameCodec::wal(*b"LSIG", 1 << 24);
        let mut buf = codec.encode(b"one");
        codec.encode_into(b"two", &mut buf);
        let Decoded::Frame { payload, consumed } = codec.decode(&buf, 0).unwrap() else {
            panic!("expected a frame");
        };
        assert_eq!(payload, b"one");
        let Decoded::Frame {
            payload,
            consumed: c2,
        } = codec.decode(&buf, consumed).unwrap()
        else {
            panic!("expected a frame");
        };
        assert_eq!(payload, b"two");
        assert_eq!(consumed + c2, buf.len());
        // Torn tail: every strict prefix of a frame decodes as Incomplete,
        // with the declared length surfaced once the header is whole.
        let frame = codec.encode(b"torn");
        for cut in 0..frame.len() {
            match codec.decode(&frame[..cut], 0).unwrap() {
                Decoded::Incomplete { got, declared } => {
                    assert_eq!(got, cut);
                    assert_eq!(
                        declared,
                        if cut >= codec.header_len() {
                            Some(4)
                        } else {
                            None
                        }
                    );
                }
                other => panic!("cut {cut}: expected Incomplete, got {other:?}"),
            }
        }
    }

    #[test]
    fn buffer_decode_rejects_corruption() {
        let codec = FrameCodec::wal(*b"LSIG", 16);
        let mut frame = codec.encode(b"payload");
        frame[12] ^= 0x01;
        assert!(matches!(
            codec.decode(&frame, 0),
            Err(FrameError::ChecksumMismatch { .. })
        ));
        let mut bad_magic = codec.encode(b"payload");
        bad_magic[0] = b'X';
        assert!(matches!(
            codec.decode(&bad_magic, 0),
            Err(FrameError::BadMagic { .. })
        ));
        let mut oversized = codec.encode(b"payload");
        oversized[4..8].copy_from_slice(&64u32.to_le_bytes());
        assert!(matches!(
            codec.decode(&oversized, 0),
            Err(FrameError::TooLarge { len: 64, max: 16 })
        ));
    }

    #[test]
    fn stream_read_distinguishes_closed_from_truncated() {
        let codec = FrameCodec::wire(1 << 20);
        let frame = codec.encode(b"abc");
        let mut cursor = io::Cursor::new(frame.clone());
        assert_eq!(codec.read_frame(&mut cursor).unwrap(), b"abc");
        assert!(matches!(
            codec.read_frame(&mut cursor),
            Err(StreamError::Closed)
        ));
        let mut torn = io::Cursor::new(frame[..5].to_vec());
        assert!(matches!(
            codec.read_frame(&mut torn),
            Err(StreamError::Truncated)
        ));
        let mut mid_header = io::Cursor::new(frame[..2].to_vec());
        assert!(matches!(
            codec.read_frame(&mut mid_header),
            Err(StreamError::Truncated)
        ));
    }

    #[test]
    fn stream_read_rejects_oversized_before_buffering() {
        let codec = FrameCodec::wire(8);
        let mut raw = Vec::new();
        raw.extend_from_slice(&1024u32.to_be_bytes());
        let mut cursor = io::Cursor::new(raw);
        assert!(matches!(
            codec.read_frame(&mut cursor),
            Err(StreamError::Frame(FrameError::TooLarge {
                len: 1024,
                max: 8
            }))
        ));
    }
}
