//! Shared domain types for the Lorentz SKU recommender.
//!
//! This crate defines the vocabulary that every other Lorentz crate speaks:
//!
//! * [`ResourceKind`] / [`ResourceSpace`] — the resource dimensions a capacity
//!   spans (vCores, memory, IOPS, ...);
//! * [`Capacity`] — a point in resource space, e.g. `[4 vCores, 16 GB]`;
//! * [`Sku`] / [`SkuCatalog`] — the discrete candidate capacities a cloud
//!   service offers, stratified by [`ServerOffering`];
//! * typed identifiers ([`CustomerId`], [`SubscriptionId`],
//!   [`ResourceGroupId`], [`ServerId`]);
//! * [`ProfileSchema`] / [`ProfileTable`] — categorical customer/server
//!   profile data with per-column value interning;
//! * [`StoreKey`] / [`ValueId`] — typed, `u64`-packable prediction-store
//!   keys over interned profile values;
//! * [`PathKey`] — the `u128`-packable personalization-store key over a
//!   [`ResourcePath`];
//! * [`ShardRouter`] / [`PathKeyHasher`] — multiply-fold shard routing and
//!   hashing over the packed key spaces;
//! * [`LambdaDelta`] / [`StratLambdas`] — epoch-stamped λ-change records
//!   for delta publishing and WAL-streamed replication;
//! * [`Endpoint`] / [`FrameCodec`] — typed transport endpoints
//!   (`file:PATH` / `tcp://HOST:PORT`) and the shared length-prefixed frame
//!   codec behind the client wire protocol, the signal WAL, and the
//!   replication stream;
//! * [`SubscribeRequest`] / [`SubscribeReply`] — the follower↔leader
//!   resume-from-epoch replication handshake;
//! * [`LorentzError`] — the shared error type.
//!
//! The types follow §2 of the paper: Azure PostgreSQL DB (flexible server)
//! exposes three server offerings with fixed vCore ladders, and capacity for
//! memory is provisioned proportionally to vCores (4 GB per vCore), so most
//! analyses reduce to the vCores dimension while the API remains
//! multi-resource.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod capacity;
pub mod endpoint;
pub mod error;
pub mod framing;
pub mod ids;
pub mod lambda;
pub mod offering;
pub mod pathkey;
pub mod profile;
pub mod replication;
pub mod resource;
pub mod shard;
pub mod sku;
pub mod storekey;

pub use capacity::Capacity;
pub use endpoint::Endpoint;
pub use error::{DeltaCorruption, LorentzError, StoreCorruption};
pub use framing::{crc32c, Decoded, FrameCodec, FrameError, StreamError};
pub use ids::{CustomerId, ResourceGroupId, ResourcePath, ServerId, SubscriptionId};
pub use lambda::{LambdaDelta, StratLambdas, N_STRATA};
pub use offering::ServerOffering;
pub use pathkey::PathKey;
pub use profile::{FeatureId, ProfileSchema, ProfileTable, ProfileVector, Vocab};
pub use replication::{
    HandshakeRejection, ResumeMode, SubscribeAck, SubscribeReply, SubscribeRequest,
};
pub use resource::{ResourceKind, ResourceSpace};
pub use shard::{PathKeyHasher, ShardRouter};
pub use sku::{Sku, SkuCatalog};
pub use storekey::{StoreKey, ValueId};

/// Convenience result alias used across the workspace.
pub type Result<T> = std::result::Result<T, LorentzError>;
