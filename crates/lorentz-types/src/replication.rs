//! Replication handshake wire types.
//!
//! A follower opens a TCP connection to the leader's replication listener
//! and the two exchange exactly one JSON frame each (framed by the client
//! wire codec, [`crate::framing::FrameCodec::wire`]):
//!
//! ```text
//! follower -> leader   {"subscribe": {"last_epoch": N, "term": T}}
//! leader   -> follower {"ok": {"mode": "resume", "from_epoch": N, "leader_epoch": M, "leader_term": T}}
//!                    | {"ok": {"mode": "full_resync", "from_epoch": 0, "leader_epoch": M, "leader_term": T}}
//!                    | {"error": {"kind": "follower_ahead", "follower": N, "leader": M}}
//!                    | {"error": {"kind": "stale_leader", "leader_term": T, "observed_term": U}}
//! ```
//!
//! After an `ok` the leader switches the connection to a one-way stream of
//! CRC-framed WAL records — the exact bytes it appends to its own log — and
//! never reads from the socket again.
//!
//! # Epoch-gap semantics
//!
//! Epochs are minted by one global counter on the leader, but each shard's
//! λ-store advances only when a delta routes to it, so any single replicated
//! stream (and any shard within it) observes epochs that advance *with
//! gaps*. `last_epoch` therefore means "the highest epoch I have applied",
//! not "I have applied every epoch below this"; the leader resumes from the
//! first record with `epoch > last_epoch`, and followers accept any forward
//! jump while rejecting regression ([`crate::DeltaCorruption::EpochRegression`]).
//!
//! Two asymmetric positions get typed outcomes rather than silent behavior:
//!
//! * follower *behind the log's start* (the leader compacted or rotated its
//!   WAL past `last_epoch`): not an error — the leader answers
//!   `mode: full_resync` and the follower must reset its λ-state before
//!   applying the stream;
//! * follower *ahead of the leader* (`last_epoch` beyond the leader's own
//!   epoch): a [`HandshakeRejection::FollowerAhead`] error, because the
//!   "leader" is stale and syncing would silently rewind the follower.
//!
//! # Leader terms
//!
//! Every serving leader carries a monotonically increasing **term**,
//! persisted as a framed record in its WAL and incremented on every
//! promotion. The handshake stamps terms in both directions: the follower
//! reports the highest term it has observed (`term`, absent on legacy
//! peers and read as 0), and the ack carries the leader's own term
//! (`leader_term`, likewise 0 from legacy leaders). A leader contacted by
//! a subscriber that has observed a *higher* term knows it has been
//! superseded: it answers [`HandshakeRejection::StaleLeader`] and fences
//! itself. A follower whose ack carries a term *below* what it has
//! already observed refuses the stream for the same reason — applying a
//! stale leader's frames would fork the replica WAL.

use serde::{Deserialize, Error as SerdeError, Serialize, Value};

/// The first (and only) frame a follower sends: its resume position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubscribeRequest {
    /// Highest epoch the follower has durably applied; `0` requests the
    /// stream from the beginning.
    pub last_epoch: u64,
    /// Highest leader term the follower has observed (from term records
    /// it replayed or acks it received); `0` from legacy followers whose
    /// subscribe frames predate terms.
    pub term: u64,
}

/// How the leader will bring this follower up to date.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResumeMode {
    /// Replay on-disk records with `epoch > last_epoch`, then live-tail.
    Resume,
    /// The log no longer reaches back to `last_epoch`: the follower must
    /// discard its λ-state and apply the full stream from the log's start.
    FullResync,
}

/// The leader's acceptance of a subscription.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubscribeAck {
    /// Resume or full-resync (see [`ResumeMode`]).
    pub mode: ResumeMode,
    /// The epoch replay starts after (equals the request's `last_epoch` on
    /// resume, `0` on full resync).
    pub from_epoch: u64,
    /// The leader's current epoch at subscription time.
    pub leader_epoch: u64,
    /// The leader's current term; `0` from legacy leaders whose acks
    /// predate terms.
    pub leader_term: u64,
}

/// A typed refusal, sent instead of an ack and followed by connection close.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HandshakeRejection {
    /// The follower's `last_epoch` is beyond the leader's own epoch — the
    /// leader is stale (or the follower is pointed at the wrong cluster)
    /// and resuming would silently rewind the follower.
    FollowerAhead {
        /// The follower's claimed epoch.
        follower: u64,
        /// The leader's current epoch.
        leader: u64,
    },
    /// The subscriber has observed a term above the answering leader's
    /// own — this leader has been superseded by a newer promotion and
    /// must fence itself instead of streaming.
    StaleLeader {
        /// The answering leader's own term.
        leader_term: u64,
        /// The higher term the subscriber reported.
        observed_term: u64,
    },
    /// The subscribe frame did not parse.
    Malformed(String),
}

impl HandshakeRejection {
    /// Stable machine-readable kind string used on the wire.
    pub fn kind(&self) -> &'static str {
        match self {
            HandshakeRejection::FollowerAhead { .. } => "follower_ahead",
            HandshakeRejection::StaleLeader { .. } => "stale_leader",
            HandshakeRejection::Malformed(_) => "malformed",
        }
    }
}

impl std::fmt::Display for HandshakeRejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HandshakeRejection::FollowerAhead { follower, leader } => write!(
                f,
                "follower at epoch {follower} is ahead of leader at epoch {leader}"
            ),
            HandshakeRejection::StaleLeader {
                leader_term,
                observed_term,
            } => write!(
                f,
                "leader at term {leader_term} is stale: a term-{observed_term} leader supersedes it"
            ),
            HandshakeRejection::Malformed(msg) => write!(f, "malformed subscribe frame: {msg}"),
        }
    }
}

impl std::error::Error for HandshakeRejection {}

/// The leader's single handshake reply: an ack or a typed rejection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubscribeReply {
    /// Subscription accepted; the WAL stream follows.
    Ok(SubscribeAck),
    /// Subscription refused; the leader closes the connection.
    Err(HandshakeRejection),
}

fn field<'a>(v: &'a Value, name: &str) -> Result<&'a Value, SerdeError> {
    v.get_field(name)
        .ok_or_else(|| SerdeError::custom(format!("handshake frame missing field '{name}'")))
}

/// Reads an optional `u64` field, defaulting to 0 when absent — the
/// legacy-compat rule for term fields added after the epoch-only protocol.
fn term_field(v: &Value, name: &str) -> Result<u64, SerdeError> {
    match v.get_field(name) {
        Some(raw) => u64::from_value(raw),
        None => Ok(0),
    }
}

impl Serialize for SubscribeRequest {
    fn to_value(&self) -> Value {
        Value::Map(vec![(
            "subscribe".to_owned(),
            Value::Map(vec![
                ("last_epoch".to_owned(), self.last_epoch.to_value()),
                ("term".to_owned(), self.term.to_value()),
            ]),
        )])
    }
}

impl Deserialize for SubscribeRequest {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        let body = field(v, "subscribe")?;
        Ok(SubscribeRequest {
            last_epoch: u64::from_value(field(body, "last_epoch")?)?,
            term: term_field(body, "term")?,
        })
    }
}

impl Serialize for SubscribeReply {
    fn to_value(&self) -> Value {
        match self {
            SubscribeReply::Ok(ack) => {
                let mode = match ack.mode {
                    ResumeMode::Resume => "resume",
                    ResumeMode::FullResync => "full_resync",
                };
                Value::Map(vec![(
                    "ok".to_owned(),
                    Value::Map(vec![
                        ("mode".to_owned(), Value::Str(mode.to_owned())),
                        ("from_epoch".to_owned(), ack.from_epoch.to_value()),
                        ("leader_epoch".to_owned(), ack.leader_epoch.to_value()),
                        ("leader_term".to_owned(), ack.leader_term.to_value()),
                    ]),
                )])
            }
            SubscribeReply::Err(rej) => {
                let mut body = vec![("kind".to_owned(), Value::Str(rej.kind().to_owned()))];
                match rej {
                    HandshakeRejection::FollowerAhead { follower, leader } => {
                        body.push(("follower".to_owned(), follower.to_value()));
                        body.push(("leader".to_owned(), leader.to_value()));
                    }
                    HandshakeRejection::StaleLeader {
                        leader_term,
                        observed_term,
                    } => {
                        body.push(("leader_term".to_owned(), leader_term.to_value()));
                        body.push(("observed_term".to_owned(), observed_term.to_value()));
                    }
                    HandshakeRejection::Malformed(msg) => {
                        body.push(("message".to_owned(), Value::Str(msg.clone())));
                    }
                }
                Value::Map(vec![("error".to_owned(), Value::Map(body))])
            }
        }
    }
}

impl Deserialize for SubscribeReply {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        if let Some(body) = v.get_field("ok") {
            let mode = match field(body, "mode")?.as_str() {
                Some("resume") => ResumeMode::Resume,
                Some("full_resync") => ResumeMode::FullResync,
                other => {
                    return Err(SerdeError::custom(format!("unknown resume mode {other:?}")));
                }
            };
            return Ok(SubscribeReply::Ok(SubscribeAck {
                mode,
                from_epoch: u64::from_value(field(body, "from_epoch")?)?,
                leader_epoch: u64::from_value(field(body, "leader_epoch")?)?,
                leader_term: term_field(body, "leader_term")?,
            }));
        }
        if let Some(body) = v.get_field("error") {
            let rejection = match field(body, "kind")?.as_str() {
                Some("follower_ahead") => HandshakeRejection::FollowerAhead {
                    follower: u64::from_value(field(body, "follower")?)?,
                    leader: u64::from_value(field(body, "leader")?)?,
                },
                Some("stale_leader") => HandshakeRejection::StaleLeader {
                    leader_term: u64::from_value(field(body, "leader_term")?)?,
                    observed_term: u64::from_value(field(body, "observed_term")?)?,
                },
                Some("malformed") => HandshakeRejection::Malformed(
                    field(body, "message")?
                        .as_str()
                        .unwrap_or_default()
                        .to_owned(),
                ),
                other => {
                    return Err(SerdeError::custom(format!(
                        "unknown rejection kind {other:?}"
                    )));
                }
            };
            return Ok(SubscribeReply::Err(rejection));
        }
        Err(SerdeError::custom(
            "handshake reply must be {\"ok\": ...} or {\"error\": ...}",
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subscribe_request_roundtrips() {
        let req = SubscribeRequest {
            last_epoch: 42,
            term: 3,
        };
        let json = serde_json::to_string(&req).unwrap();
        assert!(json.contains("\"subscribe\""), "{json}");
        assert!(json.contains("\"last_epoch\""), "{json}");
        assert!(json.contains("\"term\""), "{json}");
        let back: SubscribeRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn replies_roundtrip() {
        let cases = [
            SubscribeReply::Ok(SubscribeAck {
                mode: ResumeMode::Resume,
                from_epoch: 7,
                leader_epoch: 19,
                leader_term: 2,
            }),
            SubscribeReply::Ok(SubscribeAck {
                mode: ResumeMode::FullResync,
                from_epoch: 0,
                leader_epoch: 19,
                leader_term: 1,
            }),
            SubscribeReply::Err(HandshakeRejection::FollowerAhead {
                follower: 20,
                leader: 19,
            }),
            SubscribeReply::Err(HandshakeRejection::StaleLeader {
                leader_term: 2,
                observed_term: 5,
            }),
            SubscribeReply::Err(HandshakeRejection::Malformed("not json".to_owned())),
        ];
        for reply in cases {
            let json = serde_json::to_string(&reply).unwrap();
            let back: SubscribeReply = serde_json::from_str(&json).unwrap();
            assert_eq!(back, reply, "{json}");
        }
    }

    #[test]
    fn legacy_frames_without_terms_read_as_term_zero() {
        // A pre-term follower's subscribe frame and a pre-term leader's
        // ack both parse, with the absent term fields defaulting to 0.
        let req: SubscribeRequest =
            serde_json::from_str(r#"{"subscribe": {"last_epoch": 9}}"#).unwrap();
        assert_eq!(
            req,
            SubscribeRequest {
                last_epoch: 9,
                term: 0
            }
        );
        let reply: SubscribeReply = serde_json::from_str(
            r#"{"ok": {"mode": "resume", "from_epoch": 9, "leader_epoch": 12}}"#,
        )
        .unwrap();
        assert_eq!(
            reply,
            SubscribeReply::Ok(SubscribeAck {
                mode: ResumeMode::Resume,
                from_epoch: 9,
                leader_epoch: 12,
                leader_term: 0,
            })
        );
    }

    #[test]
    fn rejection_kinds_are_stable() {
        assert_eq!(
            HandshakeRejection::FollowerAhead {
                follower: 1,
                leader: 0
            }
            .kind(),
            "follower_ahead"
        );
        assert_eq!(
            HandshakeRejection::StaleLeader {
                leader_term: 1,
                observed_term: 2
            }
            .kind(),
            "stale_leader"
        );
        assert_eq!(
            HandshakeRejection::Malformed(String::new()).kind(),
            "malformed"
        );
    }
}
