//! Typed, packed prediction-store keys.
//!
//! The §4 online store is keyed by `[server offering, hierarchy feature,
//! feature value]`. Production Lorentz concatenates strings; here the key
//! never leaves integer space: a [`StoreKey`] carries the offering, the
//! [`FeatureId`] of the hierarchy level, and the interned [`ValueId`] of the
//! feature value, and packs losslessly into a single `u64` for hash-map
//! indexing. Strings appear only in the JSON snapshot form (see the manual
//! serde impls below), which keeps persisted stores human-readable.

use crate::error::LorentzError;
use crate::offering::ServerOffering;
use crate::profile::FeatureId;
use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::str::FromStr;

/// An interned profile-feature value id (the output of
/// [`Vocab::intern`](crate::Vocab::intern)), given a newtype so store keys
/// cannot mix up value ids with feature indexes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub u32);

impl ValueId {
    /// The raw interned id.
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "value#{}", self.0)
    }
}

/// Bit layout of the packed form: `[8 zero][8 offering][16 feature][32 value]`.
const VALUE_BITS: u32 = 32;
const FEATURE_BITS: u32 = 16;
const FEATURE_SHIFT: u32 = VALUE_BITS;
const OFFERING_SHIFT: u32 = VALUE_BITS + FEATURE_BITS;

/// One prediction-store key: `[offering, hierarchy feature, feature value]`.
///
/// Packs into a `u64` ([`StoreKey::pack`]) so the serving path indexes the
/// store without ever materializing a string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StoreKey {
    /// The server offering the entry belongs to.
    pub offering: ServerOffering,
    /// The hierarchy feature (schema column) of the entry.
    pub feature: FeatureId,
    /// The interned value of that feature.
    pub value: ValueId,
}

impl StoreKey {
    /// Creates a key.
    ///
    /// # Panics
    /// Panics if the feature index exceeds `u16::MAX` (a schema with more
    /// than 65 535 columns), which would not fit the packed layout.
    pub fn new(offering: ServerOffering, feature: FeatureId, value: ValueId) -> Self {
        assert!(
            feature.index() <= u16::MAX as usize,
            "feature index {} does not fit the packed key layout",
            feature.index()
        );
        Self {
            offering,
            feature,
            value,
        }
    }

    /// Packs the key into a `u64`: offering code in bits 48–55, feature
    /// index in bits 32–47, value id in bits 0–31. Bits 56–63 are zero.
    pub fn pack(self) -> u64 {
        (u64::from(self.offering.code()) << OFFERING_SHIFT)
            | ((self.feature.index() as u64) << FEATURE_SHIFT)
            | u64::from(self.value.0)
    }

    /// Reverses [`StoreKey::pack`]. Returns `None` if the offering code is
    /// unknown or the reserved top bits are set.
    pub fn unpack(packed: u64) -> Option<Self> {
        let code = u8::try_from(packed >> OFFERING_SHIFT).ok()?;
        let offering = ServerOffering::from_code(code)?;
        let feature = FeatureId(((packed >> FEATURE_SHIFT) & 0xFFFF) as usize);
        let value = ValueId((packed & u64::from(u32::MAX)) as u32);
        Some(Self {
            offering,
            feature,
            value,
        })
    }
}

impl fmt::Display for StoreKey {
    /// The canonical snapshot form: `offering|feature-index|value-id`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}|{}|{}",
            self.offering.name(),
            self.feature.index(),
            self.value.0
        )
    }
}

impl FromStr for StoreKey {
    type Err = LorentzError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = || LorentzError::InvalidConfig(format!("malformed store key '{s}'"));
        let mut parts = s.splitn(3, '|');
        let offering: ServerOffering = parts.next().ok_or_else(bad)?.parse()?;
        let feature: usize = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let value: u32 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        if feature > u16::MAX as usize {
            return Err(bad());
        }
        Ok(StoreKey::new(offering, FeatureId(feature), ValueId(value)))
    }
}

impl Serialize for StoreKey {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for StoreKey {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let s = v
            .as_str()
            .ok_or_else(|| serde::Error::custom("store key must be a string"))?;
        s.parse().map_err(|e| serde::Error::custom(format!("{e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(offering: ServerOffering, feature: usize, value: u32) -> StoreKey {
        StoreKey::new(offering, FeatureId(feature), ValueId(value))
    }

    #[test]
    fn pack_unpack_round_trips_extremes() {
        for offering in ServerOffering::ALL {
            for feature in [0usize, 1, 7, u16::MAX as usize] {
                for value in [0u32, 1, u32::MAX] {
                    let k = key(offering, feature, value);
                    assert_eq!(StoreKey::unpack(k.pack()), Some(k));
                }
            }
        }
    }

    #[test]
    fn packed_keys_are_distinct() {
        let a = key(ServerOffering::Burstable, 1, 2);
        let b = key(ServerOffering::GeneralPurpose, 1, 2);
        let c = key(ServerOffering::Burstable, 2, 1);
        assert_ne!(a.pack(), b.pack());
        assert_ne!(a.pack(), c.pack());
    }

    #[test]
    fn unpack_rejects_garbage() {
        // Unknown offering code.
        assert_eq!(StoreKey::unpack(0xFF << 48), None);
        // Reserved top bits set.
        assert_eq!(StoreKey::unpack(1u64 << 60), None);
    }

    #[test]
    fn display_parse_round_trips() {
        let k = key(ServerOffering::MemoryOptimized, 4, 17);
        assert_eq!(k.to_string(), "memory_optimized|4|17");
        assert_eq!(k.to_string().parse::<StoreKey>().unwrap(), k);
        assert!("nope|1|2".parse::<StoreKey>().is_err());
        assert!("burstable|x|2".parse::<StoreKey>().is_err());
        assert!("burstable|1".parse::<StoreKey>().is_err());
        assert!("burstable|70000|2".parse::<StoreKey>().is_err());
    }

    #[test]
    fn serde_round_trips_as_string() {
        let k = key(ServerOffering::GeneralPurpose, 3, 9);
        let json = serde_json::to_string(&k).unwrap();
        assert_eq!(json, "\"general_purpose|3|9\"");
        let back: StoreKey = serde_json::from_str(&json).unwrap();
        assert_eq!(back, k);
    }

    #[test]
    #[should_panic(expected = "does not fit the packed key layout")]
    fn oversized_feature_index_panics() {
        let _ = key(ServerOffering::Burstable, usize::from(u16::MAX) + 1, 0);
    }
}
