//! Shard-aware key utilities: multiply-fold routing for packed keys.
//!
//! The serving path indexes two packed key spaces — `u64` [`StoreKey`]s
//! and `u128` [`PathKey`]s — and both are sharded the same way: a
//! Fibonacci multiply-fold of the packed integer whose *top* bits select
//! one of N power-of-two shards. The multiply pushes entropy into the high
//! bits (packed keys are dense in their low bits: interned value ids,
//! small path ids), so consecutive ids spread across shards instead of
//! clustering, and the routing stays a two-instruction pure function of
//! the packed key — stable across processes, restarts, and replicas.
//!
//! [`PathKeyHasher`] is the same discipline applied to hash-map probing:
//! the λ-tables use it through `BuildHasherDefault` so a `u128` key costs
//! one fold and one multiply instead of SipHash. Router and hasher share
//! the multiplier, so "the PR-6 hasher discipline" and "the shard routing"
//! are one definition, tested together.
//!
//! [`StoreKey`]: crate::StoreKey
//! [`PathKey`]: crate::PathKey

use crate::error::LorentzError;
use crate::ids::CustomerId;
use std::hash::Hasher;

/// The Fibonacci multiplier (`2^64 / φ`, odd) shared by the shard router
/// and [`PathKeyHasher`]: one multiply distributes low-bit entropy into
/// the high bits that shard selection and hashbrown's probe sequence
/// consume.
pub const FIB_MULTIPLIER: u64 = 0x9E37_79B9_7F4A_7C15;

/// Largest supported shard count. Far beyond any sensible deployment; the
/// cap exists so a typo'd shard count fails loudly instead of allocating
/// millions of empty shards.
pub const MAX_SHARDS: usize = 1 << 16;

/// Folds a `u128` packed key to a `u64` exactly like
/// [`PathKeyHasher::write_u128`]: rotate the high half before the xor so
/// `(hi, lo)` and `(lo, hi)` differ.
#[inline]
#[must_use]
pub fn fold_u128(packed: u128) -> u64 {
    (packed as u64) ^ ((packed >> 64) as u64).rotate_left(32)
}

/// Routes packed keys to one of N power-of-two shards via a multiply-fold
/// of the packed integer. Copy-cheap (one byte of state), so snapshots
/// embed a copy and routing never chases a pointer.
///
/// Routing is **total** (every key maps to exactly one shard, for any
/// input bit pattern) and **stable** (a pure function of the packed key
/// and the shard count — no per-process seed), which the shard-routing
/// property tests pin.
///
/// ```
/// use lorentz_types::shard::ShardRouter;
///
/// let router = ShardRouter::new(8)?;
/// assert_eq!(router.shards(), 8);
/// let shard = router.route_u64(0xDEAD_BEEF);
/// assert!(shard < 8);
/// // Stable: the same key always routes to the same shard.
/// assert_eq!(router.route_u64(0xDEAD_BEEF), shard);
/// // A single shard accepts everything.
/// assert_eq!(ShardRouter::new(1)?.route_u64(u64::MAX), 0);
/// # Ok::<(), lorentz_types::LorentzError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    /// `log2(shard count)`; 0 means a single shard (everything routes
    /// to 0).
    log2: u32,
}

impl ShardRouter {
    /// A router over `shards` shards.
    ///
    /// # Errors
    /// [`LorentzError::InvalidConfig`] unless `shards` is a power of two
    /// in `1..=`[`MAX_SHARDS`] — power-of-two counts make shard selection
    /// a shift instead of a modulo and keep any future split/merge a
    /// bit-doubling.
    pub fn new(shards: usize) -> Result<Self, LorentzError> {
        if !shards.is_power_of_two() || shards > MAX_SHARDS {
            return Err(LorentzError::InvalidConfig(format!(
                "shard count must be a power of two in 1..={MAX_SHARDS}, got {shards}"
            )));
        }
        Ok(Self {
            log2: shards.trailing_zeros(),
        })
    }

    /// How many shards this router selects across.
    #[inline]
    #[must_use]
    pub fn shards(self) -> usize {
        1 << self.log2
    }

    /// The shard for a packed `u64` key (e.g. a packed
    /// [`StoreKey`](crate::StoreKey)): the top `log2(N)` bits of the
    /// Fibonacci multiply.
    #[inline]
    #[must_use]
    pub fn route_u64(self, packed: u64) -> usize {
        if self.log2 == 0 {
            return 0;
        }
        (packed.wrapping_mul(FIB_MULTIPLIER) >> (64 - self.log2)) as usize
    }

    /// The shard for a packed `u128` key (e.g. a packed
    /// [`PathKey`](crate::PathKey)): fold to 64 bits like the hasher, then
    /// route.
    #[inline]
    #[must_use]
    pub fn route_u128(self, packed: u128) -> usize {
        self.route_u64(fold_u128(packed))
    }

    /// The shard for a customer id. λ-state shards by **customer**, not by
    /// full path: Stage-3 signal propagation is confined to the signaling
    /// customer's subtree, so routing every path of a customer to one
    /// shard makes a λ-delta a single-shard publish.
    #[inline]
    #[must_use]
    pub fn route_customer(self, customer: CustomerId) -> usize {
        self.route_u64(u64::from(customer.0))
    }
}

/// Multiply-fold hasher for packed [`PathKey`](crate::PathKey)s. λ-table
/// probes sit on the per-request serving path, where SipHash on a `u128`
/// is the single largest cost; keys are fixed-width id triples (not
/// attacker-chosen strings), so a Fibonacci-multiply mix is
/// collision-adequate and ~3x faster. Not DoS-hardened — only for packed
/// integer key tables.
#[derive(Clone, Copy, Default)]
pub struct PathKeyHasher(u64);

impl Hasher for PathKeyHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Fallback for non-u128 input (unused by the λ tables): FNV-1a.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        // Rotate the high half before xor so (hi, lo) and (lo, hi) differ,
        // then a Fibonacci multiply pushes entropy into the top bits the
        // hashbrown probe sequence and control bytes consume.
        self.0 = fold_u128(n).wrapping_mul(FIB_MULTIPLIER);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_non_power_of_two_counts() {
        for bad in [0usize, 3, 6, 12, 100, MAX_SHARDS + 1, MAX_SHARDS * 2] {
            assert!(ShardRouter::new(bad).is_err(), "accepted {bad}");
        }
        for good in [1usize, 2, 4, 8, 1024, MAX_SHARDS] {
            assert_eq!(ShardRouter::new(good).unwrap().shards(), good);
        }
    }

    #[test]
    fn routing_is_total_and_stable() {
        let router = ShardRouter::new(16).unwrap();
        for key in [0u64, 1, 42, u64::MAX, FIB_MULTIPLIER, 1 << 63] {
            let shard = router.route_u64(key);
            assert!(shard < 16);
            assert_eq!(router.route_u64(key), shard);
        }
        let single = ShardRouter::new(1).unwrap();
        assert_eq!(single.route_u64(u64::MAX), 0);
        assert_eq!(single.route_u128(u128::MAX), 0);
    }

    #[test]
    fn dense_low_bit_keys_spread_across_shards() {
        // Packed store keys for consecutive interned values differ only in
        // their low bits; the multiply must still spread them.
        let router = ShardRouter::new(8).unwrap();
        let mut seen = [0usize; 8];
        for value in 0..4096u64 {
            seen[router.route_u64(value)] += 1;
        }
        for (shard, &count) in seen.iter().enumerate() {
            assert!(
                count > 4096 / 8 / 4,
                "shard {shard} nearly empty ({count} of 4096 keys)"
            );
        }
    }

    #[test]
    fn u128_routing_matches_hasher_fold() {
        let router = ShardRouter::new(4).unwrap();
        let packed = (7u128 << 64) | 99;
        let mut hasher = PathKeyHasher::default();
        hasher.write_u128(packed);
        // The router reads the top bits of the same multiply the hasher
        // produces: one discipline, two consumers.
        assert_eq!(router.route_u128(packed), (hasher.finish() >> 62) as usize);
    }

    #[test]
    fn customer_routing_ignores_subtree_ids() {
        let router = ShardRouter::new(8).unwrap();
        let shard = router.route_customer(CustomerId(42));
        assert!(shard < 8);
        assert_eq!(router.route_customer(CustomerId(42)), shard);
    }
}
