//! Resource dimensions and resource spaces.
//!
//! A *resource dimension* is one axis of a compute capacity — virtual cores,
//! memory, IOPS, disk. The paper indexes these with `r` (Eq. 1). A
//! [`ResourceSpace`] fixes an ordered set of dimensions so that capacities and
//! usage traces can be stored as plain vectors aligned by index.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One resource dimension of a compute capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ResourceKind {
    /// Virtual CPU cores. The dominant dimension for Azure PostgreSQL DB
    /// (§3.2: "CPU constraints mostly dominate").
    VCores,
    /// Memory in GiB. Provisioned proportionally to vCores on Azure
    /// PostgreSQL DB (e.g. 4 GiB per vCore).
    MemoryGb,
    /// I/O operations per second.
    Iops,
    /// Disk capacity in GiB.
    DiskGb,
}

impl ResourceKind {
    /// All supported resource kinds, in canonical order.
    pub const ALL: [ResourceKind; 4] = [
        ResourceKind::VCores,
        ResourceKind::MemoryGb,
        ResourceKind::Iops,
        ResourceKind::DiskGb,
    ];

    /// Short lowercase name used in reports and serialized output.
    pub fn name(self) -> &'static str {
        match self {
            ResourceKind::VCores => "vcores",
            ResourceKind::MemoryGb => "memory_gb",
            ResourceKind::Iops => "iops",
            ResourceKind::DiskGb => "disk_gb",
        }
    }

    /// Whether throttling on this resource typically cancels work (memory:
    /// OOM kills) rather than merely delaying it (CPU). Used to pick stricter
    /// default throttling thresholds per dimension (§3.2 "Throttling").
    pub fn throttling_is_destructive(self) -> bool {
        matches!(self, ResourceKind::MemoryGb)
    }
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An ordered set of resource dimensions.
///
/// All [`Capacity`](crate::Capacity) vectors and usage traces created against
/// a space store one entry per dimension, in this order.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ResourceSpace {
    dims: Vec<ResourceKind>,
}

impl ResourceSpace {
    /// Creates a space over the given dimensions.
    ///
    /// # Panics
    /// Panics if `dims` is empty or contains duplicates; a space without
    /// dimensions (or with an ambiguous index) is never meaningful.
    pub fn new(dims: Vec<ResourceKind>) -> Self {
        assert!(!dims.is_empty(), "resource space must have >= 1 dimension");
        for (i, d) in dims.iter().enumerate() {
            assert!(
                !dims[..i].contains(d),
                "duplicate resource dimension {d} in resource space"
            );
        }
        Self { dims }
    }

    /// The single-dimension space over vCores used throughout the paper's
    /// Azure PostgreSQL DB evaluation.
    pub fn vcores_only() -> Self {
        Self::new(vec![ResourceKind::VCores])
    }

    /// The two-dimension (vCores, memory) space used by the multi-resource
    /// examples.
    pub fn vcores_memory() -> Self {
        Self::new(vec![ResourceKind::VCores, ResourceKind::MemoryGb])
    }

    /// Number of dimensions.
    pub fn len(&self) -> usize {
        self.dims.len()
    }

    /// Whether the space is empty (never true for a constructed space).
    pub fn is_empty(&self) -> bool {
        self.dims.is_empty()
    }

    /// The dimensions, in index order.
    pub fn dims(&self) -> &[ResourceKind] {
        &self.dims
    }

    /// Index of a dimension within this space, if present.
    pub fn index_of(&self, kind: ResourceKind) -> Option<usize> {
        self.dims.iter().position(|&d| d == kind)
    }

    /// Whether this space contains the given dimension.
    pub fn contains(&self, kind: ResourceKind) -> bool {
        self.index_of(kind).is_some()
    }
}

impl fmt::Display for ResourceSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                f.write_str("+")?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resource_kind_names_are_unique() {
        let names: Vec<_> = ResourceKind::ALL.iter().map(|k| k.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len());
    }

    #[test]
    fn memory_throttling_is_destructive_cpu_is_not() {
        assert!(ResourceKind::MemoryGb.throttling_is_destructive());
        assert!(!ResourceKind::VCores.throttling_is_destructive());
    }

    #[test]
    fn space_indexing_round_trips() {
        let s = ResourceSpace::vcores_memory();
        assert_eq!(s.len(), 2);
        assert_eq!(s.index_of(ResourceKind::VCores), Some(0));
        assert_eq!(s.index_of(ResourceKind::MemoryGb), Some(1));
        assert_eq!(s.index_of(ResourceKind::Iops), None);
        assert!(s.contains(ResourceKind::VCores));
        assert!(!s.contains(ResourceKind::DiskGb));
    }

    #[test]
    #[should_panic(expected = "duplicate resource dimension")]
    fn duplicate_dimensions_rejected() {
        ResourceSpace::new(vec![ResourceKind::VCores, ResourceKind::VCores]);
    }

    #[test]
    #[should_panic(expected = ">= 1 dimension")]
    fn empty_space_rejected() {
        ResourceSpace::new(vec![]);
    }

    #[test]
    fn display_joins_dimensions() {
        let s = ResourceSpace::vcores_memory();
        assert_eq!(s.to_string(), "vcores+memory_gb");
    }

    #[test]
    fn serde_round_trip() {
        let s = ResourceSpace::vcores_memory();
        let json = serde_json::to_string(&s).unwrap();
        let back: ResourceSpace = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
