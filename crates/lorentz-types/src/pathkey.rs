//! Typed, packed personalization-store keys.
//!
//! Stage 3 keys λ profiles by the customer hierarchy path
//! `(customer, subscription, resource group)` — three `u32` ids, 96 bits,
//! which cannot share the `u64` layout of [`StoreKey`](crate::StoreKey).
//! [`PathKey`] packs a [`ResourcePath`] losslessly into a `u128` so the
//! λ-table is a flat hash map probed without touching the nested id
//! structs, following the same pack/unpack/`Display`/`FromStr` discipline
//! as the prediction-store key. Strings appear only in the snapshot/WAL
//! form, which keeps persisted λ state human-readable.

use crate::error::LorentzError;
use crate::ids::{CustomerId, ResourceGroupId, ResourcePath, SubscriptionId};
use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::str::FromStr;

/// Bit layout of the packed form:
/// `[32 zero][32 customer][32 subscription][32 resource group]`.
const RG_BITS: u32 = 32;
const SUB_SHIFT: u32 = RG_BITS;
const CUST_SHIFT: u32 = RG_BITS * 2;
const USED_BITS: u32 = RG_BITS * 3;

/// One personalization-store key: a [`ResourcePath`] packable into a
/// `u128` for flat hash-map indexing of the λ-table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PathKey(pub ResourcePath);

impl PathKey {
    /// Creates a key from a path.
    pub fn new(path: ResourcePath) -> Self {
        Self(path)
    }

    /// The wrapped path.
    pub fn path(self) -> ResourcePath {
        self.0
    }

    /// Packs the key into a `u128`: customer id in bits 64–95,
    /// subscription id in bits 32–63, resource-group id in bits 0–31.
    /// Bits 96–127 are zero.
    pub fn pack(self) -> u128 {
        (u128::from(self.0.customer.0) << CUST_SHIFT)
            | (u128::from(self.0.subscription.0) << SUB_SHIFT)
            | u128::from(self.0.resource_group.0)
    }

    /// Reverses [`PathKey::pack`]. Returns `None` if the reserved top bits
    /// are set.
    pub fn unpack(packed: u128) -> Option<Self> {
        if packed >> USED_BITS != 0 {
            return None;
        }
        Some(Self(ResourcePath::new(
            CustomerId((packed >> CUST_SHIFT) as u32),
            SubscriptionId(((packed >> SUB_SHIFT) & u128::from(u32::MAX)) as u32),
            ResourceGroupId((packed & u128::from(u32::MAX)) as u32),
        )))
    }
}

impl From<ResourcePath> for PathKey {
    fn from(path: ResourcePath) -> Self {
        Self(path)
    }
}

impl fmt::Display for PathKey {
    /// The canonical snapshot form: `customer|subscription|resource-group`
    /// raw ids.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}|{}|{}",
            self.0.customer.0, self.0.subscription.0, self.0.resource_group.0
        )
    }
}

impl FromStr for PathKey {
    type Err = LorentzError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = || LorentzError::InvalidConfig(format!("malformed path key '{s}'"));
        let mut parts = s.splitn(3, '|');
        let customer: u32 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let subscription: u32 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let rg: u32 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        Ok(PathKey(ResourcePath::new(
            CustomerId(customer),
            SubscriptionId(subscription),
            ResourceGroupId(rg),
        )))
    }
}

impl Serialize for PathKey {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for PathKey {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let s = v
            .as_str()
            .ok_or_else(|| serde::Error::custom("path key must be a string"))?;
        s.parse().map_err(|e| serde::Error::custom(format!("{e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(c: u32, s: u32, r: u32) -> PathKey {
        PathKey::new(ResourcePath::new(
            CustomerId(c),
            SubscriptionId(s),
            ResourceGroupId(r),
        ))
    }

    #[test]
    fn pack_unpack_round_trips_extremes() {
        for c in [0u32, 1, u32::MAX] {
            for s in [0u32, 7, u32::MAX] {
                for r in [0u32, 13, u32::MAX] {
                    let k = key(c, s, r);
                    assert_eq!(PathKey::unpack(k.pack()), Some(k));
                }
            }
        }
    }

    #[test]
    fn packed_keys_are_distinct() {
        let a = key(1, 2, 3);
        let b = key(3, 2, 1);
        let c = key(1, 3, 2);
        assert_ne!(a.pack(), b.pack());
        assert_ne!(a.pack(), c.pack());
        assert_ne!(b.pack(), c.pack());
    }

    #[test]
    fn unpack_rejects_reserved_bits() {
        assert_eq!(PathKey::unpack(1u128 << 96), None);
        assert_eq!(PathKey::unpack(u128::MAX), None);
    }

    #[test]
    fn display_parse_round_trips() {
        let k = key(1, 22, 333);
        assert_eq!(k.to_string(), "1|22|333");
        assert_eq!(k.to_string().parse::<PathKey>().unwrap(), k);
        assert!("1|2".parse::<PathKey>().is_err());
        assert!("a|2|3".parse::<PathKey>().is_err());
        assert!("".parse::<PathKey>().is_err());
    }

    #[test]
    fn serde_round_trips_as_string() {
        let k = key(4, 5, 6);
        let json = serde_json::to_string(&k).unwrap();
        assert_eq!(json, "\"4|5|6\"");
        let back: PathKey = serde_json::from_str(&json).unwrap();
        assert_eq!(back, k);
    }
}
