//! The shared error type for the Lorentz workspace.

use thiserror::Error;

/// Errors surfaced by Lorentz components.
#[derive(Debug, Error)]
pub enum LorentzError {
    /// A capacity vector was structurally invalid (empty, non-positive, or
    /// non-finite entries).
    #[error("invalid capacity: {0}")]
    InvalidCapacity(String),

    /// A capacity or usage vector did not match the resource space arity.
    #[error("dimension mismatch: expected {expected} dimensions, got {got}")]
    DimensionMismatch {
        /// Dimensions required by the resource space.
        expected: usize,
        /// Dimensions actually provided.
        got: usize,
    },

    /// An SKU catalog was empty or malformed.
    #[error("invalid SKU catalog: {0}")]
    InvalidCatalog(String),

    /// A telemetry trace was unusable (no samples, unordered timestamps, ...).
    #[error("invalid telemetry: {0}")]
    InvalidTelemetry(String),

    /// Profile data was inconsistent with its schema.
    #[error("invalid profile data: {0}")]
    InvalidProfile(String),

    /// A model was asked to predict before being trained, or trained on an
    /// unusable dataset.
    #[error("model error: {0}")]
    Model(String),

    /// The rightsizing optimizer had no feasible candidate.
    #[error("rightsizing infeasible: {0}")]
    Infeasible(String),

    /// A configuration value was out of its valid range.
    #[error("invalid configuration: {0}")]
    InvalidConfig(String),

    /// A lookup key was absent from a store.
    #[error("not found: {0}")]
    NotFound(String),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_human_readable_messages() {
        let e = LorentzError::DimensionMismatch {
            expected: 2,
            got: 1,
        };
        assert_eq!(
            e.to_string(),
            "dimension mismatch: expected 2 dimensions, got 1"
        );
        let e = LorentzError::InvalidCapacity("x".into());
        assert!(e.to_string().contains("invalid capacity"));
    }
}
