//! The shared error type for the Lorentz workspace.

use thiserror::Error;

/// Errors surfaced by Lorentz components.
#[derive(Debug, Error)]
pub enum LorentzError {
    /// A capacity vector was structurally invalid (empty, non-positive, or
    /// non-finite entries).
    #[error("invalid capacity: {0}")]
    InvalidCapacity(String),

    /// A capacity or usage vector did not match the resource space arity.
    #[error("dimension mismatch: expected {expected} dimensions, got {got}")]
    DimensionMismatch {
        /// Dimensions required by the resource space.
        expected: usize,
        /// Dimensions actually provided.
        got: usize,
    },

    /// An SKU catalog was empty or malformed.
    #[error("invalid SKU catalog: {0}")]
    InvalidCatalog(String),

    /// A telemetry trace was unusable (no samples, unordered timestamps, ...).
    #[error("invalid telemetry: {0}")]
    InvalidTelemetry(String),

    /// Profile data was inconsistent with its schema.
    #[error("invalid profile data: {0}")]
    InvalidProfile(String),

    /// A model was asked to predict before being trained, or trained on an
    /// unusable dataset.
    #[error("model error: {0}")]
    Model(String),

    /// The rightsizing optimizer had no feasible candidate.
    #[error("rightsizing infeasible: {0}")]
    Infeasible(String),

    /// A configuration value was out of its valid range.
    #[error("invalid configuration: {0}")]
    InvalidConfig(String),

    /// A lookup key was absent from a store.
    #[error("not found: {0}")]
    NotFound(String),

    /// A persisted store snapshot failed integrity verification.
    #[error("store corruption: {0}")]
    Corruption(StoreCorruption),

    /// A λ-delta record failed integrity verification or could not be
    /// applied in epoch order.
    #[error("delta corruption: {0}")]
    Delta(DeltaCorruption),
}

impl From<StoreCorruption> for LorentzError {
    fn from(err: StoreCorruption) -> Self {
        LorentzError::Corruption(err)
    }
}

/// Why a persisted snapshot could not be trusted.
///
/// Each variant corresponds to one integrity check performed when a framed
/// snapshot (`store.gen-N.json`) or the manifest (`store.manifest.json`) is
/// loaded; the durable store reports which check failed so operators can
/// distinguish truncation from bit rot from version skew.
#[derive(Debug, Error, Clone, PartialEq, Eq)]
pub enum StoreCorruption {
    /// The file is shorter than the fixed frame header.
    #[error("frame header truncated: got {got} bytes, need {need}")]
    HeaderTruncated {
        /// Bytes actually present.
        got: usize,
        /// Bytes the header requires.
        need: usize,
    },

    /// The frame does not start with the snapshot magic bytes.
    #[error("bad frame magic: found {found:?}")]
    BadMagic {
        /// The four bytes found where the magic was expected.
        found: [u8; 4],
    },

    /// The frame declares a format version this build cannot read.
    #[error("unknown snapshot format version {0}")]
    UnknownVersion(u16),

    /// The payload is shorter than the length the header declares.
    #[error("payload truncated: header declares {declared} bytes, got {got}")]
    Truncated {
        /// Payload length declared in the header.
        declared: u64,
        /// Payload bytes actually present.
        got: u64,
    },

    /// The payload checksum does not match the header's CRC32C.
    #[error("checksum mismatch: expected {expected:#010x}, computed {actual:#010x}")]
    ChecksumMismatch {
        /// CRC32C recorded in the frame header.
        expected: u32,
        /// CRC32C computed over the payload as read.
        actual: u32,
    },

    /// The payload passed integrity checks but did not deserialize.
    #[error("bad snapshot payload: {0}")]
    BadPayload(String),

    /// The manifest points at a generation file that does not exist.
    #[error("manifest references missing generation {generation} at {path}")]
    MissingGeneration {
        /// The missing generation number.
        generation: u64,
        /// Path the manifest resolved to.
        path: String,
    },

    /// The manifest itself was unreadable or malformed.
    #[error("bad manifest: {0}")]
    BadManifest(String),
}

/// Why a λ-delta record could not be applied.
///
/// Mirrors [`StoreCorruption`] for the replication path: each variant is
/// one integrity check performed when a packed [`LambdaDelta`]
/// (`crate::LambdaDelta`) is decoded or applied to a follower store, so
/// `lorentz wal-verify` and the follower can say which check failed.
#[derive(Debug, Error, Clone, PartialEq, Eq)]
pub enum DeltaCorruption {
    /// The packed delta is shorter than its header or declared entries.
    #[error("delta truncated: got {got} bytes, need {need}")]
    Truncated {
        /// Bytes actually present.
        got: usize,
        /// Bytes the declared layout requires.
        need: usize,
    },

    /// The packed delta has bytes beyond the declared entries.
    #[error("delta has {extra} trailing bytes")]
    TrailingBytes {
        /// Unexpected bytes after the last entry.
        extra: usize,
    },

    /// An entry key has reserved high bits set and cannot be a
    /// [`PathKey`](crate::PathKey).
    #[error("bad delta entry key {packed:#034x}: reserved bits set")]
    BadEntryKey {
        /// The packed key as read.
        packed: u128,
    },

    /// The delta's epoch does not advance the store it was applied to —
    /// a replication stream replayed out of order or forked.
    #[error("delta epoch {got} does not advance store epoch {current}")]
    EpochRegression {
        /// The store's current epoch.
        current: u64,
        /// The epoch carried by the rejected delta.
        got: u64,
    },
}

impl From<DeltaCorruption> for LorentzError {
    fn from(err: DeltaCorruption) -> Self {
        LorentzError::Delta(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_human_readable_messages() {
        let e = LorentzError::DimensionMismatch {
            expected: 2,
            got: 1,
        };
        assert_eq!(
            e.to_string(),
            "dimension mismatch: expected 2 dimensions, got 1"
        );
        let e = LorentzError::InvalidCapacity("x".into());
        assert!(e.to_string().contains("invalid capacity"));
    }

    #[test]
    fn corruption_variants_render_and_convert() {
        let c = StoreCorruption::ChecksumMismatch {
            expected: 0xDEAD_BEEF,
            actual: 0x0000_0001,
        };
        assert_eq!(
            c.to_string(),
            "checksum mismatch: expected 0xdeadbeef, computed 0x00000001"
        );
        let e: LorentzError = c.into();
        assert!(e.to_string().starts_with("store corruption: "));

        let c = StoreCorruption::BadMagic { found: *b"oops" };
        assert!(c.to_string().contains("bad frame magic"));
    }
}
