//! Categorical profile data.
//!
//! *Profile data* is any categorical variable describing a customer or DB
//! instance (§2.2): industry and segment names, subscription ids, resource
//! groups, software versions, region tags. Lorentz consumes it as the feature
//! matrix `X` (one row per DB) and as per-request feature vectors `x`.
//!
//! Values are interned per feature into compact `u32` ids via [`Vocab`] so
//! that the hierarchy learner, bucket index, and target encoder can operate
//! on integers. Missing tags (user mis-entry, absent metadata) are first-class
//! and represented as `None`.

use crate::error::LorentzError;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Index of a feature (column) within a [`ProfileSchema`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FeatureId(pub usize);

impl FeatureId {
    /// The raw column index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for FeatureId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "feature#{}", self.0)
    }
}

/// The ordered set of profile features a table (and all vectors drawn from
/// it) carries.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProfileSchema {
    names: Vec<String>,
}

impl ProfileSchema {
    /// Creates a schema from feature names.
    ///
    /// # Errors
    /// Returns [`LorentzError::InvalidProfile`] if names are empty or
    /// duplicated.
    pub fn new<S: Into<String>>(names: Vec<S>) -> Result<Self, LorentzError> {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        if names.is_empty() {
            return Err(LorentzError::InvalidProfile(
                "schema has no features".into(),
            ));
        }
        for (i, n) in names.iter().enumerate() {
            if names[..i].contains(n) {
                return Err(LorentzError::InvalidProfile(format!(
                    "duplicate feature name '{n}'"
                )));
            }
        }
        Ok(Self { names })
    }

    /// The seven-feature schema used for the Azure PostgreSQL DB evaluation
    /// (§2.2 and Fig. 5), from coarsest to finest granularity.
    pub fn azure_postgres() -> Self {
        Self::new(vec![
            "SegmentName",
            "IndustryName",
            "VerticalName",
            "VerticalCategoryName",
            "CloudCustomerGuid",
            "SubscriptionId",
            "ResourceGroup",
        ])
        .expect("builtin schema is valid")
    }

    /// Number of features.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the schema has no features (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Feature names, in column order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The name of feature `id`.
    pub fn name(&self, id: FeatureId) -> &str {
        &self.names[id.0]
    }

    /// Looks a feature up by name.
    pub fn feature_id(&self, name: &str) -> Option<FeatureId> {
        self.names.iter().position(|n| n == name).map(FeatureId)
    }

    /// Iterator over all feature ids.
    pub fn feature_ids(&self) -> impl Iterator<Item = FeatureId> {
        (0..self.names.len()).map(FeatureId)
    }
}

/// FNV-1a 64-bit: a deterministic string hash for the vocabulary index,
/// so index layout (and any diagnostics derived from it) never depends on
/// `RandomState` seeding.
fn fnv1a(value: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for byte in value.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// One hash bucket of the vocabulary index. Almost every bucket holds one
/// id; genuine 64-bit collisions spill into a vector and are resolved by
/// comparing against the interned string.
#[derive(Debug, Clone, PartialEq, Eq)]
enum IndexSlot {
    /// The common case: exactly one value id hashes here.
    One(u32),
    /// Colliding value ids, resolved by string comparison on lookup.
    Many(Vec<u32>),
}

/// Per-feature string-value interner.
///
/// Each string is stored exactly once, in `values`; the lookup index maps
/// a deterministic 64-bit hash to value ids and resolves collisions
/// against `values`, so neither [`Vocab::intern`] nor
/// [`Vocab::rebuild_index`] ever duplicates the interned strings.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Vocab {
    values: Vec<String>,
    #[serde(skip)]
    index: HashMap<u64, IndexSlot>,
}

impl Vocab {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `value`, returning its id (existing or fresh).
    pub fn intern(&mut self, value: &str) -> u32 {
        let hash = fnv1a(value);
        if let Some(id) = self.lookup_hashed(hash, value) {
            return id;
        }
        let id = u32::try_from(self.values.len()).expect("vocab exceeds u32 ids");
        self.values.push(value.to_owned());
        self.insert_hashed(hash, id);
        id
    }

    /// Looks up the id of a known value without interning.
    pub fn get(&self, value: &str) -> Option<u32> {
        self.lookup_hashed(fnv1a(value), value)
    }

    fn lookup_hashed(&self, hash: u64, value: &str) -> Option<u32> {
        match self.index.get(&hash)? {
            IndexSlot::One(id) if self.values[*id as usize] == value => Some(*id),
            IndexSlot::One(_) => None,
            IndexSlot::Many(ids) => ids
                .iter()
                .copied()
                .find(|&id| self.values[id as usize] == value),
        }
    }

    fn insert_hashed(&mut self, hash: u64, id: u32) {
        match self.index.entry(hash) {
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(IndexSlot::One(id));
            }
            std::collections::hash_map::Entry::Occupied(mut slot) => match slot.get_mut() {
                IndexSlot::One(existing) => {
                    let existing = *existing;
                    *slot.get_mut() = IndexSlot::Many(vec![existing, id]);
                }
                IndexSlot::Many(ids) => ids.push(id),
            },
        }
    }

    /// The string for a value id.
    pub fn value(&self, id: u32) -> &str {
        &self.values[id as usize]
    }

    /// Number of distinct values (the feature's cardinality).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no values have been interned yet.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Rebuilds the lookup index (needed after deserialization, since the
    /// index is derived state and skipped by serde). Hashes each interned
    /// string in place — no value is cloned.
    pub fn rebuild_index(&mut self) {
        self.index = HashMap::with_capacity(self.values.len());
        for i in 0..self.values.len() {
            let hash = fnv1a(&self.values[i]);
            self.insert_hashed(hash, i as u32);
        }
    }

    /// Heap bytes held by the lookup index itself (buckets plus collision
    /// vectors). The index stores only hashes and ids — never string data —
    /// so this stays a small constant per value regardless of how long the
    /// interned strings are.
    pub fn index_heap_bytes(&self) -> usize {
        let bucket = std::mem::size_of::<(u64, IndexSlot)>();
        let spill: usize = self
            .index
            .values()
            .map(|slot| match slot {
                IndexSlot::One(_) => 0,
                IndexSlot::Many(ids) => ids.capacity() * std::mem::size_of::<u32>(),
            })
            .sum();
        self.index.capacity() * bucket + spill
    }

    /// Heap bytes held by the interned strings.
    pub fn value_heap_bytes(&self) -> usize {
        self.values.iter().map(|v| v.capacity()).sum()
    }
}

/// One row of profile data: an interned value (or `None` when missing) per
/// schema feature. Ids are only meaningful relative to the
/// [`ProfileTable`] that produced the vector.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProfileVector {
    values: Vec<Option<u32>>,
}

impl ProfileVector {
    /// Creates a vector from raw per-feature ids.
    pub fn new(values: Vec<Option<u32>>) -> Self {
        Self { values }
    }

    /// Value id at feature `id`, `None` if missing.
    pub fn get(&self, id: FeatureId) -> Option<u32> {
        self.values[id.0]
    }

    /// Number of features.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the vector has no features.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Raw values slice.
    pub fn values(&self) -> &[Option<u32>] {
        &self.values
    }

    /// Count of missing entries.
    pub fn missing_count(&self) -> usize {
        self.values.iter().filter(|v| v.is_none()).count()
    }
}

/// Columnar profile matrix `X`: one interned column per schema feature.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProfileTable {
    schema: ProfileSchema,
    vocabs: Vec<Vocab>,
    columns: Vec<Vec<Option<u32>>>,
    rows: usize,
}

impl ProfileTable {
    /// Creates an empty table for `schema`.
    pub fn new(schema: ProfileSchema) -> Self {
        let n = schema.len();
        Self {
            schema,
            vocabs: vec![Vocab::new(); n],
            columns: vec![Vec::new(); n],
            rows: 0,
        }
    }

    /// The schema.
    pub fn schema(&self) -> &ProfileSchema {
        &self.schema
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Appends a row of string values (`None` = missing tag), interning as
    /// needed, and returns its row index.
    ///
    /// # Errors
    /// Returns [`LorentzError::InvalidProfile`] on arity mismatch.
    pub fn push_row(&mut self, values: &[Option<&str>]) -> Result<usize, LorentzError> {
        if values.len() != self.schema.len() {
            return Err(LorentzError::InvalidProfile(format!(
                "row has {} values, schema has {} features",
                values.len(),
                self.schema.len()
            )));
        }
        for (f, v) in values.iter().enumerate() {
            let id = v.map(|s| self.vocabs[f].intern(s));
            self.columns[f].push(id);
        }
        self.rows += 1;
        Ok(self.rows - 1)
    }

    /// Appends an already-encoded row (ids must come from this table's
    /// vocabularies).
    ///
    /// # Errors
    /// Returns [`LorentzError::InvalidProfile`] on arity mismatch or an id
    /// outside the corresponding vocabulary.
    pub fn push_encoded_row(&mut self, row: &ProfileVector) -> Result<usize, LorentzError> {
        if row.len() != self.schema.len() {
            return Err(LorentzError::InvalidProfile(format!(
                "row has {} values, schema has {} features",
                row.len(),
                self.schema.len()
            )));
        }
        for (f, v) in row.values().iter().enumerate() {
            if let Some(id) = v {
                if *id as usize >= self.vocabs[f].len() {
                    return Err(LorentzError::InvalidProfile(format!(
                        "value id {id} out of range for {}",
                        self.schema.name(FeatureId(f))
                    )));
                }
            }
            self.columns[f].push(*v);
        }
        self.rows += 1;
        Ok(self.rows - 1)
    }

    /// The interned value at (`row`, `feature`).
    pub fn value_id(&self, row: usize, feature: FeatureId) -> Option<u32> {
        self.columns[feature.0][row]
    }

    /// The string value at (`row`, `feature`), `None` if missing.
    pub fn value_str(&self, row: usize, feature: FeatureId) -> Option<&str> {
        self.value_id(row, feature)
            .map(|id| self.vocabs[feature.0].value(id))
    }

    /// The whole interned column for `feature`.
    pub fn column(&self, feature: FeatureId) -> &[Option<u32>] {
        &self.columns[feature.0]
    }

    /// The vocabulary for `feature`.
    pub fn vocab(&self, feature: FeatureId) -> &Vocab {
        &self.vocabs[feature.0]
    }

    /// Cardinality (distinct observed values) of `feature`.
    pub fn cardinality(&self, feature: FeatureId) -> usize {
        self.vocabs[feature.0].len()
    }

    /// Extracts row `row` as an owned [`ProfileVector`].
    pub fn row(&self, row: usize) -> ProfileVector {
        ProfileVector::new(self.columns.iter().map(|c| c[row]).collect())
    }

    /// Encodes an external row of strings against this table's vocabularies
    /// without mutating them. Unseen values become `None` (they match no
    /// bucket and carry no target statistics — exactly how a brand-new
    /// customer appears to the provisioners).
    ///
    /// # Errors
    /// Returns [`LorentzError::InvalidProfile`] on arity mismatch.
    pub fn encode_row(&self, values: &[Option<&str>]) -> Result<ProfileVector, LorentzError> {
        let mut out = ProfileVector::new(Vec::with_capacity(values.len()));
        self.encode_row_into(values, &mut out)?;
        Ok(out)
    }

    /// [`ProfileTable::encode_row`] into a caller-owned vector, clearing and
    /// refilling it. Batched serving reuses one scratch [`ProfileVector`]
    /// across requests instead of allocating per request.
    ///
    /// # Errors
    /// Returns [`LorentzError::InvalidProfile`] on arity mismatch (leaving
    /// `out` cleared).
    pub fn encode_row_into(
        &self,
        values: &[Option<&str>],
        out: &mut ProfileVector,
    ) -> Result<(), LorentzError> {
        out.values.clear();
        if values.len() != self.schema.len() {
            return Err(LorentzError::InvalidProfile(format!(
                "row has {} values, schema has {} features",
                values.len(),
                self.schema.len()
            )));
        }
        out.values.extend(
            values
                .iter()
                .enumerate()
                .map(|(f, v)| v.and_then(|s| self.vocabs[f].get(s))),
        );
        Ok(())
    }

    /// A row-less copy of this table: same schema and vocabularies, zero
    /// rows. A trained deployment only needs the vocabularies to encode
    /// incoming requests, so persisting this view instead of the full
    /// training matrix keeps the serialized model small.
    pub fn vocab_view(&self) -> ProfileTable {
        ProfileTable {
            schema: self.schema.clone(),
            vocabs: self.vocabs.clone(),
            columns: vec![Vec::new(); self.columns.len()],
            rows: 0,
        }
    }

    /// Builds a new table containing only the given rows (same schema and
    /// vocabularies). Used for train/validation/test splitting.
    pub fn subset(&self, rows: &[usize]) -> ProfileTable {
        let mut columns: Vec<Vec<Option<u32>>> =
            vec![Vec::with_capacity(rows.len()); self.columns.len()];
        for &r in rows {
            for (f, col) in self.columns.iter().enumerate() {
                columns[f].push(col[r]);
            }
        }
        ProfileTable {
            schema: self.schema.clone(),
            vocabs: self.vocabs.clone(),
            columns,
            rows: rows.len(),
        }
    }

    /// Rebuilds every vocabulary's lookup index. Required after
    /// deserializing a table (the indexes are derived state skipped by
    /// serde); [`ProfileTable::encode_row`] would otherwise see every value
    /// as unseen.
    pub fn rebuild_indexes(&mut self) {
        for v in &mut self.vocabs {
            v.rebuild_index();
        }
    }

    /// Fraction of cells that are missing.
    pub fn missing_fraction(&self) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        let missing: usize = self
            .columns
            .iter()
            .map(|c| c.iter().filter(|v| v.is_none()).count())
            .sum();
        missing as f64 / (self.rows * self.columns.len()) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_table() -> ProfileTable {
        let schema = ProfileSchema::new(vec!["industry", "customer"]).unwrap();
        let mut t = ProfileTable::new(schema);
        t.push_row(&[Some("Retail"), Some("acme")]).unwrap();
        t.push_row(&[Some("Retail"), Some("globex")]).unwrap();
        t.push_row(&[Some("Banking"), None]).unwrap();
        t
    }

    #[test]
    fn schema_rejects_duplicates_and_empty() {
        assert!(ProfileSchema::new(vec!["a", "a"]).is_err());
        assert!(ProfileSchema::new(Vec::<String>::new()).is_err());
    }

    #[test]
    fn azure_schema_has_seven_features_coarse_to_fine() {
        let s = ProfileSchema::azure_postgres();
        assert_eq!(s.len(), 7);
        assert_eq!(s.names()[0], "SegmentName");
        assert_eq!(s.names()[6], "ResourceGroup");
        assert_eq!(s.feature_id("VerticalName"), Some(FeatureId(2)));
        assert_eq!(s.feature_id("nope"), None);
    }

    #[test]
    fn interning_reuses_ids() {
        let t = small_table();
        let industry = FeatureId(0);
        assert_eq!(t.value_id(0, industry), t.value_id(1, industry));
        assert_ne!(t.value_id(0, industry), t.value_id(2, industry));
        assert_eq!(t.cardinality(industry), 2);
        assert_eq!(t.value_str(2, industry), Some("Banking"));
    }

    #[test]
    fn missing_values_are_preserved() {
        let t = small_table();
        assert_eq!(t.value_id(2, FeatureId(1)), None);
        assert_eq!(t.row(2).missing_count(), 1);
        let expect = 1.0 / 6.0;
        assert!((t.missing_fraction() - expect).abs() < 1e-12);
    }

    #[test]
    fn encode_row_maps_unseen_to_none_without_interning() {
        let t = small_table();
        let card_before = t.cardinality(FeatureId(0));
        let v = t.encode_row(&[Some("SpaceTourism"), Some("acme")]).unwrap();
        assert_eq!(v.get(FeatureId(0)), None);
        assert!(v.get(FeatureId(1)).is_some());
        assert_eq!(t.cardinality(FeatureId(0)), card_before);
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let mut t = small_table();
        assert!(t.push_row(&[Some("x")]).is_err());
        assert!(t.encode_row(&[Some("x")]).is_err());
    }

    #[test]
    fn encode_row_into_reuses_the_buffer() {
        let t = small_table();
        let mut buf = ProfileVector::new(Vec::new());
        t.encode_row_into(&[Some("Banking"), Some("acme")], &mut buf)
            .unwrap();
        assert_eq!(buf, t.encode_row(&[Some("Banking"), Some("acme")]).unwrap());
        t.encode_row_into(&[Some("unseen"), None], &mut buf)
            .unwrap();
        assert_eq!(buf.values(), &[None, None]);
        assert!(t.encode_row_into(&[Some("x")], &mut buf).is_err());
        assert!(buf.is_empty(), "failed encode leaves the buffer cleared");
    }

    #[test]
    fn vocab_view_keeps_vocabs_drops_rows() {
        let t = small_table();
        let v = t.vocab_view();
        assert_eq!(v.rows(), 0);
        assert_eq!(v.schema(), t.schema());
        assert_eq!(v.cardinality(FeatureId(0)), t.cardinality(FeatureId(0)));
        let enc = v.encode_row(&[Some("Retail"), Some("acme")]).unwrap();
        assert_eq!(enc, t.encode_row(&[Some("Retail"), Some("acme")]).unwrap());
    }

    #[test]
    fn subset_preserves_vocabs_and_selects_rows() {
        let t = small_table();
        let s = t.subset(&[2, 0]);
        assert_eq!(s.rows(), 2);
        assert_eq!(s.value_str(0, FeatureId(0)), Some("Banking"));
        assert_eq!(s.value_str(1, FeatureId(0)), Some("Retail"));
        // Vocabularies identical => encoded ids stay comparable.
        assert_eq!(s.vocab(FeatureId(0)).len(), t.vocab(FeatureId(0)).len());
    }

    #[test]
    fn push_encoded_row_validates_ids() {
        let mut t = small_table();
        let ok = t.row(0);
        assert!(t.push_encoded_row(&ok).is_ok());
        let bad = ProfileVector::new(vec![Some(99), None]);
        assert!(t.push_encoded_row(&bad).is_err());
    }

    #[test]
    fn vocab_rebuild_index_restores_lookup() {
        let mut v = Vocab::new();
        v.intern("a");
        v.intern("b");
        let json = serde_json::to_string(&v).unwrap();
        let mut back: Vocab = serde_json::from_str(&json).unwrap();
        assert_eq!(back.get("a"), None); // index skipped by serde
        back.rebuild_index();
        assert_eq!(back.get("a"), Some(0));
        assert_eq!(back.get("b"), Some(1));
    }

    #[test]
    fn vocab_index_never_duplicates_string_storage() {
        // Regression: `intern` used to clone each value into a
        // String-keyed index (and `rebuild_index` cloned every value
        // again), doubling vocabulary memory. The hashed index must stay
        // a small constant per value no matter how long the strings are.
        let mut v = Vocab::new();
        for i in 0..1000 {
            v.intern(&format!("{i:-<1024}"));
        }
        let strings = v.value_heap_bytes();
        assert!(strings >= 1000 * 1024);
        let interned_index = v.index_heap_bytes();
        assert!(
            interned_index < strings / 8,
            "index holds {interned_index} bytes against {strings} bytes of strings"
        );
        // Rebuilding (the deserialization path) must not grow the index
        // into string territory either, and must preserve every lookup.
        v.rebuild_index();
        assert!(v.index_heap_bytes() < strings / 8);
        assert_eq!(v.get(&format!("{:-<1024}", 7)), Some(7));
        assert_eq!(v.get("absent"), None);
    }

    #[test]
    fn vocab_index_resolves_hash_collisions_by_string() {
        // Force two values into one bucket (real 64-bit FNV collisions are
        // impractical to construct) and check the spill path compares
        // strings instead of trusting the hash.
        let mut v = Vocab::new();
        v.values = vec!["alpha".into(), "beta".into(), "gamma".into()];
        v.insert_hashed(42, 0);
        v.insert_hashed(42, 1);
        v.insert_hashed(42, 2);
        assert_eq!(v.lookup_hashed(42, "alpha"), Some(0));
        assert_eq!(v.lookup_hashed(42, "beta"), Some(1));
        assert_eq!(v.lookup_hashed(42, "gamma"), Some(2));
        assert_eq!(v.lookup_hashed(42, "delta"), None);
        assert_eq!(v.lookup_hashed(43, "alpha"), None);
        assert!(v.index_heap_bytes() > 0);
    }
}
