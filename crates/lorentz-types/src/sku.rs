//! SKUs and SKU catalogs.
//!
//! A [`SkuCatalog`] is the discrete candidate set `C` from which the
//! rightsizer (Eq. 7–9) and the provisioners (Eq. 11–12) pick capacities. It
//! is ordered by primary-dimension capacity, which lets callers round
//! arbitrary real-valued predictions to valid SKUs.

use crate::capacity::Capacity;
use crate::error::LorentzError;
use crate::offering::ServerOffering;
use crate::resource::ResourceSpace;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One purchasable configuration: a named capacity point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sku {
    /// Marketing / catalog name, e.g. `Standard_D4ds_v4`.
    pub name: String,
    /// The capacity this SKU provisions.
    pub capacity: Capacity,
}

impl Sku {
    /// Creates an SKU.
    pub fn new(name: impl Into<String>, capacity: Capacity) -> Self {
        Self {
            name: name.into(),
            capacity,
        }
    }
}

impl fmt::Display for Sku {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.name, self.capacity)
    }
}

/// The ordered candidate capacity set `C` for one server offering.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SkuCatalog {
    offering: ServerOffering,
    space: ResourceSpace,
    skus: Vec<Sku>,
}

impl SkuCatalog {
    /// Builds a catalog from explicit SKUs.
    ///
    /// # Errors
    /// Returns [`LorentzError::InvalidCatalog`] if the SKU list is empty, any
    /// capacity has the wrong arity for `space`, or primary capacities are
    /// not strictly increasing.
    pub fn new(
        offering: ServerOffering,
        space: ResourceSpace,
        skus: Vec<Sku>,
    ) -> Result<Self, LorentzError> {
        if skus.is_empty() {
            return Err(LorentzError::InvalidCatalog("no SKUs".into()));
        }
        for sku in &skus {
            sku.capacity
                .check_space(&space)
                .map_err(|e| LorentzError::InvalidCatalog(format!("sku {}: {e}", sku.name)))?;
        }
        if !skus
            .windows(2)
            .all(|w| w[0].capacity.primary() < w[1].capacity.primary())
        {
            return Err(LorentzError::InvalidCatalog(
                "SKUs must be strictly increasing in primary capacity".into(),
            ));
        }
        Ok(Self {
            offering,
            space,
            skus,
        })
    }

    /// The paper's Azure PostgreSQL DB flexible-server catalog for an
    /// offering, over the vCores-only space (§2.1).
    pub fn azure_postgres(offering: ServerOffering) -> Self {
        let space = ResourceSpace::vcores_only();
        let skus = offering
            .vcore_options()
            .iter()
            .map(|&v| Sku::new(format!("{}-{v}vc", offering.name()), Capacity::scalar(v)))
            .collect();
        Self::new(offering, space, skus).expect("builtin catalog is valid")
    }

    /// A two-dimensional (vCores, memory) variant of the Azure catalog where
    /// memory scales with the offering's per-vCore ratio. Used by the
    /// multi-resource examples and tests.
    pub fn azure_postgres_with_memory(offering: ServerOffering) -> Self {
        let space = ResourceSpace::vcores_memory();
        let ratio = offering.memory_gb_per_vcore();
        let skus = offering
            .vcore_options()
            .iter()
            .map(|&v| {
                Sku::new(
                    format!("{}-{v}vc", offering.name()),
                    Capacity::new(vec![v, v * ratio]).expect("positive"),
                )
            })
            .collect();
        Self::new(offering, space, skus).expect("builtin catalog is valid")
    }

    /// The offering this catalog belongs to.
    pub fn offering(&self) -> ServerOffering {
        self.offering
    }

    /// The resource space the SKU capacities span.
    pub fn space(&self) -> &ResourceSpace {
        &self.space
    }

    /// The SKUs in increasing primary-capacity order.
    pub fn skus(&self) -> &[Sku] {
        &self.skus
    }

    /// The candidate capacities in increasing primary order.
    pub fn capacities(&self) -> impl Iterator<Item = &Capacity> {
        self.skus.iter().map(|s| &s.capacity)
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.skus.len()
    }

    /// Whether the catalog is empty (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.skus.is_empty()
    }

    /// The smallest (default) SKU — what the Azure PostgreSQL configuration
    /// tool presents to users today (§1).
    pub fn minimum(&self) -> &Sku {
        &self.skus[0]
    }

    /// The largest SKU.
    pub fn maximum(&self) -> &Sku {
        &self.skus[self.skus.len() - 1]
    }

    /// Index of the exact capacity, if present (compared on the primary
    /// dimension, which uniquely identifies an SKU within a catalog).
    pub fn index_of(&self, capacity: &Capacity) -> Option<usize> {
        self.skus
            .iter()
            .position(|s| (s.capacity.primary() - capacity.primary()).abs() < 1e-9)
    }

    /// The smallest SKU whose capacity dominates `target` in every
    /// dimension; `None` if even the largest SKU is insufficient.
    ///
    /// This is the "round up to a valid SKU" step applied to model
    /// predictions and λ-adjusted capacities.
    pub fn round_up(&self, target: &Capacity) -> Option<&Sku> {
        self.skus.iter().find(|s| s.capacity.dominates(target))
    }

    /// The largest SKU that `target` dominates (round down); `None` if the
    /// target is below the minimum SKU.
    pub fn round_down(&self, target: &Capacity) -> Option<&Sku> {
        self.skus
            .iter()
            .rev()
            .find(|s| target.dominates(&s.capacity))
    }

    /// The SKU nearest to `target` in log2 space on the primary dimension —
    /// the discretization used when personalization rescales predictions
    /// (§5.3 "discretized to C").
    pub fn nearest_log2(&self, target: &Capacity) -> &Sku {
        let t = target.primary().max(f64::MIN_POSITIVE).log2();
        self.skus
            .iter()
            .min_by(|a, b| {
                let da = (a.capacity.primary().log2() - t).abs();
                let db = (b.capacity.primary().log2() - t).abs();
                da.partial_cmp(&db).expect("finite distances")
            })
            .expect("catalog is non-empty")
    }

    /// The SKU at `index`.
    pub fn get(&self, index: usize) -> &Sku {
        &self.skus[index]
    }
}

impl fmt::Display for SkuCatalog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} catalog ({} SKUs)", self.offering, self.skus.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gp() -> SkuCatalog {
        SkuCatalog::azure_postgres(ServerOffering::GeneralPurpose)
    }

    #[test]
    fn azure_catalogs_match_offering_ladders() {
        for off in ServerOffering::ALL {
            let cat = SkuCatalog::azure_postgres(off);
            let primaries: Vec<f64> = cat.capacities().map(|c| c.primary()).collect();
            assert_eq!(primaries, off.vcore_options());
            assert_eq!(cat.offering(), off);
        }
    }

    #[test]
    fn minimum_and_maximum() {
        let cat = gp();
        assert_eq!(cat.minimum().capacity.primary(), 2.0);
        assert_eq!(cat.maximum().capacity.primary(), 128.0);
    }

    #[test]
    fn round_up_finds_smallest_dominating_sku() {
        let cat = gp();
        assert_eq!(
            cat.round_up(&Capacity::scalar(3.0))
                .unwrap()
                .capacity
                .primary(),
            4.0
        );
        assert_eq!(
            cat.round_up(&Capacity::scalar(4.0))
                .unwrap()
                .capacity
                .primary(),
            4.0
        );
        assert_eq!(
            cat.round_up(&Capacity::scalar(0.5))
                .unwrap()
                .capacity
                .primary(),
            2.0
        );
        assert!(cat.round_up(&Capacity::scalar(1000.0)).is_none());
    }

    #[test]
    fn round_down_finds_largest_dominated_sku() {
        let cat = gp();
        assert_eq!(
            cat.round_down(&Capacity::scalar(5.0))
                .unwrap()
                .capacity
                .primary(),
            4.0
        );
        assert!(cat.round_down(&Capacity::scalar(1.0)).is_none());
    }

    #[test]
    fn nearest_log2_picks_geometric_neighbor() {
        let cat = gp();
        // 5.6 is closer to 4 than to 8 in linear space, but log2(5.6)=2.49,
        // which is closer to 8 (log2=3 at distance .51 vs 4 at .49) -> 4.
        assert_eq!(
            cat.nearest_log2(&Capacity::scalar(5.6)).capacity.primary(),
            4.0
        );
        assert_eq!(
            cat.nearest_log2(&Capacity::scalar(5.7)).capacity.primary(),
            8.0
        );
        assert_eq!(
            cat.nearest_log2(&Capacity::scalar(0.001))
                .capacity
                .primary(),
            2.0
        );
    }

    #[test]
    fn catalog_rejects_unsorted_or_mismatched_skus() {
        let space = ResourceSpace::vcores_only();
        let unsorted = vec![
            Sku::new("b", Capacity::scalar(4.0)),
            Sku::new("a", Capacity::scalar(2.0)),
        ];
        assert!(SkuCatalog::new(ServerOffering::Burstable, space.clone(), unsorted).is_err());
        let wrong_arity = vec![Sku::new("a", Capacity::new(vec![2.0, 8.0]).unwrap())];
        assert!(SkuCatalog::new(ServerOffering::Burstable, space.clone(), wrong_arity).is_err());
        assert!(SkuCatalog::new(ServerOffering::Burstable, space, vec![]).is_err());
    }

    #[test]
    fn memory_catalog_couples_memory_to_vcores() {
        let cat = SkuCatalog::azure_postgres_with_memory(ServerOffering::GeneralPurpose);
        for sku in cat.skus() {
            assert_eq!(sku.capacity.get(1), sku.capacity.get(0) * 4.0);
        }
    }

    #[test]
    fn index_of_matches_primary_capacity() {
        let cat = gp();
        assert_eq!(cat.index_of(&Capacity::scalar(8.0)), Some(2));
        assert_eq!(cat.index_of(&Capacity::scalar(9.0)), None);
    }
}
