//! Deployment validation (§4, Fig. 8 step B).
//!
//! Before publishing, the production pipeline "confirms that the new
//! model's performance on a validation dataset is acceptable" and stores
//! the metrics alongside the model. [`validate_deployment`] scores a
//! trained deployment against a held-out fleet, and a [`PublishGate`]
//! decides whether the fresh model may replace the serving one.

use crate::evaluate::{self, SlackThrottle};
use crate::fleet::FleetDataset;
use crate::pipeline::{ModelKind, TrainedLorentz};
use lorentz_types::LorentzError;
use serde::{Deserialize, Serialize};

/// Validation metrics of one deployment on one held-out fleet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeploymentReport {
    /// RMSE between the model's `log2` capacity predictions and the
    /// rightsized labels of the validation fleet.
    pub label_rmse_log2: f64,
    /// Slack/throttling of the model's discretized recommendations against
    /// the validation fleet's observed workloads.
    pub recommended: SlackThrottle,
    /// Slack/throttling of the Stage-1 rightsized capacities on the same
    /// workloads — the best any Stage-2 model could do.
    pub rightsized: SlackThrottle,
    /// Validation rows scored.
    pub rows: usize,
}

impl DeploymentReport {
    /// How much of the rightsizer's slack level the model attains
    /// (1 = as tight as Stage 1; larger = looser).
    pub fn slack_overhead(&self) -> f64 {
        if self.rightsized.mean_abs_slack <= 0.0 {
            return f64::INFINITY;
        }
        self.recommended.mean_abs_slack / self.rightsized.mean_abs_slack
    }
}

/// Scores a deployment's Stage-2 model on a held-out validation fleet.
///
/// # Errors
/// Returns [`LorentzError`] if the validation fleet is empty, contains an
/// offering the deployment has no model for, or scoring fails.
pub fn validate_deployment(
    deployment: &TrainedLorentz,
    validation: &FleetDataset,
    kind: ModelKind,
) -> Result<DeploymentReport, LorentzError> {
    if validation.is_empty() {
        return Err(LorentzError::Model("empty validation fleet".into()));
    }
    let rightsizer = deployment.rightsizer();

    let mut predictions_log2 = Vec::with_capacity(validation.len());
    let mut labels_log2 = Vec::with_capacity(validation.len());
    let mut recommended_caps = Vec::with_capacity(validation.len());
    let mut rightsized_caps = Vec::with_capacity(validation.len());
    for row in 0..validation.len() {
        let offering = validation.offerings()[row];
        let catalog = deployment.catalog(offering)?;
        let outcome = rightsizer.rightsize(
            &validation.traces()[row],
            &validation.user_capacities()[row],
            catalog,
        )?;
        let model = deployment.provisioner(offering, kind)?;
        let x = validation.profiles().row(row);
        let raw = model.predict_raw(&x)?;
        predictions_log2.push(raw.max(f64::MIN_POSITIVE).log2());
        labels_log2.push(outcome.capacity.primary().log2());
        let (sku, _) = model.recommend(&x)?;
        recommended_caps.push(sku.capacity);
        rightsized_caps.push(outcome.capacity);
    }

    let tau = deployment.config().rightsizer.tau;
    let recommended =
        evaluate::slack_throttle(rightsizer, validation.traces(), &recommended_caps, tau)?;
    let rightsized: SlackThrottle =
        evaluate::slack_throttle(rightsizer, validation.traces(), &rightsized_caps, tau)?;
    Ok(DeploymentReport {
        label_rmse_log2: lorentz_ml::metrics::rmse(&predictions_log2, &labels_log2),
        recommended,
        rightsized,
        rows: validation.len(),
    })
}

/// Acceptance thresholds for publishing a fresh model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PublishGate {
    /// Maximum tolerated throttling ratio of the recommendations on the
    /// validation workloads.
    pub max_throttling: f64,
    /// Maximum tolerated label RMSE in log2 space (1.0 = one ladder step).
    pub max_label_rmse_log2: f64,
}

impl Default for PublishGate {
    fn default() -> Self {
        Self {
            max_throttling: 0.10,
            max_label_rmse_log2: 1.5,
        }
    }
}

impl PublishGate {
    /// Whether a report clears the gate.
    pub fn admits(&self, report: &DeploymentReport) -> bool {
        report.recommended.throttling_ratio <= self.max_throttling
            && report.label_rmse_log2 <= self.max_label_rmse_log2
    }

    /// Picks the better of two reports (used to decide between the fresh
    /// model and yesterday's): lower throttling wins, slack breaks ties.
    pub fn better<'a>(
        &self,
        a: &'a DeploymentReport,
        b: &'a DeploymentReport,
    ) -> &'a DeploymentReport {
        match (self.admits(a), self.admits(b)) {
            (true, false) => a,
            (false, true) => b,
            _ => {
                // A low-slack report that throttles heavily is merely
                // underprovisioned, not better — compare throttling first.
                if a.recommended.throttling_ratio < b.recommended.throttling_ratio {
                    a
                } else if b.recommended.throttling_ratio < a.recommended.throttling_ratio {
                    b
                } else if a.recommended.mean_abs_slack <= b.recommended.mean_abs_slack {
                    a
                } else {
                    b
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LorentzConfig;
    use crate::fleet::FleetDataset;
    use crate::pipeline::LorentzPipeline;
    use lorentz_telemetry::{RegularSeries, UsageTrace};
    use lorentz_types::{
        Capacity, CustomerId, ProfileSchema, ProfileTable, ResourceGroupId, ResourcePath, ServerId,
        ServerOffering, SubscriptionId,
    };

    fn fleet(seed_offset: u32, n: u32) -> FleetDataset {
        let schema = ProfileSchema::new(vec!["industry", "customer"]).unwrap();
        let mut fleet = FleetDataset::new(ProfileTable::new(schema));
        for i in 0..n {
            let big = (i + seed_offset) % 2 == 1;
            let industry = if big { "i1" } else { "i0" };
            let customer = format!("c{}", i % 8);
            let demand = if big { 8.0 } else { 1.0 };
            let trace = UsageTrace::single(RegularSeries::new(300.0, vec![demand; 12]).unwrap());
            fleet
                .push(
                    ServerId(i),
                    ResourcePath::new(CustomerId(i % 4), SubscriptionId(i % 6), ResourceGroupId(i)),
                    ServerOffering::GeneralPurpose,
                    &[Some(industry), Some(customer.as_str())],
                    Capacity::scalar(16.0),
                    trace,
                )
                .unwrap();
        }
        fleet
    }

    fn quick_config() -> LorentzConfig {
        let mut c = LorentzConfig::paper_defaults();
        c.hierarchical.min_bucket = 5;
        c.target_encoding.boosting.n_trees = 20;
        c
    }

    #[test]
    fn good_model_passes_the_gate() {
        let train = fleet(0, 60);
        let validation = fleet(0, 40);
        let deployment = LorentzPipeline::new(quick_config())
            .unwrap()
            .train(&train)
            .unwrap();
        let report =
            validate_deployment(&deployment, &validation, ModelKind::Hierarchical).unwrap();
        assert_eq!(report.rows, 40);
        // The validation fleet has the same industry->capacity mapping, so
        // predictions should match labels almost exactly.
        assert!(
            report.label_rmse_log2 < 0.3,
            "rmse {}",
            report.label_rmse_log2
        );
        assert!(report.recommended.throttling_ratio <= 0.10);
        assert!(PublishGate::default().admits(&report));
        assert!(report.slack_overhead() < 1.5);
    }

    #[test]
    fn shifted_world_fails_the_gate() {
        let train = fleet(0, 60);
        // Validation world with flipped industry->capacity mapping: the
        // trained model now recommends small SKUs for big workloads.
        let validation = fleet(1, 40);
        let deployment = LorentzPipeline::new(quick_config())
            .unwrap()
            .train(&train)
            .unwrap();
        let report =
            validate_deployment(&deployment, &validation, ModelKind::Hierarchical).unwrap();
        assert!(
            report.label_rmse_log2 > 1.5,
            "rmse {}",
            report.label_rmse_log2
        );
        assert!(!PublishGate::default().admits(&report));
    }

    #[test]
    fn gate_prefers_the_admitted_report() {
        let good = DeploymentReport {
            label_rmse_log2: 0.2,
            recommended: SlackThrottle {
                mean_abs_slack: 3.0,
                throttling_ratio: 0.02,
            },
            rightsized: SlackThrottle {
                mean_abs_slack: 2.0,
                throttling_ratio: 0.0,
            },
            rows: 10,
        };
        let bad = DeploymentReport {
            label_rmse_log2: 2.5,
            recommended: SlackThrottle {
                mean_abs_slack: 1.0,
                throttling_ratio: 0.5,
            },
            ..good
        };
        let gate = PublishGate::default();
        assert!(std::ptr::eq(gate.better(&good, &bad), &good));
        assert!(std::ptr::eq(gate.better(&bad, &good), &good));
        // Both admitted: lower slack wins.
        let tighter = DeploymentReport {
            recommended: SlackThrottle {
                mean_abs_slack: 2.5,
                throttling_ratio: 0.02,
            },
            ..good
        };
        assert!(std::ptr::eq(gate.better(&good, &tighter), &tighter));
    }

    #[test]
    fn empty_validation_rejected() {
        let train = fleet(0, 60);
        let deployment = LorentzPipeline::new(quick_config())
            .unwrap()
            .train(&train)
            .unwrap();
        let schema = ProfileSchema::new(vec!["industry", "customer"]).unwrap();
        let empty = FleetDataset::new(ProfileTable::new(schema));
        assert!(validate_deployment(&deployment, &empty, ModelKind::Hierarchical).is_err());
    }
}
