//! The training-data container: a fleet of existing provisioned DBs.
//!
//! One record per DB/VM, aligned across parallel vectors: profile row,
//! server offering (stratification), user-selected capacity `c⁰`, usage
//! trace `w[n]` (censored at `c⁰`, exactly as real telemetry is — Eq. 1),
//! and the customer-hierarchy path for personalization.

use lorentz_telemetry::UsageTrace;
use lorentz_types::{Capacity, LorentzError, ProfileTable, ResourcePath, ServerId, ServerOffering};
use serde::{Deserialize, Serialize};

/// A fleet of existing DBs used to train Lorentz.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetDataset {
    profiles: ProfileTable,
    offerings: Vec<ServerOffering>,
    user_capacities: Vec<Capacity>,
    traces: Vec<UsageTrace>,
    paths: Vec<ResourcePath>,
    server_ids: Vec<ServerId>,
}

impl FleetDataset {
    /// Creates an empty fleet whose profile rows follow `profiles`'s schema.
    pub fn new(profiles: ProfileTable) -> Self {
        Self {
            profiles,
            offerings: Vec::new(),
            user_capacities: Vec::new(),
            traces: Vec::new(),
            paths: Vec::new(),
            server_ids: Vec::new(),
        }
    }

    /// Appends one DB record. The profile row is appended to the fleet's
    /// profile table.
    ///
    /// # Errors
    /// Returns [`LorentzError`] if the profile row mismatches the schema or
    /// the capacity mismatches the trace's resource space.
    #[allow(clippy::too_many_arguments)]
    pub fn push(
        &mut self,
        server_id: ServerId,
        path: ResourcePath,
        offering: ServerOffering,
        profile_row: &[Option<&str>],
        user_capacity: Capacity,
        trace: UsageTrace,
    ) -> Result<usize, LorentzError> {
        user_capacity.check_space(trace.space())?;
        let row = self.profiles.push_row(profile_row)?;
        self.offerings.push(offering);
        self.user_capacities.push(user_capacity);
        self.traces.push(trace);
        self.paths.push(path);
        self.server_ids.push(server_id);
        Ok(row)
    }

    /// Number of DBs.
    pub fn len(&self) -> usize {
        self.offerings.len()
    }

    /// Whether the fleet has no records.
    pub fn is_empty(&self) -> bool {
        self.offerings.is_empty()
    }

    /// The profile table (one row per DB).
    pub fn profiles(&self) -> &ProfileTable {
        &self.profiles
    }

    /// Per-DB server offerings.
    pub fn offerings(&self) -> &[ServerOffering] {
        &self.offerings
    }

    /// Per-DB user-selected capacities `c⁰`.
    pub fn user_capacities(&self) -> &[Capacity] {
        &self.user_capacities
    }

    /// Per-DB usage traces.
    pub fn traces(&self) -> &[UsageTrace] {
        &self.traces
    }

    /// Per-DB customer-hierarchy paths.
    pub fn paths(&self) -> &[ResourcePath] {
        &self.paths
    }

    /// Per-DB server ids.
    pub fn server_ids(&self) -> &[ServerId] {
        &self.server_ids
    }

    /// Row indices belonging to one offering.
    pub fn rows_for_offering(&self, offering: ServerOffering) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.offerings[i] == offering)
            .collect()
    }

    /// Extracts a sub-fleet of the given rows (vocabularies preserved, so
    /// encoded profile ids stay comparable across subsets).
    pub fn subset(&self, rows: &[usize]) -> FleetDataset {
        FleetDataset {
            profiles: self.profiles.subset(rows),
            offerings: rows.iter().map(|&r| self.offerings[r]).collect(),
            user_capacities: rows
                .iter()
                .map(|&r| self.user_capacities[r].clone())
                .collect(),
            traces: rows.iter().map(|&r| self.traces[r].clone()).collect(),
            paths: rows.iter().map(|&r| self.paths[r]).collect(),
            server_ids: rows.iter().map(|&r| self.server_ids[r]).collect(),
        }
    }

    /// Replaces a record's trace (used by the §5.2 workload upscaling, which
    /// rescales usage in place and then re-rightsizes).
    ///
    /// # Errors
    /// Returns a dimension mismatch if the new trace disagrees with the
    /// record's capacity arity.
    pub fn replace_trace(&mut self, row: usize, trace: UsageTrace) -> Result<(), LorentzError> {
        self.user_capacities[row].check_space(trace.space())?;
        self.traces[row] = trace;
        Ok(())
    }

    /// Rebuilds the profile vocabularies' lookup indexes after
    /// deserialization (see
    /// [`ProfileTable::rebuild_indexes`](lorentz_types::ProfileTable::rebuild_indexes)).
    pub fn rebuild_indexes(&mut self) {
        self.profiles.rebuild_indexes();
    }

    /// Replaces a record's user capacity (upscaling also lifts user choices).
    ///
    /// # Errors
    /// Returns a dimension mismatch on arity disagreement.
    pub fn replace_user_capacity(
        &mut self,
        row: usize,
        capacity: Capacity,
    ) -> Result<(), LorentzError> {
        capacity.check_space(self.traces[row].space())?;
        self.user_capacities[row] = capacity;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lorentz_telemetry::RegularSeries;
    use lorentz_types::{CustomerId, ProfileSchema, ResourceGroupId, SubscriptionId};

    fn trace(values: &[f64]) -> UsageTrace {
        UsageTrace::single(RegularSeries::new(300.0, values.to_vec()).unwrap())
    }

    fn path(i: u32) -> ResourcePath {
        ResourcePath::new(CustomerId(i), SubscriptionId(i), ResourceGroupId(i))
    }

    fn small_fleet() -> FleetDataset {
        let schema = ProfileSchema::new(vec!["industry"]).unwrap();
        let mut fleet = FleetDataset::new(ProfileTable::new(schema));
        for i in 0..4 {
            let offering = if i % 2 == 0 {
                ServerOffering::Burstable
            } else {
                ServerOffering::GeneralPurpose
            };
            fleet
                .push(
                    ServerId(i),
                    path(i),
                    offering,
                    &[Some("retail")],
                    Capacity::scalar(4.0),
                    trace(&[1.0, 2.0]),
                )
                .unwrap();
        }
        fleet
    }

    #[test]
    fn push_aligns_all_vectors() {
        let fleet = small_fleet();
        assert_eq!(fleet.len(), 4);
        assert_eq!(fleet.profiles().rows(), 4);
        assert_eq!(fleet.traces().len(), 4);
        assert_eq!(fleet.paths().len(), 4);
        assert!(!fleet.is_empty());
    }

    #[test]
    fn capacity_trace_arity_checked_at_push() {
        let schema = ProfileSchema::new(vec!["industry"]).unwrap();
        let mut fleet = FleetDataset::new(ProfileTable::new(schema));
        let err = fleet.push(
            ServerId(0),
            path(0),
            ServerOffering::Burstable,
            &[Some("x")],
            Capacity::new(vec![4.0, 16.0]).unwrap(), // 2 dims vs 1-dim trace
            trace(&[1.0]),
        );
        assert!(err.is_err());
        assert!(fleet.is_empty(), "failed push must not partially append");
    }

    #[test]
    fn rows_for_offering_filters() {
        let fleet = small_fleet();
        assert_eq!(
            fleet.rows_for_offering(ServerOffering::Burstable),
            vec![0, 2]
        );
        assert_eq!(
            fleet.rows_for_offering(ServerOffering::GeneralPurpose),
            vec![1, 3]
        );
        assert!(fleet
            .rows_for_offering(ServerOffering::MemoryOptimized)
            .is_empty());
    }

    #[test]
    fn subset_preserves_alignment() {
        let fleet = small_fleet();
        let sub = fleet.subset(&[3, 0]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.server_ids()[0], ServerId(3));
        assert_eq!(sub.offerings()[0], ServerOffering::GeneralPurpose);
        assert_eq!(sub.profiles().rows(), 2);
    }

    #[test]
    fn replace_trace_and_capacity_validate_arity() {
        let mut fleet = small_fleet();
        assert!(fleet.replace_trace(0, trace(&[5.0, 6.0])).is_ok());
        assert_eq!(fleet.traces()[0].resource(0).values(), &[5.0, 6.0]);
        assert!(fleet
            .replace_user_capacity(0, Capacity::scalar(8.0))
            .is_ok());
        assert!(fleet
            .replace_user_capacity(0, Capacity::new(vec![1.0, 2.0]).unwrap())
            .is_err());
    }
}
