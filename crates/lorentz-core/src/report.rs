//! Fleet health reports.
//!
//! The operational artifact behind Figure 1's pitch: how well a fleet is
//! provisioned today, what the workloads look like, and what rightsizing
//! would save — rendered as markdown for humans and serialized for
//! dashboards.

use crate::config::LorentzConfig;
use crate::cost::{bill_fleet, CostModel, FleetBill};
use crate::fleet::FleetDataset;
use crate::rightsizer::{ProvisioningVerdict, Rightsizer};
use lorentz_telemetry::analysis::{classify_shape, WorkloadShape};
use lorentz_types::{Capacity, LorentzError, SkuCatalog};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A fleet-wide provisioning health report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Servers analyzed.
    pub servers: usize,
    /// Correctly provisioned servers.
    pub well_provisioned: usize,
    /// Over-provisioned servers.
    pub over_provisioned: usize,
    /// Under-provisioned servers.
    pub under_provisioned: usize,
    /// Servers whose telemetry was censored (throttled at their selected
    /// capacity).
    pub censored: usize,
    /// Count per workload shape.
    pub shape_mix: BTreeMap<String, usize>,
    /// Count per server offering.
    pub offering_mix: BTreeMap<String, usize>,
    /// Bill under the current user selections.
    pub user_bill: FleetBill,
    /// Bill under rightsized capacities.
    pub rightsized_bill: FleetBill,
    /// Relative cost saving from rightsizing.
    pub projected_savings: f64,
}

/// Builds a report by rightsizing and billing every record of a fleet.
///
/// # Errors
/// Returns [`LorentzError`] on an empty fleet or analysis failures.
pub fn fleet_report(
    config: &LorentzConfig,
    cost_model: &CostModel,
    fleet: &FleetDataset,
) -> Result<FleetReport, LorentzError> {
    if fleet.is_empty() {
        return Err(LorentzError::Model("empty fleet".into()));
    }
    let rightsizer = Rightsizer::new(&config.rightsizer)?;

    let mut well = 0usize;
    let mut over = 0usize;
    let mut under = 0usize;
    let mut censored = 0usize;
    let mut shape_mix: BTreeMap<String, usize> = BTreeMap::new();
    let mut offering_mix: BTreeMap<String, usize> = BTreeMap::new();
    let mut rightsized_caps: Vec<Capacity> = Vec::with_capacity(fleet.len());

    for i in 0..fleet.len() {
        let offering = fleet.offerings()[i];
        *offering_mix.entry(offering.name().to_owned()).or_insert(0) += 1;
        let catalog = SkuCatalog::azure_postgres(offering);
        let outcome =
            rightsizer.rightsize(&fleet.traces()[i], &fleet.user_capacities()[i], &catalog)?;
        match outcome.verdict {
            ProvisioningVerdict::WellProvisioned => well += 1,
            ProvisioningVerdict::OverProvisioned => over += 1,
            ProvisioningVerdict::UnderProvisioned => under += 1,
        }
        if outcome.censored {
            censored += 1;
        }
        let shape = classify_shape(fleet.traces()[i].resource(0));
        *shape_mix.entry(shape_name(shape).to_owned()).or_insert(0) += 1;
        rightsized_caps.push(outcome.capacity);
    }

    let user_bill = bill_fleet(
        cost_model,
        &rightsizer,
        fleet.traces(),
        fleet.user_capacities(),
    )?;
    let rightsized_bill = bill_fleet(cost_model, &rightsizer, fleet.traces(), &rightsized_caps)?;

    Ok(FleetReport {
        servers: fleet.len(),
        well_provisioned: well,
        over_provisioned: over,
        under_provisioned: under,
        censored,
        shape_mix,
        offering_mix,
        user_bill,
        rightsized_bill,
        projected_savings: rightsized_bill.cost_reduction_vs(&user_bill),
    })
}

fn shape_name(shape: WorkloadShape) -> &'static str {
    match shape {
        WorkloadShape::Steady => "steady",
        WorkloadShape::Periodic => "periodic",
        WorkloadShape::Bursty => "bursty",
        WorkloadShape::Irregular => "irregular",
    }
}

impl FleetReport {
    /// Renders the report as markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let pct = |c: usize| 100.0 * c as f64 / self.servers.max(1) as f64;
        let _ = writeln!(out, "# Fleet provisioning report\n");
        let _ = writeln!(out, "**Servers:** {}\n", self.servers);
        let _ = writeln!(out, "## Provisioning quality\n");
        let _ = writeln!(out, "| verdict | servers | share |");
        let _ = writeln!(out, "|---|---:|---:|");
        for (name, c) in [
            ("well provisioned", self.well_provisioned),
            ("over provisioned", self.over_provisioned),
            ("under provisioned", self.under_provisioned),
        ] {
            let _ = writeln!(out, "| {name} | {c} | {:.1}% |", pct(c));
        }
        let _ = writeln!(
            out,
            "\n{} servers ({:.1}%) are throttled at their selected capacity (censored telemetry).\n",
            self.censored,
            pct(self.censored)
        );
        let _ = writeln!(out, "## Workload shapes\n");
        let _ = writeln!(out, "| shape | servers |");
        let _ = writeln!(out, "|---|---:|");
        for (shape, c) in &self.shape_mix {
            let _ = writeln!(out, "| {shape} | {c} |");
        }
        let _ = writeln!(out, "\n## Offerings\n");
        let _ = writeln!(out, "| offering | servers |");
        let _ = writeln!(out, "|---|---:|");
        for (offering, c) in &self.offering_mix {
            let _ = writeln!(out, "| {offering} | {c} |");
        }
        let _ = writeln!(out, "\n## Cost\n");
        let _ = writeln!(
            out,
            "- current bill: {:.2} ({:.0} vCore-hours, {:.1} hours throttled)",
            self.user_bill.cost, self.user_bill.vcore_hours, self.user_bill.hours_throttled
        );
        let _ = writeln!(
            out,
            "- rightsized bill: {:.2} ({:.0} vCore-hours, {:.1} hours throttled)",
            self.rightsized_bill.cost,
            self.rightsized_bill.vcore_hours,
            self.rightsized_bill.hours_throttled
        );
        let _ = writeln!(
            out,
            "- **projected savings from rightsizing: {:.1}%**",
            100.0 * self.projected_savings
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lorentz_telemetry::{RegularSeries, UsageTrace};
    use lorentz_types::{
        CustomerId, ProfileSchema, ProfileTable, ResourceGroupId, ResourcePath, ServerId,
        ServerOffering, SubscriptionId,
    };

    fn fleet() -> FleetDataset {
        let schema = ProfileSchema::new(vec!["industry"]).unwrap();
        let mut fleet = FleetDataset::new(ProfileTable::new(schema));
        for i in 0..30u32 {
            // Mix of steady small workloads (over-provisioned at 16) and
            // throttled ones (pinned at 2).
            let (demand, cap) = if i % 3 == 0 { (2.0, 2.0) } else { (1.0, 16.0) };
            fleet
                .push(
                    ServerId(i),
                    ResourcePath::new(CustomerId(0), SubscriptionId(0), ResourceGroupId(i)),
                    ServerOffering::GeneralPurpose,
                    &[Some("retail")],
                    lorentz_types::Capacity::scalar(cap),
                    UsageTrace::single(RegularSeries::new(300.0, vec![demand; 24]).unwrap()),
                )
                .unwrap();
        }
        fleet
    }

    #[test]
    fn report_counts_and_savings() {
        let r = fleet_report(
            &LorentzConfig::paper_defaults(),
            &CostModel::default(),
            &fleet(),
        )
        .unwrap();
        assert_eq!(r.servers, 30);
        assert_eq!(
            r.well_provisioned + r.over_provisioned + r.under_provisioned,
            30
        );
        // The 2-vCore workloads throttle at their capacity: censored +
        // under-provisioned.
        assert_eq!(r.censored, 10);
        assert_eq!(r.under_provisioned, 10);
        assert_eq!(r.over_provisioned, 20);
        // Rightsizing the 16-vCore picks down saves money.
        assert!(r.projected_savings > 0.3, "savings {}", r.projected_savings);
        assert_eq!(r.shape_mix.get("steady"), Some(&30));
        assert_eq!(r.offering_mix.get("general_purpose"), Some(&30));
    }

    #[test]
    fn markdown_renders_all_sections() {
        let r = fleet_report(
            &LorentzConfig::paper_defaults(),
            &CostModel::default(),
            &fleet(),
        )
        .unwrap();
        let md = r.to_markdown();
        for needle in [
            "# Fleet provisioning report",
            "## Provisioning quality",
            "## Workload shapes",
            "## Cost",
            "projected savings",
        ] {
            assert!(md.contains(needle), "missing '{needle}'");
        }
    }

    #[test]
    fn empty_fleet_rejected() {
        let schema = ProfileSchema::new(vec!["industry"]).unwrap();
        let empty = FleetDataset::new(ProfileTable::new(schema));
        assert!(fleet_report(
            &LorentzConfig::paper_defaults(),
            &CostModel::default(),
            &empty
        )
        .is_err());
    }
}
