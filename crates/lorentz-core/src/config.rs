//! Hyperparameter configuration (paper Table 2).

use crate::personalizer::PersonalizerConfig;
use crate::provisioner::{HierarchicalConfig, TargetEncodingConfig};
use lorentz_types::LorentzError;
use serde::{Deserialize, Serialize};

/// Stage-1 rightsizer hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RightsizerConfig {
    /// Binning width `T` in seconds (Table 2: `T = 5 min`).
    pub bin_seconds: f64,
    /// Per-dimension utilization threshold `η_r` above which a bin counts as
    /// throttled (Table 2: 0.95). One entry per resource dimension; a single
    /// entry is broadcast.
    pub eta: Vec<f64>,
    /// Per-dimension slack target `s*_r` (Table 2: `s*_CPU = 0.5`). A single
    /// entry is broadcast.
    pub slack_target: Vec<f64>,
    /// Maximum tolerated throttling probability `τ` (Table 2: 0).
    pub tau: f64,
    /// Censored-workload scale-up exponent `K`: a throttled workload is
    /// rightsized to at least `2^K · c⁰` (Table 2: 1).
    pub k: u32,
}

impl Default for RightsizerConfig {
    fn default() -> Self {
        Self {
            bin_seconds: 300.0,
            eta: vec![0.95],
            slack_target: vec![0.5],
            tau: 0.0,
            k: 1,
        }
    }
}

impl RightsizerConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns [`LorentzError::InvalidConfig`] for out-of-range values.
    pub fn validate(&self) -> Result<(), LorentzError> {
        if !self.bin_seconds.is_finite() || self.bin_seconds <= 0.0 {
            return Err(LorentzError::InvalidConfig(format!(
                "bin_seconds must be positive, got {}",
                self.bin_seconds
            )));
        }
        if self.eta.is_empty() || self.slack_target.is_empty() {
            return Err(LorentzError::InvalidConfig(
                "eta and slack_target must have at least one entry".into(),
            ));
        }
        for &e in &self.eta {
            if !e.is_finite() || e <= 0.0 || e > 1.0 {
                return Err(LorentzError::InvalidConfig(format!(
                    "eta entries must be in (0, 1], got {e}"
                )));
            }
        }
        for &s in &self.slack_target {
            if !s.is_finite() || !(0.0..1.0).contains(&s) {
                return Err(LorentzError::InvalidConfig(format!(
                    "slack targets must be in [0, 1), got {s}"
                )));
            }
        }
        if !self.tau.is_finite() || !(0.0..=1.0).contains(&self.tau) {
            return Err(LorentzError::InvalidConfig(format!(
                "tau must be in [0, 1], got {}",
                self.tau
            )));
        }
        Ok(())
    }

    /// The `η` threshold for dimension `r` (broadcasting a single entry).
    pub fn eta_for(&self, r: usize) -> f64 {
        if self.eta.len() == 1 {
            self.eta[0]
        } else {
            self.eta[r]
        }
    }

    /// The slack target for dimension `r` (broadcasting a single entry).
    pub fn slack_target_for(&self, r: usize) -> f64 {
        if self.slack_target.len() == 1 {
            self.slack_target[0]
        } else {
            self.slack_target[r]
        }
    }
}

/// The full Lorentz configuration: one section per stage, mirroring Table 2.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct LorentzConfig {
    /// Stage 1: rightsizer.
    pub rightsizer: RightsizerConfig,
    /// Stage 2: hierarchical provisioner.
    pub hierarchical: HierarchicalConfig,
    /// Stage 2: target-encoding provisioner.
    pub target_encoding: TargetEncodingConfig,
    /// Stage 3: personalizer.
    pub personalizer: PersonalizerConfig,
}

impl LorentzConfig {
    /// The exact hyperparameters of the paper's Table 2.
    pub fn paper_defaults() -> Self {
        Self::default()
    }

    /// Validates every section.
    ///
    /// # Errors
    /// Returns the first section's [`LorentzError::InvalidConfig`].
    pub fn validate(&self) -> Result<(), LorentzError> {
        self.rightsizer.validate()?;
        self.hierarchical.validate()?;
        self.target_encoding.validate()?;
        self.personalizer.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_2() {
        let c = LorentzConfig::paper_defaults();
        assert_eq!(c.rightsizer.bin_seconds, 300.0); // T = 5 min
        assert_eq!(c.rightsizer.eta, vec![0.95]);
        assert_eq!(c.rightsizer.slack_target, vec![0.5]);
        assert_eq!(c.rightsizer.tau, 0.0);
        assert_eq!(c.rightsizer.k, 1);
        assert_eq!(c.hierarchical.percentile, 50.0); // p = 50
        assert_eq!(c.hierarchical.hierarchy.threshold, 0.6); // γ = 0.6
        assert_eq!(c.target_encoding.boosting.n_trees, 100); // 100 trees
        assert_eq!(c.personalizer.learning_rate, 0.3);
        assert_eq!(c.personalizer.rho_stratification, 0.25); // signal decay
        assert!(c.validate().is_ok());
    }

    #[test]
    fn rightsizer_validation_catches_bad_values() {
        let cases = [
            RightsizerConfig {
                eta: vec![1.5],
                ..RightsizerConfig::default()
            },
            RightsizerConfig {
                slack_target: vec![1.0],
                ..RightsizerConfig::default()
            },
            RightsizerConfig {
                tau: -0.1,
                ..RightsizerConfig::default()
            },
            RightsizerConfig {
                bin_seconds: 0.0,
                ..RightsizerConfig::default()
            },
            RightsizerConfig {
                eta: vec![],
                ..RightsizerConfig::default()
            },
        ];
        for c in cases {
            assert!(c.validate().is_err(), "{c:?}");
        }
    }

    #[test]
    fn eta_and_slack_broadcast_single_entries() {
        let c = RightsizerConfig::default();
        assert_eq!(c.eta_for(0), 0.95);
        assert_eq!(c.eta_for(3), 0.95);
        let c = RightsizerConfig {
            eta: vec![0.9, 0.8],
            slack_target: vec![0.5, 0.3],
            ..RightsizerConfig::default()
        };
        assert_eq!(c.eta_for(1), 0.8);
        assert_eq!(c.slack_target_for(1), 0.3);
    }

    #[test]
    fn config_serde_round_trip() {
        let c = LorentzConfig::paper_defaults();
        let json = serde_json::to_string(&c).unwrap();
        let back: LorentzConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
