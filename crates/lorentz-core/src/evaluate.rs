//! Evaluation utilities for §5: slack/throttling measurement, Pareto
//! sweeps, and baseline construction.
//!
//! All §5.2 evaluations score a *capacity assignment* (one capacity per
//! workload) against ground-truth demand traces by two fleet-level numbers:
//!
//! * **mean absolute slack** `mean_w(S_w(c_w) · c_w)` on the primary
//!   dimension — wasted provisioned volume, the business cost metric;
//! * **throttling ratio** — the fraction of workloads with `T_w(c_w) > τ`.
//!
//! Pareto curves are produced by scaling a model's raw predictions by
//! powers of two before discretization; the default-value baseline assigns
//! one fixed catalog capacity to every workload.

use crate::rightsizer::Rightsizer;
use lorentz_telemetry::UsageTrace;
use lorentz_types::{Capacity, LorentzError, SkuCatalog};
use serde::{Deserialize, Serialize};

/// Fleet-level slack/throttling evaluation of one capacity assignment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlackThrottle {
    /// Mean absolute slack on the primary dimension, across workloads.
    pub mean_abs_slack: f64,
    /// Fraction of workloads throttled beyond `τ`.
    pub throttling_ratio: f64,
}

/// One point of a Pareto sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalPoint {
    /// The log2 scale applied to predictions before discretization
    /// (0 = unscaled model output), or the default capacity used for
    /// baseline points.
    pub scale_log2: f64,
    /// Fleet metrics at this point.
    pub metrics: SlackThrottle,
}

/// Scores one capacity per workload against ground-truth traces.
///
/// # Errors
/// Returns [`LorentzError`] on length or arity mismatches.
pub fn slack_throttle(
    rightsizer: &Rightsizer,
    traces: &[UsageTrace],
    capacities: &[Capacity],
    tau: f64,
) -> Result<SlackThrottle, LorentzError> {
    if traces.len() != capacities.len() {
        return Err(LorentzError::Model(format!(
            "{} traces vs {} capacities",
            traces.len(),
            capacities.len()
        )));
    }
    if traces.is_empty() {
        return Err(LorentzError::Model("nothing to evaluate".into()));
    }
    let mut slack_sum = 0.0;
    let mut throttled = 0usize;
    for (trace, cap) in traces.iter().zip(capacities) {
        slack_sum += rightsizer.absolute_slack(trace, cap)?[0];
        if rightsizer.throttling(trace, cap)? > tau {
            throttled += 1;
        }
    }
    Ok(SlackThrottle {
        mean_abs_slack: slack_sum / traces.len() as f64,
        throttling_ratio: throttled as f64 / traces.len() as f64,
    })
}

/// Per-workload absolute slack values (primary dimension) — the
/// distributions plotted in Figures 9 and 11.
///
/// # Errors
/// Returns [`LorentzError`] on length or arity mismatches.
pub fn slack_distribution(
    rightsizer: &Rightsizer,
    traces: &[UsageTrace],
    capacities: &[Capacity],
) -> Result<Vec<f64>, LorentzError> {
    if traces.len() != capacities.len() {
        return Err(LorentzError::Model(format!(
            "{} traces vs {} capacities",
            traces.len(),
            capacities.len()
        )));
    }
    traces
        .iter()
        .zip(capacities)
        .map(|(t, c)| Ok(rightsizer.absolute_slack(t, c)?[0]))
        .collect()
}

/// Builds the Pareto curve of a provisioner from its raw per-workload
/// predictions: each `scale_log2` exponent multiplies every prediction by
/// `2^scale` before snapping to the catalog (§5.2 "scaling all
/// recommendations up and down by varying powers of two").
///
/// # Errors
/// Returns [`LorentzError`] on mismatched inputs.
pub fn prediction_pareto(
    rightsizer: &Rightsizer,
    traces: &[UsageTrace],
    raw_predictions: &[f64],
    catalog: &SkuCatalog,
    scale_exponents: &[f64],
    tau: f64,
) -> Result<Vec<EvalPoint>, LorentzError> {
    if traces.len() != raw_predictions.len() {
        return Err(LorentzError::Model(format!(
            "{} traces vs {} predictions",
            traces.len(),
            raw_predictions.len()
        )));
    }
    scale_exponents
        .iter()
        .map(|&scale| {
            let capacities: Vec<Capacity> = raw_predictions
                .iter()
                .map(|&p| {
                    catalog
                        .nearest_log2(&Capacity::scalar((p * scale.exp2()).max(f64::MIN_POSITIVE)))
                        .capacity
                        .clone()
                })
                .collect();
            Ok(EvalPoint {
                scale_log2: scale,
                metrics: slack_throttle(rightsizer, traces, &capacities, tau)?,
            })
        })
        .collect()
}

/// The default-value baseline (§5.2): one point per catalog candidate,
/// assigning that candidate to *every* workload. `scale_log2` of each point
/// records the default's log2 capacity for reference.
///
/// # Errors
/// Returns [`LorentzError`] on evaluation failures.
pub fn default_baseline_pareto(
    rightsizer: &Rightsizer,
    traces: &[UsageTrace],
    catalog: &SkuCatalog,
    tau: f64,
) -> Result<Vec<EvalPoint>, LorentzError> {
    catalog
        .capacities()
        .map(|c| {
            let capacities = vec![c.clone(); traces.len()];
            Ok(EvalPoint {
                scale_log2: c.primary().log2(),
                metrics: slack_throttle(rightsizer, traces, &capacities, tau)?,
            })
        })
        .collect()
}

/// Selects the point minimizing slack subject to a throttling bound — the
/// Figure-11 operating point ("minimizes slack with a throttling ratio
/// < 10%").
pub fn min_slack_under_throttle_bound(
    points: &[EvalPoint],
    max_throttling: f64,
) -> Option<EvalPoint> {
    points
        .iter()
        .filter(|p| p.metrics.throttling_ratio < max_throttling)
        .min_by(|a, b| {
            a.metrics
                .mean_abs_slack
                .partial_cmp(&b.metrics.mean_abs_slack)
                .expect("finite slack")
        })
        .copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RightsizerConfig;
    use lorentz_telemetry::RegularSeries;
    use lorentz_types::ServerOffering;

    fn sizer() -> Rightsizer {
        Rightsizer::new(&RightsizerConfig::default()).unwrap()
    }

    fn trace(values: &[f64]) -> UsageTrace {
        UsageTrace::single(RegularSeries::new(300.0, values.to_vec()).unwrap())
    }

    fn catalog() -> SkuCatalog {
        SkuCatalog::azure_postgres(ServerOffering::GeneralPurpose)
    }

    #[test]
    fn slack_throttle_combines_fleet() {
        let traces = vec![trace(&[1.0, 1.0]), trace(&[7.9, 7.9])];
        let caps = vec![Capacity::scalar(4.0), Capacity::scalar(8.0)];
        let st = slack_throttle(&sizer(), &traces, &caps, 0.0).unwrap();
        // Slack: (4-1)=3 and (8-7.9)=0.1 -> mean 1.55.
        assert!((st.mean_abs_slack - 1.55).abs() < 1e-9);
        // Second workload throttles (7.9 > 0.95*8=7.6): ratio 0.5.
        assert_eq!(st.throttling_ratio, 0.5);
    }

    #[test]
    fn slack_distribution_is_per_workload() {
        let traces = vec![trace(&[1.0]), trace(&[2.0])];
        let caps = vec![Capacity::scalar(4.0), Capacity::scalar(4.0)];
        let d = slack_distribution(&sizer(), &traces, &caps).unwrap();
        assert_eq!(d, vec![3.0, 2.0]);
    }

    #[test]
    fn pareto_scaling_trades_slack_for_throttling() {
        // Workloads with peak ~3; perfect prediction = 4.
        let traces: Vec<UsageTrace> = (0..10).map(|_| trace(&[3.0, 2.0, 1.0])).collect();
        let raw = vec![4.0; 10];
        let points =
            prediction_pareto(&sizer(), &traces, &raw, &catalog(), &[-2.0, 0.0, 2.0], 0.0).unwrap();
        assert_eq!(points.len(), 3);
        // Scaling down reduces slack but throttles everything.
        assert!(points[0].metrics.mean_abs_slack < points[1].metrics.mean_abs_slack);
        assert!(points[0].metrics.throttling_ratio > points[1].metrics.throttling_ratio);
        // Scaling up adds slack with no throttling change at the top.
        assert!(points[2].metrics.mean_abs_slack > points[1].metrics.mean_abs_slack);
        assert_eq!(points[2].metrics.throttling_ratio, 0.0);
    }

    #[test]
    fn default_baseline_covers_every_catalog_entry() {
        let traces = vec![trace(&[1.0]), trace(&[10.0])];
        let points = default_baseline_pareto(&sizer(), &traces, &catalog(), 0.0).unwrap();
        assert_eq!(points.len(), catalog().len());
        // The 2-vCore default throttles the 10-vCore workload.
        assert_eq!(points[0].metrics.throttling_ratio, 0.5);
        // The 128-vCore default throttles nothing but wastes heavily.
        let last = points.last().unwrap();
        assert_eq!(last.metrics.throttling_ratio, 0.0);
        assert!(last.metrics.mean_abs_slack > 100.0);
    }

    #[test]
    fn operating_point_selection_respects_bound() {
        let points = vec![
            EvalPoint {
                scale_log2: -1.0,
                metrics: SlackThrottle {
                    mean_abs_slack: 1.0,
                    throttling_ratio: 0.5,
                },
            },
            EvalPoint {
                scale_log2: 0.0,
                metrics: SlackThrottle {
                    mean_abs_slack: 2.0,
                    throttling_ratio: 0.05,
                },
            },
            EvalPoint {
                scale_log2: 1.0,
                metrics: SlackThrottle {
                    mean_abs_slack: 4.0,
                    throttling_ratio: 0.0,
                },
            },
        ];
        let p = min_slack_under_throttle_bound(&points, 0.1).unwrap();
        assert_eq!(p.scale_log2, 0.0);
        assert!(min_slack_under_throttle_bound(&points, 0.001).is_some());
        assert!(min_slack_under_throttle_bound(&[], 0.1).is_none());
    }

    #[test]
    fn mismatched_inputs_rejected() {
        let traces = vec![trace(&[1.0])];
        let caps = vec![Capacity::scalar(2.0), Capacity::scalar(2.0)];
        assert!(slack_throttle(&sizer(), &traces, &caps, 0.0).is_err());
        assert!(slack_distribution(&sizer(), &traces, &caps).is_err());
        assert!(
            prediction_pareto(&sizer(), &traces, &[1.0, 2.0], &catalog(), &[0.0], 0.0).is_err()
        );
        assert!(slack_throttle(&sizer(), &[], &[], 0.0).is_err());
    }
}
