//! The online prediction store (§4, Fig. 8 step C).
//!
//! Production Lorentz precomputes one SKU recommendation per
//! `[hierarchy level, feature value, server offering]` key in a daily batch
//! and copies them to a low-latency store with data versioning. At inference
//! the store returns the prediction for the *most granular* hierarchy level
//! present in the request whose value is stored; if nothing matches, a
//! per-offering default is returned.

use crate::explain::Explanation;
use lorentz_types::{LorentzError, ServerOffering};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

fn key(offering: ServerOffering, feature: &str, value: &str) -> String {
    format!("{offering}|{feature}|{value}")
}

/// A versioned, in-process stand-in for the paper's authenticated online
/// prediction store. Each [`publish`](PredictionStore::publish) replaces the
/// whole entry set atomically and bumps the version, mirroring the
/// ETL-copy-then-switch deployment.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PredictionStore {
    version: u64,
    /// `offering|feature|value` → recommended primary capacity.
    entries: BTreeMap<String, f64>,
    /// Fallback capacity per offering when no key matches.
    defaults: BTreeMap<ServerOffering, f64>,
}

/// A batch of predictions to publish.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PublishBatch {
    /// `(offering, feature name, feature value, capacity)` tuples.
    pub entries: Vec<(ServerOffering, String, String, f64)>,
    /// Per-offering default capacities.
    pub defaults: Vec<(ServerOffering, f64)>,
}

impl PredictionStore {
    /// Creates an empty store at version 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current data version (0 = nothing published yet).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Atomically replaces the store contents and bumps the version.
    ///
    /// # Errors
    /// Returns [`LorentzError::InvalidConfig`] if any capacity is
    /// non-positive or non-finite.
    pub fn publish(&mut self, batch: PublishBatch) -> Result<u64, LorentzError> {
        for (_, _, _, c) in &batch.entries {
            if !c.is_finite() || *c <= 0.0 {
                return Err(LorentzError::InvalidConfig(format!(
                    "store capacities must be positive, got {c}"
                )));
            }
        }
        for (_, c) in &batch.defaults {
            if !c.is_finite() || *c <= 0.0 {
                return Err(LorentzError::InvalidConfig(format!(
                    "store defaults must be positive, got {c}"
                )));
            }
        }
        self.entries = batch
            .entries
            .into_iter()
            .map(|(o, f, v, c)| (key(o, &f, &v), c))
            .collect();
        self.defaults = batch.defaults.into_iter().collect();
        self.version += 1;
        Ok(self.version)
    }

    /// Looks up the prediction for a request.
    ///
    /// `levels` is the request's `(feature name, feature value)` pairs
    /// ordered **most granular first**; the first stored key wins. Returns
    /// the capacity and a [`Explanation::StoreLookup`] describing the match.
    ///
    /// # Errors
    /// Returns [`LorentzError::NotFound`] if no key matches and no default
    /// exists for the offering.
    pub fn lookup(
        &self,
        offering: ServerOffering,
        levels: &[(&str, &str)],
    ) -> Result<(f64, Explanation), LorentzError> {
        for (feature, value) in levels {
            if let Some(&c) = self.entries.get(&key(offering, feature, value)) {
                return Ok((
                    c,
                    Explanation::StoreLookup {
                        key: format!("{feature}={value}"),
                        is_default: false,
                    },
                ));
            }
        }
        match self.defaults.get(&offering) {
            Some(&c) => Ok((
                c,
                Explanation::StoreLookup {
                    key: format!("default:{offering}"),
                    is_default: true,
                },
            )),
            None => Err(LorentzError::NotFound(format!(
                "no prediction and no default for offering {offering}"
            ))),
        }
    }
}

/// A thread-safe handle over a [`PredictionStore`] for concurrent serving:
/// many simultaneous readers, with publishes swapping the entry set
/// atomically — the in-process analogue of the §4 online store's
/// copy-then-switch deployment.
#[derive(Debug, Default)]
pub struct SharedPredictionStore {
    inner: parking_lot::RwLock<PredictionStore>,
}

impl SharedPredictionStore {
    /// Creates an empty shared store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps an existing store.
    pub fn from_store(store: PredictionStore) -> Self {
        Self {
            inner: parking_lot::RwLock::new(store),
        }
    }

    /// Atomically replaces the contents (readers see either the old or the
    /// new version, never a mix).
    ///
    /// # Errors
    /// Returns [`LorentzError::InvalidConfig`] for invalid batches; the
    /// previous contents remain served.
    pub fn publish(&self, batch: PublishBatch) -> Result<u64, LorentzError> {
        // Validate and build outside the write lock so readers are blocked
        // only for the swap itself.
        let current_version = self.inner.read().version;
        let mut staged = PredictionStore {
            version: current_version,
            ..PredictionStore::default()
        };
        let new_version = staged.publish(batch)?;
        let mut guard = self.inner.write();
        // A concurrent publish may have advanced the version; keep the
        // monotonic property.
        staged.version = guard.version.max(new_version - 1) + 1;
        let v = staged.version;
        *guard = staged;
        Ok(v)
    }

    /// Serves a lookup under a shared read lock.
    ///
    /// # Errors
    /// See [`PredictionStore::lookup`].
    pub fn lookup(
        &self,
        offering: ServerOffering,
        levels: &[(&str, &str)],
    ) -> Result<(f64, Explanation), LorentzError> {
        self.inner.read().lookup(offering, levels)
    }

    /// Current data version.
    pub fn version(&self) -> u64 {
        self.inner.read().version
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// A snapshot clone of the current contents.
    pub fn snapshot(&self) -> PredictionStore {
        self.inner.read().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> PredictionStore {
        let mut s = PredictionStore::new();
        s.publish(PublishBatch {
            entries: vec![
                (
                    ServerOffering::GeneralPurpose,
                    "VerticalName".into(),
                    "Insurance".into(),
                    8.0,
                ),
                (
                    ServerOffering::GeneralPurpose,
                    "CloudCustomerGuid".into(),
                    "acme".into(),
                    16.0,
                ),
            ],
            defaults: vec![(ServerOffering::GeneralPurpose, 2.0)],
        })
        .unwrap();
        s
    }

    #[test]
    fn most_granular_match_wins() {
        let s = store();
        let (c, expl) = s
            .lookup(
                ServerOffering::GeneralPurpose,
                &[
                    ("CloudCustomerGuid", "acme"),
                    ("VerticalName", "Insurance"),
                ],
            )
            .unwrap();
        assert_eq!(c, 16.0);
        assert!(expl.to_string().contains("CloudCustomerGuid=acme"));
    }

    #[test]
    fn falls_through_to_coarser_levels() {
        let s = store();
        let (c, _) = s
            .lookup(
                ServerOffering::GeneralPurpose,
                &[
                    ("CloudCustomerGuid", "unknown-customer"),
                    ("VerticalName", "Insurance"),
                ],
            )
            .unwrap();
        assert_eq!(c, 8.0);
    }

    #[test]
    fn default_when_nothing_matches() {
        let s = store();
        let (c, expl) = s
            .lookup(
                ServerOffering::GeneralPurpose,
                &[("VerticalName", "SpaceTourism")],
            )
            .unwrap();
        assert_eq!(c, 2.0);
        assert!(matches!(expl, Explanation::StoreLookup { is_default: true, .. }));
    }

    #[test]
    fn missing_offering_errors() {
        let s = store();
        assert!(s
            .lookup(ServerOffering::Burstable, &[("VerticalName", "Insurance")])
            .is_err());
    }

    #[test]
    fn offerings_are_isolated() {
        let mut s = store();
        s.publish(PublishBatch {
            entries: vec![(
                ServerOffering::Burstable,
                "VerticalName".into(),
                "Insurance".into(),
                1.0,
            )],
            defaults: vec![(ServerOffering::Burstable, 1.0)],
        })
        .unwrap();
        // After republish, the GeneralPurpose entries are gone (atomic swap).
        assert!(s
            .lookup(
                ServerOffering::GeneralPurpose,
                &[("VerticalName", "Insurance")]
            )
            .is_err());
        let (c, _) = s
            .lookup(ServerOffering::Burstable, &[("VerticalName", "Insurance")])
            .unwrap();
        assert_eq!(c, 1.0);
    }

    #[test]
    fn publish_bumps_version_and_validates() {
        let mut s = PredictionStore::new();
        assert_eq!(s.version(), 0);
        s.publish(PublishBatch::default()).unwrap();
        assert_eq!(s.version(), 1);
        let bad = PublishBatch {
            entries: vec![(ServerOffering::Burstable, "f".into(), "v".into(), -1.0)],
            defaults: vec![],
        };
        assert!(s.publish(bad).is_err());
        assert_eq!(s.version(), 1, "failed publish must not bump version");
    }

    #[test]
    fn store_serde_round_trip() {
        let s = store();
        let json = serde_json::to_string(&s).unwrap();
        let back: PredictionStore = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn shared_store_serves_consistent_versions_under_concurrent_publish() {
        let shared = SharedPredictionStore::from_store(store());
        let batch_for = |capacity: f64| PublishBatch {
            entries: vec![(
                ServerOffering::GeneralPurpose,
                "VerticalName".into(),
                "Insurance".into(),
                capacity,
            )],
            defaults: vec![(ServerOffering::GeneralPurpose, capacity)],
        };
        std::thread::scope(|scope| {
            // Publisher: alternate between two consistent worlds.
            let publisher = scope.spawn(|| {
                for i in 0..50u64 {
                    let cap = if i % 2 == 0 { 4.0 } else { 64.0 };
                    shared.publish(batch_for(cap)).unwrap();
                }
            });
            // Readers: the key and the default always agree within one read
            // world (both 4 or both 64 after the first publish).
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..200 {
                        let (hit, _) = shared
                            .lookup(
                                ServerOffering::GeneralPurpose,
                                &[("VerticalName", "Insurance")],
                            )
                            .unwrap();
                        let (fallback, _) = shared
                            .lookup(ServerOffering::GeneralPurpose, &[("VerticalName", "zzz")])
                            .unwrap();
                        // Initial world: hit 8 / default 2; published
                        // worlds: 4/4 or 64/64.
                        let consistent = (hit == 8.0 && fallback == 2.0)
                            || (hit == fallback && (hit == 4.0 || hit == 64.0));
                        assert!(consistent, "torn read: hit {hit}, fallback {fallback}");
                    }
                });
            }
            publisher.join().unwrap();
        });
        assert!(shared.version() >= 51); // base store was already v1
        assert_eq!(shared.len(), 1);
    }

    #[test]
    fn shared_store_versions_are_monotone() {
        let shared = SharedPredictionStore::new();
        let v1 = shared.publish(PublishBatch::default()).unwrap();
        let v2 = shared.publish(PublishBatch::default()).unwrap();
        assert!(v2 > v1);
        assert_eq!(shared.version(), v2);
        assert!(shared.is_empty());
        let snap = shared.snapshot();
        assert_eq!(snap.version(), v2);
    }
}
