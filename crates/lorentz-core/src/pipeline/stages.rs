//! The batch-training stages of Fig. 8 (A→C).
//!
//! Each stage is a free function over [`TrainContext`]; the orchestration
//! in [`LorentzPipeline::train`](crate::pipeline::LorentzPipeline::train)
//! chains them. Stage 2 trains the per-offering models on scoped threads —
//! offerings are independent (stratified training, §2.1), so the only
//! coordination point is joining the workers, and results are collected in
//! job order to keep training fully deterministic.

use super::context::TrainContext;
use super::OfferingModels;
use crate::obs;
use crate::personalizer::Personalizer;
use crate::provisioner::{HierarchicalProvisioner, TargetEncodingProvisioner};
use crate::rightsizer::{RightsizeOutcome, Stage1Scratch};
use crate::store::{PredictionStore, PublishBatch};
use lorentz_telemetry::TraceColumns;
use lorentz_types::{LorentzError, ServerOffering, StoreKey};
use std::collections::BTreeMap;

/// Stage 1: rightsize every fleet record, producing per-record outcomes and
/// the Stage-2 training labels (rightsized primary capacities).
///
/// The fleet's traces are packed once into a columnar [`TraceColumns`]
/// layout, then sized in a single parallel sweep: records are split into
/// contiguous chunks, one scoped worker (with its own reusable
/// [`Stage1Scratch`]) per chunk, and chunk results are concatenated in
/// chunk order. Because chunks partition the record range in order and
/// [`Rightsizer::rightsize_columns`](crate::Rightsizer::rightsize_columns)
/// is byte-identical to the row path, the output is byte-identical to the
/// sequential row loop at *any* thread cap (`0` = one worker per available
/// core).
pub(super) fn rightsize_fleet(
    ctx: &TrainContext<'_>,
    max_threads: usize,
) -> Result<(Vec<RightsizeOutcome>, Vec<f64>), LorentzError> {
    let _span = obs::STAGE1_SPAN_NS.span();
    let fleet = ctx.fleet;
    let n = fleet.len();
    let columns = TraceColumns::from_traces(fleet.traces());
    let threads = if max_threads == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        max_threads
    }
    .min(n)
    .max(1);
    let chunk = n.div_ceil(threads);

    let results: Vec<Result<Vec<RightsizeOutcome>, LorentzError>> = std::thread::scope(|scope| {
        let columns = &columns;
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                scope.spawn(move || {
                    let lo = w * chunk;
                    let hi = ((w + 1) * chunk).min(n);
                    let mut scratch = Stage1Scratch::default();
                    let mut out = Vec::with_capacity(hi.saturating_sub(lo));
                    for i in lo..hi {
                        let catalog = ctx.catalog(fleet.offerings()[i])?;
                        out.push(ctx.rightsizer.rightsize_columns(
                            columns.trace(i),
                            &fleet.user_capacities()[i],
                            catalog,
                            &mut scratch,
                        )?);
                    }
                    Ok(out)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("stage-1 worker panicked"))
            .collect()
    });

    let mut outcomes = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for result in results {
        for outcome in result? {
            labels.push(outcome.capacity.primary());
            outcomes.push(outcome);
        }
    }
    obs::STAGE1_RECORDS.add(outcomes.len() as u64);
    Ok((outcomes, labels))
}

/// What one Stage-2 worker produces for its offering.
struct OfferingArtifacts {
    offering: ServerOffering,
    models: OfferingModels,
    entries: Vec<(StoreKey, f64)>,
    default: f64,
}

/// Trains one offering's models and exports its store entries.
fn train_offering(
    ctx: &TrainContext<'_>,
    offering: ServerOffering,
    rows: &[usize],
    labels: &[f64],
) -> Result<OfferingArtifacts, LorentzError> {
    let _span = obs::STAGE2_OFFERING_SPAN_NS.span();
    let catalog = ctx.catalog(offering)?;
    let sub_table = ctx.fleet.profiles().subset(rows);
    let sub_labels: Vec<f64> = rows.iter().map(|&r| labels[r]).collect();
    let hierarchical =
        HierarchicalProvisioner::fit(&sub_table, &sub_labels, catalog, ctx.config.hierarchical)?;
    let target_encoding = TargetEncodingProvisioner::fit(
        &sub_table,
        &sub_labels,
        catalog,
        ctx.config.target_encoding,
    )?;
    let (typed_entries, default) = hierarchical.export_store_entries();
    let entries = typed_entries
        .into_iter()
        .map(|(f, v, c)| (StoreKey::new(offering, f, v), c))
        .collect();
    Ok(OfferingArtifacts {
        offering,
        models: OfferingModels {
            hierarchical,
            target_encoding,
        },
        entries,
        default,
    })
}

/// Stage 2: per-offering stratified models (§2.1), trained concurrently —
/// scoped threads over the offerings with training rows — plus the publish
/// batch for Fig. 8 step C. `max_threads` caps how many workers run at
/// once (0 = one thread per offering); whatever the cap, worker results
/// are joined in job order, so the output is identical to a sequential run.
pub(super) fn train_offerings(
    ctx: &TrainContext<'_>,
    labels: &[f64],
    max_threads: usize,
) -> Result<(BTreeMap<ServerOffering, OfferingModels>, PublishBatch), LorentzError> {
    let _span = obs::STAGE2_SPAN_NS.span();
    let jobs: Vec<(ServerOffering, Vec<usize>)> = ctx
        .catalogs
        .keys()
        .map(|&offering| (offering, ctx.fleet.rows_for_offering(offering)))
        .filter(|(_, rows)| !rows.is_empty())
        .collect();
    let wave = if max_threads == 0 {
        jobs.len().max(1)
    } else {
        max_threads
    };

    let mut results: Vec<Result<OfferingArtifacts, LorentzError>> = Vec::with_capacity(jobs.len());
    for chunk in jobs.chunks(wave) {
        results.extend(std::thread::scope(|scope| {
            let handles: Vec<_> = chunk
                .iter()
                .map(|(offering, rows)| {
                    scope.spawn(move || train_offering(ctx, *offering, rows, labels))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("stage-2 worker panicked"))
                .collect::<Vec<_>>()
        }));
    }

    let mut models = BTreeMap::new();
    let mut batch = PublishBatch::default();
    for result in results {
        let artifacts = result?;
        batch.entries.extend(artifacts.entries);
        batch.defaults.push((artifacts.offering, artifacts.default));
        models.insert(artifacts.offering, artifacts.models);
    }
    if models.is_empty() {
        return Err(LorentzError::Model(
            "no offering had any training rows".into(),
        ));
    }
    obs::STAGE2_OFFERINGS.add(models.len() as u64);
    Ok((models, batch))
}

/// Publishes the precomputed predictions (Fig. 8 step C).
pub(super) fn publish_store(batch: PublishBatch) -> Result<PredictionStore, LorentzError> {
    let _span = obs::PUBLISH_SPAN_NS.span();
    let mut store = PredictionStore::new();
    store.publish(batch)?;
    obs::PUBLISH_ENTRIES.add(store.len() as u64);
    Ok(store)
}

/// Stage 3: a fresh personalization profile per observed customer path
/// (λ = 0).
pub(super) fn init_personalizer(ctx: &TrainContext<'_>) -> Result<Personalizer, LorentzError> {
    let _span = obs::PERSONALIZER_INIT_SPAN_NS.span();
    let mut personalizer = Personalizer::new(ctx.config.personalizer)?;
    for &path in ctx.fleet.paths() {
        personalizer.register(path);
    }
    obs::PERSONALIZER_PROFILES.add(personalizer.profiles() as u64);
    Ok(personalizer)
}
