//! The end-to-end Lorentz pipeline (Fig. 8): Stage-1 rightsizing over a
//! fleet, per-offering Stage-2 model training, prediction-store publishing,
//! and personalized serving.
//!
//! [`LorentzPipeline::train`] is the daily batch job (A→B of Fig. 8),
//! orchestrated as a sequence of [`stages`] over a shared
//! [`TrainContext`](context::TrainContext); the per-offering Stage-2 models
//! train concurrently on scoped threads. [`TrainedLorentz`] is the serving
//! surface, answering [`RecommendRequest`]s one at a time or in batches
//! through a [`RecommendEngine`] — [`LiveModel`] for Stage-2 inference or
//! [`StoreOnly`] for the precomputed [`PredictionStore`] — always applying
//! the Stage-3 λ adjustment. The legacy entry points
//! ([`TrainedLorentz::recommend`] and friends) are thin wrappers over those
//! engines. Store probes run on packed
//! [`StoreKey`](lorentz_types::StoreKey)s — the serving path never
//! allocates a string.

pub mod context;
mod engine;
mod stages;

use crate::config::LorentzConfig;
use crate::explain::Recommendation;
use crate::fleet::FleetDataset;
use crate::personalizer::signals::{classify_ticket, CriTicket};
use crate::personalizer::{LambdaSnapshot, Personalizer, SatisfactionSignal};
use crate::provisioner::{HierarchicalProvisioner, Provisioner, TargetEncodingProvisioner};
use crate::rightsizer::{RightsizeOutcome, Rightsizer};
use crate::store::PredictionStore;
use lorentz_types::{
    FeatureId, LorentzError, ProfileTable, ProfileVector, ResourcePath, ServerOffering, SkuCatalog,
    ValueId,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

pub use context::TrainContext;
pub use engine::{LiveModel, RecommendEngine, StoreOnly, StoreProbe};

/// Which Stage-2 model serves a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelKind {
    /// The hierarchical bucket provisioner.
    Hierarchical,
    /// The target-encoding + GBDT provisioner.
    TargetEncoding,
}

/// A capacity request for a *new* (not yet provisioned) resource.
#[derive(Debug, Clone)]
pub struct RecommendRequest<'a> {
    /// Raw profile feature values in schema order (`None` = missing tag).
    pub profile: Vec<Option<&'a str>>,
    /// The pre-selected server offering.
    pub offering: ServerOffering,
    /// Customer / subscription / resource group the resource will live in.
    pub path: ResourcePath,
}

/// The batch trainer.
///
/// ```
/// use lorentz_core::{
///     FleetDataset, LorentzConfig, LorentzPipeline, ModelKind, RecommendRequest,
/// };
/// use lorentz_telemetry::{RegularSeries, UsageTrace};
/// use lorentz_types::{
///     Capacity, CustomerId, ProfileSchema, ProfileTable, ResourceGroupId, ResourcePath,
///     ServerId, ServerOffering, SubscriptionId,
/// };
///
/// // A toy fleet: "retail" DBs need ~2 vCores, "banking" ~16. (The
/// // hierarchy learner needs at least two profile features to form a
/// // chain, so the schema nests customers under industries.)
/// let schema = ProfileSchema::new(vec!["industry", "customer"])?;
/// let mut fleet = FleetDataset::new(ProfileTable::new(schema));
/// for i in 0..40u32 {
///     let (industry, demand) = if i % 2 == 0 { ("retail", 1.0) } else { ("banking", 8.0) };
///     let customer = format!("c{}", i % 8);
///     fleet.push(
///         ServerId(i),
///         ResourcePath::new(CustomerId(i % 4), SubscriptionId(i % 8), ResourceGroupId(i)),
///         ServerOffering::GeneralPurpose,
///         &[Some(industry), Some(customer.as_str())],
///         Capacity::scalar(8.0),
///         UsageTrace::single(RegularSeries::new(300.0, vec![demand; 12])?),
///     )?;
/// }
///
/// let mut config = LorentzConfig::paper_defaults();
/// config.hierarchical.min_bucket = 5;
/// config.target_encoding.boosting.n_trees = 10;
/// let trained = LorentzPipeline::new(config)?.train(&fleet)?;
///
/// // A brand-new banking DB gets a banking-sized recommendation.
/// let recommendation = trained.recommend(
///     &RecommendRequest {
///         profile: vec![Some("banking"), Some("brand-new-customer")],
///         offering: ServerOffering::GeneralPurpose,
///         path: ResourcePath::new(CustomerId(99), SubscriptionId(1), ResourceGroupId(1)),
///     },
///     ModelKind::Hierarchical,
/// )?;
/// assert_eq!(recommendation.sku.capacity.primary(), 16.0);
/// # Ok::<(), lorentz_types::LorentzError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LorentzPipeline {
    config: LorentzConfig,
    catalogs: BTreeMap<ServerOffering, SkuCatalog>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct OfferingModels {
    pub(crate) hierarchical: HierarchicalProvisioner,
    pub(crate) target_encoding: TargetEncodingProvisioner,
}

/// A trained Lorentz deployment: rightsized labels, per-offering Stage-2
/// models, the published prediction store, and the Stage-3 personalizer.
///
/// Serializable: the production pipeline "stores the trained model and its
/// performance metrics for offline experimentation" (§4) — use
/// [`TrainedLorentz::to_json`] / [`TrainedLorentz::from_json`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainedLorentz {
    config: LorentzConfig,
    rightsizer: Rightsizer,
    catalogs: BTreeMap<ServerOffering, SkuCatalog>,
    profiles: ProfileTable,
    outcomes: Vec<RightsizeOutcome>,
    labels: Vec<f64>,
    models: BTreeMap<ServerOffering, OfferingModels>,
    store: PredictionStore,
    personalizer: Personalizer,
}

impl LorentzPipeline {
    /// Creates a pipeline over the Azure PostgreSQL catalogs.
    ///
    /// # Errors
    /// Returns [`LorentzError::InvalidConfig`] for invalid configs.
    pub fn new(config: LorentzConfig) -> Result<Self, LorentzError> {
        let catalogs = ServerOffering::ALL
            .iter()
            .map(|&o| (o, SkuCatalog::azure_postgres(o)))
            .collect();
        Self::with_catalogs(config, catalogs)
    }

    /// Creates a pipeline with custom per-offering catalogs.
    ///
    /// # Errors
    /// Returns [`LorentzError::InvalidConfig`] for invalid configs or an
    /// empty catalog map.
    pub fn with_catalogs(
        config: LorentzConfig,
        catalogs: BTreeMap<ServerOffering, SkuCatalog>,
    ) -> Result<Self, LorentzError> {
        config.validate()?;
        if catalogs.is_empty() {
            return Err(LorentzError::InvalidConfig(
                "at least one offering catalog required".into(),
            ));
        }
        Ok(Self { config, catalogs })
    }

    /// The configuration.
    pub fn config(&self) -> &LorentzConfig {
        &self.config
    }

    /// Runs the full batch job: rightsize every fleet record (Stage 1),
    /// train both provisioners per offering on the rightsized labels
    /// (Stage 2, one scoped thread per offering), publish the prediction
    /// store, and initialize the personalizer with every observed customer
    /// path. Consumes the pipeline — its config and catalogs move into the
    /// deployment without being copied; clone the pipeline first to train
    /// repeatedly.
    ///
    /// Each stage records its span and counts into [`crate::obs`]
    /// (`train.*` metrics).
    ///
    /// # Errors
    /// Returns [`LorentzError`] if the fleet is empty, contains an offering
    /// without a catalog, or any stage fails to fit.
    pub fn train(self, fleet: &FleetDataset) -> Result<TrainedLorentz, LorentzError> {
        self.train_with_stage2_threads(fleet, 0)
    }

    /// Like [`LorentzPipeline::train`], but caps the number of concurrent
    /// Stage-2 worker threads (`0` = one thread per offering). Training is
    /// deterministic regardless of the cap — worker results are always
    /// joined in job order — so any thread count publishes a byte-identical
    /// store snapshot.
    ///
    /// # Errors
    /// See [`LorentzPipeline::train`].
    pub fn train_with_stage2_threads(
        self,
        fleet: &FleetDataset,
        max_threads: usize,
    ) -> Result<TrainedLorentz, LorentzError> {
        self.train_with_threads(fleet, 0, max_threads)
    }

    /// Like [`LorentzPipeline::train`], but caps both stage thread pools:
    /// `stage1_threads` bounds the columnar rightsizing sweep's workers and
    /// `stage2_threads` bounds the per-offering model trainers (`0` = auto
    /// for either). Chunked workers are always joined in record/job order,
    /// so every combination of caps trains a byte-identical deployment.
    ///
    /// # Errors
    /// See [`LorentzPipeline::train`].
    pub fn train_with_threads(
        self,
        fleet: &FleetDataset,
        stage1_threads: usize,
        stage2_threads: usize,
    ) -> Result<TrainedLorentz, LorentzError> {
        let max_threads = stage2_threads;
        let ctx = TrainContext::new(&self.config, &self.catalogs, fleet)?;
        let (outcomes, labels) = stages::rightsize_fleet(&ctx, stage1_threads)?;
        let (models, batch) = stages::train_offerings(&ctx, &labels, max_threads)?;
        let store = stages::publish_store(batch)?;
        let personalizer = stages::init_personalizer(&ctx)?;
        let rightsizer = ctx.into_rightsizer();

        Ok(TrainedLorentz {
            config: self.config,
            rightsizer,
            catalogs: self.catalogs,
            // The deployment only needs the schema and vocabularies to
            // encode incoming requests, not the training rows.
            profiles: fleet.profiles().vocab_view(),
            outcomes,
            labels,
            models,
            store,
            personalizer,
        })
    }
}

impl TrainedLorentz {
    /// The configuration this deployment was trained with.
    pub fn config(&self) -> &LorentzConfig {
        &self.config
    }

    /// The Stage-1 rightsizer (shared definitions of slack/throttling).
    pub fn rightsizer(&self) -> &Rightsizer {
        &self.rightsizer
    }

    /// Per-record rightsizing outcomes, aligned with the training fleet.
    pub fn outcomes(&self) -> &[RightsizeOutcome] {
        &self.outcomes
    }

    /// Rightsized primary capacities (the Stage-2 training labels).
    pub fn labels(&self) -> &[f64] {
        &self.labels
    }

    /// The training profile schema and vocabularies (the reference new
    /// requests are encoded against; carries no training rows).
    pub fn profiles(&self) -> &ProfileTable {
        &self.profiles
    }

    /// The published prediction store.
    pub fn store(&self) -> &PredictionStore {
        &self.store
    }

    /// The personalizer (read access).
    pub fn personalizer(&self) -> &Personalizer {
        &self.personalizer
    }

    /// The personalizer (mutable, e.g. to let a user override their λ).
    pub fn personalizer_mut(&mut self) -> &mut Personalizer {
        &mut self.personalizer
    }

    /// The catalog for an offering.
    ///
    /// # Errors
    /// Returns [`LorentzError::NotFound`] for unknown offerings.
    pub fn catalog(&self, offering: ServerOffering) -> Result<&SkuCatalog, LorentzError> {
        self.catalogs
            .get(&offering)
            .ok_or_else(|| LorentzError::NotFound(format!("no catalog for {offering}")))
    }

    /// Direct access to a fitted Stage-2 model.
    ///
    /// # Errors
    /// Returns [`LorentzError::NotFound`] if the offering had no training
    /// rows.
    pub fn provisioner(
        &self,
        offering: ServerOffering,
        kind: ModelKind,
    ) -> Result<&dyn Provisioner, LorentzError> {
        let models = self.models.get(&offering).ok_or_else(|| {
            LorentzError::NotFound(format!("no model trained for offering {offering}"))
        })?;
        Ok(match kind {
            ModelKind::Hierarchical => &models.hierarchical,
            ModelKind::TargetEncoding => &models.target_encoding,
        })
    }

    /// The hierarchical model for an offering (for chain inspection).
    ///
    /// # Errors
    /// Returns [`LorentzError::NotFound`] if the offering had no training
    /// rows.
    pub fn hierarchical(
        &self,
        offering: ServerOffering,
    ) -> Result<&HierarchicalProvisioner, LorentzError> {
        self.models
            .get(&offering)
            .map(|m| &m.hierarchical)
            .ok_or_else(|| LorentzError::NotFound(format!("no model for {offering}")))
    }

    /// Applies the Stage-3 λ adjustment (Eq. 13) to a Stage-2 capacity and
    /// assembles the final recommendation. Both the single and the batched
    /// serving paths end here, which keeps their outputs identical. When
    /// `lambdas` is set, λ comes from that live published snapshot instead
    /// of the frozen batch personalizer (the online-feedback path).
    fn personalize(
        &self,
        stage2_capacity: f64,
        explanation: crate::explain::Explanation,
        request: &RecommendRequest<'_>,
        lambdas: Option<&LambdaSnapshot>,
    ) -> Result<Recommendation, LorentzError> {
        let catalog = self.catalog(request.offering)?;
        let (lambda, sku) = match lambdas {
            Some(snapshot) => (
                snapshot.lambda(&request.path, request.offering),
                snapshot.adjust(stage2_capacity, &request.path, request.offering, catalog),
            ),
            None => (
                self.personalizer.lambda(&request.path, request.offering),
                self.personalizer
                    .adjust(stage2_capacity, &request.path, request.offering, catalog),
            ),
        };
        Ok(Recommendation {
            sku,
            stage2_capacity,
            lambda,
            explanation,
        })
    }

    /// Serves one already-encoded request through a live Stage-2 model.
    fn recommend_encoded(
        &self,
        x: &ProfileVector,
        request: &RecommendRequest<'_>,
        kind: ModelKind,
        lambdas: Option<&LambdaSnapshot>,
    ) -> Result<Recommendation, LorentzError> {
        let provisioner = self.provisioner(request.offering, kind)?;
        let (stage2_sku, explanation) = provisioner.recommend(x)?;
        self.personalize(stage2_sku.capacity.primary(), explanation, request, lambdas)
    }

    /// The live-model serving engine over this deployment — the
    /// [`RecommendEngine`] the single/batch wrappers below delegate to.
    pub fn live_engine(&self, kind: ModelKind) -> LiveModel<'_> {
        LiveModel::new(self, kind)
    }

    /// The store-backed serving engine over this deployment's published
    /// store.
    pub fn store_engine(&self) -> StoreOnly<'_> {
        StoreOnly::new(self)
    }

    /// A store-backed serving engine over an *external* store snapshot
    /// (e.g. one hot-swapped after a re-publish), still interpreting
    /// requests with this deployment's schema, hierarchy, and personalizer.
    pub fn store_engine_with<'a>(&'a self, store: &'a PredictionStore) -> StoreOnly<'a> {
        StoreOnly::with_store(self, store)
    }

    /// A live-model engine whose Stage-3 adjustment reads λ from a
    /// published [`LambdaSnapshot`] instead of this deployment's frozen
    /// batch personalizer — the online-feedback serving path.
    pub fn live_engine_with_lambdas<'a>(
        &'a self,
        kind: ModelKind,
        lambdas: &'a LambdaSnapshot,
    ) -> LiveModel<'a> {
        LiveModel::with_lambdas(self, kind, lambdas)
    }

    /// A store-backed engine reading λ from a published [`LambdaSnapshot`]
    /// (over this deployment's own prediction store).
    pub fn store_engine_with_lambdas<'a>(&'a self, lambdas: &'a LambdaSnapshot) -> StoreOnly<'a> {
        StoreOnly::with_lambdas(self, lambdas)
    }

    /// Serves a recommendation through a live Stage-2 model, then applies
    /// the Stage-3 λ adjustment (Eq. 13) and re-discretizes. Thin wrapper
    /// over [`LiveModel`]; records one `serve.recommend.span_ns`
    /// observation plus request/error counters.
    ///
    /// # Errors
    /// Returns [`LorentzError`] for unknown offerings or malformed profiles.
    pub fn recommend(
        &self,
        request: &RecommendRequest<'_>,
        kind: ModelKind,
    ) -> Result<Recommendation, LorentzError> {
        self.live_engine(kind).recommend_one(request)
    }

    /// Serves a batch of requests through a live Stage-2 model, interning
    /// each profile once into a reused scratch vector. Results are
    /// positionally aligned with `requests` and identical to calling
    /// [`TrainedLorentz::recommend`] per request. Thin wrapper over
    /// [`LiveModel`]; metrics are amortized per batch.
    pub fn recommend_batch(
        &self,
        requests: &[RecommendRequest<'_>],
        kind: ModelKind,
    ) -> Vec<Result<Recommendation, LorentzError>> {
        self.live_engine(kind).recommend_many(requests)
    }

    /// Interns a request's profile into packed store probe levels,
    /// finest-first along the learned hierarchy chain. Values unseen at
    /// training time have no interned id and are skipped (they could not
    /// have a store entry).
    fn store_levels(
        &self,
        request: &RecommendRequest<'_>,
        levels: &mut Vec<(FeatureId, ValueId)>,
    ) -> Result<(), LorentzError> {
        if request.profile.len() != self.profiles.schema().len() {
            return Err(LorentzError::InvalidProfile(format!(
                "request has {} features, schema has {}",
                request.profile.len(),
                self.profiles.schema().len()
            )));
        }
        let hierarchical = self.hierarchical(request.offering)?;
        levels.clear();
        for feature in hierarchical.chain().fine_to_coarse() {
            if let Some(value) = request.profile[feature.index()] {
                if let Some(id) = self.profiles.vocab(feature).get(value) {
                    levels.push((feature, ValueId(id)));
                }
            }
        }
        Ok(())
    }

    /// Serves a recommendation from the precomputed prediction store (the
    /// low-latency §4 path), falling back most-granular-first along the
    /// learned hierarchy, then applies the λ adjustment. Thin wrapper over
    /// [`StoreOnly`]; records one `serve.store.span_ns` observation plus
    /// request/error counters.
    ///
    /// # Errors
    /// Returns [`LorentzError`] for unknown offerings, malformed profiles,
    /// or an empty store.
    pub fn recommend_from_store(
        &self,
        request: &RecommendRequest<'_>,
    ) -> Result<Recommendation, LorentzError> {
        self.store_engine().recommend_one(request)
    }

    /// Serves a batch of requests from the prediction store, reusing one
    /// probe-level buffer across the batch. Results are positionally
    /// aligned with `requests` and identical to calling
    /// [`TrainedLorentz::recommend_from_store`] per request. Thin wrapper
    /// over [`StoreOnly`]; span and request/error counters are recorded
    /// once per batch.
    pub fn recommend_batch_from_store(
        &self,
        requests: &[RecommendRequest<'_>],
    ) -> Vec<Result<Recommendation, LorentzError>> {
        self.store_engine().recommend_many(requests)
    }

    /// Routes one satisfaction signal into the personalizer.
    pub fn apply_signal(&mut self, signal: &SatisfactionSignal) {
        self.personalizer.apply_signal(signal);
    }

    /// Serializes the full deployment (models, store, personalizer,
    /// training metadata) to JSON.
    ///
    /// # Errors
    /// Returns [`LorentzError::Model`] if serialization fails.
    pub fn to_json(&self) -> Result<String, LorentzError> {
        serde_json::to_string(self)
            .map_err(|e| LorentzError::Model(format!("serialization failed: {e}")))
    }

    /// Restores a deployment from [`TrainedLorentz::to_json`] output,
    /// rebuilding the profile vocabularies' derived lookup indexes.
    ///
    /// # Errors
    /// Returns [`LorentzError::Model`] on malformed input.
    pub fn from_json(json: &str) -> Result<Self, LorentzError> {
        let mut deployment: TrainedLorentz = serde_json::from_str(json)
            .map_err(|e| LorentzError::Model(format!("deserialization failed: {e}")))?;
        deployment.profiles.rebuild_indexes();
        Ok(deployment)
    }

    /// Classifies a CRI ticket (Table-1 keyword filters) and, when the
    /// sentiment is non-neutral, routes it as a satisfaction signal.
    /// Returns the classified γ.
    pub fn apply_ticket(
        &mut self,
        path: ResourcePath,
        offering: ServerOffering,
        ticket: &CriTicket,
    ) -> f64 {
        let gamma = classify_ticket(ticket);
        if gamma != 0.0 {
            let signal = SatisfactionSignal::new(path, offering, gamma)
                .expect("classifier output is in [-1, 1]");
            self.personalizer.apply_signal(&signal);
        }
        gamma
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lorentz_telemetry::{RegularSeries, UsageTrace};
    use lorentz_types::{
        Capacity, CustomerId, ProfileSchema, ResourceGroupId, ServerId, SubscriptionId,
    };

    fn path(i: u32) -> ResourcePath {
        ResourcePath::new(
            CustomerId(i % 5),
            SubscriptionId(i % 10),
            ResourceGroupId(i),
        )
    }

    fn steady_trace(level: f64) -> UsageTrace {
        UsageTrace::single(RegularSeries::new(300.0, vec![level; 12]).unwrap())
    }

    /// 60 GP servers: industry i0 needs ~2 vCores, i1 needs ~16; customers
    /// nest under industries.
    fn fleet() -> FleetDataset {
        let schema = ProfileSchema::new(vec!["industry", "customer"]).unwrap();
        let mut fleet = FleetDataset::new(ProfileTable::new(schema));
        for i in 0..60u32 {
            let big = i % 2 == 1;
            let industry = if big { "i1" } else { "i0" };
            let customer = format!("c{}", i % 12);
            // True demand: ~1 vCore for i0 (rightsized to 2), ~8 for i1
            // (rightsized to 16); users picked 8 for everything.
            let demand = if big { 8.0 } else { 1.0 };
            fleet
                .push(
                    ServerId(i),
                    path(i),
                    ServerOffering::GeneralPurpose,
                    &[Some(industry), Some(customer.as_str())],
                    Capacity::scalar(8.0),
                    steady_trace(demand),
                )
                .unwrap();
        }
        fleet
    }

    /// Like [`fleet`], but spread across all three offerings so Stage-2
    /// training exercises the concurrent per-offering path.
    fn multi_offering_fleet() -> FleetDataset {
        let schema = ProfileSchema::new(vec!["industry", "customer"]).unwrap();
        let mut fleet = FleetDataset::new(ProfileTable::new(schema));
        for i in 0..90u32 {
            let offering = ServerOffering::ALL[(i % 3) as usize];
            let big = (i / 3) % 2 == 1;
            let industry = if big { "i1" } else { "i0" };
            let customer = format!("c{}", i % 12);
            let demand = if big { 4.0 } else { 1.0 };
            fleet
                .push(
                    ServerId(i),
                    path(i),
                    offering,
                    &[Some(industry), Some(customer.as_str())],
                    Capacity::scalar(8.0),
                    steady_trace(demand),
                )
                .unwrap();
        }
        fleet
    }

    fn quick_config() -> LorentzConfig {
        let mut c = LorentzConfig::paper_defaults();
        c.target_encoding.boosting.n_trees = 20;
        c.target_encoding.boosting.learning_rate = 0.3;
        c.hierarchical.min_bucket = 5;
        c
    }

    fn trained() -> TrainedLorentz {
        LorentzPipeline::new(quick_config())
            .unwrap()
            .train(&fleet())
            .unwrap()
    }

    #[test]
    fn training_rightsizes_every_record() {
        let t = trained();
        assert_eq!(t.labels().len(), 60);
        assert_eq!(t.outcomes().len(), 60);
        // i0 records (even): steady 1.0 under 8 vCores -> rightsized to 2.
        assert_eq!(t.labels()[0], 2.0);
        // i1 records (odd): steady 8.0 at 8 vCores -> throttled (8 > 7.6),
        // censored branch scales to >= 16.
        assert_eq!(t.labels()[1], 16.0);
        assert!(t.outcomes()[1].censored);
    }

    #[test]
    fn both_models_recommend_by_industry() {
        let t = trained();
        for kind in [ModelKind::Hierarchical, ModelKind::TargetEncoding] {
            let req = RecommendRequest {
                profile: vec![Some("i0"), Some("c99-new")],
                offering: ServerOffering::GeneralPurpose,
                path: path(999),
            };
            let rec = t.recommend(&req, kind).unwrap();
            assert_eq!(rec.sku.capacity.primary(), 2.0, "{kind:?}");
            assert_eq!(rec.lambda, 0.0);

            let req = RecommendRequest {
                profile: vec![Some("i1"), Some("c98-new")],
                offering: ServerOffering::GeneralPurpose,
                path: path(998),
            };
            let rec = t.recommend(&req, kind).unwrap();
            assert_eq!(rec.sku.capacity.primary(), 16.0, "{kind:?}");
        }
    }

    #[test]
    fn concurrent_offering_training_is_deterministic() {
        let f = multi_offering_fleet();
        let a = LorentzPipeline::new(quick_config())
            .unwrap()
            .train(&f)
            .unwrap();
        let b = LorentzPipeline::new(quick_config())
            .unwrap()
            .train(&f)
            .unwrap();
        // All three offerings trained, and two runs agree exactly.
        for offering in ServerOffering::ALL {
            assert!(a.hierarchical(offering).is_ok(), "{offering} missing");
        }
        assert_eq!(a.store(), b.store());
        assert_eq!(a.to_json().unwrap(), b.to_json().unwrap());
    }

    #[test]
    fn store_path_matches_live_hierarchical_model() {
        let t = trained();
        assert!(t.store().version() >= 1);
        assert!(!t.store().is_empty());
        let req = RecommendRequest {
            profile: vec![Some("i1"), Some("brand-new-customer")],
            offering: ServerOffering::GeneralPurpose,
            path: path(997),
        };
        let live = t.recommend(&req, ModelKind::Hierarchical).unwrap();
        let stored = t.recommend_from_store(&req).unwrap();
        assert_eq!(live.sku.capacity, stored.sku.capacity);
    }

    #[test]
    fn store_serves_default_for_fully_unknown_profiles() {
        let t = trained();
        let req = RecommendRequest {
            profile: vec![Some("unknown"), Some("unknown")],
            offering: ServerOffering::GeneralPurpose,
            path: path(996),
        };
        let rec = t.recommend_from_store(&req).unwrap();
        assert!(rec.explanation.to_string().contains("default"));
        assert!(rec.sku.capacity.primary() >= 2.0);
    }

    #[test]
    fn batched_serving_matches_single_requests() {
        let t = trained();
        let profiles: Vec<Vec<Option<&str>>> = vec![
            vec![Some("i0"), Some("c0")],
            vec![Some("i1"), Some("c1")],
            vec![Some("i1"), Some("never-seen")],
            vec![Some("unknown"), None],
            vec![Some("i0")], // malformed arity
            vec![None, None],
        ];
        let requests: Vec<RecommendRequest<'_>> = profiles
            .iter()
            .enumerate()
            .map(|(i, p)| RecommendRequest {
                profile: p.clone(),
                offering: ServerOffering::GeneralPurpose,
                path: path(i as u32),
            })
            .collect();
        for kind in [ModelKind::Hierarchical, ModelKind::TargetEncoding] {
            let batched = t.recommend_batch(&requests, kind);
            assert_eq!(batched.len(), requests.len());
            for (req, got) in requests.iter().zip(&batched) {
                match (t.recommend(req, kind), got) {
                    (Ok(single), Ok(b)) => assert_eq!(&single, b, "{kind:?}"),
                    (Err(_), Err(_)) => {}
                    (single, got) => panic!("mismatch: {single:?} vs {got:?}"),
                }
            }
        }
        let batched = t.recommend_batch_from_store(&requests);
        for (req, got) in requests.iter().zip(&batched) {
            match (t.recommend_from_store(req), got) {
                (Ok(single), Ok(b)) => assert_eq!(&single, b),
                (Err(_), Err(_)) => {}
                (single, got) => panic!("store mismatch: {single:?} vs {got:?}"),
            }
        }
    }

    #[test]
    fn personalization_shifts_recommendations() {
        let mut t = trained();
        let p = path(1); // existing customer path (registered at train time)
        let req = RecommendRequest {
            profile: vec![Some("i1"), None],
            offering: ServerOffering::GeneralPurpose,
            path: p,
        };
        let before = t.recommend(&req, ModelKind::Hierarchical).unwrap();
        assert_eq!(before.sku.capacity.primary(), 16.0);

        // A strong performance signal stream raises λ for this RG.
        for _ in 0..5 {
            let sig = SatisfactionSignal::new(p, ServerOffering::GeneralPurpose, 1.0).unwrap();
            t.apply_signal(&sig);
        }
        let after = t.recommend(&req, ModelKind::Hierarchical).unwrap();
        assert!(after.lambda > 0.0);
        assert!(after.sku.capacity.primary() > 16.0);
        assert_eq!(after.stage2_capacity, 16.0, "stage-2 output unchanged");
    }

    #[test]
    fn lambda_snapshot_overrides_batch_personalizer() {
        use crate::personalizer::LambdaStore;
        let t = trained();
        let p = path(1);
        let req = RecommendRequest {
            profile: vec![Some("i1"), None],
            offering: ServerOffering::GeneralPurpose,
            path: p,
        };

        // Feedback flows into a live λ store seeded from the deployment;
        // the deployment's own personalizer stays frozen.
        let store = LambdaStore::new(t.personalizer().clone());
        let sig = SatisfactionSignal::new(p, ServerOffering::GeneralPurpose, 1.0).unwrap();
        for _ in 0..5 {
            store.apply_signal(&sig);
        }
        store.publish();
        let snap = store.snapshot();

        let frozen = t.recommend(&req, ModelKind::Hierarchical).unwrap();
        assert_eq!(frozen.lambda, 0.0);
        assert_eq!(frozen.sku.capacity.primary(), 16.0);

        let live = t
            .live_engine_with_lambdas(ModelKind::Hierarchical, &snap)
            .recommend_one(&req)
            .unwrap();
        assert!(live.lambda > 0.0);
        assert!(live.sku.capacity.primary() > 16.0);
        assert_eq!(live.stage2_capacity, 16.0, "stage-2 output unchanged");

        // The store-backed engine applies the same live λ.
        let stored = t
            .store_engine_with_lambdas(&snap)
            .recommend_one(&req)
            .unwrap();
        assert_eq!(stored.sku.capacity, live.sku.capacity);
        assert_eq!(stored.lambda, live.lambda);

        // Batched serving with the same snapshot matches single-shot.
        let reqs = vec![req];
        let batched = t
            .live_engine_with_lambdas(ModelKind::Hierarchical, &snap)
            .recommend_many(&reqs);
        assert_eq!(batched[0].as_ref().unwrap(), &live);
    }

    #[test]
    fn tickets_route_through_the_classifier() {
        let mut t = trained();
        let p = path(2);
        let gamma = t.apply_ticket(
            p,
            ServerOffering::GeneralPurpose,
            &CriTicket::new("high cpu usage all day", "", "scaled up the server"),
        );
        assert_eq!(gamma, 1.0);
        assert!(t.personalizer().lambda(&p, ServerOffering::GeneralPurpose) > 0.0);
        // Neutral tickets change nothing.
        let gamma = t.apply_ticket(
            p,
            ServerOffering::GeneralPurpose,
            &CriTicket::new("login issue", "", "reset password"),
        );
        assert_eq!(gamma, 0.0);
    }

    #[test]
    fn unknown_offering_and_empty_fleet_are_errors() {
        let t = trained();
        let req = RecommendRequest {
            profile: vec![Some("i0"), None],
            offering: ServerOffering::Burstable, // no Burstable training rows
            path: path(1),
        };
        assert!(t.recommend(&req, ModelKind::Hierarchical).is_err());

        let schema = ProfileSchema::new(vec!["industry", "customer"]).unwrap();
        let empty = FleetDataset::new(ProfileTable::new(schema));
        assert!(LorentzPipeline::new(quick_config())
            .unwrap()
            .train(&empty)
            .is_err());
    }

    #[test]
    fn deployment_persists_and_restores() {
        let mut t = trained();
        let p = path(3);
        // Put some personalization state in before saving.
        let sig = SatisfactionSignal::new(p, ServerOffering::GeneralPurpose, 1.0).unwrap();
        t.apply_signal(&sig);
        let json = t.to_json().unwrap();
        let restored = TrainedLorentz::from_json(&json).unwrap();

        // Restored deployment serves identical recommendations — including
        // for request profiles that must be re-encoded against the restored
        // vocabularies (the index-rebuild path).
        let req = RecommendRequest {
            profile: vec![Some("i1"), Some("c3")],
            offering: ServerOffering::GeneralPurpose,
            path: p,
        };
        for kind in [ModelKind::Hierarchical, ModelKind::TargetEncoding] {
            let a = t.recommend(&req, kind).unwrap();
            let b = restored.recommend(&req, kind).unwrap();
            assert_eq!(a.sku.capacity, b.sku.capacity, "{kind:?}");
            assert_eq!(a.lambda, b.lambda);
        }
        let a = t.recommend_from_store(&req).unwrap();
        let b = restored.recommend_from_store(&req).unwrap();
        assert_eq!(a.sku.capacity, b.sku.capacity);
        assert_eq!(restored.store().version(), t.store().version());
        assert!(TrainedLorentz::from_json("not json").is_err());
    }

    #[test]
    fn malformed_request_profile_rejected() {
        let t = trained();
        let req = RecommendRequest {
            profile: vec![Some("i0")], // wrong arity
            offering: ServerOffering::GeneralPurpose,
            path: path(1),
        };
        assert!(t.recommend(&req, ModelKind::Hierarchical).is_err());
        assert!(t.recommend_from_store(&req).is_err());
    }
}
