//! Shared training context threaded through the pipeline stages.

use crate::config::LorentzConfig;
use crate::fleet::FleetDataset;
use crate::rightsizer::Rightsizer;
use lorentz_types::{LorentzError, ServerOffering, SkuCatalog};
use std::collections::BTreeMap;

/// Everything a training stage needs, borrowed once at the top of
/// [`LorentzPipeline::train`](crate::pipeline::LorentzPipeline::train):
/// the configuration, the per-offering catalogs, the fleet under training,
/// and the validated Stage-1 rightsizer. Stages receive `&TrainContext`
/// instead of ad-hoc argument lists, and the scoped Stage-2 workers share
/// it immutably across threads.
#[derive(Debug)]
pub struct TrainContext<'a> {
    /// The pipeline configuration (Table-2 hyperparameters).
    pub config: &'a LorentzConfig,
    /// Per-offering SKU catalogs.
    pub catalogs: &'a BTreeMap<ServerOffering, SkuCatalog>,
    /// The training fleet.
    pub fleet: &'a FleetDataset,
    /// The validated Stage-1 rightsizer.
    pub rightsizer: Rightsizer,
}

impl<'a> TrainContext<'a> {
    /// Builds the context, validating the fleet and the rightsizer config.
    ///
    /// # Errors
    /// Returns [`LorentzError`] for an empty fleet or invalid rightsizer
    /// configuration.
    pub fn new(
        config: &'a LorentzConfig,
        catalogs: &'a BTreeMap<ServerOffering, SkuCatalog>,
        fleet: &'a FleetDataset,
    ) -> Result<Self, LorentzError> {
        if fleet.is_empty() {
            return Err(LorentzError::Model("cannot train on an empty fleet".into()));
        }
        let rightsizer = Rightsizer::new(&config.rightsizer)?;
        Ok(Self {
            config,
            catalogs,
            fleet,
            rightsizer,
        })
    }

    /// The catalog for an offering.
    ///
    /// # Errors
    /// Returns [`LorentzError::InvalidConfig`] if the fleet contains an
    /// offering the pipeline has no catalog for.
    pub fn catalog(&self, offering: ServerOffering) -> Result<&'a SkuCatalog, LorentzError> {
        self.catalogs.get(&offering).ok_or_else(|| {
            LorentzError::InvalidConfig(format!("no catalog for offering {offering}"))
        })
    }

    /// Releases the borrows and hands the rightsizer to the trained
    /// deployment.
    pub fn into_rightsizer(self) -> Rightsizer {
        self.rightsizer
    }
}
