//! The unified serving surface: one [`RecommendEngine`] trait in front of
//! the live-model and prediction-store paths.
//!
//! Historically the deployment exposed four entry points (`recommend`,
//! `recommend_batch`, `recommend_from_store`,
//! `recommend_batch_from_store`); callers that wanted to switch between
//! live inference and the precomputed store had to branch at every call
//! site. The trait collapses that choice into a value: construct a
//! [`LiveModel`] or a [`StoreOnly`] engine once, then serve through
//! [`RecommendEngine::recommend_one`] / [`RecommendEngine::recommend_many`]
//! uniformly. The old inherent methods on
//! [`TrainedLorentz`](super::TrainedLorentz) remain as thin wrappers over
//! these engines, so existing call sites keep compiling unchanged.
//!
//! [`StoreOnly`] can also be pointed at an *external*
//! [`PredictionStore`] snapshot ([`StoreOnly::with_store`]) — this is how
//! the concurrent serving engine serves from a hot-swapped
//! [`SharedPredictionStore`](crate::store::SharedPredictionStore) snapshot
//! while reusing the deployment's schema, hierarchy, and personalizer.
//!
//! Both engines can likewise be pointed at a live
//! [`LambdaSnapshot`](crate::personalizer::LambdaSnapshot)
//! ([`LiveModel::with_lambdas`] / [`StoreOnly::with_lambdas`]): the Stage-3
//! adjustment then reads λ from that published snapshot instead of the
//! deployment's frozen batch personalizer, which is how online feedback
//! shifts recommendations mid-serve without a model reload.

use super::{ModelKind, RecommendRequest, TrainedLorentz};
use crate::explain::{Explanation, Recommendation};
use crate::obs;
use crate::personalizer::LambdaSnapshot;
use crate::store::{PredictionStore, ShardedStoreSnapshot};
use lorentz_types::{FeatureId, LorentzError, ProfileVector, ServerOffering, ValueId};

/// A probe-able prediction source: anything that answers the
/// most-granular-first level walk a [`StoreOnly`] engine performs. The two
/// implementors — the flat [`PredictionStore`] and a pinned
/// [`ShardedStoreSnapshot`] — answer identically for identical contents
/// (the shard-equivalence proptest pins this), so the engine is generic
/// over the probe and monomorphizes to the same code either way.
pub trait StoreProbe {
    /// Probes `levels` most granular first, falling back to the
    /// per-offering default.
    ///
    /// # Errors
    /// [`LorentzError::NotFound`] if no key matches and no default exists
    /// for the offering.
    fn probe(
        &self,
        offering: ServerOffering,
        levels: &[(FeatureId, ValueId)],
    ) -> Result<(f64, Explanation), LorentzError>;
}

impl StoreProbe for PredictionStore {
    fn probe(
        &self,
        offering: ServerOffering,
        levels: &[(FeatureId, ValueId)],
    ) -> Result<(f64, Explanation), LorentzError> {
        self.lookup(offering, levels)
    }
}

impl StoreProbe for ShardedStoreSnapshot {
    fn probe(
        &self,
        offering: ServerOffering,
        levels: &[(FeatureId, ValueId)],
    ) -> Result<(f64, Explanation), LorentzError> {
        self.lookup(offering, levels)
    }
}

/// A serving engine: one recommendation source behind a uniform single /
/// batched interface. Implementations must keep the two entry points
/// equivalent — `recommend_many` is positionally identical to calling
/// `recommend_one` per request, differing only in amortization (scratch
/// reuse, batched metrics).
pub trait RecommendEngine {
    /// Serves one request.
    ///
    /// # Errors
    /// Returns [`LorentzError`] for unknown offerings, malformed profiles,
    /// or a source-specific failure (untrained model, empty store).
    fn recommend_one(&self, request: &RecommendRequest<'_>)
        -> Result<Recommendation, LorentzError>;

    /// Serves a batch of requests; results are positionally aligned with
    /// `requests` and identical to serving each through
    /// [`RecommendEngine::recommend_one`].
    fn recommend_many(
        &self,
        requests: &[RecommendRequest<'_>],
    ) -> Vec<Result<Recommendation, LorentzError>>;
}

/// Serves through a live Stage-2 model (hierarchical or target-encoding),
/// then applies the Stage-3 λ adjustment. Records the
/// `serve.recommend*` spans and counters.
#[derive(Debug, Clone, Copy)]
pub struct LiveModel<'a> {
    deployment: &'a TrainedLorentz,
    kind: ModelKind,
    lambdas: Option<&'a LambdaSnapshot>,
}

impl<'a> LiveModel<'a> {
    /// An engine over `deployment`'s live `kind` model.
    pub fn new(deployment: &'a TrainedLorentz, kind: ModelKind) -> Self {
        Self {
            deployment,
            kind,
            lambdas: None,
        }
    }

    /// An engine whose Stage-3 adjustment reads λ from a live published
    /// snapshot instead of the deployment's batch personalizer.
    pub fn with_lambdas(
        deployment: &'a TrainedLorentz,
        kind: ModelKind,
        lambdas: &'a LambdaSnapshot,
    ) -> Self {
        Self {
            deployment,
            kind,
            lambdas: Some(lambdas),
        }
    }

    /// Which Stage-2 model this engine serves through.
    pub fn kind(&self) -> ModelKind {
        self.kind
    }
}

impl RecommendEngine for LiveModel<'_> {
    /// Serves a recommendation through the live Stage-2 model. Records one
    /// `serve.recommend.span_ns` observation plus request/error counters.
    fn recommend_one(
        &self,
        request: &RecommendRequest<'_>,
    ) -> Result<Recommendation, LorentzError> {
        let _span = obs::RECOMMEND_SPAN_NS.span();
        obs::RECOMMEND_REQUESTS.inc();
        let result = self
            .deployment
            .profiles
            .encode_row(&request.profile)
            .and_then(|x| {
                self.deployment
                    .recommend_encoded(&x, request, self.kind, self.lambdas)
            });
        if result.is_err() {
            obs::RECOMMEND_ERRORS.inc();
        }
        result
    }

    /// Serves a batch, interning each profile once into a reused scratch
    /// vector. Metrics are amortized: one `serve.recommend_batch.span_ns`
    /// observation and one counter update per batch, nothing per item.
    fn recommend_many(
        &self,
        requests: &[RecommendRequest<'_>],
    ) -> Vec<Result<Recommendation, LorentzError>> {
        let _span = obs::RECOMMEND_BATCH_SPAN_NS.span();
        let mut scratch = ProfileVector::new(Vec::new());
        let results: Vec<Result<Recommendation, LorentzError>> = requests
            .iter()
            .map(|request| {
                self.deployment
                    .profiles
                    .encode_row_into(&request.profile, &mut scratch)?;
                self.deployment
                    .recommend_encoded(&scratch, request, self.kind, self.lambdas)
            })
            .collect();
        obs::RECOMMEND_BATCHES.inc();
        obs::RECOMMEND_REQUESTS.add(results.len() as u64);
        obs::RECOMMEND_ERRORS.add(results.iter().filter(|r| r.is_err()).count() as u64);
        results
    }
}

/// Serves from a precomputed [`PredictionStore`] (the low-latency §4 path),
/// falling back most-granular-first along the learned hierarchy, then
/// applies the λ adjustment. Probes use packed integer keys — no string is
/// built per lookup. Records the `serve.store*` spans and counters.
/// Generic over the [`StoreProbe`] source: the default `PredictionStore`
/// keeps every existing signature, while the serving engine's degraded
/// path instantiates `StoreOnly<'_, ShardedStoreSnapshot>` over its pinned
/// per-shard snapshots.
#[derive(Debug)]
pub struct StoreOnly<'a, S: StoreProbe = PredictionStore> {
    deployment: &'a TrainedLorentz,
    store: &'a S,
    lambdas: Option<&'a LambdaSnapshot>,
}

impl<S: StoreProbe> Clone for StoreOnly<'_, S> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<S: StoreProbe> Copy for StoreOnly<'_, S> {}

impl<'a, S: StoreProbe> StoreOnly<'a, S> {
    /// An engine over an arbitrary probe source and a live λ snapshot —
    /// the fully general constructor the specialized ones delegate to.
    pub fn with_probe_and_lambdas(
        deployment: &'a TrainedLorentz,
        store: &'a S,
        lambdas: &'a LambdaSnapshot,
    ) -> Self {
        Self {
            deployment,
            store,
            lambdas: Some(lambdas),
        }
    }
}

impl<'a> StoreOnly<'a> {
    /// An engine over the store `deployment` itself published at train
    /// time.
    pub fn new(deployment: &'a TrainedLorentz) -> Self {
        Self {
            deployment,
            store: &deployment.store,
            lambdas: None,
        }
    }

    /// An engine over an external store snapshot — e.g. one hot-swapped
    /// into a [`SharedPredictionStore`](crate::store::SharedPredictionStore)
    /// after a re-publish — still using `deployment`'s schema, hierarchy
    /// chain, and personalizer to interpret requests.
    pub fn with_store(deployment: &'a TrainedLorentz, store: &'a PredictionStore) -> Self {
        Self {
            deployment,
            store,
            lambdas: None,
        }
    }

    /// An engine whose Stage-3 adjustment reads λ from a live published
    /// snapshot instead of the deployment's batch personalizer.
    pub fn with_lambdas(deployment: &'a TrainedLorentz, lambdas: &'a LambdaSnapshot) -> Self {
        Self {
            deployment,
            store: &deployment.store,
            lambdas: Some(lambdas),
        }
    }

    /// An engine over both an external store snapshot and a live λ
    /// snapshot — the mid-serve combination the concurrent serving engine
    /// uses after hot-swapping either side.
    pub fn with_store_and_lambdas(
        deployment: &'a TrainedLorentz,
        store: &'a PredictionStore,
        lambdas: &'a LambdaSnapshot,
    ) -> Self {
        Self {
            deployment,
            store,
            lambdas: Some(lambdas),
        }
    }
}

impl<S: StoreProbe> StoreOnly<'_, S> {
    /// The store-serving core: probe levels into `levels`, look up,
    /// personalize. Every lookup outcome lands in one of the
    /// `store.lookup.{hits,defaults,misses}` counters.
    fn recommend_with_levels(
        &self,
        request: &RecommendRequest<'_>,
        levels: &mut Vec<(FeatureId, ValueId)>,
    ) -> Result<Recommendation, LorentzError> {
        self.deployment.store_levels(request, levels)?;
        let lookup = self.store.probe(request.offering, levels);
        match &lookup {
            Ok((_, Explanation::StoreLookup { key: Some(_), .. })) => obs::STORE_HITS.inc(),
            Ok(_) => obs::STORE_DEFAULTS.inc(),
            Err(_) => obs::STORE_MISSES.inc(),
        }
        let (stage2_capacity, explanation) = lookup?;
        self.deployment
            .personalize(stage2_capacity, explanation, request, self.lambdas)
    }
}

impl<S: StoreProbe> RecommendEngine for StoreOnly<'_, S> {
    /// Serves one request from the store. Records one
    /// `serve.store.span_ns` observation plus request/error counters.
    fn recommend_one(
        &self,
        request: &RecommendRequest<'_>,
    ) -> Result<Recommendation, LorentzError> {
        let _span = obs::STORE_SERVE_SPAN_NS.span();
        obs::STORE_SERVE_REQUESTS.inc();
        let mut levels = Vec::new();
        let result = self.recommend_with_levels(request, &mut levels);
        if result.is_err() {
            obs::STORE_SERVE_ERRORS.inc();
        }
        result
    }

    /// Serves a batch from the store, reusing one probe-level buffer across
    /// the batch. Span and request/error counters are recorded once per
    /// batch.
    fn recommend_many(
        &self,
        requests: &[RecommendRequest<'_>],
    ) -> Vec<Result<Recommendation, LorentzError>> {
        let _span = obs::STORE_SERVE_BATCH_SPAN_NS.span();
        let mut levels = Vec::new();
        let results: Vec<Result<Recommendation, LorentzError>> = requests
            .iter()
            .map(|request| self.recommend_with_levels(request, &mut levels))
            .collect();
        obs::STORE_SERVE_BATCHES.inc();
        obs::STORE_SERVE_REQUESTS.add(results.len() as u64);
        obs::STORE_SERVE_ERRORS.add(results.iter().filter(|r| r.is_err()).count() as u64);
        results
    }
}
