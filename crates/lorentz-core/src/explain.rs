//! Recommendation explanations (challenge C3).
//!
//! Every Lorentz recommendation carries the rationale behind it: which
//! "similar customers" bucket was matched (and its capacity distribution),
//! or which target-encoded statistics drove the model — plus the λ
//! personalization that was applied. The paper surfaces exactly this
//! "search result" to users so they can judge recommendation fidelity (§1
//! C3, §4).

use lorentz_types::{ServerOffering, Sku, StoreKey};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Summary statistics of the reference capacities behind a recommendation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BucketSummary {
    /// Number of reference instances in the bucket.
    pub size: usize,
    /// Minimum observed rightsized capacity.
    pub min: f64,
    /// Median observed rightsized capacity.
    pub median: f64,
    /// Maximum observed rightsized capacity.
    pub max: f64,
}

impl BucketSummary {
    /// Builds a summary from a *sorted* slice of capacities.
    pub fn from_sorted(sorted: &[f64]) -> Self {
        let size = sorted.len();
        Self {
            size,
            min: sorted.first().copied().unwrap_or(f64::NAN),
            median: if size == 0 {
                f64::NAN
            } else {
                sorted[size / 2]
            },
            max: sorted.last().copied().unwrap_or(f64::NAN),
        }
    }
}

/// Why Stage 2 produced its capacity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Explanation {
    /// The hierarchical provisioner matched a bucket at some hierarchy
    /// level.
    HierarchicalBucket {
        /// Name of the matched profile feature (e.g. `VerticalName`).
        feature: String,
        /// The matched feature value (e.g. `Insurance`).
        value: String,
        /// Level within the hierarchy chain (0 = coarsest).
        level: usize,
        /// The percentile used for the recommendation.
        percentile: f64,
        /// Distribution of reference capacities in the bucket.
        bucket: BucketSummary,
    },
    /// No bucket was large enough; the global capacity distribution was
    /// used.
    GlobalFallback {
        /// The percentile used for the recommendation.
        percentile: f64,
        /// Distribution of all reference capacities.
        bucket: BucketSummary,
    },
    /// The target-encoding model produced the prediction from these encoded
    /// feature values.
    TargetEncoding {
        /// `(feature name, encoded value)` pairs fed to the tree ensemble —
        /// each encoded value is itself a label statistic of similar
        /// instances, so it doubles as the reference information.
        encoded_features: Vec<(String, f64)>,
        /// Model output in `ξ = log2` space before inversion.
        prediction_log2: f64,
    },
    /// A precomputed prediction-store entry answered the request (§4 batch
    /// serving path).
    StoreLookup {
        /// The typed `[offering, hierarchy feature, interned value]` key
        /// that matched, or `None` if the per-offering default was served.
        key: Option<StoreKey>,
        /// The server offering the lookup ran against.
        offering: ServerOffering,
    },
}

impl fmt::Display for Explanation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Explanation::HierarchicalBucket {
                feature,
                value,
                level,
                percentile,
                bucket,
            } => write!(
                f,
                "matched {feature}='{value}' (level {level}): p{percentile} of {} similar instances (capacities {}..{}, median {})",
                bucket.size, bucket.min, bucket.max, bucket.median
            ),
            Explanation::GlobalFallback { percentile, bucket } => write!(
                f,
                "no sufficiently large bucket; p{percentile} of all {} reference instances",
                bucket.size
            ),
            Explanation::TargetEncoding {
                encoded_features,
                prediction_log2,
            } => {
                write!(f, "target-encoded features [")?;
                for (i, (name, v)) in encoded_features.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{name}={v:.3}")?;
                }
                write!(f, "] -> log2 capacity {prediction_log2:.3}")
            }
            Explanation::StoreLookup { key, offering } => match key {
                None => write!(f, "prediction store default for {offering} (no key matched)"),
                Some(key) => write!(f, "prediction store hit on key [{key}]"),
            },
        }
    }
}

/// A complete, personalized recommendation (the §4 output surface).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Recommendation {
    /// The final SKU after personalization and discretization (`c**`).
    pub sku: Sku,
    /// Stage 2's capacity before personalization (`c*`, primary dimension).
    pub stage2_capacity: f64,
    /// The cost/performance sensitivity score applied (Eq. 13), surfaced so
    /// the user can inspect and adjust their perceived preference.
    pub lambda: f64,
    /// The rationale (C3).
    pub explanation: Explanation,
}

impl fmt::Display for Recommendation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (stage-2 capacity {:.2}, lambda {:+.2}; {})",
            self.sku, self.stage2_capacity, self.lambda, self.explanation
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lorentz_types::Capacity;

    #[test]
    fn bucket_summary_from_sorted() {
        let b = BucketSummary::from_sorted(&[2.0, 4.0, 4.0, 8.0, 16.0]);
        assert_eq!(b.size, 5);
        assert_eq!(b.min, 2.0);
        assert_eq!(b.median, 4.0);
        assert_eq!(b.max, 16.0);
        let empty = BucketSummary::from_sorted(&[]);
        assert_eq!(empty.size, 0);
        assert!(empty.min.is_nan());
    }

    #[test]
    fn explanations_render_readably() {
        let e = Explanation::HierarchicalBucket {
            feature: "VerticalName".into(),
            value: "Insurance".into(),
            level: 2,
            percentile: 50.0,
            bucket: BucketSummary::from_sorted(&[2.0, 4.0, 8.0]),
        };
        let s = e.to_string();
        assert!(s.contains("VerticalName='Insurance'"));
        assert!(s.contains("3 similar instances"));

        let e = Explanation::GlobalFallback {
            percentile: 50.0,
            bucket: BucketSummary::from_sorted(&[2.0]),
        };
        assert!(e.to_string().contains("no sufficiently large bucket"));

        let e = Explanation::TargetEncoding {
            encoded_features: vec![("SegmentName".into(), 1.5)],
            prediction_log2: 2.0,
        };
        assert!(e.to_string().contains("SegmentName=1.500"));

        let e = Explanation::StoreLookup {
            key: Some(StoreKey::new(
                ServerOffering::GeneralPurpose,
                lorentz_types::FeatureId(1),
                lorentz_types::ValueId(3),
            )),
            offering: ServerOffering::GeneralPurpose,
        };
        assert!(e.to_string().contains("store hit"));
        assert!(e.to_string().contains("general_purpose|1|3"));

        let e = Explanation::StoreLookup {
            key: None,
            offering: ServerOffering::Burstable,
        };
        assert!(e.to_string().contains("default"));
    }

    #[test]
    fn recommendation_displays_all_parts() {
        let r = Recommendation {
            sku: Sku::new("gp-8vc", Capacity::scalar(8.0)),
            stage2_capacity: 4.0,
            lambda: 1.0,
            explanation: Explanation::GlobalFallback {
                percentile: 50.0,
                bucket: BucketSummary::from_sorted(&[4.0]),
            },
        };
        let s = r.to_string();
        assert!(s.contains("gp-8vc"));
        assert!(s.contains("+1.00"));
    }

    #[test]
    fn explanation_serde_round_trip() {
        let e = Explanation::TargetEncoding {
            encoded_features: vec![("a".into(), 0.5)],
            prediction_log2: 1.25,
        };
        let json = serde_json::to_string(&e).unwrap();
        let back: Explanation = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }
}
