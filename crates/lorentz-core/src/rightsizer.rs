//! Stage 1: capacity rightsizing (§3.2, Eq. 1–9).
//!
//! Given the binned usage signal `w[n]` of an existing workload, its
//! user-selected capacity `c⁰`, and a catalog of candidate capacities `C`,
//! the rightsizer selects the capacity whose slack is closest to the target
//! `s*` subject to a throttling bound — and, when the observation is
//! *censored* (the workload was already throttling at `c⁰`, so its true
//! demand is unobservable), forces a scale-up to at least `2^K · c⁰`
//! instead (Eq. 8).

use crate::config::RightsizerConfig;
use lorentz_telemetry::columns::{kernels, TraceView};
use lorentz_telemetry::UsageTrace;
use lorentz_types::{Capacity, LorentzError, SkuCatalog};
use serde::{Deserialize, Serialize};

/// How a user-selected capacity compares to the rightsized one — the
/// classification behind Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProvisioningVerdict {
    /// User capacity is larger than the rightsized capacity.
    OverProvisioned,
    /// User capacity equals the rightsized capacity.
    WellProvisioned,
    /// User capacity is smaller than the rightsized capacity.
    UnderProvisioned,
}

/// The result of rightsizing one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RightsizeOutcome {
    /// The selected rightsized capacity `ĉ⁰` (a catalog entry).
    pub capacity: Capacity,
    /// Index of the chosen SKU within the catalog.
    pub sku_index: usize,
    /// Whether the censored branch of Eq. 9 was taken (the workload was
    /// throttled at its user-selected capacity).
    pub censored: bool,
    /// Throttling probability at the user-selected capacity.
    pub throttling_at_user: f64,
    /// Per-dimension mean slack ratio at the chosen capacity.
    pub slack_at_chosen: Vec<f64>,
    /// How the user's choice compares to the rightsized one.
    pub verdict: ProvisioningVerdict,
}

/// The Stage-1 rightsizer.
///
/// ```
/// use lorentz_core::{Rightsizer, RightsizerConfig};
/// use lorentz_telemetry::{RegularSeries, UsageTrace};
/// use lorentz_types::{Capacity, ServerOffering, SkuCatalog};
///
/// let rightsizer = Rightsizer::new(&RightsizerConfig::default())?;
/// let catalog = SkuCatalog::azure_postgres(ServerOffering::GeneralPurpose);
///
/// // A steady 2-vCore workload the user over-provisioned at 16 vCores:
/// let telemetry = UsageTrace::single(RegularSeries::new(300.0, vec![2.0; 24])?);
/// let outcome = rightsizer.rightsize(&telemetry, &Capacity::scalar(16.0), &catalog)?;
///
/// // At the 50% slack target the best fit is 4 vCores.
/// assert_eq!(outcome.capacity.primary(), 4.0);
/// assert!(!outcome.censored);
/// # Ok::<(), lorentz_types::LorentzError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rightsizer {
    config: RightsizerConfig,
}

impl Rightsizer {
    /// Creates a rightsizer.
    ///
    /// # Errors
    /// Returns [`LorentzError::InvalidConfig`] for invalid configs.
    pub fn new(config: &RightsizerConfig) -> Result<Self, LorentzError> {
        config.validate()?;
        Ok(Self {
            config: config.clone(),
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &RightsizerConfig {
        &self.config
    }

    /// Throttling probability `T_w(c)` (Eq. 3–4): the fraction of bins in
    /// which *any* dimension exceeds `η_r · c_r`.
    ///
    /// # Errors
    /// Returns a dimension mismatch if `c` has the wrong arity.
    pub fn throttling(&self, trace: &UsageTrace, c: &Capacity) -> Result<f64, LorentzError> {
        c.check_space(trace.space())?;
        let bins = trace.bins();
        let dims = trace.dims();
        let mut throttled = 0usize;
        for n in 0..bins {
            let hit = (0..dims)
                .any(|r| trace.resource(r).values()[n] > self.config.eta_for(r) * c.get(r));
            if hit {
                throttled += 1;
            }
        }
        Ok(throttled as f64 / bins as f64)
    }

    /// Mean slack ratio vector `S_w(c)` (Eq. 5–6): per dimension, the mean
    /// of `(c_r − w_r[n]) / c_r` over time. Entries can be negative when the
    /// workload exceeds `c` (only possible for candidates below the observed
    /// peak).
    ///
    /// # Errors
    /// Returns a dimension mismatch if `c` has the wrong arity.
    pub fn slack_ratio(&self, trace: &UsageTrace, c: &Capacity) -> Result<Vec<f64>, LorentzError> {
        c.check_space(trace.space())?;
        (0..trace.dims())
            .map(|r| kernels::checked_slack_ratio(trace.resource(r).values(), c.get(r)))
            .collect()
    }

    /// Mean *absolute* slack `S_w(c) · c` per dimension — the business
    /// metric of Figure 9 ("minimizing the global resource volume
    /// provisioned").
    ///
    /// # Errors
    /// Returns a dimension mismatch if `c` has the wrong arity.
    pub fn absolute_slack(
        &self,
        trace: &UsageTrace,
        c: &Capacity,
    ) -> Result<Vec<f64>, LorentzError> {
        Ok(self
            .slack_ratio(trace, c)?
            .iter()
            .enumerate()
            .map(|(r, s)| s * c.get(r))
            .collect())
    }

    /// The L1 distance between the slack vector at `c` and the configured
    /// targets — the objective of Eq. 7/8 generalized to multiple
    /// dimensions (identical to the paper's per-resource objective in the
    /// single-dimension evaluation setting).
    fn slack_objective(&self, trace: &UsageTrace, c: &Capacity) -> Result<f64, LorentzError> {
        Ok(self
            .slack_ratio(trace, c)?
            .iter()
            .enumerate()
            .map(|(r, s)| (s - self.config.slack_target_for(r)).abs())
            .sum())
    }

    /// The complete rightsizing optimizer (Eq. 9).
    ///
    /// Uncensored branch: among candidates with `T_w(c) ≤ τ`, pick the one
    /// whose slack is closest to the target. Censored branch (the workload
    /// throttles at `c⁰`): among candidates with `c ≥ 2^K · c⁰`, pick the
    /// slack-closest; if the ladder tops out below `2^K · c⁰`, the largest
    /// SKU is selected (the paper leaves this boundary case unspecified; we
    /// saturate rather than fail).
    ///
    /// # Errors
    /// Returns [`LorentzError`] on arity mismatches, or
    /// [`LorentzError::Infeasible`] if the uncensored branch has no
    /// candidate meeting the throttling bound (possible when `c⁰` is not in
    /// the catalog).
    pub fn rightsize(
        &self,
        trace: &UsageTrace,
        user_capacity: &Capacity,
        catalog: &SkuCatalog,
    ) -> Result<RightsizeOutcome, LorentzError> {
        user_capacity.check_space(trace.space())?;
        let throttling_at_user = self.throttling(trace, user_capacity)?;
        let censored = throttling_at_user > self.config.tau;

        let mut best: Option<(usize, f64)> = None;
        for (i, sku) in catalog.skus().iter().enumerate() {
            let c = &sku.capacity;
            let feasible = if censored {
                // Eq. 8: c_r >= 2^K c⁰_r for every dimension.
                let factor = f64::from(2u32.pow(self.config.k));
                (0..c.len()).all(|r| c.get(r) >= factor * user_capacity.get(r))
            } else {
                // Eq. 7: T_w(c) <= τ.
                self.throttling(trace, c)? <= self.config.tau
            };
            if !feasible {
                continue;
            }
            let objective = self.slack_objective(trace, c)?;
            if best.is_none_or(|(_, b)| objective < b) {
                best = Some((i, objective));
            }
        }

        let sku_index = match best {
            Some((i, _)) => i,
            None if censored => catalog.len() - 1, // saturate at the top
            None => {
                return Err(LorentzError::Infeasible(format!(
                    "no catalog candidate meets throttling bound τ={}",
                    self.config.tau
                )))
            }
        };

        let capacity = catalog.get(sku_index).capacity.clone();
        let slack_at_chosen = self.slack_ratio(trace, &capacity)?;
        let verdict = verdict(user_capacity, &capacity);
        Ok(RightsizeOutcome {
            capacity,
            sku_index,
            censored,
            throttling_at_user,
            slack_at_chosen,
            verdict,
        })
    }

    /// Columnar Eq. 9: [`Self::rightsize`] over a [`TraceView`] into a
    /// [`TraceColumns`](lorentz_telemetry::TraceColumns) fleet, byte-identical
    /// to the row path on the same trace.
    ///
    /// Why it's faster, and why the output cannot drift:
    ///
    /// * Throttling counts are **integers** (bins above `η_r · c_r`), so any
    ///   evaluation strategy that counts the same multiset yields the same
    ///   `f64` probability. Single-dimension traces get every candidate's
    ///   count — and the user capacity's — from one histogram pass
    ///   ([`kernels::count_above_many`]) instead of one scan per SKU;
    ///   multi-dimension traces union a reusable mask.
    /// * Slack ratios are **order-sensitive sums**, so each one is folded in
    ///   bin order — the exact row-path expression — and computed exactly as
    ///   lazily as the row path (feasible candidates only). The winner's
    ///   vector is kept in scratch, saving the row path's final recompute of
    ///   the bit-identical value.
    /// * Candidate feasibility, best-objective selection, tie-breaks, and
    ///   the censored/saturate/infeasible branches are the same code shape
    ///   in the same catalog order.
    ///
    /// `scratch` is reused across calls; one per worker thread.
    ///
    /// # Errors
    /// Same contract as [`Self::rightsize`].
    pub fn rightsize_columns(
        &self,
        trace: TraceView<'_>,
        user_capacity: &Capacity,
        catalog: &SkuCatalog,
        scratch: &mut Stage1Scratch,
    ) -> Result<RightsizeOutcome, LorentzError> {
        user_capacity.check_space(trace.space())?;
        let bins = trace.bins();
        let dims = trace.dims();
        if bins == 0 {
            return Err(LorentzError::InvalidTelemetry(
                "empty trace: cannot rightsize over zero bins".into(),
            ));
        }

        // Single-dimension fast path: every candidate's throttling count —
        // plus the user capacity's — comes out of ONE histogram pass over
        // the column (`count_above_many`) instead of one full scan per
        // candidate. Counts are integers, so the batching cannot change a
        // single bit of the throttling probabilities. Wrong-arity
        // candidates get an `∞` placeholder (count 0) that is never read —
        // the same `check_space` the row path performs errors out first.
        let single = dims == 1;
        if single {
            let eta0 = self.config.eta_for(0);
            scratch.thresholds.clear();
            scratch.thresholds.extend(catalog.skus().iter().map(|sku| {
                let c = &sku.capacity;
                if c.len() == 1 {
                    eta0 * c.get(0)
                } else {
                    f64::INFINITY
                }
            }));
            scratch.thresholds.push(eta0 * user_capacity.get(0));
            let (thresholds, counts) = (&scratch.thresholds, &mut scratch.counts);
            kernels::count_above_many(trace.dim(0), thresholds, &mut scratch.multi, counts);
        }

        let throttled = if single {
            scratch.counts[catalog.len()]
        } else {
            self.masked_throttled_count(&trace, user_capacity, scratch)
        };
        let throttling_at_user = throttled as f64 / bins as f64;
        let censored = throttling_at_user > self.config.tau;

        let mut best: Option<(usize, f64)> = None;
        for (i, sku) in catalog.skus().iter().enumerate() {
            let c = &sku.capacity;
            let feasible = if censored {
                // Eq. 8: c_r >= 2^K c⁰_r for every dimension.
                let factor = f64::from(2u32.pow(self.config.k));
                (0..c.len()).all(|r| c.get(r) >= factor * user_capacity.get(r))
            } else {
                // Eq. 7: T_w(c) <= τ.
                c.check_space(trace.space())?;
                let count = if single {
                    scratch.counts[i]
                } else {
                    self.masked_throttled_count(&trace, c, scratch)
                };
                count as f64 / bins as f64 <= self.config.tau
            };
            if !feasible {
                continue;
            }
            c.check_space(trace.space())?;
            // Lazy slack, exactly like the row path: only feasible
            // candidates pay the per-dimension pass, folded in bin order.
            scratch.cand_slack.clear();
            for r in 0..dims {
                scratch
                    .cand_slack
                    .push(kernels::checked_slack_ratio(trace.dim(r), c.get(r))?);
            }
            let objective: f64 = scratch
                .cand_slack
                .iter()
                .enumerate()
                .map(|(r, s)| (s - self.config.slack_target_for(r)).abs())
                .sum();
            if best.is_none_or(|(_, b)| objective < b) {
                best = Some((i, objective));
                // Keep the winner's slack vector: `slack_at_chosen` is this
                // very value, so the row path's final recompute is skipped
                // without changing a bit.
                std::mem::swap(&mut scratch.best_slack, &mut scratch.cand_slack);
            }
        }

        let sku_index = match best {
            Some((i, _)) => i,
            None if censored => catalog.len() - 1, // saturate at the top
            None => {
                return Err(LorentzError::Infeasible(format!(
                    "no catalog candidate meets throttling bound τ={}",
                    self.config.tau
                )))
            }
        };

        let capacity = catalog.get(sku_index).capacity.clone();
        capacity.check_space(trace.space())?;
        let slack_at_chosen: Vec<f64> = if best.is_some() {
            scratch.best_slack.clone()
        } else {
            // Censored saturate: the top SKU was never a feasible candidate,
            // so its slack has not been computed yet.
            (0..dims)
                .map(|r| kernels::checked_slack_ratio(trace.dim(r), capacity.get(r)))
                .collect::<Result<_, _>>()?
        };
        let verdict = verdict(user_capacity, &capacity);
        Ok(RightsizeOutcome {
            capacity,
            sku_index,
            censored,
            throttling_at_user,
            slack_at_chosen,
            verdict,
        })
    }

    /// Throttled-bin count of Eq. 3–4 for multi-dimensional traces: a
    /// reusable any-dim mask union. Integer-valued, hence identical to the
    /// row loop.
    fn masked_throttled_count(
        &self,
        trace: &TraceView<'_>,
        c: &Capacity,
        scratch: &mut Stage1Scratch,
    ) -> usize {
        let bins = trace.bins();
        scratch.mask.clear();
        scratch.mask.resize(bins, false);
        for r in 0..trace.dims() {
            kernels::or_above(
                trace.dim(r),
                self.config.eta_for(r) * c.get(r),
                &mut scratch.mask,
            );
        }
        scratch.mask.iter().filter(|&&m| m).count()
    }
}

/// Reusable buffers for [`Rightsizer::rightsize_columns`]: one per Stage-1
/// worker thread, reused across every trace and candidate the worker sizes.
#[derive(Debug, Default)]
pub struct Stage1Scratch {
    /// Throttling thresholds `η·c` per catalog candidate (+ the user's).
    thresholds: Vec<f64>,
    /// Histogram state for [`kernels::count_above_many`].
    multi: kernels::MultiCountScratch,
    /// Throttled-bin counts, indexed like `thresholds`.
    counts: Vec<usize>,
    /// Any-dimension throttling union for multi-dimension traces.
    mask: Vec<bool>,
    /// Per-dimension slack of the candidate currently being scored.
    cand_slack: Vec<f64>,
    /// Per-dimension slack of the best candidate so far.
    best_slack: Vec<f64>,
}

/// Classifies a user capacity against the rightsized capacity (primary
/// dimension).
fn verdict(user: &Capacity, rightsized: &Capacity) -> ProvisioningVerdict {
    let u = user.primary();
    let r = rightsized.primary();
    if (u - r).abs() < 1e-9 {
        ProvisioningVerdict::WellProvisioned
    } else if u > r {
        ProvisioningVerdict::OverProvisioned
    } else {
        ProvisioningVerdict::UnderProvisioned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lorentz_telemetry::RegularSeries;
    use lorentz_types::ServerOffering;

    fn sizer() -> Rightsizer {
        Rightsizer::new(&RightsizerConfig::default()).unwrap()
    }

    fn trace(values: &[f64]) -> UsageTrace {
        UsageTrace::single(RegularSeries::new(300.0, values.to_vec()).unwrap())
    }

    fn catalog() -> SkuCatalog {
        SkuCatalog::azure_postgres(ServerOffering::GeneralPurpose) // 2..128
    }

    #[test]
    fn throttling_counts_bins_above_eta() {
        let s = sizer();
        let t = trace(&[1.0, 1.9, 2.0, 0.5]);
        // c=2, η=0.95 -> threshold 1.9; bins 1.9 (not >) and 2.0 (>): 1 of 4.
        let thr = s.throttling(&t, &Capacity::scalar(2.0)).unwrap();
        assert!((thr - 0.25).abs() < 1e-12);
        // Large capacity: no throttling.
        assert_eq!(s.throttling(&t, &Capacity::scalar(8.0)).unwrap(), 0.0);
    }

    #[test]
    fn multi_dimension_throttling_is_any_dimension() {
        let cfg = RightsizerConfig {
            eta: vec![0.95, 0.95],
            slack_target: vec![0.5, 0.5],
            ..RightsizerConfig::default()
        };
        let s = Rightsizer::new(&cfg).unwrap();
        let t = UsageTrace::new(
            lorentz_types::ResourceSpace::vcores_memory(),
            vec![
                RegularSeries::new(300.0, vec![1.0, 1.0]).unwrap(),
                RegularSeries::new(300.0, vec![1.0, 7.9]).unwrap(),
            ],
        )
        .unwrap();
        // CPU never throttles at 4 but memory bin 1 exceeds 0.95*8=7.6.
        let thr = s
            .throttling(&t, &Capacity::new(vec![4.0, 8.0]).unwrap())
            .unwrap();
        assert!((thr - 0.5).abs() < 1e-12);
    }

    #[test]
    fn slack_matches_eq_5_6() {
        let s = sizer();
        let t = trace(&[1.0, 3.0]);
        let slack = s.slack_ratio(&t, &Capacity::scalar(4.0)).unwrap();
        // ((4-1)/4 + (4-3)/4)/2 = (0.75 + 0.25)/2 = 0.5
        assert!((slack[0] - 0.5).abs() < 1e-12);
        let abs = s.absolute_slack(&t, &Capacity::scalar(4.0)).unwrap();
        assert!((abs[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn slack_can_be_negative_for_undersized_candidates() {
        let s = sizer();
        let t = trace(&[4.0, 4.0]);
        let slack = s.slack_ratio(&t, &Capacity::scalar(2.0)).unwrap();
        assert!(slack[0] < 0.0);
    }

    #[test]
    fn uncensored_workload_picks_slack_target() {
        let s = sizer();
        // Steady 2.0 usage, user chose 16 (over-provisioned, no throttling).
        let t = trace(&[2.0; 20]);
        let out = s
            .rightsize(&t, &Capacity::scalar(16.0), &catalog())
            .unwrap();
        assert!(!out.censored);
        // Slack target 0.5 -> ideal capacity 4 (slack (4-2)/4 = 0.5 exactly).
        assert_eq!(out.capacity.primary(), 4.0);
        assert_eq!(out.verdict, ProvisioningVerdict::OverProvisioned);
        assert_eq!(out.throttling_at_user, 0.0);
        assert!((out.slack_at_chosen[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn throttling_constraint_overrides_slack_preference() {
        let s = sizer();
        // Usage mostly 1.0 but spikes to 3.9 in one bin: capacity 4 would
        // throttle (3.9 > 0.95*4=3.8), so 8 is the smallest feasible...
        // but slack at 8 vs target: |(1-mean/8)-0.5|; candidates 8..128 all
        // feasible; 8 wins on slack distance. Capacity 2/4 are infeasible.
        let mut vals = vec![1.0; 19];
        vals.push(3.9);
        let t = trace(&vals);
        let out = s
            .rightsize(&t, &Capacity::scalar(16.0), &catalog())
            .unwrap();
        assert_eq!(out.capacity.primary(), 8.0);
        assert_eq!(s.throttling(&t, &out.capacity).unwrap(), 0.0);
    }

    #[test]
    fn censored_workload_scales_up_by_2_to_the_k() {
        let s = sizer();
        // Usage pinned at the user capacity 4 -> throttled, censored.
        let t = trace(&[4.0; 10]);
        let out = s.rightsize(&t, &Capacity::scalar(4.0), &catalog()).unwrap();
        assert!(out.censored);
        assert!(out.throttling_at_user > 0.0);
        // K=1: candidates >= 8; slack distance favors the smallest.
        assert_eq!(out.capacity.primary(), 8.0);
        assert_eq!(out.verdict, ProvisioningVerdict::UnderProvisioned);
    }

    #[test]
    fn censored_branch_saturates_at_catalog_top() {
        let s = sizer();
        let t = trace(&[128.0; 10]);
        let out = s
            .rightsize(&t, &Capacity::scalar(128.0), &catalog())
            .unwrap();
        assert!(out.censored);
        assert_eq!(out.capacity.primary(), 128.0);
        assert_eq!(out.verdict, ProvisioningVerdict::WellProvisioned);
    }

    #[test]
    fn k_zero_keeps_censored_workloads_at_least_at_user_capacity() {
        let cfg = RightsizerConfig {
            k: 0,
            ..RightsizerConfig::default()
        };
        let s = Rightsizer::new(&cfg).unwrap();
        let t = trace(&[4.0; 10]);
        let out = s.rightsize(&t, &Capacity::scalar(4.0), &catalog()).unwrap();
        // 2^0 = 1: candidates >= 4; slack distance: at 4 slack=0 dist 0.5,
        // at 8 slack=0.5 dist 0 -> picks 8 anyway via slack target.
        assert_eq!(out.capacity.primary(), 8.0);
    }

    #[test]
    fn idle_workload_rightsized_to_minimum() {
        let s = sizer();
        let t = trace(&[0.05; 50]);
        let out = s
            .rightsize(&t, &Capacity::scalar(32.0), &catalog())
            .unwrap();
        assert_eq!(out.capacity.primary(), 2.0);
    }

    #[test]
    fn well_provisioned_user_matches_rightsizer() {
        let s = sizer();
        let t = trace(&[2.0; 20]);
        let out = s.rightsize(&t, &Capacity::scalar(4.0), &catalog()).unwrap();
        assert_eq!(out.verdict, ProvisioningVerdict::WellProvisioned);
    }

    #[test]
    fn nonzero_tau_tolerates_rare_spikes() {
        let cfg = RightsizerConfig {
            tau: 0.1,
            ..RightsizerConfig::default()
        };
        let s = Rightsizer::new(&cfg).unwrap();
        // One spike bin in 20 (5% of time): within τ=10%.
        let mut vals = vec![1.0; 19];
        vals.push(3.9);
        let t = trace(&vals);
        let out = s
            .rightsize(&t, &Capacity::scalar(16.0), &catalog())
            .unwrap();
        // Capacity 2 throttles 5% of bins <= τ=10% and its mean slack
        // (0.4275) is closest to the 0.5 target, so relaxing τ unlocks a
        // smaller SKU than the τ=0 answer (8).
        assert_eq!(out.capacity.primary(), 2.0);
        let strict = sizer()
            .rightsize(&t, &Capacity::scalar(16.0), &catalog())
            .unwrap();
        assert_eq!(strict.capacity.primary(), 8.0);
    }

    #[test]
    fn columnar_rightsize_is_byte_identical_to_row_path() {
        use lorentz_telemetry::TraceColumns;
        let s = sizer();
        let cat = catalog();
        // Steady, spiky, censored, idle, and single-bin workloads.
        let traces = vec![
            trace(&[2.0; 20]),
            {
                let mut vals = vec![1.0; 19];
                vals.push(3.9);
                trace(&vals)
            },
            trace(&[4.0; 10]),
            trace(&[0.05; 50]),
            trace(&[128.0; 10]),
            trace(&[7.3]),
        ];
        let users = [16.0, 16.0, 4.0, 32.0, 128.0, 8.0];
        let cols = TraceColumns::from_traces(&traces);
        let mut scratch = Stage1Scratch::default();
        for (i, t) in traces.iter().enumerate() {
            let user = Capacity::scalar(users[i]);
            let row = s.rightsize(t, &user, &cat).unwrap();
            let col = s
                .rightsize_columns(cols.trace(i), &user, &cat, &mut scratch)
                .unwrap();
            assert_eq!(row, col, "trace {i}");
            // Bit-exact, not just PartialEq-equal.
            for (a, b) in row.slack_at_chosen.iter().zip(&col.slack_at_chosen) {
                assert_eq!(a.to_bits(), b.to_bits(), "trace {i}");
            }
            assert_eq!(
                row.throttling_at_user.to_bits(),
                col.throttling_at_user.to_bits()
            );
        }
    }

    #[test]
    fn columnar_rightsize_multi_dimension_matches_row() {
        use lorentz_telemetry::TraceColumns;
        let cfg = RightsizerConfig {
            eta: vec![0.95, 0.95],
            slack_target: vec![0.5, 0.5],
            ..RightsizerConfig::default()
        };
        let s = Rightsizer::new(&cfg).unwrap();
        let t = UsageTrace::new(
            lorentz_types::ResourceSpace::vcores_memory(),
            vec![
                RegularSeries::new(300.0, vec![1.0, 1.0, 2.5]).unwrap(),
                RegularSeries::new(300.0, vec![1.0, 7.9, 3.0]).unwrap(),
            ],
        )
        .unwrap();
        let catalog = SkuCatalog::azure_postgres_with_memory(ServerOffering::GeneralPurpose);
        let user = t.peak();
        let user = Capacity::new(user.iter().map(|&v| (v * 2.0).max(1.0)).collect()).unwrap();
        let cols = TraceColumns::from_traces(std::slice::from_ref(&t));
        let mut scratch = Stage1Scratch::default();
        let row = s.rightsize(&t, &user, &catalog).unwrap();
        let col = s
            .rightsize_columns(cols.trace(0), &user, &catalog, &mut scratch)
            .unwrap();
        assert_eq!(row, col);
    }

    #[test]
    fn columnar_throttling_counts_match_row_throttling() {
        use lorentz_telemetry::TraceColumns;
        let s = sizer();
        let t = trace(&[1.0, 1.9, 2.0, 0.5, 3.9, 2.0]);
        let cols = TraceColumns::from_traces(std::slice::from_ref(&t));
        let mut scratch = Stage1Scratch::default();
        // Seed the sorted scratch the way rightsize_columns does.
        let user = Capacity::scalar(2.0);
        let row = s.rightsize(&t, &user, &catalog()).unwrap();
        let col = s
            .rightsize_columns(cols.trace(0), &user, &catalog(), &mut scratch)
            .unwrap();
        assert_eq!(row.throttling_at_user, col.throttling_at_user);
    }

    #[test]
    fn slack_ratio_single_sample_trace_is_valid() {
        let s = sizer();
        let t = trace(&[1.0]);
        let slack = s.slack_ratio(&t, &Capacity::scalar(4.0)).unwrap();
        assert_eq!(slack, vec![0.75]);
        let out = s.rightsize(&t, &Capacity::scalar(4.0), &catalog()).unwrap();
        assert_eq!(out.capacity.primary(), 2.0);
    }

    #[test]
    fn rightsize_rejects_mismatched_arity() {
        let s = sizer();
        let t = trace(&[1.0]);
        let two_dim = Capacity::new(vec![2.0, 8.0]).unwrap();
        assert!(s.rightsize(&t, &two_dim, &catalog()).is_err());
        assert!(s.throttling(&t, &two_dim).is_err());
        assert!(s.slack_ratio(&t, &two_dim).is_err());
    }
}
