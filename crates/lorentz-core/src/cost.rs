//! Fleet cost accounting.
//!
//! The business case for Lorentz is COGS: "Lorentz reduces wasted capacity
//! by over 60% without increasing throttling" and, in §5.2, "27%
//! (Hierarchical) and 8% (Target Encoding) reduction in cost compared to
//! user selection", measured as aggregate vCores provisioned and hours
//! throttled, extrapolated from the test set to 67k servers. This module
//! provides that accounting: a linear [`CostModel`] ("resource costs
//! generally scale linearly with capacity", §5.1) and per-capacity-set
//! [`FleetBill`]s.

use crate::rightsizer::Rightsizer;
use lorentz_telemetry::UsageTrace;
use lorentz_types::{Capacity, LorentzError};
use serde::{Deserialize, Serialize};

/// A linear capacity-hours price model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Price per provisioned vCore-hour (arbitrary currency unit).
    pub price_per_vcore_hour: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Ballpark of a general-purpose cloud vCore with bundled memory.
        Self {
            price_per_vcore_hour: 0.06,
        }
    }
}

/// Aggregate cost/throttling accounting for one capacity assignment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetBill {
    /// Servers billed.
    pub servers: usize,
    /// Total provisioned vCore-hours.
    pub vcore_hours: f64,
    /// Total hours in which a server was throttled.
    pub hours_throttled: f64,
    /// Monetary cost under the model.
    pub cost: f64,
}

impl FleetBill {
    /// Scales every aggregate to a target fleet size (the paper
    /// extrapolates its test split to 67k servers).
    pub fn extrapolated_to(&self, servers: usize) -> FleetBill {
        let factor = servers as f64 / self.servers.max(1) as f64;
        FleetBill {
            servers,
            vcore_hours: self.vcore_hours * factor,
            hours_throttled: self.hours_throttled * factor,
            cost: self.cost * factor,
        }
    }

    /// Relative cost reduction versus a baseline bill.
    pub fn cost_reduction_vs(&self, baseline: &FleetBill) -> f64 {
        if baseline.cost <= 0.0 {
            return 0.0;
        }
        1.0 - self.cost / baseline.cost
    }
}

/// Bills one capacity per workload over the workloads' duration: provisioned
/// vCore-hours on the primary dimension, plus throttled hours measured
/// against the given rightsizer's `η` thresholds.
///
/// # Errors
/// Returns [`LorentzError`] on length or arity mismatches.
pub fn bill_fleet(
    model: &CostModel,
    rightsizer: &Rightsizer,
    traces: &[UsageTrace],
    capacities: &[Capacity],
) -> Result<FleetBill, LorentzError> {
    if traces.len() != capacities.len() {
        return Err(LorentzError::Model(format!(
            "{} traces vs {} capacities",
            traces.len(),
            capacities.len()
        )));
    }
    if traces.is_empty() {
        return Err(LorentzError::Model("nothing to bill".into()));
    }
    let mut vcore_hours = 0.0;
    let mut hours_throttled = 0.0;
    for (trace, cap) in traces.iter().zip(capacities) {
        cap.check_space(trace.space())?;
        let hours = trace.bins() as f64 * trace.bin_seconds() / 3600.0;
        vcore_hours += cap.primary() * hours;
        hours_throttled += rightsizer.throttling(trace, cap)? * hours;
    }
    Ok(FleetBill {
        servers: traces.len(),
        vcore_hours,
        hours_throttled,
        cost: vcore_hours * model.price_per_vcore_hour,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RightsizerConfig;
    use lorentz_telemetry::RegularSeries;

    fn trace(values: &[f64]) -> UsageTrace {
        UsageTrace::single(RegularSeries::new(3600.0, values.to_vec()).unwrap())
    }

    fn sizer() -> Rightsizer {
        Rightsizer::new(&RightsizerConfig::default()).unwrap()
    }

    #[test]
    fn bills_vcore_hours_and_throttled_hours() {
        let model = CostModel {
            price_per_vcore_hour: 1.0,
        };
        // Two servers, 2 hours each (2 bins of 1h): 4 vCores and 8 vCores.
        let traces = vec![trace(&[1.0, 3.9]), trace(&[2.0, 2.0])];
        let caps = vec![Capacity::scalar(4.0), Capacity::scalar(8.0)];
        let bill = bill_fleet(&model, &sizer(), &traces, &caps).unwrap();
        assert_eq!(bill.servers, 2);
        assert!((bill.vcore_hours - (4.0 * 2.0 + 8.0 * 2.0)).abs() < 1e-9);
        // First server throttles in its second hour (3.9 > 0.95*4).
        assert!((bill.hours_throttled - 1.0).abs() < 1e-9);
        assert!((bill.cost - 24.0).abs() < 1e-9);
    }

    #[test]
    fn extrapolation_scales_linearly() {
        let model = CostModel::default();
        let traces = vec![trace(&[1.0]), trace(&[1.0])];
        let caps = vec![Capacity::scalar(2.0), Capacity::scalar(4.0)];
        let bill = bill_fleet(&model, &sizer(), &traces, &caps).unwrap();
        let big = bill.extrapolated_to(20);
        assert_eq!(big.servers, 20);
        assert!((big.vcore_hours - bill.vcore_hours * 10.0).abs() < 1e-9);
        assert!((big.cost - bill.cost * 10.0).abs() < 1e-9);
    }

    #[test]
    fn cost_reduction_is_relative() {
        let a = FleetBill {
            servers: 10,
            vcore_hours: 100.0,
            hours_throttled: 0.0,
            cost: 50.0,
        };
        let b = FleetBill { cost: 100.0, ..a };
        assert!((a.cost_reduction_vs(&b) - 0.5).abs() < 1e-12);
        assert_eq!(a.cost_reduction_vs(&FleetBill { cost: 0.0, ..a }), 0.0);
    }

    #[test]
    fn mismatched_inputs_rejected() {
        let model = CostModel::default();
        let traces = vec![trace(&[1.0])];
        assert!(bill_fleet(&model, &sizer(), &traces, &[]).is_err());
        assert!(bill_fleet(&model, &sizer(), &[], &[]).is_err());
    }
}
