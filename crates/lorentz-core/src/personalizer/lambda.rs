//! The live λ-table: Stage-3 state behind atomic-Arc epoch snapshots.
//!
//! Batch training freezes a [`Personalizer`] inside the deployment; online
//! personalization needs the same λ scores to keep moving while requests
//! are in flight. [`LambdaStore`] separates the two roles with the same
//! snapshot discipline as
//! [`SharedPredictionStore`](crate::SharedPredictionStore), but publishes
//! *deltas*, not full tables:
//!
//! * **Readers** clone an `Arc<LambdaEpoch>` out of a mutex-guarded slot
//!   (the lock is held only for the refcount bump) and probe lock-free.
//!   An epoch is a generational overlay: a large immutable **base**
//!   (`u128`-keyed via [`PathKey`]) shared structurally across epochs,
//!   plus a short newest-first stack of **overlay generations** holding
//!   only keys changed since the base was built. Lookup probes overlays
//!   then base; a hot key lands in the newest generation, so the common
//!   probe is one hash.
//! * **The writer** applies message-propagation rounds to a private
//!   [`Personalizer`] and accumulates the touched keys. A publish wraps
//!   just those keys into a new overlay generation and swaps the `Arc` —
//!   O(keys changed), independent of fleet size — returning the
//!   epoch-stamped [`LambdaDelta`] that the WAL frames and followers
//!   replay. When generations pile up they are merged, and once the
//!   merged overlay reaches a fixed fraction of the base it is folded
//!   into a fresh base off the reader hot path (counted by
//!   `personalizer.lambda.compactions`).
//!
//! Readers therefore never observe a half-applied propagation round: an
//! epoch is immutable from the moment it is published, and every epoch's
//! λ values are bit-identical to a full flatten of the writer state at
//! publish time (the delta-equivalence property tests assert this).

use super::{strat_index, Personalizer, SatisfactionSignal};
use crate::obs;
use lorentz_types::{
    DeltaCorruption, LambdaDelta, PathKey, PathKeyHasher, ResourcePath, ServerOffering, Sku,
    SkuCatalog, StratLambdas,
};
use std::collections::HashMap;
use std::hash::BuildHasherDefault;
use std::sync::Arc;

/// Maximum overlay generations an epoch may carry; a publish that would
/// exceed this merges all generations into one (bounding lookup probes).
const MAX_OVERLAY_GENERATIONS: usize = 4;

/// The merged overlay is folded into a new base once
/// `overlay_keys * FOLD_DIVISOR >= base_keys` — folding costs O(base), so
/// this keeps amortized publish cost proportional to keys actually
/// changed.
const FOLD_DIVISOR: usize = 2;

/// One packed-key λ table (a base or one overlay generation), probed with
/// the shared multiply-fold [`PathKeyHasher`] — the same discipline the
/// shard router reuses for its routing bits.
type LambdaTable = HashMap<u128, StratLambdas, BuildHasherDefault<PathKeyHasher>>;

/// One immutable published view of the λ-table: the epoch number plus a
/// generational overlay over a shared base. Probing never locks;
/// unregistered paths read λ = 0 exactly like [`Personalizer::lambda`].
#[derive(Debug, Clone, Default)]
pub struct LambdaEpoch {
    epoch: u64,
    len: usize,
    /// Overlay generations, newest first; probed before `base`.
    overlays: Vec<Arc<LambdaTable>>,
    /// The immutable base table, shared across epochs until a compaction
    /// folds accumulated overlays into a fresh one.
    base: Arc<LambdaTable>,
}

/// The historical name for a published λ view; since the epoch/delta
/// refactor every snapshot *is* a [`LambdaEpoch`].
pub type LambdaSnapshot = LambdaEpoch;

impl LambdaEpoch {
    /// Monotonically increasing publish epoch (the seed epoch is 1).
    pub fn version(&self) -> u64 {
        self.epoch
    }

    /// Alias for [`LambdaEpoch::version`] under its epoch name.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of overlay generations stacked on the base (0 right after a
    /// seed or a compaction).
    pub fn generations(&self) -> usize {
        self.overlays.len()
    }

    /// The λ score for a location; 0 if no profile was registered when
    /// the epoch was published.
    pub fn lambda(&self, path: &ResourcePath, offering: ServerOffering) -> f64 {
        self.row(PathKey::new(*path).pack())
            .map_or(0.0, |l| l[strat_index(offering)])
    }

    /// Overlay-then-base probe for one packed key.
    fn row(&self, key: u128) -> Option<&StratLambdas> {
        for generation in &self.overlays {
            if let Some(row) = generation.get(&key) {
                return Some(row);
            }
        }
        self.base.get(&key)
    }

    /// λ-adjusted capacity (Eq. 14): `c** = 2^λ · c*`, discretized to the
    /// catalog — the snapshot-side mirror of [`Personalizer::adjust`].
    pub fn adjust(
        &self,
        stage2_capacity: f64,
        path: &ResourcePath,
        offering: ServerOffering,
        catalog: &SkuCatalog,
    ) -> Sku {
        let lambda = self.lambda(path, offering);
        crate::provisioner::discretize(catalog, lambda.exp2() * stage2_capacity)
    }

    /// Number of registered profiles in this epoch.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the epoch holds no profiles.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// The single writer's working state behind the epoch slot.
struct WriterState {
    /// The nested customer → subscription → resource-group tree doubles
    /// as the propagation index for `apply_signal`.
    personalizer: Personalizer,
    /// Keys touched since the last publish, with their post-update rows —
    /// the next epoch's overlay generation and the next delta's entries.
    pending: LambdaTable,
}

/// Live-updatable Stage-3 state: a single-writer [`Personalizer`] plus the
/// atomic-Arc epoch slot readers probe. Publishes are O(keys changed);
/// [`LambdaStore::publish_delta`] returns the [`LambdaDelta`] a follower
/// needs to replay the epoch, and [`LambdaStore::apply_delta`] is that
/// follower-side replay.
///
/// ```
/// use lorentz_core::personalizer::{LambdaStore, Personalizer, PersonalizerConfig};
/// use lorentz_core::SatisfactionSignal;
/// use lorentz_types::{CustomerId, ResourceGroupId, ResourcePath, ServerOffering, SubscriptionId};
///
/// let store = LambdaStore::new(Personalizer::new(PersonalizerConfig::default())?);
/// let path = ResourcePath::new(CustomerId(1), SubscriptionId(1), ResourceGroupId(1));
/// let before = store.snapshot();
///
/// store.apply_signal(&SatisfactionSignal::new(path, ServerOffering::GeneralPurpose, 1.0)?);
/// let delta = store.publish_delta();
/// assert_eq!(delta.epoch, 2);
/// assert_eq!(delta.entries.len(), 1); // only the touched key is republished
///
/// // The old epoch is immutable; a fresh one sees the new λ.
/// assert_eq!(before.lambda(&path, ServerOffering::GeneralPurpose), 0.0);
/// let after = store.snapshot();
/// assert!((after.lambda(&path, ServerOffering::GeneralPurpose) - 0.3).abs() < 1e-12);
/// assert!(after.version() > before.version());
///
/// // A follower replays the delta and converges bit-exactly.
/// let follower = LambdaStore::new(Personalizer::new(PersonalizerConfig::default())?);
/// follower.apply_delta(&delta)?;
/// assert_eq!(
///     follower.snapshot().lambda(&path, ServerOffering::GeneralPurpose),
///     after.lambda(&path, ServerOffering::GeneralPurpose),
/// );
/// # Ok::<(), lorentz_types::LorentzError>(())
/// ```
pub struct LambdaStore {
    /// The single writer's working state.
    writer: parking_lot::Mutex<WriterState>,
    /// The published epoch readers clone.
    slot: parking_lot::Mutex<Arc<LambdaEpoch>>,
}

impl std::fmt::Debug for LambdaStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let epoch = self.slot.lock().clone();
        f.debug_struct("LambdaStore")
            .field("epoch", &epoch.epoch)
            .field("len", &epoch.len)
            .field("generations", &epoch.overlays.len())
            .finish_non_exhaustive()
    }
}

impl LambdaStore {
    /// Wraps a personalizer (typically the batch-trained Stage-3 state)
    /// and publishes its current λ values as the base of epoch 1.
    pub fn new(personalizer: Personalizer) -> Self {
        let seed = Arc::new(LambdaEpoch {
            epoch: 1,
            len: personalizer.profiles(),
            overlays: Vec::new(),
            base: Arc::new(flatten(&personalizer)),
        });
        Self {
            writer: parking_lot::Mutex::new(WriterState {
                personalizer,
                pending: LambdaTable::default(),
            }),
            slot: parking_lot::Mutex::new(seed),
        }
    }

    /// The current epoch — a cheap `Arc` clone; probe it lock-free.
    pub fn snapshot(&self) -> Arc<LambdaEpoch> {
        self.slot.lock().clone()
    }

    /// The currently published epoch number.
    pub fn version(&self) -> u64 {
        self.slot.lock().epoch
    }

    /// Applies one signal to the writer state, accumulating the touched
    /// keys for the next delta. Not visible to readers until
    /// [`LambdaStore::publish`].
    pub fn apply_signal(&self, signal: &SatisfactionSignal) {
        let w = &mut *self.writer.lock();
        let pending = &mut w.pending;
        w.personalizer.apply_signal_sink(signal, |path, lambdas| {
            pending.insert(PathKey::new(path).pack(), lambdas);
        });
    }

    /// Applies a batch of signals in order. Not visible to readers until
    /// [`LambdaStore::publish`].
    pub fn apply_signals(&self, signals: &[SatisfactionSignal]) {
        let w = &mut *self.writer.lock();
        let pending = &mut w.pending;
        for signal in signals {
            w.personalizer.apply_signal_sink(signal, |path, lambdas| {
                pending.insert(PathKey::new(path).pack(), lambdas);
            });
        }
    }

    /// Publishes pending changes as a new epoch, returning its number.
    /// Shorthand for [`LambdaStore::publish_delta`] when the delta itself
    /// is not needed.
    pub fn publish(&self) -> u64 {
        self.publish_delta().epoch
    }

    /// Publishes the keys touched since the last publish as a new overlay
    /// generation and swaps the epoch pointer — O(keys changed), never a
    /// full flatten. Returns the epoch-stamped [`LambdaDelta`] (sorted,
    /// canonical) for WAL framing and replication. An empty delta still
    /// advances the epoch.
    pub fn publish_delta(&self) -> LambdaDelta {
        let mut w = self.writer.lock();
        let current = self.slot.lock().clone();
        let epoch = current.epoch + 1;
        self.publish_pending(&mut w, &current, epoch)
    }

    /// Like [`LambdaStore::publish_delta`], but publishing at an
    /// externally minted epoch number instead of `current + 1`. This is
    /// how a sharded λ store keeps one global, WAL-monotone epoch sequence
    /// across per-customer shards: a central counter mints the number and
    /// the owning shard publishes at it, so shard-local epochs advance
    /// with gaps (which delta replay already tolerates) while the framed
    /// records stay strictly increasing.
    ///
    /// # Errors
    /// [`DeltaCorruption::EpochRegression`] if `epoch` does not advance
    /// this store's current epoch; pending changes stay pending.
    pub fn publish_delta_at(&self, epoch: u64) -> Result<LambdaDelta, DeltaCorruption> {
        let mut w = self.writer.lock();
        let current = self.slot.lock().clone();
        if epoch <= current.epoch {
            return Err(DeltaCorruption::EpochRegression {
                current: current.epoch,
                got: epoch,
            });
        }
        Ok(self.publish_pending(&mut w, &current, epoch))
    }

    /// Publishes the writer's pending keys at `epoch` and returns the
    /// delta. Caller holds the writer lock and guarantees the epoch
    /// advances.
    fn publish_pending(
        &self,
        w: &mut WriterState,
        current: &LambdaEpoch,
        epoch: u64,
    ) -> LambdaDelta {
        let pending = std::mem::take(&mut w.pending);
        let len = w.personalizer.profiles();
        let delta = LambdaDelta::new(
            epoch,
            pending
                .iter()
                .map(|(k, v)| (PathKey::unpack(*k).expect("packed from PathKey"), *v))
                .collect(),
        );
        self.swap_epoch(current, epoch, pending, len);
        delta
    }

    /// Applies a replicated delta — the follower-side mirror of
    /// [`LambdaStore::publish_delta`]: upserts every entry into the writer
    /// state and publishes at exactly `delta.epoch`. Epochs must advance
    /// monotonically but may skip numbers (a leader publishes epochs that
    /// never reach the WAL, e.g. the post-replay epoch after a restart).
    ///
    /// # Errors
    /// [`DeltaCorruption::EpochRegression`] if `delta.epoch` does not
    /// advance the store's current epoch; the store is unchanged.
    pub fn apply_delta(&self, delta: &LambdaDelta) -> Result<u64, DeltaCorruption> {
        let mut w = self.writer.lock();
        let current = self.slot.lock().clone();
        if delta.epoch <= current.epoch {
            return Err(DeltaCorruption::EpochRegression {
                current: current.epoch,
                got: delta.epoch,
            });
        }
        let state = &mut *w;
        for (key, lambdas) in &delta.entries {
            state.personalizer.set_lambdas(key.path(), *lambdas);
            state.pending.insert(key.pack(), *lambdas);
        }
        let pending = std::mem::take(&mut state.pending);
        let len = state.personalizer.profiles();
        self.swap_epoch(&current, delta.epoch, pending, len);
        drop(w);
        Ok(delta.epoch)
    }

    /// Fast-forwards the published epoch number to `epoch` without
    /// changing any λ values (no-op if already at or past it), returning
    /// the resulting epoch. Used after WAL replay so the next publish
    /// continues the on-disk epoch numbering instead of restarting below
    /// records already written.
    pub fn restore_epoch(&self, epoch: u64) -> u64 {
        let _writer = self.writer.lock();
        let current = self.slot.lock().clone();
        if current.epoch >= epoch {
            return current.epoch;
        }
        let mut renumbered = (*current).clone();
        renumbered.epoch = epoch;
        *self.slot.lock() = Arc::new(renumbered);
        epoch
    }

    /// Builds the next epoch from `current` plus one pending generation
    /// and swaps it into the slot. Merges piled-up generations and folds
    /// them into a fresh base past the compaction threshold — all outside
    /// the slot lock, so readers only ever wait for the pointer swap.
    /// Caller holds the writer lock, serializing epoch construction.
    fn swap_epoch(&self, current: &LambdaEpoch, epoch: u64, pending: LambdaTable, len: usize) {
        obs::LAMBDA_DELTA_KEYS.add(pending.len() as u64);
        let mut overlays = Vec::with_capacity(current.overlays.len() + 1);
        if !pending.is_empty() {
            overlays.push(Arc::new(pending));
        }
        overlays.extend(current.overlays.iter().cloned());
        let mut base = Arc::clone(&current.base);
        if overlays.len() > MAX_OVERLAY_GENERATIONS {
            // Merge every generation, oldest first, so newer rows win.
            let mut merged = LambdaTable::with_capacity_and_hasher(
                overlays.iter().map(|g| g.len()).sum(),
                BuildHasherDefault::default(),
            );
            for generation in overlays.iter().rev() {
                for (k, v) in generation.iter() {
                    merged.insert(*k, *v);
                }
            }
            if merged.len() * FOLD_DIVISOR >= base.len() {
                // Fold into a fresh base off the reader hot path.
                let mut folded = (*base).clone();
                folded.extend(merged);
                base = Arc::new(folded);
                overlays = Vec::new();
                obs::LAMBDA_COMPACTIONS.inc();
            } else {
                overlays = vec![Arc::new(merged)];
            }
        }
        *self.slot.lock() = Arc::new(LambdaEpoch {
            epoch,
            len,
            overlays,
            base,
        });
        obs::LAMBDA_PUBLISHES.inc();
    }

    /// Runs `f` against the writer-side personalizer (for reports and
    /// persistence — the serve path reads snapshots instead).
    pub fn with_personalizer<R>(&self, f: impl FnOnce(&Personalizer) -> R) -> R {
        f(&self.writer.lock().personalizer)
    }
}

/// Flattens the nested λ tree into the packed-key table an epoch's base
/// serves. Only used to seed epoch 1; subsequent publishes are deltas.
fn flatten(personalizer: &Personalizer) -> LambdaTable {
    let mut out = LambdaTable::with_capacity_and_hasher(
        personalizer.profiles(),
        BuildHasherDefault::default(),
    );
    for (path, lambdas) in personalizer.iter_profiles() {
        out.insert(PathKey::new(path).pack(), lambdas);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::personalizer::PersonalizerConfig;
    use lorentz_types::{CustomerId, ResourceGroupId, SubscriptionId};

    fn path(c: u32, s: u32, r: u32) -> ResourcePath {
        ResourcePath::new(CustomerId(c), SubscriptionId(s), ResourceGroupId(r))
    }

    fn store() -> LambdaStore {
        LambdaStore::new(Personalizer::new(PersonalizerConfig::default()).unwrap())
    }

    #[test]
    fn seed_snapshot_carries_trained_lambdas() {
        let mut p = Personalizer::new(PersonalizerConfig::default()).unwrap();
        p.set_lambda(path(1, 2, 3), ServerOffering::Burstable, 1.5);
        let store = LambdaStore::new(p);
        let snap = store.snapshot();
        assert_eq!(snap.version(), 1);
        assert_eq!(snap.len(), 1);
        assert_eq!(snap.generations(), 0);
        assert_eq!(snap.lambda(&path(1, 2, 3), ServerOffering::Burstable), 1.5);
        assert_eq!(snap.lambda(&path(9, 9, 9), ServerOffering::Burstable), 0.0);
    }

    #[test]
    fn publish_is_invisible_until_swapped() {
        let store = store();
        let before = store.snapshot();
        let sig =
            SatisfactionSignal::new(path(1, 1, 1), ServerOffering::GeneralPurpose, 1.0).unwrap();
        store.apply_signal(&sig);
        // Applied but unpublished: readers still see the old table.
        assert_eq!(
            store
                .snapshot()
                .lambda(&path(1, 1, 1), ServerOffering::GeneralPurpose),
            0.0
        );
        let v = store.publish();
        assert_eq!(v, 2);
        let after = store.snapshot();
        assert!((after.lambda(&path(1, 1, 1), ServerOffering::GeneralPurpose) - 0.3).abs() < 1e-12);
        // The pre-publish snapshot is untouched.
        assert_eq!(
            before.lambda(&path(1, 1, 1), ServerOffering::GeneralPurpose),
            0.0
        );
    }

    #[test]
    fn snapshot_matches_writer_for_every_offering() {
        let store = store();
        for (i, gamma) in [(1u32, 1.0), (2, -0.5), (3, 0.25)] {
            let sig =
                SatisfactionSignal::new(path(1, i, i * 10), ServerOffering::MemoryOptimized, gamma)
                    .unwrap();
            store.apply_signal(&sig);
        }
        store.publish();
        let snap = store.snapshot();
        store.with_personalizer(|p| {
            for (path, offering, lambda) in p.iter() {
                assert_eq!(snap.lambda(&path, offering), lambda);
            }
        });
    }

    #[test]
    fn adjust_mirrors_personalizer_adjust() {
        let store = store();
        let loc = path(1, 1, 1);
        let sig = SatisfactionSignal::new(loc, ServerOffering::GeneralPurpose, 1.0).unwrap();
        for _ in 0..3 {
            store.apply_signal(&sig);
        }
        store.publish();
        let snap = store.snapshot();
        let catalog = SkuCatalog::azure_postgres(ServerOffering::GeneralPurpose);
        let via_snapshot = snap.adjust(4.0, &loc, ServerOffering::GeneralPurpose, &catalog);
        let via_writer = store
            .with_personalizer(|p| p.adjust(4.0, &loc, ServerOffering::GeneralPurpose, &catalog));
        assert_eq!(via_snapshot, via_writer);
        assert_eq!(via_snapshot.capacity.primary(), 8.0);
    }

    #[test]
    fn publish_delta_carries_only_touched_keys() {
        let mut p = Personalizer::new(PersonalizerConfig::default()).unwrap();
        // A second customer that no signal will reach.
        p.register(path(9, 9, 9));
        let store = LambdaStore::new(p);
        let sig =
            SatisfactionSignal::new(path(1, 1, 1), ServerOffering::GeneralPurpose, 1.0).unwrap();
        store.apply_signal(&sig);
        let delta = store.publish_delta();
        assert_eq!(delta.epoch, 2);
        assert_eq!(delta.entries.len(), 1);
        assert_eq!(delta.entries[0].0, PathKey::new(path(1, 1, 1)));
        // Untouched profiles stay visible through the base.
        let snap = store.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap.generations(), 1);
        assert_eq!(snap.lambda(&path(9, 9, 9), ServerOffering::Burstable), 0.0);
    }

    #[test]
    fn empty_publish_advances_epoch_without_entries() {
        let store = store();
        let delta = store.publish_delta();
        assert_eq!(delta.epoch, 2);
        assert!(delta.is_empty());
        assert_eq!(store.snapshot().generations(), 0);
    }

    #[test]
    fn generations_merge_past_the_cap() {
        let store = store();
        for i in 0..10u32 {
            let sig = SatisfactionSignal::new(path(1, 1, i), ServerOffering::GeneralPurpose, 1.0)
                .unwrap();
            store.apply_signal(&sig);
            store.publish();
        }
        let snap = store.snapshot();
        assert!(snap.generations() <= MAX_OVERLAY_GENERATIONS);
        // Every published value still resolves, merged or not.
        store.with_personalizer(|p| {
            for (loc, off, l) in p.iter() {
                assert_eq!(snap.lambda(&loc, off).to_bits(), l.to_bits());
            }
        });
    }

    #[test]
    fn compaction_folds_overlays_into_new_base() {
        // One registered profile: every overlay immediately reaches the
        // fold threshold, so generations never accumulate past the merge.
        let store = store();
        let sig =
            SatisfactionSignal::new(path(1, 1, 1), ServerOffering::GeneralPurpose, 0.5).unwrap();
        for _ in 0..(MAX_OVERLAY_GENERATIONS + 1) {
            store.apply_signal(&sig);
            store.publish();
        }
        let snap = store.snapshot();
        assert_eq!(snap.generations(), 0, "overlays folded into the base");
        assert_eq!(snap.version(), 2 + MAX_OVERLAY_GENERATIONS as u64);
        let expect =
            store.with_personalizer(|p| p.lambda(&path(1, 1, 1), ServerOffering::GeneralPurpose));
        assert_eq!(
            snap.lambda(&path(1, 1, 1), ServerOffering::GeneralPurpose),
            expect
        );
    }

    #[test]
    fn apply_delta_replays_leader_epochs_bit_exactly() {
        let leader = store();
        let follower = store();
        let mut deltas = Vec::new();
        for (i, gamma) in [(1u32, 1.0), (2, -0.5), (3, 0.25), (1, -1.0)] {
            let sig =
                SatisfactionSignal::new(path(1, i, i * 10), ServerOffering::MemoryOptimized, gamma)
                    .unwrap();
            leader.apply_signal(&sig);
            deltas.push(leader.publish_delta());
        }
        for d in &deltas {
            follower.apply_delta(d).unwrap();
        }
        assert_eq!(follower.version(), leader.version());
        let l = leader.snapshot();
        let f = follower.snapshot();
        assert_eq!(f.len(), l.len());
        leader.with_personalizer(|p| {
            for (loc, off, lambda) in p.iter() {
                assert_eq!(f.lambda(&loc, off).to_bits(), lambda.to_bits());
                assert_eq!(l.lambda(&loc, off).to_bits(), lambda.to_bits());
            }
        });
    }

    #[test]
    fn apply_delta_rejects_stale_epochs() {
        let store = store();
        let delta = LambdaDelta::new(1, vec![(PathKey::new(path(1, 1, 1)), [9.0, 9.0, 9.0])]);
        let err = store.apply_delta(&delta).unwrap_err();
        assert!(matches!(
            err,
            DeltaCorruption::EpochRegression { current: 1, got: 1 }
        ));
        // The rejected delta left no trace.
        assert_eq!(store.version(), 1);
        assert_eq!(
            store
                .snapshot()
                .lambda(&path(1, 1, 1), ServerOffering::GeneralPurpose),
            0.0
        );
    }

    #[test]
    fn publish_delta_at_mints_gapped_epochs_and_rejects_regression() {
        let store = store();
        let sig =
            SatisfactionSignal::new(path(1, 1, 1), ServerOffering::GeneralPurpose, 1.0).unwrap();
        store.apply_signal(&sig);
        // A central counter may skip numbers this shard never minted.
        let delta = store.publish_delta_at(7).unwrap();
        assert_eq!(delta.epoch, 7);
        assert_eq!(delta.entries.len(), 1);
        assert_eq!(store.version(), 7);
        // Regression is refused and the pending keys survive for the next
        // valid publish.
        store.apply_signal(&sig);
        let err = store.publish_delta_at(7).unwrap_err();
        assert!(matches!(
            err,
            DeltaCorruption::EpochRegression { current: 7, got: 7 }
        ));
        let delta = store.publish_delta_at(9).unwrap();
        assert_eq!(delta.epoch, 9);
        assert_eq!(delta.entries.len(), 1, "pending keys were not lost");
        // The plain publisher continues from the adopted numbering.
        assert_eq!(store.publish_delta().epoch, 10);
    }

    #[test]
    fn apply_delta_accepts_epoch_gaps() {
        let store = store();
        let delta = LambdaDelta::new(7, vec![(PathKey::new(path(1, 1, 1)), [0.5, 0.5, 0.5])]);
        assert_eq!(store.apply_delta(&delta).unwrap(), 7);
        assert_eq!(store.version(), 7);
    }

    #[test]
    fn restore_epoch_fast_forwards_without_changing_lambdas() {
        let store = store();
        let sig =
            SatisfactionSignal::new(path(1, 1, 1), ServerOffering::GeneralPurpose, 1.0).unwrap();
        store.apply_signal(&sig);
        store.publish();
        let before = store.snapshot();
        assert_eq!(store.restore_epoch(9), 9);
        // Already past it: no-op.
        assert_eq!(store.restore_epoch(5), 9);
        let after = store.snapshot();
        assert_eq!(after.version(), 9);
        assert_eq!(
            after
                .lambda(&path(1, 1, 1), ServerOffering::GeneralPurpose)
                .to_bits(),
            before
                .lambda(&path(1, 1, 1), ServerOffering::GeneralPurpose)
                .to_bits()
        );
    }
}
