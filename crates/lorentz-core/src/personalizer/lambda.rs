//! The live λ-table: Stage-3 state behind atomic-Arc snapshots.
//!
//! Batch training freezes a [`Personalizer`] inside the deployment; online
//! personalization needs the same λ scores to keep moving while requests
//! are in flight. [`LambdaStore`] separates the two roles with the same
//! snapshot discipline as
//! [`SharedPredictionStore`](crate::SharedPredictionStore):
//!
//! * **Readers** clone an `Arc<LambdaSnapshot>` out of a mutex-guarded slot
//!   (the lock is held only for the refcount bump) and probe a flat
//!   `u128`-keyed hash table lock-free — [`PathKey`] packs the
//!   `(customer, subscription, resource group)` path the way
//!   [`StoreKey`](lorentz_types::StoreKey) packs prediction-store keys.
//! * **The writer** applies message-propagation rounds to a private
//!   [`Personalizer`] off to the side — its nested per-customer tree is the
//!   subscription index that keeps `apply_signal` on the affected subtrees
//!   — and [`LambdaStore::publish`] flattens the tree into a fresh
//!   snapshot and swaps the pointer with a monotonically increasing
//!   version.
//!
//! Readers therefore never observe a half-applied propagation round: a
//! snapshot is immutable from the moment it is published.

use super::{strat_index, Personalizer, SatisfactionSignal, StratLambdas};
use crate::obs;
use lorentz_types::{PathKey, ResourcePath, ServerOffering, Sku, SkuCatalog};
use std::collections::HashMap;
use std::sync::Arc;

/// One immutable published view of the λ-table. Probing never locks;
/// unregistered paths read λ = 0 exactly like
/// [`Personalizer::lambda`].
#[derive(Debug, Clone, Default)]
pub struct LambdaSnapshot {
    version: u64,
    lambdas: HashMap<u128, StratLambdas>,
}

impl LambdaSnapshot {
    /// Monotonically increasing publish version (the seed snapshot is 1).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The λ score for a location; 0 if no profile was registered when the
    /// snapshot was published.
    pub fn lambda(&self, path: &ResourcePath, offering: ServerOffering) -> f64 {
        self.lambdas
            .get(&PathKey::new(*path).pack())
            .map_or(0.0, |l| l[strat_index(offering)])
    }

    /// λ-adjusted capacity (Eq. 14): `c** = 2^λ · c*`, discretized to the
    /// catalog — the snapshot-side mirror of [`Personalizer::adjust`].
    pub fn adjust(
        &self,
        stage2_capacity: f64,
        path: &ResourcePath,
        offering: ServerOffering,
        catalog: &SkuCatalog,
    ) -> Sku {
        let lambda = self.lambda(path, offering);
        crate::provisioner::discretize(catalog, lambda.exp2() * stage2_capacity)
    }

    /// Number of registered profiles in this snapshot.
    pub fn len(&self) -> usize {
        self.lambdas.len()
    }

    /// Whether the snapshot holds no profiles.
    pub fn is_empty(&self) -> bool {
        self.lambdas.is_empty()
    }
}

/// Live-updatable Stage-3 state: a single-writer [`Personalizer`] plus the
/// atomic-Arc snapshot slot readers probe.
///
/// ```
/// use lorentz_core::personalizer::{LambdaStore, Personalizer, PersonalizerConfig};
/// use lorentz_core::SatisfactionSignal;
/// use lorentz_types::{CustomerId, ResourceGroupId, ResourcePath, ServerOffering, SubscriptionId};
///
/// let store = LambdaStore::new(Personalizer::new(PersonalizerConfig::default())?);
/// let path = ResourcePath::new(CustomerId(1), SubscriptionId(1), ResourceGroupId(1));
/// let before = store.snapshot();
///
/// store.apply_signal(&SatisfactionSignal::new(path, ServerOffering::GeneralPurpose, 1.0)?);
/// store.publish();
///
/// // The old snapshot is immutable; a fresh one sees the new λ.
/// assert_eq!(before.lambda(&path, ServerOffering::GeneralPurpose), 0.0);
/// let after = store.snapshot();
/// assert!((after.lambda(&path, ServerOffering::GeneralPurpose) - 0.3).abs() < 1e-12);
/// assert!(after.version() > before.version());
/// # Ok::<(), lorentz_types::LorentzError>(())
/// ```
#[derive(Debug)]
pub struct LambdaStore {
    /// The single writer's working state. The nested customer →
    /// subscription → resource-group tree doubles as the propagation
    /// index.
    writer: parking_lot::Mutex<Personalizer>,
    /// The published snapshot readers clone.
    slot: parking_lot::Mutex<Arc<LambdaSnapshot>>,
}

impl LambdaStore {
    /// Wraps a personalizer (typically the batch-trained Stage-3 state)
    /// and publishes its current λ values as snapshot version 1.
    pub fn new(personalizer: Personalizer) -> Self {
        let seed = Arc::new(LambdaSnapshot {
            version: 1,
            lambdas: flatten(&personalizer),
        });
        Self {
            writer: parking_lot::Mutex::new(personalizer),
            slot: parking_lot::Mutex::new(seed),
        }
    }

    /// The current snapshot — a cheap `Arc` clone; probe it lock-free.
    pub fn snapshot(&self) -> Arc<LambdaSnapshot> {
        self.slot.lock().clone()
    }

    /// The currently published snapshot version.
    pub fn version(&self) -> u64 {
        self.slot.lock().version
    }

    /// Applies one signal to the writer state. Not visible to readers
    /// until [`LambdaStore::publish`].
    pub fn apply_signal(&self, signal: &SatisfactionSignal) {
        self.writer.lock().apply_signal(signal);
    }

    /// Applies a batch of signals in order. Not visible to readers until
    /// [`LambdaStore::publish`].
    pub fn apply_signals(&self, signals: &[SatisfactionSignal]) {
        self.writer.lock().apply_signals(signals);
    }

    /// Flattens the writer state into a fresh snapshot and swaps it in,
    /// returning the new version. The flatten happens outside the slot
    /// lock, so readers are never blocked behind it.
    pub fn publish(&self) -> u64 {
        let lambdas = flatten(&self.writer.lock());
        let mut guard = self.slot.lock();
        let version = guard.version + 1;
        *guard = Arc::new(LambdaSnapshot { version, lambdas });
        obs::LAMBDA_PUBLISHES.inc();
        version
    }

    /// Runs `f` against the writer-side personalizer (for reports and
    /// persistence — the serve path reads snapshots instead).
    pub fn with_personalizer<R>(&self, f: impl FnOnce(&Personalizer) -> R) -> R {
        f(&self.writer.lock())
    }
}

/// Flattens the nested λ tree into the packed-key table a snapshot serves.
fn flatten(personalizer: &Personalizer) -> HashMap<u128, StratLambdas> {
    let mut out = HashMap::with_capacity(personalizer.profiles());
    for (path, lambdas) in personalizer.iter_profiles() {
        out.insert(PathKey::new(path).pack(), lambdas);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::personalizer::PersonalizerConfig;
    use lorentz_types::{CustomerId, ResourceGroupId, SubscriptionId};

    fn path(c: u32, s: u32, r: u32) -> ResourcePath {
        ResourcePath::new(CustomerId(c), SubscriptionId(s), ResourceGroupId(r))
    }

    fn store() -> LambdaStore {
        LambdaStore::new(Personalizer::new(PersonalizerConfig::default()).unwrap())
    }

    #[test]
    fn seed_snapshot_carries_trained_lambdas() {
        let mut p = Personalizer::new(PersonalizerConfig::default()).unwrap();
        p.set_lambda(path(1, 2, 3), ServerOffering::Burstable, 1.5);
        let store = LambdaStore::new(p);
        let snap = store.snapshot();
        assert_eq!(snap.version(), 1);
        assert_eq!(snap.len(), 1);
        assert_eq!(snap.lambda(&path(1, 2, 3), ServerOffering::Burstable), 1.5);
        assert_eq!(snap.lambda(&path(9, 9, 9), ServerOffering::Burstable), 0.0);
    }

    #[test]
    fn publish_is_invisible_until_swapped() {
        let store = store();
        let before = store.snapshot();
        let sig =
            SatisfactionSignal::new(path(1, 1, 1), ServerOffering::GeneralPurpose, 1.0).unwrap();
        store.apply_signal(&sig);
        // Applied but unpublished: readers still see the old table.
        assert_eq!(
            store
                .snapshot()
                .lambda(&path(1, 1, 1), ServerOffering::GeneralPurpose),
            0.0
        );
        let v = store.publish();
        assert_eq!(v, 2);
        let after = store.snapshot();
        assert!((after.lambda(&path(1, 1, 1), ServerOffering::GeneralPurpose) - 0.3).abs() < 1e-12);
        // The pre-publish snapshot is untouched.
        assert_eq!(
            before.lambda(&path(1, 1, 1), ServerOffering::GeneralPurpose),
            0.0
        );
    }

    #[test]
    fn snapshot_matches_writer_for_every_offering() {
        let store = store();
        for (i, gamma) in [(1u32, 1.0), (2, -0.5), (3, 0.25)] {
            let sig =
                SatisfactionSignal::new(path(1, i, i * 10), ServerOffering::MemoryOptimized, gamma)
                    .unwrap();
            store.apply_signal(&sig);
        }
        store.publish();
        let snap = store.snapshot();
        store.with_personalizer(|p| {
            for (path, offering, lambda) in p.iter() {
                assert_eq!(snap.lambda(&path, offering), lambda);
            }
        });
    }

    #[test]
    fn adjust_mirrors_personalizer_adjust() {
        let store = store();
        let loc = path(1, 1, 1);
        let sig = SatisfactionSignal::new(loc, ServerOffering::GeneralPurpose, 1.0).unwrap();
        for _ in 0..3 {
            store.apply_signal(&sig);
        }
        store.publish();
        let snap = store.snapshot();
        let catalog = SkuCatalog::azure_postgres(ServerOffering::GeneralPurpose);
        let via_snapshot = snap.adjust(4.0, &loc, ServerOffering::GeneralPurpose, &catalog);
        let via_writer = store
            .with_personalizer(|p| p.adjust(4.0, &loc, ServerOffering::GeneralPurpose, &catalog));
        assert_eq!(via_snapshot, via_writer);
        assert_eq!(via_snapshot.capacity.primary(), 8.0);
    }
}
