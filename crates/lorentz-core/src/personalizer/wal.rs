//! The satisfaction-signal write-ahead log.
//!
//! A published λ epoch lives in memory; the signals that produced it must
//! survive a crash. [`SignalWal`] appends every accepted signal as a
//! CRC-framed record *before* the epoch is published, and replays the log
//! on startup so a restarted server rebuilds exactly the λ state it lost.
//! Since the epoch/delta refactor each record also carries the
//! epoch-stamped [`LambdaDelta`] the signal produced ([`WalRecord`]), so
//! the same log doubles as the replication stream a
//! [`WalTailer`]-driven follower applies without re-running propagation.
//!
//! Each record is framed independently (unlike the whole-file snapshot
//! frames of [`store::durability`](crate::store::durability), the WAL
//! grows by appending):
//!
//! ```text
//! [4 magic "LSIG"] [4 payload len u32 LE] [4 payload CRC32C u32 LE] [payload]
//! ```
//!
//! The payload is JSON: a bare [`SatisfactionSignal`] (the legacy
//! format, still replayed), a [`WalRecord`] `{signal, delta}` object, or
//! a [`TermRecord`] `{leader_term}` marker appended whenever a process
//! mints a new leader term (logs written before fencing existed carry no
//! markers and recover as term 0).
//! Appends are `write_all` + `fsync` under [`retry_with_backoff`], so
//! transient I/O failures retry and permanent ones surface. A crash
//! mid-append leaves a torn final record; replay verifies each frame's
//! CRC, keeps every intact prefix record, truncates the torn tail, and
//! reports how many bytes were dropped — mirroring the newest-first
//! fallback discipline of the durable store. The `personalizer.wal.append`
//! fail point injects torn appends, bit flips, and transient errors under
//! the `fault-injection` feature. [`SignalWal::verify`] walks a log
//! read-only and reports each record's verdict (the `lorentz wal-verify`
//! command), reusing [`StoreCorruption`] so operators see the same
//! corruption taxonomy as `store-verify`.

use super::SatisfactionSignal;
use crate::obs;
use crate::retry::{is_transient_io, retry_with_backoff, RetryPolicy};
use crate::store::StoreError;
use lorentz_fault::fail_point;
use lorentz_types::framing::{Decoded, FrameCodec, FrameError};
use lorentz_types::{LambdaDelta, StoreCorruption};
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Frame magic for one WAL record.
const MAGIC: [u8; 4] = *b"LSIG";
/// Fixed bytes before each record's payload.
const HEADER_LEN: usize = 12;
/// Upper bound on a record payload. A delta record lists every profile a
/// propagation round touched — potentially a whole customer subtree — so
/// the cap is generous; a larger declared length still means the header
/// itself is corrupt.
const MAX_PAYLOAD: u32 = 1 << 24;

/// The WAL's frame codec: `[4 magic "LSIG"][4 len u32 LE][4 CRC32C u32 LE]`
/// then the payload. Public because the replication stream carries these
/// exact frames over a socket, and the TCP follower decodes them with the
/// same codec that wrote the leader's disk.
pub fn wal_codec() -> FrameCodec {
    FrameCodec::wal(MAGIC, MAX_PAYLOAD as usize)
}

/// One delta-framed WAL record: the accepted signal plus the epoch-stamped
/// [`LambdaDelta`] applying it produced on the leader. The leader's replay
/// path only needs `signal`; a follower only needs `delta`; `wal-verify`
/// prints both.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WalRecord {
    /// The satisfaction signal as accepted.
    pub signal: SatisfactionSignal,
    /// The λ changes applying it produced, stamped with the epoch the
    /// leader published.
    pub delta: LambdaDelta,
}

/// A leader-term marker: appended once whenever a process mints a new
/// leader term (fresh-log startup, every promotion). Terms never regress
/// within one log, so the highest marker reconstructs the lineage's
/// current term on recovery; because the replication stream carries the
/// log's frames verbatim, the marker also tells every follower which
/// term produced the records after it — without per-frame headers that
/// would break the replica's byte-identical-log property.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TermRecord {
    /// The minted leader term.
    pub leader_term: u64,
}

/// One intact record read back from a log, any format.
#[derive(Debug, Clone, PartialEq)]
pub enum WalEntry {
    /// A legacy bare-signal record (pre-delta format): replayable through
    /// propagation, but carrying no epoch for a follower.
    Signal(SatisfactionSignal),
    /// A delta-framed [`WalRecord`].
    Record(WalRecord),
    /// A leader-term marker ([`TermRecord`]).
    Term(u64),
}

impl WalEntry {
    /// The signal this entry carries, `None` for a term marker.
    pub fn signal(&self) -> Option<&SatisfactionSignal> {
        match self {
            WalEntry::Signal(s) => Some(s),
            WalEntry::Record(r) => Some(&r.signal),
            WalEntry::Term(_) => None,
        }
    }

    /// The delta epoch, if this is a delta-framed record.
    pub fn epoch(&self) -> Option<u64> {
        match self {
            WalEntry::Record(r) => Some(r.delta.epoch),
            WalEntry::Signal(_) | WalEntry::Term(_) => None,
        }
    }

    /// The minted leader term, if this is a term marker.
    pub fn term(&self) -> Option<u64> {
        match self {
            WalEntry::Term(t) => Some(*t),
            WalEntry::Signal(_) | WalEntry::Record(_) => None,
        }
    }
}

/// What [`SignalWal::open`] recovered from an existing log.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecovery {
    /// Every intact signal, in append order — apply these before serving.
    pub signals: Vec<SatisfactionSignal>,
    /// The highest delta epoch among intact records (0 when the log is
    /// empty or all-legacy). After replaying, fast-forward the λ store to
    /// at least this epoch so new appends continue the on-disk numbering.
    pub last_epoch: u64,
    /// The highest leader term among intact [`TermRecord`] markers (0 for
    /// a log written before fencing existed). A restarting leader resumes
    /// this term; a promotion mints a strictly higher one.
    pub last_term: u64,
    /// Bytes discarded from a torn final record (0 for a clean log).
    pub torn_tail_bytes: usize,
}

/// An append-only, CRC-framed log of satisfaction signals and their λ
/// deltas. Framing is the shared [`wal_codec`]; [`SignalWal::replay_from`]
/// is the leader-side resume cursor behind the replication handshake.
pub struct SignalWal {
    path: PathBuf,
    file: File,
    retry: RetryPolicy,
}

impl std::fmt::Debug for SignalWal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SignalWal")
            .field("path", &self.path)
            .finish()
    }
}

impl SignalWal {
    /// Opens (or creates) the log at `path` with the default retry policy,
    /// replaying every intact record and truncating a torn tail.
    ///
    /// # Errors
    /// Returns [`StoreError::Io`] when the file cannot be opened, read, or
    /// truncated.
    pub fn open(path: impl AsRef<Path>) -> Result<(Self, WalRecovery), StoreError> {
        Self::open_with(path, RetryPolicy::default())
    }

    /// [`SignalWal::open`] with an explicit append retry policy.
    ///
    /// # Errors
    /// Returns [`StoreError::Io`] when the file cannot be opened, read, or
    /// truncated.
    pub fn open_with(
        path: impl AsRef<Path>,
        retry: RetryPolicy,
    ) -> Result<(Self, WalRecovery), StoreError> {
        let path = path.as_ref().to_path_buf();
        let io_err = |source: io::Error| StoreError::Io {
            path: path.display().to_string(),
            source,
        };
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(&io_err)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes).map_err(&io_err)?;
        let (entries, good_len) = parse_frames(&bytes);
        let torn_tail_bytes = bytes.len() - good_len;
        if torn_tail_bytes > 0 {
            file.set_len(good_len as u64).map_err(&io_err)?;
            obs::WAL_TORN_TAILS.inc();
        }
        file.seek(SeekFrom::Start(good_len as u64))
            .map_err(&io_err)?;
        obs::WAL_REPLAYED.add(entries.len() as u64);
        let last_epoch = entries
            .iter()
            .filter_map(WalEntry::epoch)
            .max()
            .unwrap_or(0);
        let last_term = entries.iter().filter_map(WalEntry::term).max().unwrap_or(0);
        let signals = entries.iter().filter_map(|e| e.signal().copied()).collect();
        Ok((
            Self { path, file, retry },
            WalRecovery {
                signals,
                last_epoch,
                last_term,
                torn_tail_bytes,
            },
        ))
    }

    /// Walks the log at `path` read-only, reporting a verdict per record
    /// — the `lorentz wal-verify` backend. Unlike [`SignalWal::open`] this
    /// never truncates: a torn or corrupt tail is described, not repaired.
    ///
    /// # Errors
    /// Returns [`StoreError::Io`] when the file cannot be read.
    pub fn verify(path: impl AsRef<Path>) -> Result<WalVerifyReport, StoreError> {
        let path = path.as_ref();
        let bytes = std::fs::read(path).map_err(|source| StoreError::Io {
            path: path.display().to_string(),
            source,
        })?;
        let mut records = Vec::new();
        let mut offset = 0usize;
        let mut corrupt = None;
        loop {
            match next_frame(&bytes, offset) {
                None => break,
                Some(Err(why)) => {
                    corrupt = Some((offset as u64, why));
                    break;
                }
                Some(Ok((entry, end))) => {
                    records.push(WalRecordSummary {
                        index: records.len(),
                        offset: offset as u64,
                        epoch: entry.epoch(),
                        term: entry.term(),
                        delta_keys: match &entry {
                            WalEntry::Record(r) => r.delta.entries.len(),
                            WalEntry::Signal(_) | WalEntry::Term(_) => 0,
                        },
                        signal: entry.signal().copied(),
                    });
                    offset = end;
                }
            }
        }
        Ok(WalVerifyReport {
            records,
            corrupt,
            trailing_bytes: (bytes.len() - offset) as u64,
        })
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one delta-framed record durably: frame, `write_all`,
    /// `fsync`, with transient I/O failures retried under the policy.
    /// This is the leader's append path; followers replay the embedded
    /// delta without re-running propagation.
    ///
    /// # Errors
    /// Returns [`StoreError::Serialize`] when the record cannot be
    /// encoded and [`StoreError::Io`] when the write fails permanently.
    pub fn append_record(&mut self, record: &WalRecord) -> Result<(), StoreError> {
        let payload =
            serde_json::to_string(record).map_err(|e| StoreError::Serialize(format!("{e}")))?;
        self.append_payload(payload.as_bytes())
    }

    /// Appends one bare signal durably (the legacy record format, kept
    /// for writers that have no λ store to produce deltas from, e.g. the
    /// offline `lorentz feedback` tool).
    ///
    /// # Errors
    /// Returns [`StoreError::Serialize`] when the signal cannot be
    /// encoded and [`StoreError::Io`] when the write fails permanently.
    pub fn append(&mut self, signal: &SatisfactionSignal) -> Result<(), StoreError> {
        let payload =
            serde_json::to_string(signal).map_err(|e| StoreError::Serialize(format!("{e}")))?;
        self.append_payload(payload.as_bytes())
    }

    /// Appends one leader-term marker durably. Term markers are control
    /// records, not feedback: they share the framing, retry, and
    /// fail-point discipline of every other append but are *not* counted
    /// in `personalizer.wal.appends`, which meters accepted signals.
    ///
    /// # Errors
    /// Returns [`StoreError::Serialize`] when the record cannot be
    /// encoded and [`StoreError::Io`] when the write fails permanently.
    pub fn append_term(&mut self, term: u64) -> Result<(), StoreError> {
        let payload = serde_json::to_string(&TermRecord { leader_term: term })
            .map_err(|e| StoreError::Serialize(format!("{e}")))?;
        let frame = frame_payload(payload.as_bytes());
        self.write_frame(&frame)
    }

    fn append_payload(&mut self, payload: &[u8]) -> Result<(), StoreError> {
        let frame = frame_payload(payload);
        self.append_frame(&frame)
    }

    /// Appends pre-framed record bytes (from [`frame_record`], or received
    /// off a replication stream) durably, under the same retry and
    /// fail-point discipline as [`SignalWal::append_record`]. The frame is
    /// written verbatim, so a TCP follower's local log stays byte-identical
    /// to the leader's.
    ///
    /// # Errors
    /// Returns [`StoreError::Io`] when the write fails permanently.
    pub fn append_frame(&mut self, frame: &[u8]) -> Result<(), StoreError> {
        self.write_frame(frame)?;
        obs::WAL_APPENDS.inc();
        Ok(())
    }

    /// The durable write every append path shares: `write_all` + `fsync`
    /// under the retry policy, metering left to the caller.
    fn write_frame(&mut self, frame: &[u8]) -> Result<(), StoreError> {
        let policy = self.retry;
        retry_with_backoff(&policy, is_transient_io, |_| self.append_once(frame)).map_err(
            |source| StoreError::Io {
                path: self.path.display().to_string(),
                source,
            },
        )
    }

    /// Discards every record, resetting the log to empty — the follower's
    /// full-resync path, where the leader's stream restarts from its log's
    /// beginning and the local copy must restart with it.
    ///
    /// # Errors
    /// Returns [`StoreError::Io`] when the truncate fails.
    pub fn truncate_all(&mut self) -> Result<(), StoreError> {
        let io_err = |source: io::Error| StoreError::Io {
            path: self.path.display().to_string(),
            source,
        };
        self.file.set_len(0).map_err(io_err)?;
        self.file.seek(SeekFrom::Start(0)).map_err(io_err)?;
        Ok(())
    }

    fn append_once(&mut self, frame: &[u8]) -> io::Result<()> {
        fail_point!("personalizer.wal.append", |action| inject_append_fault(
            &mut self.file,
            frame,
            action
        ));
        self.file.write_all(frame)?;
        self.file.sync_data()
    }

    /// The leader-side resume cursor: reads the log at `path` and returns
    /// the raw frames a subscriber resuming from `last_epoch` must receive,
    /// in log order.
    ///
    /// Resume is positional, not epoch-filtered: a follower's `last_epoch`
    /// always names a record it applied *from this log* (epochs are minted
    /// by one global counter and the log is append-only), so the cursor
    /// finds the record carrying that epoch and replays everything after
    /// it — including legacy bare-signal frames, which carry no epoch but
    /// still belong to the stream. When `last_epoch > 0` and no record
    /// carries it, the log has been compacted/rotated past the follower's
    /// position: the whole log is returned with `full_resync = true`, and
    /// the follower must reset its λ-state before applying.
    ///
    /// A torn/corrupt tail ends the cursor at the last good boundary,
    /// matching every other reader of the log.
    ///
    /// # Errors
    /// Returns [`StoreError::Io`] when the file exists but cannot be read
    /// (a missing file is an empty log, not an error).
    pub fn replay_from(path: impl AsRef<Path>, last_epoch: u64) -> Result<WalReplay, StoreError> {
        let path = path.as_ref();
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(source) => {
                return Err(StoreError::Io {
                    path: path.display().to_string(),
                    source,
                });
            }
        };
        let mut frames: Vec<(Option<u64>, usize, usize)> = Vec::new();
        let mut offset = 0usize;
        while let Some(Ok((entry, end))) = next_frame(&bytes, offset) {
            frames.push((entry.epoch(), offset, end));
            offset = end;
        }
        let log_last_epoch = frames.iter().filter_map(|(e, _, _)| *e).max().unwrap_or(0);
        let (start_index, full_resync) = if last_epoch == 0 {
            (0, false)
        } else {
            match frames.iter().rposition(|(e, _, _)| *e == Some(last_epoch)) {
                Some(i) => (i + 1, false),
                None => (0, true),
            }
        };
        let frames = frames[start_index..]
            .iter()
            .map(|&(_, start, end)| bytes[start..end].to_vec())
            .collect();
        Ok(WalReplay {
            frames,
            full_resync,
            log_last_epoch,
        })
    }
}

/// What [`SignalWal::replay_from`] found for a resuming subscriber.
#[derive(Debug, Clone, PartialEq)]
pub struct WalReplay {
    /// Raw framed records to send, in log order — byte-identical to the
    /// on-disk frames.
    pub frames: Vec<Vec<u8>>,
    /// True when the log no longer reaches back to the requested epoch:
    /// `frames` is then the *entire* log and the subscriber must reset its
    /// λ-state before applying.
    pub full_resync: bool,
    /// The highest delta epoch among the log's intact records (0 when the
    /// log is empty or all-legacy).
    pub log_last_epoch: u64,
}

/// Exponential idle backoff for poll loops: each consecutive idle poll
/// doubles the sleep from `base` up to `cap`, and any productive poll
/// resets it. Replaces the follower's hard-coded 20 ms spin so an idle
/// standby stops burning a syscall loop. [`PollBackoff::with_jitter`]
/// additionally scatters each sleep by a seeded ±50% so a fleet of
/// followers healing from the same partition doesn't reconnect in
/// lockstep.
#[derive(Debug, Clone)]
pub struct PollBackoff {
    base: Duration,
    cap: Duration,
    next: Duration,
    /// SplitMix64 state when jitter is on; `None` doubles exactly.
    jitter: Option<u64>,
}

impl PollBackoff {
    /// Default backoff ceiling (~200 ms): long enough to quiet an idle
    /// follower, short enough that catch-up latency stays invisible.
    pub const DEFAULT_CAP: Duration = Duration::from_millis(200);

    /// A backoff starting at `base` and doubling up to `cap`.
    pub fn new(base: Duration, cap: Duration) -> Self {
        let cap = cap.max(base);
        Self {
            base,
            cap,
            next: base,
            jitter: None,
        }
    }

    /// Like [`PollBackoff::new`], but each returned sleep is scaled by a
    /// deterministic seeded factor in `[0.5, 1.5)`. The doubling schedule
    /// underneath is unchanged — only the emitted sleeps scatter — so two
    /// backoffs with the same seed still produce identical schedules
    /// (replayable under the chaos harness).
    pub fn with_jitter(base: Duration, cap: Duration, seed: u64) -> Self {
        Self {
            jitter: Some(seed),
            ..Self::new(base, cap)
        }
    }

    /// Called after an idle poll: returns how long to sleep, then doubles
    /// the next idle sleep (saturating at the cap).
    pub fn idle(&mut self) -> Duration {
        let sleep = match self.jitter.as_mut() {
            None => self.next,
            Some(state) => {
                // SplitMix64: one step of state, mixed into [0.5, 1.5).
                *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = *state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                let frac = (z >> 11) as f64 / (1u64 << 53) as f64;
                self.next.mul_f64(0.5 + frac)
            }
        };
        self.next = (self.next * 2).min(self.cap);
        sleep
    }

    /// Called after a productive poll: the next idle sleep restarts at
    /// `base`.
    pub fn reset(&mut self) {
        self.next = self.base;
    }

    /// The configured base interval.
    pub fn base(&self) -> Duration {
        self.base
    }
}

/// Read-only verdict for one log, from [`SignalWal::verify`].
#[derive(Debug, Clone, PartialEq)]
pub struct WalVerifyReport {
    /// One summary per intact record, in append order.
    pub records: Vec<WalRecordSummary>,
    /// Why the walk stopped before end-of-file: byte offset of the first
    /// corrupt frame plus the failed integrity check. `None` for a clean
    /// log.
    pub corrupt: Option<(u64, StoreCorruption)>,
    /// Bytes after the intact prefix (the torn/corrupt tail; 0 if clean).
    pub trailing_bytes: u64,
}

/// One intact record's summary within a [`WalVerifyReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecordSummary {
    /// Zero-based record index.
    pub index: usize,
    /// Byte offset of the record's frame.
    pub offset: u64,
    /// The delta epoch, `None` for a legacy bare-signal record or a term
    /// marker.
    pub epoch: Option<u64>,
    /// The minted leader term, `Some` only for a term marker.
    pub term: Option<u64>,
    /// Number of λ keys the embedded delta carries (0 otherwise).
    pub delta_keys: usize,
    /// The signal the record carries, `None` for a term marker.
    pub signal: Option<SatisfactionSignal>,
}

/// A poll-based reader that follows a leader's log as it grows — the
/// file-tail transport behind
/// [`FollowerEngine`](../../lorentz-serve) replication. The interface is
/// transport-shaped (each poll yields the next complete entries), so a
/// socket-fed implementation can replace the file read without changing
/// the follower.
///
/// The tailer never truncates: a torn or corrupt tail simply ends the
/// poll at the last good boundary, and the next poll re-reads from there
/// — after the leader restarts (truncating the tear) and appends, the
/// same offset yields the fresh records.
#[derive(Debug, Clone)]
pub struct WalTailer {
    path: PathBuf,
    offset: u64,
}

impl WalTailer {
    /// Creates a tailer at the start of `path` (which may not exist yet —
    /// polls return nothing until the leader creates it).
    pub fn new(path: impl AsRef<Path>) -> Self {
        Self {
            path: path.as_ref().to_path_buf(),
            offset: 0,
        }
    }

    /// The byte offset of the next unread record.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Reads every complete record appended since the last poll. A
    /// missing file yields an empty batch; a torn/corrupt tail ends the
    /// batch at the last good boundary without consuming it. If the file
    /// shrank below the tailer's offset (the log was replaced), the
    /// tailer restarts from the beginning — epoch monotonicity on the
    /// applying store makes re-reads harmless.
    ///
    /// # Errors
    /// Returns [`StoreError::Io`] when the file exists but cannot be
    /// read.
    pub fn poll(&mut self) -> Result<Vec<WalEntry>, StoreError> {
        let io_err = |source: io::Error| StoreError::Io {
            path: self.path.display().to_string(),
            source,
        };
        let mut file = match File::open(&self.path) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(io_err(e)),
        };
        let len = file.metadata().map_err(&io_err)?.len();
        if len < self.offset {
            self.offset = 0;
        }
        file.seek(SeekFrom::Start(self.offset)).map_err(&io_err)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes).map_err(&io_err)?;
        let (entries, good_len) = parse_frames(&bytes);
        self.offset += good_len as u64;
        Ok(entries)
    }
}

/// Builds the framed bytes for one record payload via the shared
/// [`wal_codec`].
fn frame_payload(payload: &[u8]) -> Vec<u8> {
    wal_codec().encode(payload)
}

/// Frames one delta record exactly as [`SignalWal::append_record`] writes
/// it — the leader's replication fanout broadcasts these bytes so the
/// stream a follower receives is byte-identical to the leader's disk.
///
/// # Errors
/// Returns [`StoreError::Serialize`] when the record cannot be encoded.
pub fn frame_record(record: &WalRecord) -> Result<Vec<u8>, StoreError> {
    let payload =
        serde_json::to_string(record).map_err(|e| StoreError::Serialize(format!("{e}")))?;
    Ok(frame_payload(payload.as_bytes()))
}

/// Decodes an intact frame payload into a [`WalEntry`].
fn parse_entry(payload: &[u8]) -> Result<WalEntry, StoreCorruption> {
    let Ok(text) = std::str::from_utf8(payload) else {
        return Err(StoreCorruption::BadPayload(
            "payload is not UTF-8".to_owned(),
        ));
    };
    // Delta-framed first, then term markers, legacy bare signal as the
    // fallback — the three JSON shapes share no fields, so the match is
    // unambiguous.
    if let Ok(record) = serde_json::from_str::<WalRecord>(text) {
        return Ok(WalEntry::Record(record));
    }
    if let Ok(term) = serde_json::from_str::<TermRecord>(text) {
        return Ok(WalEntry::Term(term.leader_term));
    }
    match serde_json::from_str::<SatisfactionSignal>(text) {
        Ok(signal) => Ok(WalEntry::Signal(signal)),
        Err(e) => Err(StoreCorruption::BadPayload(format!("{e}"))),
    }
}

/// Examines the frame starting at `offset`: `None` at clean end-of-log,
/// `Some(Ok((entry, next_offset)))` for an intact record, `Some(Err)`
/// naming the failed integrity check. Frames are self-delimiting, so the
/// first violation ends every walk — the bytes after it cannot be
/// re-synchronized. Structural checks (magic, cap, CRC, truncation) are
/// the shared codec's; this translates its verdicts into the store's
/// corruption taxonomy.
///
/// Public so transports that carry WAL frames verbatim (the TCP
/// replication stream) can decode with exactly the on-disk rules. In a
/// streaming context `HeaderTruncated`/`Truncated` mean "wait for more
/// bytes", not corruption.
pub fn next_frame(
    bytes: &[u8],
    offset: usize,
) -> Option<Result<(WalEntry, usize), StoreCorruption>> {
    let remaining = bytes.len() - offset;
    if remaining == 0 {
        return None;
    }
    match wal_codec().decode(bytes, offset) {
        Ok(Decoded::Frame { payload, consumed }) => {
            Some(parse_entry(payload).map(|entry| (entry, offset + consumed)))
        }
        Ok(Decoded::Incomplete {
            got,
            declared: None,
        }) => Some(Err(StoreCorruption::HeaderTruncated {
            got,
            need: HEADER_LEN,
        })),
        Ok(Decoded::Incomplete {
            got,
            declared: Some(len),
        }) => Some(Err(StoreCorruption::Truncated {
            declared: len as u64,
            got: (got - HEADER_LEN) as u64,
        })),
        Err(FrameError::BadMagic { found }) => Some(Err(StoreCorruption::BadMagic { found })),
        Err(FrameError::TooLarge { len, .. }) => Some(Err(StoreCorruption::BadPayload(format!(
            "declared payload length {len} exceeds the {MAX_PAYLOAD}-byte record cap"
        )))),
        Err(FrameError::ChecksumMismatch { expected, actual }) => {
            Some(Err(StoreCorruption::ChecksumMismatch { expected, actual }))
        }
    }
}

/// Walks the log bytes frame by frame, returning every intact entry and
/// the byte offset where the intact prefix ends. Any violation ends the
/// walk there: everything after it is the torn tail.
fn parse_frames(bytes: &[u8]) -> (Vec<WalEntry>, usize) {
    let mut entries = Vec::new();
    let mut offset = 0usize;
    while let Some(Ok((entry, end))) = next_frame(bytes, offset) {
        entries.push(entry);
        offset = end;
    }
    (entries, offset)
}

/// Interprets a fired `personalizer.wal.append` action: `partial(FRAC)`
/// writes that fraction of the frame and kills the process (the
/// kill-mid-append scenario), `flip(BIT)` commits a corrupted frame as if
/// it succeeded, `error`/`interrupted` surface as permanent/transient I/O
/// errors.
#[cfg(feature = "fault-injection")]
fn inject_append_fault(
    file: &mut File,
    frame: &[u8],
    action: lorentz_fault::FailAction,
) -> io::Result<()> {
    use lorentz_fault::FailAction;
    match action {
        FailAction::Panic => panic!("fail point 'personalizer.wal.append' injected a panic"),
        FailAction::Abort => std::process::abort(),
        FailAction::Partial(frac) => {
            let keep = ((frame.len() as f64) * frac.clamp(0.0, 1.0)) as usize;
            let _ = file.write_all(&frame[..keep]);
            let _ = file.sync_data();
            std::process::abort();
        }
        FailAction::FlipBit(bit) => {
            let mut corrupt = frame.to_vec();
            let bit = (bit as usize) % (corrupt.len() * 8);
            corrupt[bit / 8] ^= 1 << (bit % 8);
            file.write_all(&corrupt)?;
            file.sync_data()
        }
        FailAction::Error => Err(io::Error::new(
            io::ErrorKind::PermissionDenied,
            "injected permanent WAL error",
        )),
        FailAction::Interrupted => Err(io::Error::new(
            io::ErrorKind::Interrupted,
            "injected transient WAL error",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lorentz_types::{
        CustomerId, PathKey, ResourceGroupId, ResourcePath, ServerOffering, SubscriptionId,
    };

    fn signal(c: u32, gamma: f64) -> SatisfactionSignal {
        SatisfactionSignal::new(
            ResourcePath::new(CustomerId(c), SubscriptionId(1), ResourceGroupId(1)),
            ServerOffering::GeneralPurpose,
            gamma,
        )
        .unwrap()
    }

    fn record(c: u32, gamma: f64, epoch: u64) -> WalRecord {
        let s = signal(c, gamma);
        WalRecord {
            signal: s,
            delta: LambdaDelta::new(epoch, vec![(PathKey::new(s.path), [gamma, 0.0, 0.0])]),
        }
    }

    /// Shared fixture: a fresh per-test temp dir holding `signals.wal`,
    /// opened with the recovery asserted empty/clean. Every test reopens
    /// through [`reopen`] to avoid repeating the unwrap chain.
    fn fresh_wal(name: &str) -> (PathBuf, SignalWal) {
        let dir = std::env::temp_dir().join(format!("lorentz-wal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("signals.wal");
        let (wal, recovery) = SignalWal::open(&path).unwrap();
        assert!(recovery.signals.is_empty());
        assert_eq!(recovery.torn_tail_bytes, 0);
        (path, wal)
    }

    /// Reopens an existing log, returning the handle and its recovery.
    fn reopen(path: &Path) -> (SignalWal, WalRecovery) {
        SignalWal::open(path).unwrap()
    }

    #[test]
    fn append_and_replay_round_trips() {
        let (path, mut wal) = fresh_wal("round-trip");
        let signals = vec![signal(1, 1.0), signal(2, -0.5), signal(3, 0.25)];
        for s in &signals {
            wal.append(s).unwrap();
        }
        drop(wal);
        let (_wal, recovery) = reopen(&path);
        assert_eq!(recovery.signals, signals);
        assert_eq!(recovery.last_epoch, 0); // all-legacy log
        assert_eq!(recovery.last_term, 0); // no term markers either
        assert_eq!(recovery.torn_tail_bytes, 0);
    }

    #[test]
    fn term_markers_round_trip_and_track_the_lineage() {
        let (path, mut wal) = fresh_wal("terms");
        wal.append_term(1).unwrap();
        wal.append_record(&record(1, 1.0, 2)).unwrap();
        wal.append_term(4).unwrap(); // a promotion mid-log
        wal.append_record(&record(2, 0.5, 3)).unwrap();
        drop(wal);

        let (_wal, recovery) = reopen(&path);
        assert_eq!(recovery.last_term, 4);
        assert_eq!(recovery.last_epoch, 3);
        assert_eq!(recovery.signals, vec![signal(1, 1.0), signal(2, 0.5)]);

        let report = SignalWal::verify(&path).unwrap();
        assert_eq!(report.records.len(), 4);
        assert_eq!(report.records[0].term, Some(1));
        assert_eq!(report.records[0].epoch, None);
        assert!(report.records[0].signal.is_none());
        assert_eq!(report.records[1].term, None);
        assert_eq!(report.records[1].signal, Some(signal(1, 1.0)));
        assert!(report.corrupt.is_none());

        // Markers ride the replication stream positionally: resuming past
        // epoch 2 replays the term-4 marker before the epoch-3 record.
        let replay = SignalWal::replay_from(&path, 2).unwrap();
        assert_eq!(replay.frames.len(), 2);
        let (entry, _) = next_frame(&replay.frames[0], 0).unwrap().unwrap();
        assert_eq!(entry.term(), Some(4));
    }

    #[test]
    fn delta_records_round_trip_with_epochs() {
        let (path, mut wal) = fresh_wal("records");
        wal.append_record(&record(1, 1.0, 2)).unwrap();
        wal.append_record(&record(2, -0.5, 3)).unwrap();
        // Mixed log: a legacy bare signal still replays.
        wal.append(&signal(3, 0.25)).unwrap();
        drop(wal);
        let (_wal, recovery) = reopen(&path);
        assert_eq!(
            recovery.signals,
            vec![signal(1, 1.0), signal(2, -0.5), signal(3, 0.25)]
        );
        assert_eq!(recovery.last_epoch, 3);
        let report = SignalWal::verify(&path).unwrap();
        assert_eq!(report.records.len(), 3);
        assert_eq!(report.records[0].epoch, Some(2));
        assert_eq!(report.records[0].delta_keys, 1);
        assert_eq!(report.records[2].epoch, None);
        assert!(report.corrupt.is_none());
        assert_eq!(report.trailing_bytes, 0);
    }

    #[test]
    fn torn_tail_is_truncated_and_reported() {
        let (path, mut wal) = fresh_wal("torn-tail");
        wal.append(&signal(1, 1.0)).unwrap();
        wal.append(&signal(2, -1.0)).unwrap();
        drop(wal);
        // Tear the final record in half, as a kill mid-append would.
        let bytes = std::fs::read(&path).unwrap();
        let torn_at = bytes.len() - 7;
        std::fs::write(&path, &bytes[..torn_at]).unwrap();

        let (mut wal, recovery) = reopen(&path);
        assert_eq!(recovery.signals, vec![signal(1, 1.0)]);
        assert!(recovery.torn_tail_bytes > 0);
        // The tail was truncated, so new appends land on a clean boundary.
        wal.append(&signal(3, 0.5)).unwrap();
        drop(wal);
        let (_wal, recovery) = reopen(&path);
        assert_eq!(recovery.signals, vec![signal(1, 1.0), signal(3, 0.5)]);
        assert_eq!(recovery.torn_tail_bytes, 0);
    }

    #[test]
    fn corrupt_crc_ends_the_replay() {
        let (path, mut wal) = fresh_wal("bad-crc");
        wal.append(&signal(1, 1.0)).unwrap();
        wal.append(&signal(2, 1.0)).unwrap();
        drop(wal);
        // Flip a bit in the second record's payload.
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 3] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();

        let report = SignalWal::verify(&path).unwrap();
        assert_eq!(report.records.len(), 1);
        assert!(matches!(
            report.corrupt,
            Some((_, StoreCorruption::ChecksumMismatch { .. }))
        ));
        let (_wal, recovery) = reopen(&path);
        assert_eq!(recovery.signals, vec![signal(1, 1.0)]);
        assert!(recovery.torn_tail_bytes > 0);
    }

    #[test]
    fn garbage_file_recovers_to_empty() {
        let (path, wal) = fresh_wal("garbage");
        drop(wal);
        std::fs::write(&path, b"not a wal at all, definitely long enough").unwrap();
        let report = SignalWal::verify(&path).unwrap();
        assert!(report.records.is_empty());
        assert!(matches!(
            report.corrupt,
            Some((0, StoreCorruption::BadMagic { .. }))
        ));
        let (mut wal, recovery) = reopen(&path);
        assert!(recovery.signals.is_empty());
        assert!(recovery.torn_tail_bytes > 0);
        wal.append(&signal(4, 1.0)).unwrap();
        drop(wal);
        let (_wal, recovery) = reopen(&path);
        assert_eq!(recovery.signals, vec![signal(4, 1.0)]);
    }

    #[test]
    fn oversized_declared_length_is_rejected() {
        let (path, wal) = fresh_wal("oversized");
        drop(wal);
        let mut frame = Vec::new();
        frame.extend_from_slice(&MAGIC);
        frame.extend_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        frame.extend_from_slice(&0u32.to_le_bytes());
        frame.extend_from_slice(b"xxxx");
        std::fs::write(&path, &frame).unwrap();
        let (_wal, recovery) = reopen(&path);
        assert!(recovery.signals.is_empty());
        assert_eq!(recovery.torn_tail_bytes, frame.len());
    }

    #[test]
    fn tailer_follows_appends_and_stalls_on_torn_tail() {
        let (path, mut wal) = fresh_wal("tailer");
        let mut tailer = WalTailer::new(&path);
        assert!(tailer.poll().unwrap().is_empty());

        wal.append_record(&record(1, 1.0, 2)).unwrap();
        let batch = tailer.poll().unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].epoch(), Some(2));
        assert!(tailer.poll().unwrap().is_empty(), "nothing new to read");

        // A torn append after one good record: the tailer takes the good
        // record and stops at the tear without consuming it.
        wal.append_record(&record(2, 0.5, 3)).unwrap();
        drop(wal);
        let full = std::fs::read(&path).unwrap();
        let mut torn = full.clone();
        torn.extend_from_slice(&MAGIC);
        torn.extend_from_slice(&[9, 0, 0]); // half a length field
        std::fs::write(&path, &torn).unwrap();
        let batch = tailer.poll().unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].epoch(), Some(3));
        let stalled_at = tailer.offset();
        assert!(tailer.poll().unwrap().is_empty());
        assert_eq!(tailer.offset(), stalled_at);

        // Leader reopens (truncating the tear) and appends: the tailer
        // resumes from the same boundary and converges.
        let (mut wal, recovery) = reopen(&path);
        assert!(recovery.torn_tail_bytes > 0);
        wal.append_record(&record(3, -1.0, 4)).unwrap();
        let batch = tailer.poll().unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].epoch(), Some(4));
    }

    #[test]
    fn tailer_restarts_when_the_log_shrinks() {
        let (path, mut wal) = fresh_wal("tailer-shrink");
        wal.append_record(&record(1, 1.0, 2)).unwrap();
        wal.append_record(&record(2, 0.5, 3)).unwrap();
        let mut tailer = WalTailer::new(&path);
        assert_eq!(tailer.poll().unwrap().len(), 2);
        // Replace the log with a shorter one.
        drop(wal);
        std::fs::remove_file(&path).unwrap();
        let (mut wal, _) = reopen(&path);
        wal.append_record(&record(9, 1.0, 5)).unwrap();
        let batch = tailer.poll().unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].epoch(), Some(5));
    }

    #[test]
    fn frame_record_matches_append_bytes() {
        let (path, mut wal) = fresh_wal("frame-record");
        let r = record(1, 1.0, 2);
        wal.append_record(&r).unwrap();
        drop(wal);
        assert_eq!(frame_record(&r).unwrap(), std::fs::read(&path).unwrap());
    }

    #[test]
    fn replay_from_is_positional_and_detects_compaction() {
        let (path, mut wal) = fresh_wal("replay-from");
        wal.append_record(&record(1, 1.0, 2)).unwrap();
        wal.append_record(&record(2, 0.5, 3)).unwrap();
        wal.append(&signal(3, 0.25)).unwrap(); // legacy, no epoch
        wal.append_record(&record(4, -0.5, 7)).unwrap(); // epoch jump
        drop(wal);

        // From 0: the whole log, not a resync.
        let replay = SignalWal::replay_from(&path, 0).unwrap();
        assert_eq!(replay.frames.len(), 4);
        assert!(!replay.full_resync);
        assert_eq!(replay.log_last_epoch, 7);

        // From epoch 3: the legacy record and the epoch-7 record follow.
        let replay = SignalWal::replay_from(&path, 3).unwrap();
        assert_eq!(replay.frames.len(), 2);
        assert!(!replay.full_resync);

        // Fully caught up: nothing to send.
        let replay = SignalWal::replay_from(&path, 7).unwrap();
        assert!(replay.frames.is_empty());
        assert!(!replay.full_resync);

        // Epoch 5 was never written to this log: full resync.
        let replay = SignalWal::replay_from(&path, 5).unwrap();
        assert_eq!(replay.frames.len(), 4);
        assert!(replay.full_resync);

        // The replayed frames are byte-identical to the disk.
        let bytes = std::fs::read(&path).unwrap();
        let all: Vec<u8> = SignalWal::replay_from(&path, 0).unwrap().frames.concat();
        assert_eq!(all, bytes);

        // A missing log is empty, not an error.
        let replay = SignalWal::replay_from(path.with_extension("absent"), 0).unwrap();
        assert!(replay.frames.is_empty());
        assert_eq!(replay.log_last_epoch, 0);
    }

    #[test]
    fn replay_from_stops_at_a_torn_tail() {
        let (path, mut wal) = fresh_wal("replay-torn");
        wal.append_record(&record(1, 1.0, 2)).unwrap();
        wal.append_record(&record(2, 0.5, 3)).unwrap();
        drop(wal);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let replay = SignalWal::replay_from(&path, 0).unwrap();
        assert_eq!(replay.frames.len(), 1);
        assert_eq!(replay.log_last_epoch, 2);
    }

    #[test]
    fn poll_backoff_doubles_idle_and_resets() {
        let mut b = PollBackoff::new(Duration::from_millis(20), Duration::from_millis(200));
        assert_eq!(b.idle(), Duration::from_millis(20));
        assert_eq!(b.idle(), Duration::from_millis(40));
        assert_eq!(b.idle(), Duration::from_millis(80));
        assert_eq!(b.idle(), Duration::from_millis(160));
        assert_eq!(b.idle(), Duration::from_millis(200));
        assert_eq!(b.idle(), Duration::from_millis(200), "saturates at the cap");
        b.reset();
        assert_eq!(b.idle(), Duration::from_millis(20));
    }

    #[test]
    fn jittered_backoff_is_seeded_and_stays_within_bounds() {
        let (base, cap) = (Duration::from_millis(20), Duration::from_millis(200));
        let mut exact = PollBackoff::new(base, cap);
        let mut a = PollBackoff::with_jitter(base, cap, 0xC0FFEE);
        let mut b = PollBackoff::with_jitter(base, cap, 0xC0FFEE);
        for _ in 0..12 {
            let want = exact.idle();
            let got = a.idle();
            assert_eq!(got, b.idle(), "same seed ⇒ same schedule");
            assert!(got >= want / 2, "{got:?} below half of {want:?}");
            assert!(got <= want * 3 / 2, "{got:?} above 1.5× {want:?}");
        }
        a.reset();
        assert!(a.idle() <= base * 3 / 2, "reset returns to the base rung");
        // Distinct seeds decorrelate the schedules.
        let mut c = PollBackoff::with_jitter(base, cap, 1);
        let mut d = PollBackoff::with_jitter(base, cap, 2);
        assert!((0..12).any(|_| c.idle() != d.idle()));
    }

    #[test]
    fn missing_file_verify_is_an_io_error() {
        let dir = std::env::temp_dir().join(format!("lorentz-wal-miss-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert!(matches!(
            SignalWal::verify(dir.join("absent.wal")),
            Err(StoreError::Io { .. })
        ));
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn transient_append_faults_are_retried() {
        let (path, mut wal) = fresh_wal("retry");
        lorentz_fault::registry().configure(
            "personalizer.wal.append",
            lorentz_fault::Trigger::Once,
            lorentz_fault::FailAction::Interrupted,
        );
        wal.append(&signal(1, 1.0)).unwrap();
        lorentz_fault::registry().clear();
        drop(wal);
        let (_wal, recovery) = reopen(&path);
        assert_eq!(recovery.signals, vec![signal(1, 1.0)]);
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn permanent_append_faults_surface() {
        let (_path, mut wal) = fresh_wal("permanent");
        lorentz_fault::registry().configure(
            "personalizer.wal.append",
            lorentz_fault::Trigger::Always,
            lorentz_fault::FailAction::Error,
        );
        let err = wal.append(&signal(1, 1.0)).unwrap_err();
        lorentz_fault::registry().clear();
        assert!(matches!(err, StoreError::Io { .. }));
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn flipped_bit_appends_are_caught_on_replay() {
        let (path, mut wal) = fresh_wal("flip");
        wal.append(&signal(1, 1.0)).unwrap();
        lorentz_fault::registry().configure(
            "personalizer.wal.append",
            lorentz_fault::Trigger::Once,
            lorentz_fault::FailAction::FlipBit(100),
        );
        wal.append(&signal(2, 1.0)).unwrap();
        lorentz_fault::registry().clear();
        drop(wal);
        let (_wal, recovery) = reopen(&path);
        assert_eq!(recovery.signals, vec![signal(1, 1.0)]);
        assert!(recovery.torn_tail_bytes > 0);
    }
}
