//! The satisfaction-signal write-ahead log.
//!
//! A published λ snapshot lives in memory; the signals that produced it
//! must survive a crash. [`SignalWal`] appends every accepted signal as a
//! CRC-framed record *before* it is applied, and replays the log on
//! startup so a restarted server rebuilds exactly the λ state it lost.
//!
//! Each record is framed independently (unlike the whole-file snapshot
//! frames of [`store::durability`](crate::store::durability), the WAL
//! grows by appending):
//!
//! ```text
//! [4 magic "LSIG"] [4 payload len u32 LE] [4 payload CRC32C u32 LE] [payload]
//! ```
//!
//! The payload is the signal's JSON. Appends are `write_all` + `fsync`
//! under [`retry_with_backoff`], so transient I/O failures retry and
//! permanent ones surface. A crash mid-append leaves a torn final record;
//! replay verifies each frame's CRC, keeps every intact prefix record,
//! truncates the torn tail, and reports how many bytes were dropped —
//! mirroring the newest-first fallback discipline of the durable store.
//! The `personalizer.wal.append` fail point injects torn appends, bit
//! flips, and transient errors under the `fault-injection` feature.

use super::SatisfactionSignal;
use crate::obs;
use crate::retry::{is_transient_io, retry_with_backoff, RetryPolicy};
use crate::store::durability::crc32c;
use crate::store::StoreError;
use lorentz_fault::fail_point;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Frame magic for one WAL record.
const MAGIC: [u8; 4] = *b"LSIG";
/// Fixed bytes before each record's payload.
const HEADER_LEN: usize = 12;
/// Upper bound on a record payload — a signal is tens of bytes, so a
/// larger declared length means the header itself is corrupt.
const MAX_PAYLOAD: u32 = 1 << 20;

/// What [`SignalWal::open`] recovered from an existing log.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecovery {
    /// Every intact signal, in append order — apply these before serving.
    pub signals: Vec<SatisfactionSignal>,
    /// Bytes discarded from a torn final record (0 for a clean log).
    pub torn_tail_bytes: usize,
}

/// An append-only, CRC-framed log of satisfaction signals.
pub struct SignalWal {
    path: PathBuf,
    file: File,
    retry: RetryPolicy,
}

impl std::fmt::Debug for SignalWal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SignalWal")
            .field("path", &self.path)
            .finish()
    }
}

impl SignalWal {
    /// Opens (or creates) the log at `path` with the default retry policy,
    /// replaying every intact record and truncating a torn tail.
    ///
    /// # Errors
    /// Returns [`StoreError::Io`] when the file cannot be opened, read, or
    /// truncated.
    pub fn open(path: impl AsRef<Path>) -> Result<(Self, WalRecovery), StoreError> {
        Self::open_with(path, RetryPolicy::default())
    }

    /// [`SignalWal::open`] with an explicit append retry policy.
    ///
    /// # Errors
    /// Returns [`StoreError::Io`] when the file cannot be opened, read, or
    /// truncated.
    pub fn open_with(
        path: impl AsRef<Path>,
        retry: RetryPolicy,
    ) -> Result<(Self, WalRecovery), StoreError> {
        let path = path.as_ref().to_path_buf();
        let io_err = |source: io::Error| StoreError::Io {
            path: path.display().to_string(),
            source,
        };
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(&io_err)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes).map_err(&io_err)?;
        let (signals, good_len) = parse_frames(&bytes);
        let torn_tail_bytes = bytes.len() - good_len;
        if torn_tail_bytes > 0 {
            file.set_len(good_len as u64).map_err(&io_err)?;
            obs::WAL_TORN_TAILS.inc();
        }
        file.seek(SeekFrom::Start(good_len as u64))
            .map_err(&io_err)?;
        obs::WAL_REPLAYED.add(signals.len() as u64);
        Ok((
            Self { path, file, retry },
            WalRecovery {
                signals,
                torn_tail_bytes,
            },
        ))
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one signal durably: frame, `write_all`, `fsync`, with
    /// transient I/O failures retried under the policy.
    ///
    /// # Errors
    /// Returns [`StoreError::Serialize`] when the signal cannot be
    /// encoded and [`StoreError::Io`] when the write fails permanently.
    pub fn append(&mut self, signal: &SatisfactionSignal) -> Result<(), StoreError> {
        let payload =
            serde_json::to_string(signal).map_err(|e| StoreError::Serialize(format!("{e}")))?;
        let frame = frame_signal(payload.as_bytes());
        let policy = self.retry;
        retry_with_backoff(&policy, is_transient_io, |_| self.append_once(&frame)).map_err(
            |source| StoreError::Io {
                path: self.path.display().to_string(),
                source,
            },
        )?;
        obs::WAL_APPENDS.inc();
        Ok(())
    }

    fn append_once(&mut self, frame: &[u8]) -> io::Result<()> {
        fail_point!("personalizer.wal.append", |action| inject_append_fault(
            &mut self.file,
            frame,
            action
        ));
        self.file.write_all(frame)?;
        self.file.sync_data()
    }
}

/// Builds the framed bytes for one record payload.
fn frame_signal(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
    frame.extend_from_slice(&MAGIC);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32c(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Walks the log bytes frame by frame, returning every intact signal and
/// the byte offset where the intact prefix ends. Any violation — short
/// header, bad magic, oversized length, short payload, CRC mismatch, or
/// undecodable JSON — ends the walk there: everything after it is the
/// torn tail.
fn parse_frames(bytes: &[u8]) -> (Vec<SatisfactionSignal>, usize) {
    let mut signals = Vec::new();
    let mut offset = 0usize;
    while bytes.len() - offset >= HEADER_LEN {
        let header = &bytes[offset..offset + HEADER_LEN];
        if header[..4] != MAGIC {
            break;
        }
        let len = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if len > MAX_PAYLOAD {
            break;
        }
        let crc = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
        let start = offset + HEADER_LEN;
        let end = start + len as usize;
        if end > bytes.len() {
            break;
        }
        let payload = &bytes[start..end];
        if crc32c(payload) != crc {
            break;
        }
        let Ok(text) = std::str::from_utf8(payload) else {
            break;
        };
        let Ok(signal) = serde_json::from_str::<SatisfactionSignal>(text) else {
            break;
        };
        signals.push(signal);
        offset = end;
    }
    (signals, offset)
}

/// Interprets a fired `personalizer.wal.append` action: `partial(FRAC)`
/// writes that fraction of the frame and kills the process (the
/// kill-mid-append scenario), `flip(BIT)` commits a corrupted frame as if
/// it succeeded, `error`/`interrupted` surface as permanent/transient I/O
/// errors.
#[cfg(feature = "fault-injection")]
fn inject_append_fault(
    file: &mut File,
    frame: &[u8],
    action: lorentz_fault::FailAction,
) -> io::Result<()> {
    use lorentz_fault::FailAction;
    match action {
        FailAction::Panic => panic!("fail point 'personalizer.wal.append' injected a panic"),
        FailAction::Abort => std::process::abort(),
        FailAction::Partial(frac) => {
            let keep = ((frame.len() as f64) * frac.clamp(0.0, 1.0)) as usize;
            let _ = file.write_all(&frame[..keep]);
            let _ = file.sync_data();
            std::process::abort();
        }
        FailAction::FlipBit(bit) => {
            let mut corrupt = frame.to_vec();
            let bit = (bit as usize) % (corrupt.len() * 8);
            corrupt[bit / 8] ^= 1 << (bit % 8);
            file.write_all(&corrupt)?;
            file.sync_data()
        }
        FailAction::Error => Err(io::Error::new(
            io::ErrorKind::PermissionDenied,
            "injected permanent WAL error",
        )),
        FailAction::Interrupted => Err(io::Error::new(
            io::ErrorKind::Interrupted,
            "injected transient WAL error",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lorentz_types::{
        CustomerId, ResourceGroupId, ResourcePath, ServerOffering, SubscriptionId,
    };

    fn signal(c: u32, gamma: f64) -> SatisfactionSignal {
        SatisfactionSignal::new(
            ResourcePath::new(CustomerId(c), SubscriptionId(1), ResourceGroupId(1)),
            ServerOffering::GeneralPurpose,
            gamma,
        )
        .unwrap()
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lorentz-wal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_and_replay_round_trips() {
        let dir = tmp_dir("round-trip");
        let path = dir.join("signals.wal");
        let signals = vec![signal(1, 1.0), signal(2, -0.5), signal(3, 0.25)];
        {
            let (mut wal, recovery) = SignalWal::open(&path).unwrap();
            assert!(recovery.signals.is_empty());
            assert_eq!(recovery.torn_tail_bytes, 0);
            for s in &signals {
                wal.append(s).unwrap();
            }
        }
        let (_wal, recovery) = SignalWal::open(&path).unwrap();
        assert_eq!(recovery.signals, signals);
        assert_eq!(recovery.torn_tail_bytes, 0);
    }

    #[test]
    fn torn_tail_is_truncated_and_reported() {
        let dir = tmp_dir("torn-tail");
        let path = dir.join("signals.wal");
        {
            let (mut wal, _) = SignalWal::open(&path).unwrap();
            wal.append(&signal(1, 1.0)).unwrap();
            wal.append(&signal(2, -1.0)).unwrap();
        }
        // Tear the final record in half, as a kill mid-append would.
        let bytes = std::fs::read(&path).unwrap();
        let torn_at = bytes.len() - 7;
        std::fs::write(&path, &bytes[..torn_at]).unwrap();

        let (mut wal, recovery) = SignalWal::open(&path).unwrap();
        assert_eq!(recovery.signals, vec![signal(1, 1.0)]);
        assert!(recovery.torn_tail_bytes > 0);
        // The tail was truncated, so new appends land on a clean boundary.
        wal.append(&signal(3, 0.5)).unwrap();
        drop(wal);
        let (_wal, recovery) = SignalWal::open(&path).unwrap();
        assert_eq!(recovery.signals, vec![signal(1, 1.0), signal(3, 0.5)]);
        assert_eq!(recovery.torn_tail_bytes, 0);
    }

    #[test]
    fn corrupt_crc_ends_the_replay() {
        let dir = tmp_dir("bad-crc");
        let path = dir.join("signals.wal");
        {
            let (mut wal, _) = SignalWal::open(&path).unwrap();
            wal.append(&signal(1, 1.0)).unwrap();
            wal.append(&signal(2, 1.0)).unwrap();
        }
        // Flip a bit in the second record's payload.
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 3] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();

        let (_wal, recovery) = SignalWal::open(&path).unwrap();
        assert_eq!(recovery.signals, vec![signal(1, 1.0)]);
        assert!(recovery.torn_tail_bytes > 0);
    }

    #[test]
    fn garbage_file_recovers_to_empty() {
        let dir = tmp_dir("garbage");
        let path = dir.join("signals.wal");
        std::fs::write(&path, b"not a wal at all, definitely long enough").unwrap();
        let (mut wal, recovery) = SignalWal::open(&path).unwrap();
        assert!(recovery.signals.is_empty());
        assert!(recovery.torn_tail_bytes > 0);
        wal.append(&signal(4, 1.0)).unwrap();
        drop(wal);
        let (_wal, recovery) = SignalWal::open(&path).unwrap();
        assert_eq!(recovery.signals, vec![signal(4, 1.0)]);
    }

    #[test]
    fn oversized_declared_length_is_rejected() {
        let dir = tmp_dir("oversized");
        let path = dir.join("signals.wal");
        let mut frame = Vec::new();
        frame.extend_from_slice(&MAGIC);
        frame.extend_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        frame.extend_from_slice(&0u32.to_le_bytes());
        frame.extend_from_slice(b"xxxx");
        std::fs::write(&path, &frame).unwrap();
        let (_wal, recovery) = SignalWal::open(&path).unwrap();
        assert!(recovery.signals.is_empty());
        assert_eq!(recovery.torn_tail_bytes, frame.len());
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn transient_append_faults_are_retried() {
        let dir = tmp_dir("retry");
        let path = dir.join("signals.wal");
        lorentz_fault::registry().configure(
            "personalizer.wal.append",
            lorentz_fault::Trigger::Once,
            lorentz_fault::FailAction::Interrupted,
        );
        let (mut wal, _) = SignalWal::open(&path).unwrap();
        wal.append(&signal(1, 1.0)).unwrap();
        lorentz_fault::registry().clear();
        drop(wal);
        let (_wal, recovery) = SignalWal::open(&path).unwrap();
        assert_eq!(recovery.signals, vec![signal(1, 1.0)]);
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn permanent_append_faults_surface() {
        let dir = tmp_dir("permanent");
        let path = dir.join("signals.wal");
        lorentz_fault::registry().configure(
            "personalizer.wal.append",
            lorentz_fault::Trigger::Always,
            lorentz_fault::FailAction::Error,
        );
        let (mut wal, _) = SignalWal::open(&path).unwrap();
        let err = wal.append(&signal(1, 1.0)).unwrap_err();
        lorentz_fault::registry().clear();
        assert!(matches!(err, StoreError::Io { .. }));
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn flipped_bit_appends_are_caught_on_replay() {
        let dir = tmp_dir("flip");
        let path = dir.join("signals.wal");
        {
            let (mut wal, _) = SignalWal::open(&path).unwrap();
            wal.append(&signal(1, 1.0)).unwrap();
            lorentz_fault::registry().configure(
                "personalizer.wal.append",
                lorentz_fault::Trigger::Once,
                lorentz_fault::FailAction::FlipBit(100),
            );
            wal.append(&signal(2, 1.0)).unwrap();
            lorentz_fault::registry().clear();
        }
        let (_wal, recovery) = SignalWal::open(&path).unwrap();
        assert_eq!(recovery.signals, vec![signal(1, 1.0)]);
        assert!(recovery.torn_tail_bytes > 0);
    }
}
