//! Stage 3: personalization (§3.4).
//!
//! Lorentz keeps a per-(customer, subscription, resource group) profile of
//! cost/performance sensitivity scores λ — one score per stratification
//! (server offering). Sparse customer-satisfaction signals `γ ∈ [-1, 1]` are
//! propagated through the profile store with multiplicative decays
//! (Algorithm 1), and recommendations are adjusted as
//! `c** = ξ⁻¹(ξ(c*) + λ) = 2^λ · c*` (Eq. 13–14).

pub mod lambda;
pub mod sharded;
pub mod signals;
pub mod wal;

pub use lambda::{LambdaEpoch, LambdaSnapshot, LambdaStore};
pub use sharded::ShardedLambdaStore;
pub use signals::{classify_ticket, CriTicket, KeywordClassifier};
pub use wal::{
    frame_record, wal_codec, PollBackoff, SignalWal, TermRecord, WalEntry, WalRecord, WalRecovery,
    WalReplay, WalTailer, WalVerifyReport,
};

use crate::obs;
use crate::provisioner::discretize;
use lorentz_types::{
    CustomerId, LorentzError, ResourceGroupId, ResourcePath, ServerOffering, Sku, SkuCatalog,
    StratLambdas, SubscriptionId,
};
use serde::{Deserialize, Serialize, Value};
use std::collections::BTreeMap;

/// Number of stratification values (server offerings).
const N_STRATA: usize = lorentz_types::N_STRATA;

/// Personalizer hyperparameters (Table 2: learning rate 0.3, signal decay
/// 0.25).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PersonalizerConfig {
    /// Learning rate `l_r` multiplying every incoming signal.
    pub learning_rate: f64,
    /// `ρ_R`: decay applied when propagating across stratifications within
    /// the same resource group.
    pub rho_stratification: f64,
    /// `ρ_S`: decay applied when propagating to other resource groups in the
    /// same subscription. Set to 0 to stop cross-RG sharing once signals are
    /// plentiful (§3.4.2 discussion).
    pub rho_resource_group: f64,
    /// `ρ_C`: decay applied when propagating to other subscriptions of the
    /// same customer.
    pub rho_subscription: f64,
    /// λ values are clamped to ±this bound, keeping adjustments within the
    /// span of any realistic SKU ladder.
    pub lambda_clamp: f64,
}

impl Default for PersonalizerConfig {
    fn default() -> Self {
        Self {
            learning_rate: 0.3,
            rho_stratification: 0.25,
            rho_resource_group: 0.25,
            rho_subscription: 0.25,
            lambda_clamp: 8.0,
        }
    }
}

impl PersonalizerConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns [`LorentzError::InvalidConfig`] for out-of-range values.
    pub fn validate(&self) -> Result<(), LorentzError> {
        if !self.learning_rate.is_finite() || self.learning_rate <= 0.0 {
            return Err(LorentzError::InvalidConfig(format!(
                "learning_rate must be positive, got {}",
                self.learning_rate
            )));
        }
        for (name, rho) in [
            ("rho_stratification", self.rho_stratification),
            ("rho_resource_group", self.rho_resource_group),
            ("rho_subscription", self.rho_subscription),
        ] {
            if !rho.is_finite() || !(0.0..=1.0).contains(&rho) {
                return Err(LorentzError::InvalidConfig(format!(
                    "{name} must be in [0, 1], got {rho}"
                )));
            }
        }
        if !self.lambda_clamp.is_finite() || self.lambda_clamp <= 0.0 {
            return Err(LorentzError::InvalidConfig(format!(
                "lambda_clamp must be positive, got {}",
                self.lambda_clamp
            )));
        }
        Ok(())
    }
}

/// One customer-satisfaction signal routed to a profile location.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SatisfactionSignal {
    /// Which customer / subscription / resource group the signal concerns.
    pub path: ResourcePath,
    /// The stratification (server offering) the signal concerns.
    pub offering: ServerOffering,
    /// Signal strength: −1 = strong cost sensitivity, +1 = strong
    /// performance sensitivity.
    pub gamma: f64,
}

impl SatisfactionSignal {
    /// Creates a signal, validating `γ ∈ [-1, 1]`.
    ///
    /// # Errors
    /// Returns [`LorentzError::InvalidConfig`] for out-of-range `γ`.
    pub fn new(
        path: ResourcePath,
        offering: ServerOffering,
        gamma: f64,
    ) -> Result<Self, LorentzError> {
        if !gamma.is_finite() || !(-1.0..=1.0).contains(&gamma) {
            return Err(LorentzError::InvalidConfig(format!(
                "gamma must be in [-1, 1], got {gamma}"
            )));
        }
        Ok(Self {
            path,
            offering,
            gamma,
        })
    }
}

/// The Stage-3 personalizer: a λ profile store plus the message-propagation
/// update rule. Deterministic maps keep iteration order (and thus reports)
/// stable.
///
/// ```
/// use lorentz_core::{Personalizer, PersonalizerConfig, SatisfactionSignal};
/// use lorentz_types::{
///     CustomerId, ResourceGroupId, ResourcePath, ServerOffering, SkuCatalog, SubscriptionId,
/// };
///
/// let mut personalizer = Personalizer::new(PersonalizerConfig::default())?;
/// let path = ResourcePath::new(CustomerId(1), SubscriptionId(1), ResourceGroupId(1));
///
/// // Three throttling complaints raise this resource group's lambda by
/// // 3 x learning rate = +0.9 ...
/// for _ in 0..3 {
///     let signal = SatisfactionSignal::new(path, ServerOffering::GeneralPurpose, 1.0)?;
///     personalizer.apply_signal(&signal);
/// }
/// assert!((personalizer.lambda(&path, ServerOffering::GeneralPurpose) - 0.9).abs() < 1e-12);
///
/// // ... which lifts a 4-vCore Stage-2 recommendation one ladder step
/// // (2^0.9 * 4 = 7.5, nearest catalog point 8).
/// let catalog = SkuCatalog::azure_postgres(ServerOffering::GeneralPurpose);
/// let sku = personalizer.adjust(4.0, &path, ServerOffering::GeneralPurpose, &catalog);
/// assert_eq!(sku.capacity.primary(), 8.0);
/// # Ok::<(), lorentz_types::LorentzError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Personalizer {
    config: PersonalizerConfig,
    store: LambdaTree,
    /// Registered resource-group count, maintained incrementally so
    /// [`Personalizer::profiles`] is O(1). Derived state: skipped on
    /// serialization and recomputed by the manual [`Deserialize`] impl.
    #[serde(skip)]
    profile_count: usize,
}

/// The nested per-customer λ tree: customer → subscription → resource
/// group → per-stratum λ. The subscription layer doubles as the
/// per-customer index that lets [`Personalizer::apply_signal`] touch only
/// the affected subtrees.
type LambdaTree =
    BTreeMap<CustomerId, BTreeMap<SubscriptionId, BTreeMap<ResourceGroupId, StratLambdas>>>;

impl Deserialize for Personalizer {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        // Mirrors the derived impl for the two serialized fields, then
        // recomputes the skipped `profile_count` so a deserialized
        // personalizer compares equal to the one that was written.
        let config = PersonalizerConfig::from_value(
            v.get_field("config")
                .ok_or_else(|| serde::Error::custom("Personalizer missing field 'config'"))?,
        )?;
        let store = LambdaTree::from_value(
            v.get_field("store")
                .ok_or_else(|| serde::Error::custom("Personalizer missing field 'store'"))?,
        )?;
        let profile_count = store
            .values()
            .flat_map(|subs| subs.values())
            .map(|rgs| rgs.len())
            .sum();
        Ok(Self {
            config,
            store,
            profile_count,
        })
    }
}

impl Personalizer {
    /// Creates a personalizer.
    ///
    /// # Errors
    /// Returns [`LorentzError::InvalidConfig`] for invalid configs.
    pub fn new(config: PersonalizerConfig) -> Result<Self, LorentzError> {
        config.validate()?;
        Ok(Self {
            config,
            store: BTreeMap::new(),
            profile_count: 0,
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &PersonalizerConfig {
        &self.config
    }

    /// Ensures a profile exists for `path` (λ defaults to 0 for new
    /// profiles, §3.4.2).
    pub fn register(&mut self, path: ResourcePath) {
        if let std::collections::btree_map::Entry::Vacant(slot) = self
            .store
            .entry(path.customer)
            .or_default()
            .entry(path.subscription)
            .or_default()
            .entry(path.resource_group)
        {
            slot.insert([0.0; N_STRATA]);
            self.profile_count += 1;
        }
    }

    /// Number of registered resource groups across all customers. O(1):
    /// the count is maintained by [`Personalizer::register`].
    pub fn profiles(&self) -> usize {
        self.profile_count
    }

    /// The λ score for a location; 0 if the profile does not exist yet.
    pub fn lambda(&self, path: &ResourcePath, offering: ServerOffering) -> f64 {
        self.store
            .get(&path.customer)
            .and_then(|subs| subs.get(&path.subscription))
            .and_then(|rgs| rgs.get(&path.resource_group))
            .map_or(0.0, |l| l[strat_index(offering)])
    }

    /// Directly overwrites a λ score — the §4 user-facing control
    /// ("allowing them to adjust this value to their liking").
    pub fn set_lambda(&mut self, path: ResourcePath, offering: ServerOffering, value: f64) {
        self.register(path);
        let slot = self
            .store
            .get_mut(&path.customer)
            .and_then(|subs| subs.get_mut(&path.subscription))
            .and_then(|rgs| rgs.get_mut(&path.resource_group))
            .expect("registered above");
        slot[strat_index(offering)] =
            value.clamp(-self.config.lambda_clamp, self.config.lambda_clamp);
    }

    /// Applies one satisfaction signal with message propagation
    /// (Algorithm 1). The signal's own location is auto-registered; the
    /// propagation reaches every *registered* profile of the same customer.
    /// Zero decays prune whole subtrees: `ρ_C = 0` confines the walk to the
    /// signal's subscription, and `ρ_S = 0` confines a same-subscription
    /// walk to the signal's resource group — foreign entries are never
    /// visited. Each call bumps `personalizer.signals`, and the number of
    /// profiles the propagation round updated lands in
    /// `personalizer.profiles_touched`.
    pub fn apply_signal(&mut self, signal: &SatisfactionSignal) {
        self.apply_signal_sink(signal, |_, _| {});
    }

    /// [`Personalizer::apply_signal`] that additionally reports every
    /// profile the propagation round updated — `(path, post-update λ row)`
    /// pairs — to `sink`, in tree order. This is how [`LambdaStore`]
    /// materializes the delta of touched keys for epoch publishing without
    /// a second tree walk; the plain entry point passes a no-op sink,
    /// which monomorphizes back to the original loop.
    pub fn apply_signal_sink(
        &mut self,
        signal: &SatisfactionSignal,
        mut sink: impl FnMut(ResourcePath, StratLambdas),
    ) {
        self.register(signal.path);
        let st = strat_index(signal.offering);
        let s = self.config.learning_rate * signal.gamma;
        let delta = self.config.rho_stratification * s;
        let rho_s = self.config.rho_resource_group;
        let rho_c = self.config.rho_subscription;
        let clamp = self.config.lambda_clamp;
        let customer = signal.path.customer;
        let mut touched = 0u64;

        // Scale of the update for one resource group:
        //   same RG          -> 1      (steps 1-2)
        //   same SU, diff RG -> ρ_S    (step 3)
        //   diff SU          -> ρ_C    (step 4)
        let mut bump =
            |sub: SubscriptionId, rg: ResourceGroupId, lambdas: &mut StratLambdas, scale: f64| {
                touched += 1;
                for (x, l) in lambdas.iter_mut().enumerate() {
                    let update = if x == st { scale * s } else { scale * delta };
                    *l = (*l + update).clamp(-clamp, clamp);
                }
                sink(ResourcePath::new(customer, sub, rg), *lambdas);
            };

        let subs = self
            .store
            .get_mut(&signal.path.customer)
            .expect("registered above");
        if rho_c == 0.0 {
            let rgs = subs
                .get_mut(&signal.path.subscription)
                .expect("registered above");
            if rho_s == 0.0 {
                let lambdas = rgs
                    .get_mut(&signal.path.resource_group)
                    .expect("registered above");
                bump(
                    signal.path.subscription,
                    signal.path.resource_group,
                    lambdas,
                    1.0,
                );
            } else {
                for (rg_id, lambdas) in rgs.iter_mut() {
                    let same_rg = *rg_id == signal.path.resource_group;
                    bump(
                        signal.path.subscription,
                        *rg_id,
                        lambdas,
                        if same_rg { 1.0 } else { rho_s },
                    );
                }
            }
        } else {
            for (sub_id, rgs) in subs.iter_mut() {
                let same_sub = *sub_id == signal.path.subscription;
                if same_sub && rho_s == 0.0 {
                    let lambdas = rgs
                        .get_mut(&signal.path.resource_group)
                        .expect("registered above");
                    bump(*sub_id, signal.path.resource_group, lambdas, 1.0);
                    continue;
                }
                for (rg_id, lambdas) in rgs.iter_mut() {
                    let same_rg = same_sub && *rg_id == signal.path.resource_group;
                    let scale = if same_rg {
                        1.0
                    } else if same_sub {
                        rho_s
                    } else {
                        rho_c
                    };
                    bump(*sub_id, *rg_id, lambdas, scale);
                }
            }
        }
        obs::SIGNALS_APPLIED.inc();
        obs::SIGNAL_PROFILES_TOUCHED.add(touched);
    }

    /// Overwrites the whole λ row at `path` — the follower-side application
    /// of one replicated delta entry. Values are clamped to this
    /// personalizer's `lambda_clamp` like every other write path.
    pub fn set_lambdas(&mut self, path: ResourcePath, lambdas: StratLambdas) {
        self.register(path);
        let slot = self
            .store
            .get_mut(&path.customer)
            .and_then(|subs| subs.get_mut(&path.subscription))
            .and_then(|rgs| rgs.get_mut(&path.resource_group))
            .expect("registered above");
        let clamp = self.config.lambda_clamp;
        for (dst, src) in slot.iter_mut().zip(lambdas) {
            *dst = src.clamp(-clamp, clamp);
        }
    }

    /// Applies a batch of signals in order.
    pub fn apply_signals(&mut self, signals: &[SatisfactionSignal]) {
        for s in signals {
            self.apply_signal(s);
        }
    }

    /// λ-adjusted capacity (Eq. 14): `c** = 2^λ · c*`, discretized to the
    /// catalog.
    pub fn adjust(
        &self,
        stage2_capacity: f64,
        path: &ResourcePath,
        offering: ServerOffering,
        catalog: &SkuCatalog,
    ) -> Sku {
        let lambda = self.lambda(path, offering);
        discretize(catalog, lambda.exp2() * stage2_capacity)
    }

    /// Iterates all registered profiles as `(path, per-stratum λ)` in
    /// deterministic order — the flattening walk [`LambdaStore`] publishes
    /// from.
    pub(crate) fn iter_profiles(&self) -> impl Iterator<Item = (ResourcePath, StratLambdas)> + '_ {
        self.store.iter().flat_map(|(cu, subs)| {
            subs.iter().flat_map(move |(su, rgs)| {
                rgs.iter()
                    .map(move |(rg, lambdas)| (ResourcePath::new(*cu, *su, *rg), *lambdas))
            })
        })
    }

    /// Iterates all registered `(path, offering, λ)` entries in
    /// deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (ResourcePath, ServerOffering, f64)> + '_ {
        self.store.iter().flat_map(|(cu, subs)| {
            subs.iter().flat_map(move |(su, rgs)| {
                rgs.iter().flat_map(move |(rg, lambdas)| {
                    ServerOffering::ALL.iter().map(move |&off| {
                        (
                            ResourcePath::new(*cu, *su, *rg),
                            off,
                            lambdas[strat_index(off)],
                        )
                    })
                })
            })
        })
    }
}

fn strat_index(offering: ServerOffering) -> usize {
    ServerOffering::ALL
        .iter()
        .position(|&o| o == offering)
        .expect("offering is one of ALL")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(c: u32, s: u32, r: u32) -> ResourcePath {
        ResourcePath::new(CustomerId(c), SubscriptionId(s), ResourceGroupId(r))
    }

    fn fig7_personalizer() -> Personalizer {
        // Figure 7's exaggerated numbers: lr=2, ρ_R=1/2, ρ_S=1/2, ρ_C=1/4.
        let cfg = PersonalizerConfig {
            learning_rate: 2.0,
            rho_stratification: 0.5,
            rho_resource_group: 0.5,
            rho_subscription: 0.25,
            lambda_clamp: 100.0,
        };
        let mut p = Personalizer::new(cfg).unwrap();
        // Customer 1: two subscriptions, two resource groups each.
        for (s, r) in [(1, 11), (1, 12), (2, 21), (2, 22)] {
            p.register(path(1, s, r));
        }
        p
    }

    #[test]
    fn figure_7_update_example() {
        let mut p = fig7_personalizer();
        // Signal γ=1 for GeneralPurpose on subscription 2 / RG 21.
        let sig =
            SatisfactionSignal::new(path(1, 2, 21), ServerOffering::GeneralPurpose, 1.0).unwrap();
        p.apply_signal(&sig);

        let g = ServerOffering::GeneralPurpose;
        let b = ServerOffering::Burstable;
        // Step 1: same RG, same stratification: s = 2*1 = 2.
        assert_eq!(p.lambda(&path(1, 2, 21), g), 2.0);
        // Step 2: same RG, other strats: δ = ρ_R * s = 1.
        assert_eq!(p.lambda(&path(1, 2, 21), b), 1.0);
        // Step 3: same subscription, other RG: ρ_S*s = 1 (same strat),
        // ρ_S*δ = 0.5 (other strats).
        assert_eq!(p.lambda(&path(1, 2, 22), g), 1.0);
        assert_eq!(p.lambda(&path(1, 2, 22), b), 0.5);
        // Step 4: other subscription: ρ_C*s = 0.5 / ρ_C*δ = 0.25.
        assert_eq!(p.lambda(&path(1, 1, 11), g), 0.5);
        assert_eq!(p.lambda(&path(1, 1, 12), b), 0.25);
    }

    #[test]
    fn signals_do_not_cross_customers() {
        let mut p = fig7_personalizer();
        p.register(path(9, 1, 1)); // another customer
        let sig =
            SatisfactionSignal::new(path(1, 2, 21), ServerOffering::GeneralPurpose, 1.0).unwrap();
        p.apply_signal(&sig);
        assert_eq!(
            p.lambda(&path(9, 1, 1), ServerOffering::GeneralPurpose),
            0.0
        );
    }

    #[test]
    fn cost_signal_decreases_lambda() {
        let mut p = Personalizer::new(PersonalizerConfig::default()).unwrap();
        let sig = SatisfactionSignal::new(path(1, 1, 1), ServerOffering::Burstable, -1.0).unwrap();
        p.apply_signal(&sig);
        let l = p.lambda(&path(1, 1, 1), ServerOffering::Burstable);
        assert!((l + 0.3).abs() < 1e-12); // -lr
    }

    #[test]
    fn rho_s_zero_stops_cross_rg_sharing() {
        let cfg = PersonalizerConfig {
            rho_resource_group: 0.0,
            ..PersonalizerConfig::default()
        };
        let mut p = Personalizer::new(cfg).unwrap();
        p.register(path(1, 1, 1));
        p.register(path(1, 1, 2));
        let sig =
            SatisfactionSignal::new(path(1, 1, 1), ServerOffering::GeneralPurpose, 1.0).unwrap();
        p.apply_signal(&sig);
        assert!(p.lambda(&path(1, 1, 1), ServerOffering::GeneralPurpose) > 0.0);
        assert_eq!(
            p.lambda(&path(1, 1, 2), ServerOffering::GeneralPurpose),
            0.0
        );
    }

    #[test]
    fn adjustment_scales_by_two_to_lambda() {
        let mut p = Personalizer::new(PersonalizerConfig::default()).unwrap();
        let cat = SkuCatalog::azure_postgres(ServerOffering::GeneralPurpose);
        let loc = path(1, 1, 1);
        // λ = +1: 4 -> 8.
        p.set_lambda(loc, ServerOffering::GeneralPurpose, 1.0);
        let sku = p.adjust(4.0, &loc, ServerOffering::GeneralPurpose, &cat);
        assert_eq!(sku.capacity.primary(), 8.0);
        // λ = -1: 4 -> 2.
        p.set_lambda(loc, ServerOffering::GeneralPurpose, -1.0);
        let sku = p.adjust(4.0, &loc, ServerOffering::GeneralPurpose, &cat);
        assert_eq!(sku.capacity.primary(), 2.0);
        // Unknown profile: λ = 0, nearest ladder entry.
        let sku = p.adjust(4.0, &path(7, 7, 7), ServerOffering::GeneralPurpose, &cat);
        assert_eq!(sku.capacity.primary(), 4.0);
    }

    #[test]
    fn repeated_signals_accumulate_and_clamp() {
        let cfg = PersonalizerConfig {
            lambda_clamp: 1.0,
            ..PersonalizerConfig::default()
        };
        let mut p = Personalizer::new(cfg).unwrap();
        let loc = path(1, 1, 1);
        for _ in 0..10 {
            let sig = SatisfactionSignal::new(loc, ServerOffering::GeneralPurpose, 1.0).unwrap();
            p.apply_signal(&sig);
        }
        assert_eq!(p.lambda(&loc, ServerOffering::GeneralPurpose), 1.0); // clamped
    }

    #[test]
    fn signal_validation() {
        assert!(SatisfactionSignal::new(path(1, 1, 1), ServerOffering::Burstable, 1.5).is_err());
        assert!(
            SatisfactionSignal::new(path(1, 1, 1), ServerOffering::Burstable, f64::NAN).is_err()
        );
        assert!(SatisfactionSignal::new(path(1, 1, 1), ServerOffering::Burstable, -1.0).is_ok());
    }

    #[test]
    fn config_validation() {
        let bad = PersonalizerConfig {
            learning_rate: 0.0,
            ..PersonalizerConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = PersonalizerConfig {
            rho_subscription: 1.5,
            ..PersonalizerConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = PersonalizerConfig {
            lambda_clamp: 0.0,
            ..PersonalizerConfig::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn iter_reports_all_profiles_deterministically() {
        let p = fig7_personalizer();
        let entries: Vec<_> = p.iter().collect();
        assert_eq!(entries.len(), 4 * 3); // 4 RGs x 3 strata
        assert_eq!(p.profiles(), 4);
        let again: Vec<_> = p.iter().collect();
        assert_eq!(entries, again);
    }

    #[test]
    fn personalizer_serde_round_trip() {
        let mut p = fig7_personalizer();
        let sig =
            SatisfactionSignal::new(path(1, 2, 21), ServerOffering::MemoryOptimized, 0.5).unwrap();
        p.apply_signal(&sig);
        let json = serde_json::to_string(&p).unwrap();
        let back: Personalizer = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
