//! Satisfaction-signal extraction from Customer Reported Incidents (CRIs).
//!
//! The paper labels CRI tickets with a manually-crafted keyword search over
//! three fields — *symptoms*, *subject/title*, and *resolution* — mapping
//! each ticket to `γ ∈ {-1, 0, +1}` (§3.4.2, Table 1). Table 1 gives the
//! throttle (performance-sensitivity, +1) filters; the cost-sensitivity
//! (−1) filters are our symmetric extension, since the production list is
//! not published (the paper reports only 5 of ~4,400 tickets were
//! price-sensitive).

use serde::{Deserialize, Serialize};

/// A support ticket with the three fields the classifier inspects.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CriTicket {
    /// Free-text symptom description.
    pub symptoms: String,
    /// Ticket subject / title.
    pub subject: String,
    /// Resolution notes.
    pub resolution: String,
}

impl CriTicket {
    /// Convenience constructor.
    pub fn new(
        symptoms: impl Into<String>,
        subject: impl Into<String>,
        resolution: impl Into<String>,
    ) -> Self {
        Self {
            symptoms: symptoms.into(),
            subject: subject.into(),
            resolution: resolution.into(),
        }
    }
}

/// Per-field keyword lists for one sentiment direction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FieldFilters {
    /// Keywords searched in `symptoms`.
    pub symptoms: Vec<String>,
    /// Keywords searched in `subject`.
    pub subject: Vec<String>,
    /// Keywords searched in `resolution`.
    pub resolution: Vec<String>,
}

impl FieldFilters {
    fn matches(&self, ticket: &CriTicket) -> bool {
        let hit = |haystack: &str, needles: &[String]| {
            let lower = haystack.to_lowercase();
            needles.iter().any(|n| lower.contains(n.as_str()))
        };
        hit(&ticket.symptoms, &self.symptoms)
            || hit(&ticket.subject, &self.subject)
            || hit(&ticket.resolution, &self.resolution)
    }
}

/// The keyword classifier mapping tickets to γ.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeywordClassifier {
    /// Performance-sensitivity (+1) filters.
    pub performance: FieldFilters,
    /// Cost-sensitivity (−1) filters.
    pub cost: FieldFilters,
}

impl Default for KeywordClassifier {
    fn default() -> Self {
        Self::paper_filters()
    }
}

impl KeywordClassifier {
    /// The Table-1 throttle filters plus symmetric cost filters.
    pub fn paper_filters() -> Self {
        let cpu = [
            "high cpu",
            "high cpu usage",
            "high cpu utilization",
            "high cpu utilisation",
        ];
        Self {
            performance: FieldFilters {
                symptoms: to_vec(&cpu),
                subject: to_vec(&[
                    "high cpu",
                    "high cpu usage",
                    "high cpu utilization",
                    "high cpu utilisation",
                    "100%",
                    "99%",
                    "95%",
                    "90%",
                    "throttl",
                ]),
                resolution: to_vec(&["increas", "throttl", "scale up", "scaling up", "scaled up"]),
            },
            cost: FieldFilters {
                symptoms: to_vec(&["too expensive", "high cost", "high bill", "overprovisioned"]),
                subject: to_vec(&["cost", "billing", "expensive", "downgrade"]),
                resolution: to_vec(&[
                    "decreas",
                    "scale down",
                    "scaling down",
                    "scaled down",
                    "downgrade",
                ]),
            },
        }
    }

    /// Classifies a ticket to a satisfaction signal `γ`:
    /// `+1` performance-sensitive, `−1` cost-sensitive, `0` neutral or
    /// ambiguous (both directions matched).
    pub fn classify(&self, ticket: &CriTicket) -> f64 {
        let perf = self.performance.matches(ticket);
        let cost = self.cost.matches(ticket);
        match (perf, cost) {
            (true, false) => 1.0,
            (false, true) => -1.0,
            _ => 0.0,
        }
    }
}

fn to_vec(items: &[&str]) -> Vec<String> {
    items.iter().map(|s| (*s).to_owned()).collect()
}

/// Classifies with the default paper filters.
pub fn classify_ticket(ticket: &CriTicket) -> f64 {
    KeywordClassifier::paper_filters().classify(ticket)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throttling_complaints_are_performance_sensitive() {
        let t = CriTicket::new(
            "Database shows HIGH CPU utilization during peak hours",
            "Performance degradation",
            "Advised customer to scale up to the next tier",
        );
        assert_eq!(classify_ticket(&t), 1.0);
    }

    #[test]
    fn subject_percent_markers_match() {
        let t = CriTicket::new("", "CPU pegged at 100% for hours", "");
        assert_eq!(classify_ticket(&t), 1.0);
    }

    #[test]
    fn resolution_stem_matching_catches_increase_variants() {
        for res in [
            "increased vCores",
            "increasing capacity",
            "throttling removed by resize",
        ] {
            let t = CriTicket::new("", "", res);
            assert_eq!(classify_ticket(&t), 1.0, "{res}");
        }
    }

    #[test]
    fn cost_complaints_are_cost_sensitive() {
        let t = CriTicket::new(
            "Bill is too expensive for this workload",
            "Monthly cost question",
            "Scaled down from 16 to 8 vCores",
        );
        assert_eq!(classify_ticket(&t), -1.0);
    }

    #[test]
    fn neutral_tickets_score_zero() {
        let t = CriTicket::new(
            "Cannot connect from new VNet",
            "Connectivity issue",
            "Fixed firewall rule",
        );
        assert_eq!(classify_ticket(&t), 0.0);
    }

    #[test]
    fn ambiguous_tickets_score_zero() {
        // Both directions matched -> neutral.
        let t = CriTicket::new("high cpu but also too expensive", "", "");
        assert_eq!(classify_ticket(&t), 0.0);
    }

    #[test]
    fn matching_is_case_insensitive() {
        let t = CriTicket::new("HIGH CPU USAGE", "", "");
        assert_eq!(classify_ticket(&t), 1.0);
    }

    #[test]
    fn empty_ticket_is_neutral() {
        assert_eq!(classify_ticket(&CriTicket::default()), 0.0);
    }

    #[test]
    fn classifier_serde_round_trip() {
        let c = KeywordClassifier::paper_filters();
        let json = serde_json::to_string(&c).unwrap();
        let back: KeywordClassifier = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
