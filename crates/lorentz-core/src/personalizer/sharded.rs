//! The sharded λ store: per-customer Stage-3 shards under one global,
//! WAL-monotone epoch sequence.
//!
//! λ-state shards by **customer**, not by full path, because Algorithm 1's
//! signal propagation is confined to the signaling customer's subtree — so
//! routing every path of a customer to one shard (via
//! [`ShardRouter::route_customer`]) makes a satisfaction signal, and the
//! λ-delta it publishes, a strictly single-shard affair. A feedback
//! publish swaps one shard's epoch `Arc`; readers of the other N−1 shards
//! never observe so much as a pointer swap.
//!
//! Epoch numbering stays **global**: a central counter mints each epoch
//! and the owning shard publishes at it via
//! [`LambdaStore::publish_delta_at`]. The WAL and follower replication
//! therefore still see strictly increasing epochs (shard-local epochs
//! advance with gaps, which delta replay already tolerates), and with one
//! shard the numbering degenerates bit-for-bit to the flat
//! [`LambdaStore`]'s.

use super::lambda::{LambdaSnapshot, LambdaStore};
use super::{Personalizer, SatisfactionSignal};
use lorentz_types::{LambdaDelta, LorentzError, ResourcePath, ShardRouter};
use std::sync::Arc;

/// N per-customer [`LambdaStore`] shards behind one multiply-fold router
/// and one global epoch counter. See the module docs for the sharding and
/// numbering contracts.
#[derive(Debug)]
pub struct ShardedLambdaStore {
    shards: Box<[LambdaStore]>,
    router: ShardRouter,
    /// The last minted (or restored) global epoch. Every publish holds
    /// this lock across the owning shard's swap, so minted epochs reach
    /// the slots in order.
    epoch: parking_lot::Mutex<u64>,
}

impl ShardedLambdaStore {
    /// Splits a personalizer's profiles across `shards` per-customer
    /// shards. Each shard starts as epoch 1 of its slice (matching
    /// [`LambdaStore::new`]); the global counter starts at 1.
    ///
    /// # Errors
    /// [`LorentzError::InvalidConfig`] for a non-power-of-two shard count
    /// or an invalid personalizer config.
    pub fn new(personalizer: Personalizer, shards: usize) -> Result<Self, LorentzError> {
        let router = ShardRouter::new(shards)?;
        let stores = if router.shards() == 1 {
            vec![LambdaStore::new(personalizer)]
        } else {
            let mut slices = Vec::with_capacity(router.shards());
            for _ in 0..router.shards() {
                slices.push(Personalizer::new(*personalizer.config())?);
            }
            for (path, lambdas) in personalizer.iter_profiles() {
                slices[router.route_customer(path.customer)].set_lambdas(path, lambdas);
            }
            slices.into_iter().map(LambdaStore::new).collect()
        };
        Ok(Self {
            shards: stores.into_boxed_slice(),
            router,
            epoch: parking_lot::Mutex::new(1),
        })
    }

    /// How many shards the customer space is split across.
    pub fn shards(&self) -> usize {
        self.router.shards()
    }

    /// The shard owning a path's customer — total and stable.
    pub fn shard_of(&self, path: &ResourcePath) -> usize {
        self.router.route_customer(path.customer)
    }

    /// The owning shard's current epoch — a cheap `Arc` clone; probe it
    /// lock-free. The snapshot covers every path of the customer (signal
    /// propagation never leaves the shard).
    pub fn snapshot_for(&self, path: &ResourcePath) -> Arc<LambdaSnapshot> {
        self.shards[self.shard_of(path)].snapshot()
    }

    /// One shard's current epoch, by index (diagnostics and tests).
    ///
    /// # Errors
    /// [`LorentzError::InvalidConfig`] for an out-of-range shard index.
    pub fn snapshot_shard(&self, shard: usize) -> Result<Arc<LambdaSnapshot>, LorentzError> {
        self.shards
            .get(shard)
            .map(LambdaStore::snapshot)
            .ok_or_else(|| {
                LorentzError::InvalidConfig(format!(
                    "shard {shard} out of range (store has {} shards)",
                    self.router.shards()
                ))
            })
    }

    /// The last minted (or restored) global epoch. With one shard this is
    /// exactly the flat store's published epoch.
    pub fn version(&self) -> u64 {
        *self.epoch.lock()
    }

    /// Applies one signal to the owning shard's writer state. Not visible
    /// to readers until published.
    pub fn apply_signal(&self, signal: &SatisfactionSignal) {
        self.shards[self.shard_of(&signal.path)].apply_signal(signal);
    }

    /// Applies a batch of signals in order, each routed to its owning
    /// shard. Not visible to readers until published.
    pub fn apply_signals(&self, signals: &[SatisfactionSignal]) {
        for signal in signals {
            self.apply_signal(signal);
        }
    }

    /// Publishes the signal's owning shard at a freshly minted global
    /// epoch, returning the epoch-stamped delta for WAL framing and
    /// replication. Only that shard's epoch pointer swaps.
    pub fn publish_delta_for(&self, path: &ResourcePath) -> LambdaDelta {
        let mut epoch = self.epoch.lock();
        *epoch += 1;
        self.shards[self.shard_of(path)]
            .publish_delta_at(*epoch)
            .expect("globally minted epochs advance every shard")
    }

    /// Publishes every shard's pending changes, each at its own freshly
    /// minted global epoch, returning the last epoch minted. Used for
    /// replay-style bulk publishes; with one shard this is exactly the
    /// flat store's [`LambdaStore::publish`].
    pub fn publish(&self) -> u64 {
        let mut epoch = self.epoch.lock();
        for shard in &self.shards {
            *epoch += 1;
            shard
                .publish_delta_at(*epoch)
                .expect("globally minted epochs advance every shard");
        }
        *epoch
    }

    /// Fast-forwards the global counter and every shard's published epoch
    /// to at least `epoch` without changing any λ values, returning the
    /// resulting global epoch. Used after WAL replay so the next publish
    /// continues the on-disk numbering.
    pub fn restore_epoch(&self, epoch: u64) -> u64 {
        let mut global = self.epoch.lock();
        if epoch > *global {
            *global = epoch;
        }
        for shard in &self.shards {
            shard.restore_epoch(epoch);
        }
        *global
    }

    /// Runs `f` against each shard's writer-side personalizer in shard
    /// order (for reports and persistence — the serve path reads
    /// snapshots instead).
    pub fn with_personalizers<R>(&self, mut f: impl FnMut(&Personalizer) -> R) -> Vec<R> {
        self.shards
            .iter()
            .map(|shard| shard.with_personalizer(&mut f))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::personalizer::PersonalizerConfig;
    use lorentz_types::{CustomerId, ResourceGroupId, ServerOffering, SubscriptionId};

    fn path(customer: u32, sub: u32, rg: u32) -> ResourcePath {
        ResourcePath::new(
            CustomerId(customer),
            SubscriptionId(sub),
            ResourceGroupId(rg),
        )
    }

    fn signal(p: ResourcePath, gamma: f64) -> SatisfactionSignal {
        SatisfactionSignal::new(p, ServerOffering::GeneralPurpose, gamma).unwrap()
    }

    fn seeded(shards: usize) -> ShardedLambdaStore {
        let mut personalizer = Personalizer::new(PersonalizerConfig::default()).unwrap();
        for customer in 0..32 {
            personalizer.register(path(customer, 0, 0));
        }
        ShardedLambdaStore::new(personalizer, shards).unwrap()
    }

    #[test]
    fn single_shard_matches_flat_store_numbering() {
        let store = seeded(1);
        assert_eq!(store.version(), 1);
        let p = path(3, 0, 0);
        store.apply_signal(&signal(p, 1.0));
        let delta = store.publish_delta_for(&p);
        assert_eq!(delta.epoch, 2);
        assert_eq!(store.version(), 2);
        assert_eq!(store.snapshot_for(&p).version(), 2);
    }

    #[test]
    fn sharded_lambdas_match_flat_for_any_customer() {
        let mut flat = Personalizer::new(PersonalizerConfig::default()).unwrap();
        for customer in 0..32 {
            flat.register(path(customer, 0, 0));
        }
        let flat_store = LambdaStore::new(flat.clone());
        let sharded = ShardedLambdaStore::new(flat, 8).unwrap();
        for customer in [0u32, 7, 31] {
            let p = path(customer, 0, 0);
            let s = signal(p, 0.5);
            flat_store.apply_signal(&s);
            sharded.apply_signal(&s);
            flat_store.publish();
            sharded.publish_delta_for(&p);
            assert_eq!(
                flat_store
                    .snapshot()
                    .lambda(&p, ServerOffering::GeneralPurpose),
                sharded
                    .snapshot_for(&p)
                    .lambda(&p, ServerOffering::GeneralPurpose),
                "customer {customer} diverged from the flat store"
            );
        }
    }

    #[test]
    fn delta_publish_swaps_only_the_owning_shard() {
        let store = seeded(4);
        let p = path(5, 0, 0);
        let owner = store.shard_of(&p);
        let before: Vec<_> = (0..4).map(|i| store.snapshot_shard(i).unwrap()).collect();
        store.apply_signal(&signal(p, 1.0));
        store.publish_delta_for(&p);
        for (i, was) in before.iter().enumerate() {
            let now = store.snapshot_shard(i).unwrap();
            if i == owner {
                assert!(!Arc::ptr_eq(was, &now), "owning shard must swap");
            } else {
                assert!(
                    Arc::ptr_eq(was, &now),
                    "shard {i} swapped without a publish"
                );
            }
        }
    }

    #[test]
    fn global_epochs_stay_strictly_increasing_across_shards() {
        let store = seeded(4);
        let mut last = store.version();
        for customer in 0..16u32 {
            let p = path(customer, 0, 0);
            store.apply_signal(&signal(p, 0.25));
            let delta = store.publish_delta_for(&p);
            assert!(
                delta.epoch > last,
                "epoch regressed: {} -> {}",
                last,
                delta.epoch
            );
            last = delta.epoch;
        }
        assert_eq!(store.version(), last);
    }

    #[test]
    fn restore_epoch_fast_forwards_every_shard() {
        let store = seeded(4);
        assert_eq!(store.restore_epoch(40), 40);
        assert_eq!(store.version(), 40);
        for shard in 0..4 {
            assert_eq!(store.snapshot_shard(shard).unwrap().version(), 40);
        }
        // The next publish continues past the restored numbering.
        let p = path(1, 0, 0);
        store.apply_signal(&signal(p, 1.0));
        assert_eq!(store.publish_delta_for(&p).epoch, 41);
        // Restoring backwards is a no-op.
        assert_eq!(store.restore_epoch(5), 41);
    }
}
