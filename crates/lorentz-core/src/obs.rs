//! Process-wide metric definitions for the train and serve paths.
//!
//! Every metric is a `static` atomic from [`lorentz_obs`], so hot paths pay
//! only the relaxed atomic op — no registry lookup, no allocation, no lock.
//! The [`registry`] assembles them into a named [`MetricsSnapshot`] (the
//! `--metrics-out` payload). Metric names are dotted paths grouped by
//! subsystem; span histograms carry a `.span_ns` suffix and record
//! nanoseconds.
//!
//! | name | kind | meaning |
//! |---|---|---|
//! | `train.stage1.span_ns` | histogram | one record per Stage-1 rightsizing pass |
//! | `train.stage1.records` | counter | fleet records rightsized |
//! | `train.stage2.span_ns` | histogram | one record per full Stage-2 run |
//! | `train.stage2.offering_span_ns` | histogram | one record per per-offering worker |
//! | `train.stage2.offerings` | counter | offering models trained |
//! | `train.publish.span_ns` | histogram | store-publish duration |
//! | `train.publish.entries` | counter | store keys published |
//! | `train.personalizer.span_ns` | histogram | personalizer-init duration |
//! | `train.personalizer.profiles` | counter | profile paths registered at init |
//! | `serve.recommend.span_ns` | histogram | one record per single live-model recommend |
//! | `serve.recommend_batch.span_ns` | histogram | one record per live-model batch |
//! | `serve.recommend.requests` / `.errors` | counter | live-model requests / failures (single + batched) |
//! | `serve.recommend_batch.batches` | counter | live-model batch calls |
//! | `serve.store.span_ns` | histogram | one record per single store-path recommend |
//! | `serve.store_batch.span_ns` | histogram | one record per store-path batch |
//! | `serve.store.requests` / `.errors` | counter | store-path requests / failures (single + batched) |
//! | `serve.store_batch.batches` | counter | store-path batch calls |
//! | `store.lookup.hits` / `.defaults` / `.misses` | counter | key hit / default fallback / not-found outcomes |
//! | `store.lookup_batch.span_ns` | histogram | one record per shared-store batch lookup |
//! | `store.lookup_batch.requests` | counter | requests served through shared-store batch lookups |
//! | `store.publishes` | counter | successful store publishes |
//! | `store.save.generations` | counter | snapshot generations committed by the durable store |
//! | `store.save.retries` | counter | snapshot writes that needed at least one retry |
//! | `store.recovery.loads` | counter | durable-store loads attempted |
//! | `store.recovery.fallbacks` | counter | generations skipped as corrupt during load |
//! | `personalizer.signals` | counter | satisfaction signals applied |
//! | `personalizer.profiles_touched` | counter | profiles updated across all propagation rounds |
//! | `personalizer.lambda.publishes` | counter | λ epochs published by the LambdaStore |
//! | `personalizer.lambda.delta_keys` | counter | changed λ keys carried by published deltas |
//! | `personalizer.lambda.compactions` | counter | overlay generations folded into a new base |
//! | `personalizer.wal.appends` | counter | signals appended durably to the WAL |
//! | `personalizer.wal.replayed` | counter | signals replayed from the WAL at startup |
//! | `personalizer.wal.torn_tails` | counter | torn WAL tails truncated during recovery |
//! | `engine.queue.depth` | gauge | serving-engine submission queue depth |
//! | `engine.submitted` | counter | requests offered to the serving engine |
//! | `engine.accepted` | counter | requests admitted to the queue |
//! | `engine.rejected` | counter | requests refused at admission (queue full or intake closed) |
//! | `engine.answered` | counter | responses emitted (success, error, or deadline) |
//! | `engine.timed_out` | counter | accepted requests answered with a deadline error |
//! | `engine.degraded` | counter | requests served from the store because the queue was saturated |
//! | `engine.worker_panics` | counter | requests whose handler panicked (answered as `Panicked`) |
//! | `engine.worker_restarts` | counter | crashed workers replaced by the supervisor |
//! | `engine.e2e.span_ns` | histogram | submit-to-answer latency per request |
//! | `engine.feedback.accepted` | counter | feedback signals admitted to the λ-writer |
//! | `engine.feedback.applied` | counter | feedback signals applied and published |
//! | `engine.replication.applied` | counter | delta records a follower applied from the WAL |
//! | `engine.replication.lag_epochs` | gauge | epochs a follower trails the latest WAL record |
//! | `engine.replication.followers` | gauge | subscribers currently attached to the replication listener |
//! | `engine.replication.bytes_sent` | counter | framed WAL bytes sent to subscribers |
//! | `engine.replication.resume_replays` | counter | subscriptions resumed from a follower epoch via on-disk replay |
//! | `engine.replication.full_resyncs` | counter | subscriptions the log could not resume, answered with a full resync |
//! | `engine.replication.max_follower_lag` | gauge | epochs the slowest attached follower trails the leader |
//! | `engine.replication.promotions` | counter | followers promoted to serving leader after leader loss |
//! | `engine.replication.duplicates` | counter | re-delivered already-applied delta epochs skipped as idempotent no-ops |
//! | `engine.replication.fenced` | counter | feedback submissions rejected because the leader is fenced by a higher term |
//! | `engine.replication.demotions` | counter | promoted leaders that fenced themselves after observing a higher term |
//! | `engine.net.connections` | counter | TCP connections accepted by the net front end |
//! | `engine.net.active_connections` | gauge | TCP connections currently open |
//! | `engine.net.frames_in` | counter | request frames decoded off sockets |
//! | `engine.net.frames_out` | counter | response frames written to sockets |
//! | `engine.net.frame_errors` | counter | frames rejected before reaching the engine |
//! | `engine.net.disconnects` | counter | connections ended by an I/O error |
//! | `engine.net.dropped_responses` | counter | responses whose connection vanished first |

use lorentz_obs::{Counter, Gauge, Histogram, Registry};
use std::sync::Once;

pub use lorentz_obs::{HistogramSnapshot, MetricsSnapshot};

// Stage spans and counts of the daily batch job (Fig. 8 A→C).
pub(crate) static STAGE1_SPAN_NS: Histogram = Histogram::new();
pub(crate) static STAGE1_RECORDS: Counter = Counter::new();
pub(crate) static STAGE2_SPAN_NS: Histogram = Histogram::new();
pub(crate) static STAGE2_OFFERING_SPAN_NS: Histogram = Histogram::new();
pub(crate) static STAGE2_OFFERINGS: Counter = Counter::new();
pub(crate) static PUBLISH_SPAN_NS: Histogram = Histogram::new();
pub(crate) static PUBLISH_ENTRIES: Counter = Counter::new();
pub(crate) static PERSONALIZER_INIT_SPAN_NS: Histogram = Histogram::new();
pub(crate) static PERSONALIZER_PROFILES: Counter = Counter::new();

// Live-model serving (TrainedLorentz::recommend / recommend_batch).
pub(crate) static RECOMMEND_SPAN_NS: Histogram = Histogram::new();
pub(crate) static RECOMMEND_BATCH_SPAN_NS: Histogram = Histogram::new();
pub(crate) static RECOMMEND_REQUESTS: Counter = Counter::new();
pub(crate) static RECOMMEND_ERRORS: Counter = Counter::new();
pub(crate) static RECOMMEND_BATCHES: Counter = Counter::new();

// Store-backed serving (recommend_from_store / recommend_batch_from_store).
pub(crate) static STORE_SERVE_SPAN_NS: Histogram = Histogram::new();
pub(crate) static STORE_SERVE_BATCH_SPAN_NS: Histogram = Histogram::new();
pub(crate) static STORE_SERVE_REQUESTS: Counter = Counter::new();
pub(crate) static STORE_SERVE_ERRORS: Counter = Counter::new();
pub(crate) static STORE_SERVE_BATCHES: Counter = Counter::new();

// Prediction-store lookup outcomes (shared-store and TrainedLorentz paths).
pub(crate) static STORE_HITS: Counter = Counter::new();
pub(crate) static STORE_DEFAULTS: Counter = Counter::new();
pub(crate) static STORE_MISSES: Counter = Counter::new();
pub(crate) static STORE_BATCH_SPAN_NS: Histogram = Histogram::new();
pub(crate) static STORE_BATCH_REQUESTS: Counter = Counter::new();
pub(crate) static STORE_PUBLISHES: Counter = Counter::new();

// Durable-store persistence and recovery (`store::durability`).
pub(crate) static STORE_SAVE_GENERATIONS: Counter = Counter::new();
pub(crate) static STORE_SAVE_RETRIES: Counter = Counter::new();
pub(crate) static STORE_RECOVERY_LOADS: Counter = Counter::new();
pub(crate) static STORE_RECOVERY_FALLBACKS: Counter = Counter::new();

// Stage-3 signal propagation.
pub(crate) static SIGNALS_APPLIED: Counter = Counter::new();
pub(crate) static SIGNAL_PROFILES_TOUCHED: Counter = Counter::new();

// Online Stage-3 state: λ-epoch publishes and the signal WAL.
pub(crate) static LAMBDA_PUBLISHES: Counter = Counter::new();
pub(crate) static LAMBDA_DELTA_KEYS: Counter = Counter::new();
pub(crate) static LAMBDA_COMPACTIONS: Counter = Counter::new();
pub(crate) static WAL_APPENDS: Counter = Counter::new();
pub(crate) static WAL_REPLAYED: Counter = Counter::new();
pub(crate) static WAL_TORN_TAILS: Counter = Counter::new();

// The concurrent serving engine (`lorentz-serve`). These are `pub` so the
// engine crate can record into the same process-wide registry that
// `--metrics-out` snapshots.

/// Submission queue depth (set on every enqueue/dequeue).
pub static ENGINE_QUEUE_DEPTH: Gauge = Gauge::new();
/// Requests offered to the engine: `submitted = accepted + rejected`.
pub static ENGINE_SUBMITTED: Counter = Counter::new();
/// Requests admitted to the queue; after a drain, `accepted = answered`.
pub static ENGINE_ACCEPTED: Counter = Counter::new();
/// Requests refused at admission (queue full or intake closed).
pub static ENGINE_REJECTED: Counter = Counter::new();
/// Responses emitted — every accepted request produces exactly one.
pub static ENGINE_ANSWERED: Counter = Counter::new();
/// Accepted requests whose deadline expired before a worker reached them.
pub static ENGINE_TIMED_OUT: Counter = Counter::new();
/// Requests downgraded from live-model inference to a store lookup because
/// the queue was saturated at admission.
pub static ENGINE_DEGRADED: Counter = Counter::new();
/// Requests whose handler panicked; each is still answered (as `Panicked`).
pub static ENGINE_WORKER_PANICS: Counter = Counter::new();
/// Crashed worker threads replaced by the engine's supervisor.
pub static ENGINE_WORKER_RESTARTS: Counter = Counter::new();
/// Submit-to-answer latency, one observation per answered request.
pub static ENGINE_E2E_SPAN_NS: Histogram = Histogram::new();
/// Feedback signals admitted to the engine's λ-writer queue.
pub static ENGINE_FEEDBACK_ACCEPTED: Counter = Counter::new();
/// Feedback signals the λ-writer applied (and published); after a drain,
/// `feedback_accepted = feedback_applied`.
pub static ENGINE_FEEDBACK_APPLIED: Counter = Counter::new();
/// Delta records a follower engine applied from the tailed WAL.
pub static ENGINE_REPLICATION_APPLIED: Counter = Counter::new();
/// Epochs the follower's λ store trails the newest WAL record it has seen
/// (0 once caught up; set per tail poll).
pub static ENGINE_REPLICATION_LAG_EPOCHS: Gauge = Gauge::new();
/// Subscribers currently attached to the leader's replication listener.
pub static ENGINE_REPLICATION_FOLLOWERS: Gauge = Gauge::new();
/// Framed WAL bytes sent to replication subscribers (resume replays plus
/// live tail).
pub static ENGINE_REPLICATION_BYTES_SENT: Counter = Counter::new();
/// Subscriptions that resumed from a follower-supplied epoch by replaying
/// the on-disk WAL.
pub static ENGINE_REPLICATION_RESUME_REPLAYS: Counter = Counter::new();
/// Subscriptions whose requested epoch the log no longer reaches, answered
/// with a full resync of the entire log.
pub static ENGINE_REPLICATION_FULL_RESYNCS: Counter = Counter::new();
/// Epochs the slowest currently-attached follower trails the leader's
/// newest broadcast (0 with no followers or all caught up).
pub static ENGINE_REPLICATION_MAX_FOLLOWER_LAG: Gauge = Gauge::new();
/// Followers promoted to serving leader after detecting leader loss.
pub static ENGINE_REPLICATION_PROMOTIONS: Counter = Counter::new();
/// Re-delivered already-applied delta epochs skipped as idempotent no-ops
/// on the follower apply path (ambiguous-send resume, replayed streams).
pub static ENGINE_REPLICATION_DUPLICATES: Counter = Counter::new();
/// Feedback submissions rejected because this leader is fenced: a higher
/// leader term has been observed and a newer leader owns the lineage.
pub static ENGINE_REPLICATION_FENCED: Counter = Counter::new();
/// Promoted leaders that fenced themselves (flipped to `Demoted`) after
/// observing a higher term.
pub static ENGINE_REPLICATION_DEMOTIONS: Counter = Counter::new();
/// TCP connections the net front end has accepted since start.
pub static NET_CONNECTIONS: Counter = Counter::new();
/// TCP connections currently open (accepted minus closed).
pub static NET_ACTIVE_CONNECTIONS: Gauge = Gauge::new();
/// Request frames decoded off sockets (before engine admission).
pub static NET_FRAMES_IN: Counter = Counter::new();
/// Response frames written back to sockets.
pub static NET_FRAMES_OUT: Counter = Counter::new();
/// Frames rejected before reaching the engine (oversized, malformed
/// length, or unparseable payload).
pub static NET_FRAME_ERRORS: Counter = Counter::new();
/// Connections that ended with an I/O error instead of a clean close or
/// drain (half-open peers, mid-frame disconnects, write failures).
pub static NET_DISCONNECTS: Counter = Counter::new();
/// Responses dropped because their connection was already gone when the
/// engine answered.
pub static NET_DROPPED_RESPONSES: Counter = Counter::new();

static REGISTRY: Registry = Registry::new();
static REGISTER: Once = Once::new();

/// The process-wide metric registry, with every Lorentz metric registered.
pub fn registry() -> &'static Registry {
    REGISTER.call_once(|| {
        let r = &REGISTRY;
        r.register_histogram("train.stage1.span_ns", &STAGE1_SPAN_NS);
        r.register_counter("train.stage1.records", &STAGE1_RECORDS);
        r.register_histogram("train.stage2.span_ns", &STAGE2_SPAN_NS);
        r.register_histogram("train.stage2.offering_span_ns", &STAGE2_OFFERING_SPAN_NS);
        r.register_counter("train.stage2.offerings", &STAGE2_OFFERINGS);
        r.register_histogram("train.publish.span_ns", &PUBLISH_SPAN_NS);
        r.register_counter("train.publish.entries", &PUBLISH_ENTRIES);
        r.register_histogram("train.personalizer.span_ns", &PERSONALIZER_INIT_SPAN_NS);
        r.register_counter("train.personalizer.profiles", &PERSONALIZER_PROFILES);
        r.register_histogram("serve.recommend.span_ns", &RECOMMEND_SPAN_NS);
        r.register_histogram("serve.recommend_batch.span_ns", &RECOMMEND_BATCH_SPAN_NS);
        r.register_counter("serve.recommend.requests", &RECOMMEND_REQUESTS);
        r.register_counter("serve.recommend.errors", &RECOMMEND_ERRORS);
        r.register_counter("serve.recommend_batch.batches", &RECOMMEND_BATCHES);
        r.register_histogram("serve.store.span_ns", &STORE_SERVE_SPAN_NS);
        r.register_histogram("serve.store_batch.span_ns", &STORE_SERVE_BATCH_SPAN_NS);
        r.register_counter("serve.store.requests", &STORE_SERVE_REQUESTS);
        r.register_counter("serve.store.errors", &STORE_SERVE_ERRORS);
        r.register_counter("serve.store_batch.batches", &STORE_SERVE_BATCHES);
        r.register_counter("store.lookup.hits", &STORE_HITS);
        r.register_counter("store.lookup.defaults", &STORE_DEFAULTS);
        r.register_counter("store.lookup.misses", &STORE_MISSES);
        r.register_histogram("store.lookup_batch.span_ns", &STORE_BATCH_SPAN_NS);
        r.register_counter("store.lookup_batch.requests", &STORE_BATCH_REQUESTS);
        r.register_counter("store.publishes", &STORE_PUBLISHES);
        r.register_counter("store.save.generations", &STORE_SAVE_GENERATIONS);
        r.register_counter("store.save.retries", &STORE_SAVE_RETRIES);
        r.register_counter("store.recovery.loads", &STORE_RECOVERY_LOADS);
        r.register_counter("store.recovery.fallbacks", &STORE_RECOVERY_FALLBACKS);
        r.register_counter("personalizer.signals", &SIGNALS_APPLIED);
        r.register_counter("personalizer.profiles_touched", &SIGNAL_PROFILES_TOUCHED);
        r.register_counter("personalizer.lambda.publishes", &LAMBDA_PUBLISHES);
        r.register_counter("personalizer.lambda.delta_keys", &LAMBDA_DELTA_KEYS);
        r.register_counter("personalizer.lambda.compactions", &LAMBDA_COMPACTIONS);
        r.register_counter("personalizer.wal.appends", &WAL_APPENDS);
        r.register_counter("personalizer.wal.replayed", &WAL_REPLAYED);
        r.register_counter("personalizer.wal.torn_tails", &WAL_TORN_TAILS);
        r.register_gauge("engine.queue.depth", &ENGINE_QUEUE_DEPTH);
        r.register_counter("engine.submitted", &ENGINE_SUBMITTED);
        r.register_counter("engine.accepted", &ENGINE_ACCEPTED);
        r.register_counter("engine.rejected", &ENGINE_REJECTED);
        r.register_counter("engine.answered", &ENGINE_ANSWERED);
        r.register_counter("engine.timed_out", &ENGINE_TIMED_OUT);
        r.register_counter("engine.degraded", &ENGINE_DEGRADED);
        r.register_counter("engine.worker_panics", &ENGINE_WORKER_PANICS);
        r.register_counter("engine.worker_restarts", &ENGINE_WORKER_RESTARTS);
        r.register_histogram("engine.e2e.span_ns", &ENGINE_E2E_SPAN_NS);
        r.register_counter("engine.feedback.accepted", &ENGINE_FEEDBACK_ACCEPTED);
        r.register_counter("engine.feedback.applied", &ENGINE_FEEDBACK_APPLIED);
        r.register_counter("engine.replication.applied", &ENGINE_REPLICATION_APPLIED);
        r.register_gauge(
            "engine.replication.lag_epochs",
            &ENGINE_REPLICATION_LAG_EPOCHS,
        );
        r.register_gauge(
            "engine.replication.followers",
            &ENGINE_REPLICATION_FOLLOWERS,
        );
        r.register_counter(
            "engine.replication.bytes_sent",
            &ENGINE_REPLICATION_BYTES_SENT,
        );
        r.register_counter(
            "engine.replication.resume_replays",
            &ENGINE_REPLICATION_RESUME_REPLAYS,
        );
        r.register_counter(
            "engine.replication.full_resyncs",
            &ENGINE_REPLICATION_FULL_RESYNCS,
        );
        r.register_gauge(
            "engine.replication.max_follower_lag",
            &ENGINE_REPLICATION_MAX_FOLLOWER_LAG,
        );
        r.register_counter(
            "engine.replication.promotions",
            &ENGINE_REPLICATION_PROMOTIONS,
        );
        r.register_counter(
            "engine.replication.duplicates",
            &ENGINE_REPLICATION_DUPLICATES,
        );
        r.register_counter("engine.replication.fenced", &ENGINE_REPLICATION_FENCED);
        r.register_counter(
            "engine.replication.demotions",
            &ENGINE_REPLICATION_DEMOTIONS,
        );
        r.register_counter("engine.net.connections", &NET_CONNECTIONS);
        r.register_gauge("engine.net.active_connections", &NET_ACTIVE_CONNECTIONS);
        r.register_counter("engine.net.frames_in", &NET_FRAMES_IN);
        r.register_counter("engine.net.frames_out", &NET_FRAMES_OUT);
        r.register_counter("engine.net.frame_errors", &NET_FRAME_ERRORS);
        r.register_counter("engine.net.disconnects", &NET_DISCONNECTS);
        r.register_counter("engine.net.dropped_responses", &NET_DROPPED_RESPONSES);
    });
    &REGISTRY
}

/// Captures every Lorentz metric into a serializable snapshot (the
/// `--metrics-out` payload).
pub fn snapshot() -> MetricsSnapshot {
    registry().snapshot()
}

/// Resets every Lorentz metric to zero. Test support: metrics are
/// process-wide, so tests that assert exact counts reset first and must not
/// run concurrently with other metric-producing tests.
pub fn reset() {
    registry().reset();
}
