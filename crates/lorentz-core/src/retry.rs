//! Jittered exponential retry for transient I/O failures.
//!
//! Snapshot persistence and CLI output writes hit the filesystem, where
//! `ErrorKind::Interrupted`-style failures are transient by definition and
//! a bounded retry is the correct response. [`retry_with_backoff`] runs an
//! operation up to a capped number of attempts with exponentially growing,
//! jittered delays, and refuses to start an attempt past a wall-clock
//! deadline — so a persistently broken disk fails fast instead of hanging
//! a publish.
//!
//! Jitter is seeded (splitmix64), so tests exercising the retry path are
//! deterministic.

use std::io;
use std::time::{Duration, Instant};

/// Bounds for [`retry_with_backoff`].
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Maximum number of attempts, including the first (minimum 1).
    pub max_attempts: u32,
    /// Delay before the first retry; doubles each subsequent retry.
    pub base_delay: Duration,
    /// Upper bound on any single delay.
    pub max_delay: Duration,
    /// Wall-clock budget: no new attempt starts after this much time.
    pub deadline: Duration,
    /// Seed for the jitter stream, so retry timing is reproducible.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(200),
            deadline: Duration::from_secs(2),
            jitter_seed: 0x5EED_CAFE_F00D_D00D,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries — one attempt, no delays.
    pub fn no_retries() -> Self {
        Self {
            max_attempts: 1,
            ..Self::default()
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The delay before retry number `retry` (1-based): exponential growth
/// from `base_delay` capped at `max_delay`, then jittered into
/// `[exp/2, exp)` so colliding writers decorrelate.
fn backoff_delay(policy: &RetryPolicy, retry: u32, rng: &mut u64) -> Duration {
    let exp = policy
        .base_delay
        .saturating_mul(1u32 << (retry - 1).min(16))
        .min(policy.max_delay);
    let frac = (splitmix64(rng) >> 11) as f64 / (1u64 << 53) as f64;
    exp / 2 + Duration::from_secs_f64(exp.as_secs_f64() / 2.0 * frac)
}

/// Whether an I/O error is worth retrying: interruptions, timeouts, and
/// would-block conditions clear on their own; everything else does not.
pub fn is_transient_io(err: &io::Error) -> bool {
    matches!(
        err.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Runs `op` until it succeeds, fails permanently, or the policy's
/// attempt/deadline budget runs out.
///
/// `op` receives the 0-based attempt number. `retryable` classifies an
/// error; a non-retryable error is returned immediately. When the budget
/// is exhausted, the last error is returned.
///
/// # Errors
/// The first non-retryable error, or the final error once attempts or the
/// deadline are exhausted.
pub fn retry_with_backoff<T, E>(
    policy: &RetryPolicy,
    retryable: impl Fn(&E) -> bool,
    mut op: impl FnMut(u32) -> Result<T, E>,
) -> Result<T, E> {
    let started = Instant::now();
    let mut rng = policy.jitter_seed;
    let max_attempts = policy.max_attempts.max(1);
    let mut attempt = 0;
    loop {
        match op(attempt) {
            Ok(value) => return Ok(value),
            Err(err) => {
                attempt += 1;
                if attempt >= max_attempts || !retryable(&err) {
                    return Err(err);
                }
                let delay = backoff_delay(policy, attempt, &mut rng);
                if started.elapsed() + delay >= policy.deadline {
                    return Err(err);
                }
                std::thread::sleep(delay);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_policy() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_micros(50),
            max_delay: Duration::from_micros(400),
            deadline: Duration::from_secs(1),
            jitter_seed: 42,
        }
    }

    #[test]
    fn succeeds_first_try_without_sleeping() {
        let result: Result<u32, io::Error> =
            retry_with_backoff(&fast_policy(), is_transient_io, |_| Ok(7));
        assert_eq!(result.unwrap(), 7);
    }

    #[test]
    fn retries_transient_errors_until_success() {
        let mut calls = 0;
        let result = retry_with_backoff(&fast_policy(), is_transient_io, |attempt| {
            calls += 1;
            if attempt < 2 {
                Err(io::Error::new(io::ErrorKind::Interrupted, "flaky"))
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(result.unwrap(), 2);
        assert_eq!(calls, 3);
    }

    #[test]
    fn permanent_errors_fail_immediately() {
        let mut calls = 0;
        let result: Result<(), io::Error> =
            retry_with_backoff(&fast_policy(), is_transient_io, |_| {
                calls += 1;
                Err(io::Error::new(io::ErrorKind::PermissionDenied, "nope"))
            });
        assert_eq!(result.unwrap_err().kind(), io::ErrorKind::PermissionDenied);
        assert_eq!(calls, 1);
    }

    #[test]
    fn attempt_budget_is_respected() {
        let mut calls = 0;
        let result: Result<(), io::Error> =
            retry_with_backoff(&fast_policy(), is_transient_io, |_| {
                calls += 1;
                Err(io::Error::new(io::ErrorKind::Interrupted, "always"))
            });
        assert_eq!(result.unwrap_err().kind(), io::ErrorKind::Interrupted);
        assert_eq!(calls, 4);
    }

    #[test]
    fn deadline_stops_retrying_early() {
        let policy = RetryPolicy {
            max_attempts: 100,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_millis(50),
            deadline: Duration::from_millis(1),
            jitter_seed: 1,
        };
        let mut calls = 0;
        let result: Result<(), io::Error> = retry_with_backoff(&policy, is_transient_io, |_| {
            calls += 1;
            Err(io::Error::new(io::ErrorKind::Interrupted, "slow"))
        });
        assert!(result.is_err());
        assert_eq!(calls, 1, "no retry fits inside a 1ms deadline");
    }

    #[test]
    fn delays_grow_exponentially_and_cap() {
        let policy = RetryPolicy {
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(35),
            ..RetryPolicy::default()
        };
        let mut rng = policy.jitter_seed;
        let d1 = backoff_delay(&policy, 1, &mut rng);
        let d3 = backoff_delay(&policy, 3, &mut rng);
        // Jitter keeps each delay in [exp/2, exp).
        assert!(d1 >= Duration::from_millis(5) && d1 < Duration::from_millis(10));
        assert!(d3 >= Duration::from_micros(17_500) && d3 < Duration::from_millis(35));
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let policy = fast_policy();
        let (mut a, mut b) = (policy.jitter_seed, policy.jitter_seed);
        for retry in 1..5 {
            assert_eq!(
                backoff_delay(&policy, retry, &mut a),
                backoff_delay(&policy, retry, &mut b)
            );
        }
    }
}
