//! The Lorentz SKU recommender.
//!
//! Implements the three-stage pipeline of *Lorentz: Learned SKU
//! Recommendation Using Profile Data* (SIGMOD 2024):
//!
//! 1. [`rightsizer`] — Stage 1: compute best-fit capacities for existing
//!    workloads from their telemetry, balancing slack against throttling
//!    with censoring-aware handling of already-throttled workloads
//!    (Eq. 1–9).
//! 2. [`provisioner`] — Stage 2: recommend capacities for *new* workloads
//!    from profile data alone, via the hierarchical bucket model
//!    (Eq. 10–12) or target encoding + gradient-boosted trees (§3.3).
//! 3. [`personalizer`] — Stage 3: learn per-customer cost/performance
//!    sensitivity scores λ from satisfaction signals via message
//!    propagation (Algorithm 1) and apply them as `c** = 2^λ · c*`
//!    (Eq. 13–14).
//!
//! Supporting modules: [`config`] (the Table-2 hyperparameters),
//! [`fleet`] (training-data container), [`store`] (the versioned offline
//! prediction store of §4, with crash-safe generation-numbered persistence
//! in [`store::durability`]), [`retry`] (jittered exponential backoff for
//! transient I/O), [`pipeline`] (batch train → publish → serve
//! orchestration, Fig. 8), [`evaluate`] (slack/throttling metrics and
//! Pareto sweeps used throughout §5), [`explain`] (recommendation
//! rationales, challenge C3), and [`obs`] (per-stage span timings and
//! serving counters, exported as a [`lorentz_obs::MetricsSnapshot`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod cost;
pub mod evaluate;
pub mod explain;
pub mod fleet;
pub mod obs;
pub mod personalizer;
pub mod pipeline;
pub mod provisioner;
pub mod report;
pub mod retry;
pub mod rightsizer;
pub mod store;
pub mod validation;

pub use config::{LorentzConfig, RightsizerConfig};
pub use cost::{bill_fleet, CostModel, FleetBill};
pub use explain::{Explanation, Recommendation};
pub use fleet::FleetDataset;
pub use personalizer::{
    LambdaEpoch, LambdaSnapshot, LambdaStore, Personalizer, PersonalizerConfig, PollBackoff,
    SatisfactionSignal, ShardedLambdaStore, SignalWal, TermRecord, WalEntry, WalRecord,
    WalRecovery, WalReplay, WalTailer, WalVerifyReport,
};
pub use pipeline::{
    LiveModel, LorentzPipeline, ModelKind, RecommendEngine, RecommendRequest, StoreOnly,
    StoreProbe, TrainedLorentz,
};
pub use provisioner::{
    HierarchicalConfig, HierarchicalProvisioner, OfferingRecommender, Provisioner,
    TargetEncodingConfig, TargetEncodingProvisioner, TraceAugmentedProvisioner,
};
pub use report::{fleet_report, FleetReport};
pub use retry::{is_transient_io, retry_with_backoff, RetryPolicy};
pub use rightsizer::{ProvisioningVerdict, RightsizeOutcome, Rightsizer, Stage1Scratch};
pub use store::{
    DurableStore, PredictionStore, RecoveredStore, ShardedPredictionStore, ShardedStoreSnapshot,
    SharedPredictionStore, StoreError,
};
pub use validation::{validate_deployment, DeploymentReport, PublishGate};
