//! The hierarchical provisioner (§3.3, Eq. 10–12; Fig. 5).
//!
//! Training: learn the profile-feature hierarchy chain, then populate one
//! bucket per (chain level, feature value) with the rightsized capacities of
//! the existing VMs carrying that value (Eq. 10). Buckets are indexed by a
//! single hierarchy level, not the full prefix, which suppresses mis-entry
//! noise in coarser features (paper footnote 1).
//!
//! Inference: walk the chain from finest to coarsest, stop at the first
//! bucket with at least `N` reference instances, and return its `p`-th
//! percentile (Eq. 11–12). If no bucket qualifies, fall back to the global
//! capacity distribution.

use crate::explain::{BucketSummary, Explanation};
use crate::provisioner::{discretize, Provisioner};
use lorentz_hierarchy::{learn_hierarchy, HierarchyChain, HierarchyConfig};
use lorentz_telemetry::aggregate::percentile_of_sorted;
use lorentz_types::{
    FeatureId, LorentzError, ProfileTable, ProfileVector, Sku, SkuCatalog, ValueId, Vocab,
};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Hierarchical provisioner hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HierarchicalConfig {
    /// The percentile `p` returned from the matched bucket (Table 2: 50 —
    /// "a balanced, outlier-robust choice").
    pub percentile: f64,
    /// The minimum bucket size `N` required to recommend from a level
    /// (Eq. 11).
    pub min_bucket: usize,
    /// Hierarchy-learning parameters (γ = 0.6 in Table 2).
    pub hierarchy: HierarchyConfig,
}

impl Default for HierarchicalConfig {
    fn default() -> Self {
        Self {
            percentile: 50.0,
            min_bucket: 10,
            hierarchy: HierarchyConfig::default(),
        }
    }
}

impl HierarchicalConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns [`LorentzError::InvalidConfig`] for out-of-range values.
    pub fn validate(&self) -> Result<(), LorentzError> {
        if !self.percentile.is_finite() || !(0.0..=100.0).contains(&self.percentile) {
            return Err(LorentzError::InvalidConfig(format!(
                "percentile must be in [0, 100], got {}",
                self.percentile
            )));
        }
        if self.min_bucket == 0 {
            return Err(LorentzError::InvalidConfig(
                "min_bucket must be >= 1".into(),
            ));
        }
        self.hierarchy.validate()
    }
}

/// A fitted hierarchical provisioner.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HierarchicalProvisioner {
    config: HierarchicalConfig,
    catalog: SkuCatalog,
    chain: HierarchyChain,
    /// Feature names aligned with the chain levels (for explanations).
    chain_names: Vec<String>,
    /// Vocabularies of the chain features (value id → string).
    chain_vocabs: Vec<Vocab>,
    /// `buckets[level][value id]` = sorted rightsized capacities.
    buckets: Vec<HashMap<u32, Vec<f64>>>,
    /// All training capacities, sorted (global fallback).
    global: Vec<f64>,
    n_features: usize,
}

impl HierarchicalProvisioner {
    /// Fits the provisioner on existing VMs' profiles and their rightsized
    /// capacities (primary dimension).
    ///
    /// # Errors
    /// Returns [`LorentzError`] on invalid configs, empty/mismatched
    /// training data, or non-positive labels.
    pub fn fit(
        table: &ProfileTable,
        labels: &[f64],
        catalog: &SkuCatalog,
        config: HierarchicalConfig,
    ) -> Result<Self, LorentzError> {
        config.validate()?;
        if table.rows() != labels.len() {
            return Err(LorentzError::Model(format!(
                "{} profile rows vs {} labels",
                table.rows(),
                labels.len()
            )));
        }
        if table.is_empty() {
            return Err(LorentzError::Model("empty training table".into()));
        }
        if let Some(bad) = labels.iter().find(|l| !l.is_finite() || **l <= 0.0) {
            return Err(LorentzError::Model(format!(
                "labels must be positive capacities, got {bad}"
            )));
        }

        let chain = learn_hierarchy(table, &config.hierarchy)?;

        // Populate buckets along the chain (Eq. 10).
        let mut buckets: Vec<HashMap<u32, Vec<f64>>> = vec![HashMap::new(); chain.len()];
        for (level, &feature) in chain.features().iter().enumerate() {
            let column = table.column(feature);
            for (row, value) in column.iter().enumerate() {
                if let Some(v) = value {
                    buckets[level].entry(*v).or_default().push(labels[row]);
                }
            }
        }
        for level in &mut buckets {
            for capacities in level.values_mut() {
                capacities.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite labels"));
            }
        }
        let mut global = labels.to_vec();
        global.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite labels"));

        let chain_names = chain
            .features()
            .iter()
            .map(|&f| table.schema().name(f).to_owned())
            .collect();
        let chain_vocabs = chain
            .features()
            .iter()
            .map(|&f| table.vocab(f).clone())
            .collect();

        Ok(Self {
            config,
            catalog: catalog.clone(),
            chain,
            chain_names,
            chain_vocabs,
            buckets,
            global,
            n_features: table.schema().len(),
        })
    }

    /// The learned hierarchy chain.
    pub fn chain(&self) -> &HierarchyChain {
        &self.chain
    }

    /// The configuration used at fit time.
    pub fn config(&self) -> &HierarchicalConfig {
        &self.config
    }

    /// Number of populated buckets at `level` (0 = coarsest).
    pub fn buckets_at_level(&self, level: usize) -> usize {
        self.buckets[level].len()
    }

    /// Exports the batch-serving entries of §4: one discretized
    /// recommendation per `[hierarchy feature, interned value]` key whose
    /// bucket qualifies, plus the global-percentile default. This is what a
    /// daily training run publishes to the online prediction store. Value
    /// ids are interned against this provisioner's training vocabularies,
    /// which [`TrainedLorentz`](crate::pipeline::TrainedLorentz) shares with
    /// its request encoder, so store probes and model inference agree.
    pub fn export_store_entries(&self) -> (Vec<(FeatureId, ValueId, f64)>, f64) {
        let mut entries = Vec::new();
        for (level, buckets) in self.buckets.iter().enumerate() {
            let feature = self.chain.features()[level];
            for (&value, capacities) in buckets {
                if capacities.len() >= self.config.min_bucket {
                    let raw = percentile_of_sorted(capacities, self.config.percentile);
                    entries.push((
                        feature,
                        ValueId(value),
                        discretize(&self.catalog, raw).capacity.primary(),
                    ));
                }
            }
        }
        entries.sort_by_key(|&(f, v, _)| (f.index(), v.raw()));
        let default_raw = percentile_of_sorted(&self.global, self.config.percentile);
        let default = discretize(&self.catalog, default_raw).capacity.primary();
        (entries, default)
    }

    /// Finds the most granular qualifying bucket for `x` (Eq. 11).
    /// Returns `(level, value id, capacities)` or `None` for global
    /// fallback.
    fn match_bucket(&self, x: &ProfileVector) -> Option<(usize, u32, &Vec<f64>)> {
        // Finest level = last chain entry; walk upward.
        for level in (0..self.chain.len()).rev() {
            let feature: FeatureId = self.chain.features()[level];
            if let Some(v) = x.get(feature) {
                if let Some(capacities) = self.buckets[level].get(&v) {
                    if capacities.len() >= self.config.min_bucket {
                        return Some((level, v, capacities));
                    }
                }
            }
        }
        None
    }

    fn check_arity(&self, x: &ProfileVector) -> Result<(), LorentzError> {
        if x.len() != self.n_features {
            return Err(LorentzError::DimensionMismatch {
                expected: self.n_features,
                got: x.len(),
            });
        }
        Ok(())
    }
}

impl Provisioner for HierarchicalProvisioner {
    fn predict_raw(&self, x: &ProfileVector) -> Result<f64, LorentzError> {
        self.check_arity(x)?;
        let sorted = match self.match_bucket(x) {
            Some((_, _, capacities)) => capacities,
            None => &self.global,
        };
        Ok(percentile_of_sorted(sorted, self.config.percentile))
    }

    fn recommend(&self, x: &ProfileVector) -> Result<(Sku, Explanation), LorentzError> {
        self.check_arity(x)?;
        let (raw, explanation) = match self.match_bucket(x) {
            Some((level, value, capacities)) => (
                percentile_of_sorted(capacities, self.config.percentile),
                Explanation::HierarchicalBucket {
                    feature: self.chain_names[level].clone(),
                    value: self.chain_vocabs[level].value(value).to_owned(),
                    level,
                    percentile: self.config.percentile,
                    bucket: BucketSummary::from_sorted(capacities),
                },
            ),
            None => (
                percentile_of_sorted(&self.global, self.config.percentile),
                Explanation::GlobalFallback {
                    percentile: self.config.percentile,
                    bucket: BucketSummary::from_sorted(&self.global),
                },
            ),
        };
        Ok((discretize(&self.catalog, raw), explanation))
    }

    fn catalog(&self) -> &SkuCatalog {
        &self.catalog
    }

    fn name(&self) -> &'static str {
        "hierarchical"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lorentz_types::{ProfileSchema, ServerOffering};

    /// industry > customer hierarchy; industry i0 needs small DBs (2),
    /// industry i1 needs large ones (16). 40 rows.
    fn training() -> (ProfileTable, Vec<f64>) {
        let schema = ProfileSchema::new(vec!["industry", "customer"]).unwrap();
        let mut t = ProfileTable::new(schema);
        let mut labels = Vec::new();
        for i in 0..40 {
            let industry = if i % 2 == 0 { "i0" } else { "i1" };
            let customer = format!("c{}", i % 8);
            t.push_row(&[Some(industry), Some(customer.as_str())])
                .unwrap();
            labels.push(if i % 2 == 0 { 2.0 } else { 16.0 });
        }
        (t, labels)
    }

    fn catalog() -> SkuCatalog {
        SkuCatalog::azure_postgres(ServerOffering::GeneralPurpose)
    }

    fn fit(min_bucket: usize) -> (HierarchicalProvisioner, ProfileTable) {
        let (t, labels) = training();
        let cfg = HierarchicalConfig {
            min_bucket,
            ..HierarchicalConfig::default()
        };
        let p = HierarchicalProvisioner::fit(&t, &labels, &catalog(), cfg).unwrap();
        (p, t)
    }

    #[test]
    fn learns_two_level_chain_and_buckets() {
        let (p, t) = fit(3);
        assert_eq!(p.chain().len(), 2);
        assert_eq!(t.schema().name(p.chain().features()[0]), "industry");
        assert_eq!(p.buckets_at_level(0), 2);
        assert_eq!(p.buckets_at_level(1), 8);
    }

    #[test]
    fn recommends_from_finest_sufficient_bucket() {
        let (p, t) = fit(3);
        // Customer c0 appears 5 times, all industry i0 (even rows).
        let x = t.encode_row(&[Some("i0"), Some("c0")]).unwrap();
        let (sku, expl) = p.recommend(&x).unwrap();
        assert_eq!(sku.capacity.primary(), 2.0);
        match expl {
            Explanation::HierarchicalBucket {
                feature,
                value,
                level,
                ..
            } => {
                assert_eq!(feature, "customer");
                assert_eq!(value, "c0");
                assert_eq!(level, 1);
            }
            other => panic!("expected bucket explanation, got {other:?}"),
        }
    }

    #[test]
    fn traverses_up_when_fine_bucket_too_small() {
        // min_bucket 10: per-customer buckets (5 rows) fail, industry (20
        // rows) qualifies.
        let (p, t) = fit(10);
        let x = t.encode_row(&[Some("i1"), Some("c1")]).unwrap();
        let (sku, expl) = p.recommend(&x).unwrap();
        assert_eq!(sku.capacity.primary(), 16.0);
        match expl {
            Explanation::HierarchicalBucket { feature, .. } => assert_eq!(feature, "industry"),
            other => panic!("expected bucket explanation, got {other:?}"),
        }
    }

    #[test]
    fn unseen_profile_falls_back_to_global() {
        let (p, t) = fit(3);
        let x = t
            .encode_row(&[Some("new-industry"), Some("new-customer")])
            .unwrap();
        let (sku, expl) = p.recommend(&x).unwrap();
        assert!(matches!(expl, Explanation::GlobalFallback { .. }));
        // Global median of interleaved {2, 16} labels discretized to the
        // ladder.
        assert!(sku.capacity.primary() >= 2.0);
    }

    #[test]
    fn missing_fine_feature_uses_coarser_level() {
        let (p, t) = fit(3);
        let x = t.encode_row(&[Some("i1"), None]).unwrap();
        let (sku, expl) = p.recommend(&x).unwrap();
        assert_eq!(sku.capacity.primary(), 16.0);
        match expl {
            Explanation::HierarchicalBucket { feature, .. } => assert_eq!(feature, "industry"),
            other => panic!("expected bucket explanation, got {other:?}"),
        }
    }

    #[test]
    fn percentile_controls_aggressiveness() {
        let (t, labels) = training();
        let mk = |percentile| {
            HierarchicalProvisioner::fit(
                &t,
                &labels,
                &catalog(),
                HierarchicalConfig {
                    percentile,
                    min_bucket: 50, // force global fallback
                    ..HierarchicalConfig::default()
                },
            )
            .unwrap()
        };
        let x = t.encode_row(&[Some("i0"), Some("c0")]).unwrap();
        let low = mk(10.0).predict_raw(&x).unwrap();
        let high = mk(90.0).predict_raw(&x).unwrap();
        assert!(low < high);
        assert_eq!(low, 2.0);
        assert_eq!(high, 16.0);
    }

    #[test]
    fn fit_validates_inputs() {
        let (t, labels) = training();
        let cfg = HierarchicalConfig::default();
        assert!(HierarchicalProvisioner::fit(&t, &labels[..5], &catalog(), cfg).is_err());
        let mut bad_labels = labels.clone();
        bad_labels[0] = -2.0;
        assert!(HierarchicalProvisioner::fit(&t, &bad_labels, &catalog(), cfg).is_err());
        let bad_cfg = HierarchicalConfig {
            percentile: 150.0,
            ..HierarchicalConfig::default()
        };
        assert!(HierarchicalProvisioner::fit(&t, &labels, &catalog(), bad_cfg).is_err());
        let bad_cfg = HierarchicalConfig {
            min_bucket: 0,
            ..HierarchicalConfig::default()
        };
        assert!(HierarchicalProvisioner::fit(&t, &labels, &catalog(), bad_cfg).is_err());
    }

    #[test]
    fn arity_mismatch_rejected_at_inference() {
        let (p, _) = fit(3);
        let short = ProfileVector::new(vec![Some(0)]);
        assert!(p.predict_raw(&short).is_err());
        assert!(p.recommend(&short).is_err());
    }

    #[test]
    fn serde_round_trip_preserves_recommendations() {
        let (p, t) = fit(3);
        let json = serde_json::to_string(&p).unwrap();
        let back: HierarchicalProvisioner = serde_json::from_str(&json).unwrap();
        let x = t.encode_row(&[Some("i0"), Some("c0")]).unwrap();
        assert_eq!(
            p.recommend(&x).unwrap().0.capacity,
            back.recommend(&x).unwrap().0.capacity
        );
    }
}
