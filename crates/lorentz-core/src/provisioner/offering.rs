//! Server-offering recommendation (the paper's §7 future work:
//! "incorporating more entries of profile data features could ... enable
//! recommendations of suitable server offerings among different types").
//!
//! Lorentz assumes the offering (Burstable / General Purpose / Memory
//! Optimized) is pre-selected by the user; this extension removes that
//! assumption with the same similar-customers machinery: walk the learned
//! hierarchy from finest to coarsest and recommend the majority offering
//! among the most specific sufficiently-populated bucket of existing
//! resources, falling back to the fleet-wide prior.

use lorentz_hierarchy::{learn_hierarchy, HierarchyChain, HierarchyConfig};
use lorentz_types::{FeatureId, LorentzError, ProfileTable, ProfileVector, ServerOffering};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Offering-recommender configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OfferingRecommenderConfig {
    /// Minimum bucket size to recommend from a level.
    pub min_bucket: usize,
    /// Hierarchy-learning parameters.
    pub hierarchy: HierarchyConfig,
}

impl Default for OfferingRecommenderConfig {
    fn default() -> Self {
        Self {
            min_bucket: 10,
            hierarchy: HierarchyConfig::default(),
        }
    }
}

/// Per-offering vote counts of a matched bucket.
type OfferingCounts = [usize; 3];

/// An offering recommendation with its provenance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OfferingRecommendation {
    /// The majority offering.
    pub offering: ServerOffering,
    /// Vote share of the majority offering within the matched bucket.
    pub confidence: f64,
    /// The matched feature name, or `None` for the global prior.
    pub matched_feature: Option<String>,
    /// Bucket size the vote was taken over.
    pub bucket_size: usize,
}

/// A fitted offering recommender.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OfferingRecommender {
    config: OfferingRecommenderConfig,
    chain: HierarchyChain,
    chain_names: Vec<String>,
    /// `buckets[level][value id]` = offering counts.
    buckets: Vec<HashMap<u32, OfferingCounts>>,
    global: OfferingCounts,
    n_features: usize,
}

impl OfferingRecommender {
    /// Fits on existing resources' profiles and their offerings.
    ///
    /// # Errors
    /// Returns [`LorentzError`] on mismatched inputs or invalid configs.
    pub fn fit(
        table: &ProfileTable,
        offerings: &[ServerOffering],
        config: OfferingRecommenderConfig,
    ) -> Result<Self, LorentzError> {
        if config.min_bucket == 0 {
            return Err(LorentzError::InvalidConfig(
                "min_bucket must be >= 1".into(),
            ));
        }
        if table.rows() != offerings.len() {
            return Err(LorentzError::Model(format!(
                "{} profile rows vs {} offerings",
                table.rows(),
                offerings.len()
            )));
        }
        if table.is_empty() {
            return Err(LorentzError::Model("empty training table".into()));
        }
        let chain = learn_hierarchy(table, &config.hierarchy)?;

        let index_of = |o: ServerOffering| {
            ServerOffering::ALL
                .iter()
                .position(|&x| x == o)
                .expect("known offering")
        };
        let mut buckets: Vec<HashMap<u32, OfferingCounts>> = vec![HashMap::new(); chain.len()];
        let mut global = [0usize; 3];
        for (row, &offering) in offerings.iter().enumerate() {
            global[index_of(offering)] += 1;
            for (level, &feature) in chain.features().iter().enumerate() {
                if let Some(v) = table.value_id(row, feature) {
                    buckets[level].entry(v).or_insert([0; 3])[index_of(offering)] += 1;
                }
            }
        }
        let chain_names = chain
            .features()
            .iter()
            .map(|&f| table.schema().name(f).to_owned())
            .collect();
        Ok(Self {
            config,
            chain,
            chain_names,
            buckets,
            global,
            n_features: table.schema().len(),
        })
    }

    /// Recommends an offering for a profile vector.
    ///
    /// # Errors
    /// Returns a dimension mismatch on arity disagreement.
    pub fn recommend(&self, x: &ProfileVector) -> Result<OfferingRecommendation, LorentzError> {
        if x.len() != self.n_features {
            return Err(LorentzError::DimensionMismatch {
                expected: self.n_features,
                got: x.len(),
            });
        }
        for level in (0..self.chain.len()).rev() {
            let feature: FeatureId = self.chain.features()[level];
            if let Some(v) = x.get(feature) {
                if let Some(counts) = self.buckets[level].get(&v) {
                    let total: usize = counts.iter().sum();
                    if total >= self.config.min_bucket {
                        return Ok(verdict(counts, Some(self.chain_names[level].clone())));
                    }
                }
            }
        }
        Ok(verdict(&self.global, None))
    }
}

fn verdict(counts: &OfferingCounts, matched_feature: Option<String>) -> OfferingRecommendation {
    let total: usize = counts.iter().sum();
    let (best_idx, &best) = counts
        .iter()
        .enumerate()
        .max_by_key(|&(_, &c)| c)
        .expect("three offerings");
    OfferingRecommendation {
        offering: ServerOffering::ALL[best_idx],
        confidence: if total > 0 {
            best as f64 / total as f64
        } else {
            0.0
        },
        matched_feature,
        bucket_size: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lorentz_types::ProfileSchema;

    /// Industry i0 runs Burstable dev boxes; i1 runs Memory-Optimized
    /// production.
    fn training() -> (ProfileTable, Vec<ServerOffering>) {
        let schema = ProfileSchema::new(vec!["industry", "customer"]).unwrap();
        let mut t = ProfileTable::new(schema);
        let mut offerings = Vec::new();
        for i in 0..60 {
            let (industry, offering) = if i % 2 == 0 {
                ("i0", ServerOffering::Burstable)
            } else {
                ("i1", ServerOffering::MemoryOptimized)
            };
            let customer = format!("c{}", i % 10);
            t.push_row(&[Some(industry), Some(customer.as_str())])
                .unwrap();
            offerings.push(offering);
        }
        (t, offerings)
    }

    #[test]
    fn recommends_the_bucket_majority() {
        let (t, offerings) = training();
        let r =
            OfferingRecommender::fit(&t, &offerings, OfferingRecommenderConfig::default()).unwrap();
        let x = t.encode_row(&[Some("i0"), Some("brand-new")]).unwrap();
        let rec = r.recommend(&x).unwrap();
        assert_eq!(rec.offering, ServerOffering::Burstable);
        assert_eq!(rec.confidence, 1.0);
        assert_eq!(rec.matched_feature.as_deref(), Some("industry"));
        assert_eq!(rec.bucket_size, 30);
    }

    #[test]
    fn unknown_profiles_fall_back_to_the_global_prior() {
        let (t, offerings) = training();
        let r =
            OfferingRecommender::fit(&t, &offerings, OfferingRecommenderConfig::default()).unwrap();
        let x = t.encode_row(&[Some("i-new"), Some("c-new")]).unwrap();
        let rec = r.recommend(&x).unwrap();
        assert!(rec.matched_feature.is_none());
        assert_eq!(rec.bucket_size, 60);
        assert_eq!(rec.confidence, 0.5);
    }

    #[test]
    fn finer_buckets_win_when_populated() {
        let (t, offerings) = training();
        let cfg = OfferingRecommenderConfig {
            min_bucket: 3, // per-customer buckets (6 rows) qualify
            ..OfferingRecommenderConfig::default()
        };
        let r = OfferingRecommender::fit(&t, &offerings, cfg).unwrap();
        let x = t.encode_row(&[Some("i0"), Some("c0")]).unwrap();
        let rec = r.recommend(&x).unwrap();
        assert_eq!(rec.matched_feature.as_deref(), Some("customer"));
    }

    #[test]
    fn fit_validates_inputs() {
        let (t, offerings) = training();
        assert!(OfferingRecommender::fit(
            &t,
            &offerings[..5],
            OfferingRecommenderConfig::default()
        )
        .is_err());
        let bad = OfferingRecommenderConfig {
            min_bucket: 0,
            ..OfferingRecommenderConfig::default()
        };
        assert!(OfferingRecommender::fit(&t, &offerings, bad).is_err());
        let r =
            OfferingRecommender::fit(&t, &offerings, OfferingRecommenderConfig::default()).unwrap();
        let short = ProfileVector::new(vec![Some(0)]);
        assert!(r.recommend(&short).is_err());
    }
}
