//! Stage 2: capacity recommenders ("provisioners", §3.3).
//!
//! Provisioners map a profile feature vector `x` (no telemetry!) to a
//! capacity recommendation `c* = f(x)`, trained on the rightsized capacities
//! `ĉ⁰` that Stage 1 produced for existing workloads. Two models are
//! provided, matching the paper:
//!
//! * [`HierarchicalProvisioner`] — explainable percentile buckets along the
//!   learned profile hierarchy; robust with little data (Fig. 12);
//! * [`TargetEncodingProvisioner`] — target encoding + gradient-boosted
//!   trees in `log2` space; finer-grained Pareto control with ample data.

mod hierarchical;
pub mod offering;
mod target_encoding;
pub mod trace_augmented;

pub use hierarchical::{HierarchicalConfig, HierarchicalProvisioner};
pub use offering::{OfferingRecommendation, OfferingRecommender, OfferingRecommenderConfig};
pub use target_encoding::{TargetEncodingConfig, TargetEncodingProvisioner};
pub use trace_augmented::{TraceAugmentedConfig, TraceAugmentedProvisioner, TraceFeatures};

use crate::explain::Explanation;
use lorentz_types::{LorentzError, ProfileVector, Sku, SkuCatalog};

/// A Stage-2 capacity recommender.
pub trait Provisioner {
    /// The raw (continuous, linear-space) primary-dimension capacity
    /// prediction for a profile vector, before discretization to the SKU
    /// catalog. The Pareto sweeps of §5.2 scale this value by powers of two
    /// before discretizing.
    ///
    /// # Errors
    /// Returns [`LorentzError`] if the vector has the wrong arity.
    fn predict_raw(&self, x: &ProfileVector) -> Result<f64, LorentzError>;

    /// The discretized SKU recommendation plus its explanation.
    ///
    /// # Errors
    /// Returns [`LorentzError`] if the vector has the wrong arity.
    fn recommend(&self, x: &ProfileVector) -> Result<(Sku, Explanation), LorentzError>;

    /// The catalog this provisioner recommends from.
    fn catalog(&self) -> &SkuCatalog;

    /// Short model name for reports.
    fn name(&self) -> &'static str;
}

/// Discretizes a raw capacity prediction to the catalog SKU nearest in log2
/// space — shared by both provisioners and by the λ adjustment (§5.3
/// "discretized to C").
pub(crate) fn discretize(catalog: &SkuCatalog, raw: f64) -> Sku {
    catalog
        .nearest_log2(&lorentz_types::Capacity::scalar(raw.max(f64::MIN_POSITIVE)))
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lorentz_types::ServerOffering;

    #[test]
    fn discretize_snaps_to_ladder() {
        let cat = SkuCatalog::azure_postgres(ServerOffering::GeneralPurpose);
        assert_eq!(discretize(&cat, 3.0).capacity.primary(), 4.0); // log2(3)=1.58 is nearer 2.0 than 1.0
        assert_eq!(discretize(&cat, 2.0).capacity.primary(), 2.0);
        assert_eq!(discretize(&cat, 500.0).capacity.primary(), 128.0);
        assert_eq!(discretize(&cat, 0.0).capacity.primary(), 2.0);
    }
}
