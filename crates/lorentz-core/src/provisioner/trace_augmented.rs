//! The trace-augmented provisioner (§3.3 "Extension to include trace
//! data").
//!
//! Once a resource has been provisioned and starts producing telemetry,
//! Lorentz "can serve as a predictive tool to assist in decision-making
//! for autoscaling": both provisioner families can take additional
//! features as inputs. This model extends the target-encoding provisioner
//! with numeric trace-derived features — peak, mean, p95 utilization, and
//! a burstiness ratio — so that re-provisioning decisions for *existing*
//! resources use both profile and usage information.

use crate::explain::Explanation;
use crate::provisioner::discretize;
use lorentz_ml::{Dataset, GradientBoosting, TargetEncoder};
use lorentz_telemetry::aggregate::percentile;
use lorentz_telemetry::UsageTrace;
use lorentz_types::{LorentzError, ProfileTable, ProfileVector, Sku, SkuCatalog};
use serde::{Deserialize, Serialize};

/// The numeric features extracted from a usage trace (primary dimension).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceFeatures {
    /// Peak binned utilization.
    pub peak: f64,
    /// Mean binned utilization.
    pub mean: f64,
    /// 95th percentile of binned utilization.
    pub p95: f64,
    /// Peak-to-mean ratio (1 = perfectly flat; large = bursty).
    pub burstiness: f64,
}

impl TraceFeatures {
    /// Extracts features from a trace's primary dimension.
    pub fn from_trace(trace: &UsageTrace) -> Self {
        let values = trace.resource(0).values();
        let peak = trace.peak()[0];
        let mean = trace.mean()[0];
        Self {
            peak,
            mean,
            p95: percentile(values, 95.0),
            burstiness: if mean > 0.0 { peak / mean } else { 1.0 },
        }
    }

    fn names() -> [&'static str; 4] {
        ["trace_peak", "trace_mean", "trace_p95", "trace_burstiness"]
    }

    fn as_row(&self) -> [f64; 4] {
        [self.peak, self.mean, self.p95, self.burstiness]
    }
}

/// Configuration: reuses the target-encoding provisioner's knobs.
pub type TraceAugmentedConfig = super::TargetEncodingConfig;

/// A provisioner over profile features *plus* trace features, for
/// re-provisioning / autoscaling of already-running resources.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceAugmentedProvisioner {
    catalog: SkuCatalog,
    encoder: TargetEncoder,
    model: GradientBoosting,
    feature_names: Vec<String>,
    n_profile_features: usize,
}

impl TraceAugmentedProvisioner {
    /// Fits on profiles, traces, and rightsized labels (primary-dimension
    /// capacities).
    ///
    /// # Errors
    /// Returns [`LorentzError`] on mismatched inputs or fit failures.
    pub fn fit(
        table: &ProfileTable,
        traces: &[UsageTrace],
        labels: &[f64],
        catalog: SkuCatalog,
        config: TraceAugmentedConfig,
    ) -> Result<Self, LorentzError> {
        config.validate()?;
        if table.rows() != labels.len() || traces.len() != labels.len() {
            return Err(LorentzError::Model(format!(
                "{} profiles / {} traces / {} labels",
                table.rows(),
                traces.len(),
                labels.len()
            )));
        }
        let labels_log2 = lorentz_ml::transform::xi_slice(labels)?;
        let encoder = TargetEncoder::fit(
            table,
            &labels_log2,
            config.statistic,
            config.missing,
            config.smoothing,
        )?;

        // Encoded categorical columns + numeric trace columns.
        let base = encoder.encode_table(table, labels_log2.clone())?;
        let mut columns: Vec<Vec<f64>> = (0..base.features())
            .map(|f| base.column(f).to_vec())
            .collect();
        let mut feature_names: Vec<String> = base.feature_names().to_vec();
        for (i, name) in TraceFeatures::names().iter().enumerate() {
            feature_names.push((*name).to_owned());
            columns.push(
                traces
                    .iter()
                    .map(|t| TraceFeatures::from_trace(t).as_row()[i])
                    .collect(),
            );
        }
        let dataset = Dataset::new(feature_names.clone(), columns, labels_log2)?;
        let model = GradientBoosting::fit(&dataset, &config.boosting)?;
        Ok(Self {
            catalog,
            encoder,
            model,
            feature_names,
            n_profile_features: table.schema().len(),
        })
    }

    fn feature_row(&self, x: &ProfileVector, trace: &UsageTrace) -> Result<Vec<f64>, LorentzError> {
        if x.len() != self.n_profile_features {
            return Err(LorentzError::DimensionMismatch {
                expected: self.n_profile_features,
                got: x.len(),
            });
        }
        let mut row = self.encoder.encode_vector(x);
        row.extend(TraceFeatures::from_trace(trace).as_row());
        Ok(row)
    }

    /// Raw (continuous) capacity prediction given profile *and* telemetry.
    ///
    /// # Errors
    /// Returns [`LorentzError`] on arity mismatches.
    pub fn predict_raw_with_trace(
        &self,
        x: &ProfileVector,
        trace: &UsageTrace,
    ) -> Result<f64, LorentzError> {
        Ok(self.model.predict_row(&self.feature_row(x, trace)?).exp2())
    }

    /// Discretized re-provisioning recommendation with explanation.
    ///
    /// # Errors
    /// Returns [`LorentzError`] on arity mismatches.
    pub fn recommend_with_trace(
        &self,
        x: &ProfileVector,
        trace: &UsageTrace,
    ) -> Result<(Sku, Explanation), LorentzError> {
        let row = self.feature_row(x, trace)?;
        let prediction_log2 = self.model.predict_row(&row);
        let explanation = Explanation::TargetEncoding {
            encoded_features: self
                .feature_names
                .iter()
                .cloned()
                .zip(row.iter().copied())
                .collect(),
            prediction_log2,
        };
        Ok((
            discretize(&self.catalog, prediction_log2.exp2()),
            explanation,
        ))
    }

    /// Gain-based importance over all (profile + trace) features, paired
    /// with their names.
    pub fn feature_importance(&self) -> Vec<(String, f64)> {
        self.feature_names
            .iter()
            .cloned()
            .zip(self.model.feature_importance(self.feature_names.len()))
            .collect()
    }

    /// The catalog recommendations snap to.
    pub fn catalog(&self) -> &SkuCatalog {
        &self.catalog
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lorentz_ml::{GradientBoostingConfig, MissingPolicy, TargetStatistic};
    use lorentz_telemetry::RegularSeries;
    use lorentz_types::{ProfileSchema, ServerOffering};

    fn trace(values: &[f64]) -> UsageTrace {
        UsageTrace::single(RegularSeries::new(300.0, values.to_vec()).unwrap())
    }

    /// Profiles are uninformative; the trace tells everything. The
    /// trace-augmented model must learn from telemetry what the pure
    /// profile model cannot.
    fn training() -> (ProfileTable, Vec<UsageTrace>, Vec<f64>) {
        let schema = ProfileSchema::new(vec!["industry"]).unwrap();
        let mut t = ProfileTable::new(schema);
        let mut traces = Vec::new();
        let mut labels = Vec::new();
        for i in 0..120 {
            t.push_row(&[Some("same-industry")]).unwrap();
            let level = f64::from(1 << (i % 4)); // 1, 2, 4, 8
            traces.push(trace(&[level, level * 0.6, level]));
            labels.push(level * 2.0); // rightsized ~2x peak
        }
        (t, traces, labels)
    }

    fn config() -> TraceAugmentedConfig {
        TraceAugmentedConfig {
            boosting: GradientBoostingConfig {
                n_trees: 40,
                learning_rate: 0.3,
                ..GradientBoostingConfig::default()
            },
            statistic: TargetStatistic::Mean,
            missing: MissingPolicy::GlobalMean,
            smoothing: 0.0,
        }
    }

    #[test]
    fn learns_from_telemetry_when_profiles_are_uninformative() {
        let (t, traces, labels) = training();
        let catalog = SkuCatalog::azure_postgres(ServerOffering::GeneralPurpose);
        let m = TraceAugmentedProvisioner::fit(&t, &traces, &labels, catalog, config()).unwrap();
        let x = t.encode_row(&[Some("same-industry")]).unwrap();
        // A flat 4-vCore workload should be re-provisioned near 8.
        let (sku, _) = m
            .recommend_with_trace(&x, &trace(&[4.0, 2.4, 4.0]))
            .unwrap();
        assert_eq!(sku.capacity.primary(), 8.0);
        // A 1-vCore workload lands at the small end.
        let (sku, _) = m
            .recommend_with_trace(&x, &trace(&[1.0, 0.6, 1.0]))
            .unwrap();
        assert!(sku.capacity.primary() <= 2.0);
    }

    #[test]
    fn trace_features_dominate_importance_here() {
        let (t, traces, labels) = training();
        let catalog = SkuCatalog::azure_postgres(ServerOffering::GeneralPurpose);
        let m = TraceAugmentedProvisioner::fit(&t, &traces, &labels, catalog, config()).unwrap();
        let imp = m.feature_importance();
        let profile_imp: f64 = imp
            .iter()
            .filter(|(n, _)| !n.starts_with("trace_"))
            .map(|(_, v)| v)
            .sum();
        let trace_imp: f64 = imp
            .iter()
            .filter(|(n, _)| n.starts_with("trace_"))
            .map(|(_, v)| v)
            .sum();
        assert!(
            trace_imp > profile_imp,
            "trace {trace_imp} vs profile {profile_imp}"
        );
    }

    #[test]
    fn trace_features_are_sane() {
        let f = TraceFeatures::from_trace(&trace(&[1.0, 2.0, 4.0, 1.0]));
        assert_eq!(f.peak, 4.0);
        assert_eq!(f.mean, 2.0);
        assert!(f.p95 > 3.0 && f.p95 <= 4.0);
        assert_eq!(f.burstiness, 2.0);
        // Idle trace: burstiness defined as 1.
        let idle = TraceFeatures::from_trace(&trace(&[0.0, 0.0]));
        assert_eq!(idle.burstiness, 1.0);
    }

    #[test]
    fn fit_validates_input_alignment() {
        let (t, traces, labels) = training();
        let catalog = SkuCatalog::azure_postgres(ServerOffering::GeneralPurpose);
        assert!(TraceAugmentedProvisioner::fit(
            &t,
            &traces[..10],
            &labels,
            catalog.clone(),
            config()
        )
        .is_err());
        let m = TraceAugmentedProvisioner::fit(&t, &traces, &labels, catalog, config()).unwrap();
        let short = ProfileVector::new(vec![Some(0), Some(0)]);
        assert!(m.predict_raw_with_trace(&short, &trace(&[1.0])).is_err());
    }
}
