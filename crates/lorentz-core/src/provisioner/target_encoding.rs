//! The target-encoding provisioner (§3.3 "Target encoding provisioner").
//!
//! Every categorical profile feature is replaced by a statistic of the
//! rightsized capacities of the training rows sharing its value
//! (`TE(x_h) = ψ({ĉ⁰_n | X_{n,h} = v})`), and a gradient-boosted tree
//! ensemble is regressed on the encoded features — all in `ξ = log2` space
//! to tame the exponential capacity ladder. Missing and unseen values are
//! encoded as the global label mean, the policy the paper found necessary
//! (§3.3 "Missing data").

use crate::explain::Explanation;
use crate::provisioner::{discretize, Provisioner};
use lorentz_ml::{
    GradientBoosting, GradientBoostingConfig, MissingPolicy, TargetEncoder, TargetStatistic,
};
use lorentz_types::{LorentzError, ProfileTable, ProfileVector, Sku, SkuCatalog};
use serde::{Deserialize, Serialize};

/// Target-encoding provisioner hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TargetEncodingConfig {
    /// The aggregation `ψ` for the encoder.
    pub statistic: TargetStatistic,
    /// Missing-value policy (paper: global mean; `-999` sentinel available
    /// for the ablation).
    pub missing: MissingPolicy,
    /// m-estimate smoothing strength for small value groups (0 = paper
    /// behaviour).
    pub smoothing: f64,
    /// The tree-ensemble configuration (Table 2: 100 trees).
    pub boosting: GradientBoostingConfig,
}

impl Default for TargetEncodingConfig {
    fn default() -> Self {
        Self {
            statistic: TargetStatistic::Mean,
            missing: MissingPolicy::GlobalMean,
            smoothing: 0.0,
            boosting: GradientBoostingConfig::default(),
        }
    }
}

impl TargetEncodingConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns [`LorentzError::InvalidConfig`] for out-of-range values.
    pub fn validate(&self) -> Result<(), LorentzError> {
        if !self.smoothing.is_finite() || self.smoothing < 0.0 {
            return Err(LorentzError::InvalidConfig(format!(
                "smoothing must be finite and >= 0, got {}",
                self.smoothing
            )));
        }
        if let TargetStatistic::Percentile(p) = self.statistic {
            if !p.is_finite() || !(0.0..=100.0).contains(&p) {
                return Err(LorentzError::InvalidConfig(format!(
                    "encoder percentile must be in [0, 100], got {p}"
                )));
            }
        }
        self.boosting.validate()
    }
}

/// A fitted target-encoding provisioner.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TargetEncodingProvisioner {
    config: TargetEncodingConfig,
    catalog: SkuCatalog,
    encoder: TargetEncoder,
    model: GradientBoosting,
    feature_names: Vec<String>,
    n_features: usize,
}

impl TargetEncodingProvisioner {
    /// Fits the encoder and boosted ensemble on existing VMs' profiles and
    /// their rightsized capacities (primary dimension, linear space).
    ///
    /// # Errors
    /// Returns [`LorentzError`] on invalid configs, mismatched training
    /// data, or non-positive labels.
    pub fn fit(
        table: &ProfileTable,
        labels: &[f64],
        catalog: &SkuCatalog,
        config: TargetEncodingConfig,
    ) -> Result<Self, LorentzError> {
        config.validate()?;
        if table.rows() != labels.len() {
            return Err(LorentzError::Model(format!(
                "{} profile rows vs {} labels",
                table.rows(),
                labels.len()
            )));
        }
        // ξ transform: fit everything in log2 space (§3.3 Transformations).
        let labels_log2 = lorentz_ml::transform::xi_slice(labels)?;
        let encoder = TargetEncoder::fit(
            table,
            &labels_log2,
            config.statistic,
            config.missing,
            config.smoothing,
        )?;
        let dataset = encoder.encode_table(table, labels_log2)?;
        let model = GradientBoosting::fit(&dataset, &config.boosting)?;
        Ok(Self {
            config,
            catalog: catalog.clone(),
            encoder,
            model,
            feature_names: table.schema().names().to_vec(),
            n_features: table.schema().len(),
        })
    }

    /// The configuration used at fit time.
    pub fn config(&self) -> &TargetEncodingConfig {
        &self.config
    }

    /// The fitted encoder (exposed for ablations and explanations).
    pub fn encoder(&self) -> &TargetEncoder {
        &self.encoder
    }

    fn check_arity(&self, x: &ProfileVector) -> Result<(), LorentzError> {
        if x.len() != self.n_features {
            return Err(LorentzError::DimensionMismatch {
                expected: self.n_features,
                got: x.len(),
            });
        }
        Ok(())
    }

    fn predict_log2(&self, x: &ProfileVector) -> Result<f64, LorentzError> {
        self.check_arity(x)?;
        let row = self.encoder.encode_vector(x);
        Ok(self.model.predict_row(&row))
    }
}

impl Provisioner for TargetEncodingProvisioner {
    fn predict_raw(&self, x: &ProfileVector) -> Result<f64, LorentzError> {
        Ok(self.predict_log2(x)?.exp2())
    }

    fn recommend(&self, x: &ProfileVector) -> Result<(Sku, Explanation), LorentzError> {
        let row = {
            self.check_arity(x)?;
            self.encoder.encode_vector(x)
        };
        let prediction_log2 = self.model.predict_row(&row);
        let explanation = Explanation::TargetEncoding {
            encoded_features: self
                .feature_names
                .iter()
                .cloned()
                .zip(row.iter().copied())
                .collect(),
            prediction_log2,
        };
        Ok((
            discretize(&self.catalog, prediction_log2.exp2()),
            explanation,
        ))
    }

    fn catalog(&self) -> &SkuCatalog {
        &self.catalog
    }

    fn name(&self) -> &'static str {
        "target_encoding"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lorentz_types::{ProfileSchema, ServerOffering};

    /// Two informative features: industry determines scale (2 vs 16),
    /// env adds a 2x factor for "prod".
    fn training() -> (ProfileTable, Vec<f64>) {
        let schema = ProfileSchema::new(vec!["industry", "env"]).unwrap();
        let mut t = ProfileTable::new(schema);
        let mut labels = Vec::new();
        for i in 0..200 {
            let industry = if i % 2 == 0 { "retail" } else { "banking" };
            let env = if i % 4 < 2 { "dev" } else { "prod" };
            t.push_row(&[Some(industry), Some(env)]).unwrap();
            let base = if i % 2 == 0 { 2.0 } else { 16.0 };
            let mult = if i % 4 < 2 { 1.0 } else { 2.0 };
            labels.push(base * mult);
        }
        (t, labels)
    }

    fn catalog() -> SkuCatalog {
        SkuCatalog::azure_postgres(ServerOffering::GeneralPurpose)
    }

    fn quick_config() -> TargetEncodingConfig {
        TargetEncodingConfig {
            boosting: GradientBoostingConfig {
                n_trees: 30,
                learning_rate: 0.3,
                ..GradientBoostingConfig::default()
            },
            ..TargetEncodingConfig::default()
        }
    }

    #[test]
    fn learns_multiplicative_structure() {
        let (t, labels) = training();
        let p = TargetEncodingProvisioner::fit(&t, &labels, &catalog(), quick_config()).unwrap();
        let cases = [
            (Some("retail"), Some("dev"), 2.0),
            (Some("retail"), Some("prod"), 4.0),
            (Some("banking"), Some("dev"), 16.0),
            (Some("banking"), Some("prod"), 32.0),
        ];
        for (industry, env, expected) in cases {
            let x = t.encode_row(&[industry, env]).unwrap();
            let (sku, _) = p.recommend(&x).unwrap();
            assert_eq!(
                sku.capacity.primary(),
                expected,
                "industry={industry:?} env={env:?}"
            );
        }
    }

    #[test]
    fn unseen_values_fall_back_to_global_mean_prediction() {
        let (t, labels) = training();
        let p = TargetEncodingProvisioner::fit(&t, &labels, &catalog(), quick_config()).unwrap();
        let x = t
            .encode_row(&[Some("space-tourism"), Some("staging")])
            .unwrap();
        let raw = p.predict_raw(&x).unwrap();
        // Both features encode to the global log2 mean (3.0), which the
        // trees route to whatever leaf covers it — the guarantee is that the
        // prediction stays inside the observed label range instead of
        // collapsing the way a -999 sentinel does.
        assert!((2.0..=32.0).contains(&raw), "raw={raw}");
    }

    #[test]
    fn explanation_exposes_encoded_features() {
        let (t, labels) = training();
        let p = TargetEncodingProvisioner::fit(&t, &labels, &catalog(), quick_config()).unwrap();
        let x = t.encode_row(&[Some("retail"), Some("dev")]).unwrap();
        let (_, expl) = p.recommend(&x).unwrap();
        match expl {
            Explanation::TargetEncoding {
                encoded_features,
                prediction_log2,
            } => {
                assert_eq!(encoded_features.len(), 2);
                assert_eq!(encoded_features[0].0, "industry");
                // retail rows have log2 labels {1, 2}, mean 1.5.
                assert!((encoded_features[0].1 - 1.5).abs() < 1e-9);
                assert!(prediction_log2.is_finite());
            }
            other => panic!("expected TE explanation, got {other:?}"),
        }
    }

    #[test]
    fn sentinel_missing_policy_underestimates() {
        // Reproduce the §3.3 observation in miniature: a -999 sentinel
        // drags predictions for rows with missing values far below truth.
        let schema = ProfileSchema::new(vec!["industry"]).unwrap();
        let mut t = ProfileTable::new(schema);
        let mut labels = Vec::new();
        for i in 0..100 {
            let industry = if i % 10 == 0 {
                None // 10% missing
            } else if i % 2 == 0 {
                Some("retail")
            } else {
                Some("banking")
            };
            t.push_row(&[industry]).unwrap();
            labels.push(if i % 2 == 0 { 8.0 } else { 16.0 });
        }
        let mk = |missing| TargetEncodingConfig {
            missing,
            ..quick_config()
        };
        let global =
            TargetEncodingProvisioner::fit(&t, &labels, &catalog(), mk(MissingPolicy::GlobalMean))
                .unwrap();
        let x = t.encode_row(&[None]).unwrap();
        let g = global.predict_raw(&x).unwrap();
        assert!(
            (8.0..=16.0).contains(&g),
            "global-mean policy stays in range, got {g}"
        );
    }

    #[test]
    fn fit_validates_inputs() {
        let (t, labels) = training();
        assert!(
            TargetEncodingProvisioner::fit(&t, &labels[..5], &catalog(), quick_config()).is_err()
        );
        let mut bad = labels.clone();
        bad[0] = 0.0; // log2 undefined
        assert!(TargetEncodingProvisioner::fit(&t, &bad, &catalog(), quick_config()).is_err());
        let bad_cfg = TargetEncodingConfig {
            smoothing: -1.0,
            ..quick_config()
        };
        assert!(TargetEncodingProvisioner::fit(&t, &labels, &catalog(), bad_cfg).is_err());
    }

    #[test]
    fn arity_mismatch_rejected_at_inference() {
        let (t, labels) = training();
        let p = TargetEncodingProvisioner::fit(&t, &labels, &catalog(), quick_config()).unwrap();
        let short = ProfileVector::new(vec![Some(0)]);
        assert!(p.predict_raw(&short).is_err());
    }

    #[test]
    fn predictions_scale_continuously_for_pareto_sweeps() {
        let (t, labels) = training();
        let p = TargetEncodingProvisioner::fit(&t, &labels, &catalog(), quick_config()).unwrap();
        let x = t.encode_row(&[Some("retail"), Some("prod")]).unwrap();
        let raw = p.predict_raw(&x).unwrap();
        // The raw prediction is continuous (not snapped to the ladder).
        assert!(raw > 0.0);
        let scaled = raw * 2.0f64.powf(-2.5);
        assert!(scaled < raw);
    }
}
