//! The sharded prediction store: N per-shard atomic-Arc snapshot slots
//! behind one multiply-fold router.
//!
//! [`SharedPredictionStore`](super::SharedPredictionStore) hot-swaps one
//! `Arc<PredictionStore>`; at million-key scale that means every publish
//! rebuilds the whole entry set and every publisher serializes on one
//! slot. [`ShardedPredictionStore`] splits the packed-`u64` key space
//! across N power-of-two shards selected by a
//! [`ShardRouter`](lorentz_types::ShardRouter) multiply-fold of the packed
//! key — the same discipline the λ-tables hash with — so:
//!
//! * a **full publish** validates once, splits the batch by routed shard,
//!   and swaps each shard's `Arc` in turn (no global reader lock, ever);
//! * a **per-shard publish** ([`ShardedPredictionStore::publish_shard`])
//!   touches exactly one slot — readers of the other N−1 shards never
//!   observe so much as a pointer swap;
//! * a **lookup** probes each hierarchy level in the one shard that could
//!   hold it, preserving the most-granular-first fallback semantics of the
//!   unsharded store bit for bit (the shard-equivalence proptest pins
//!   `sharded lookup ≡ unsharded lookup` for arbitrary key sets);
//! * a **batched lookup** pins all N shard snapshots once (N refcount
//!   bumps), so a whole batch reads a frozen per-shard world while
//!   publishers keep swapping.
//!
//! Per-offering defaults are replicated into every shard on a full
//! publish and *served from shard 0*, which therefore owns them across
//! per-shard publishes.

use super::{PredictionStore, PublishBatch};
use crate::explain::Explanation;
use crate::obs;
use lorentz_types::{FeatureId, LorentzError, ServerOffering, ShardRouter, StoreKey, ValueId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A [`PredictionStore`] split across N power-of-two shards, each behind
/// its own atomic-Arc snapshot slot. See the module docs for the routing
/// and publish contracts.
#[derive(Debug)]
pub struct ShardedPredictionStore {
    router: ShardRouter,
    /// One hot-swap slot per shard; readers clone the `Arc` out (refcount
    /// bump) and probe lock-free.
    shards: Box<[parking_lot::Mutex<Arc<PredictionStore>>]>,
    /// Serializes publishers so the global version stays monotone; readers
    /// never take it.
    publish_lock: parking_lot::Mutex<()>,
    /// The version stamped on the most recent publish (0 = nothing
    /// published yet).
    version: AtomicU64,
}

impl ShardedPredictionStore {
    /// An empty sharded store at version 0.
    ///
    /// # Errors
    /// [`LorentzError::InvalidConfig`] unless `shards` is a power of two
    /// (see [`ShardRouter::new`]).
    pub fn new(shards: usize) -> Result<Self, LorentzError> {
        let router = ShardRouter::new(shards)?;
        let slots = (0..router.shards())
            .map(|_| parking_lot::Mutex::new(Arc::new(PredictionStore::new())))
            .collect();
        Ok(Self {
            router,
            shards: slots,
            publish_lock: parking_lot::Mutex::new(()),
            version: AtomicU64::new(0),
        })
    }

    /// Splits an existing store across `shards` shards, preserving its
    /// version and replicating its per-offering defaults into every shard.
    ///
    /// # Errors
    /// [`LorentzError::InvalidConfig`] for an invalid shard count.
    pub fn from_store(store: &PredictionStore, shards: usize) -> Result<Self, LorentzError> {
        let router = ShardRouter::new(shards)?;
        let mut maps: Vec<HashMap<u64, f64>> = vec![HashMap::new(); router.shards()];
        for (&packed, &capacity) in &store.entries {
            maps[router.route_u64(packed)].insert(packed, capacity);
        }
        let slots = maps
            .into_iter()
            .map(|entries| {
                parking_lot::Mutex::new(Arc::new(PredictionStore {
                    version: store.version,
                    entries,
                    defaults: store.defaults,
                }))
            })
            .collect();
        Ok(Self {
            router,
            shards: slots,
            publish_lock: parking_lot::Mutex::new(()),
            version: AtomicU64::new(store.version),
        })
    }

    /// How many shards the key space is split across.
    pub fn shards(&self) -> usize {
        self.router.shards()
    }

    /// The shard a packed [`StoreKey`] routes to — total and stable, a
    /// pure function of the packed key and the shard count.
    pub fn shard_of_packed(&self, packed: u64) -> usize {
        self.router.route_u64(packed)
    }

    /// Atomically replaces the whole store: the batch is validated once,
    /// split by routed shard, and each shard's snapshot is swapped in
    /// turn. Readers never take a global lock — a concurrent batched
    /// lookup pins whatever per-shard snapshots were current when it
    /// started; each individual shard is torn-read-free.
    ///
    /// # Errors
    /// [`LorentzError::InvalidConfig`] for invalid capacities; no shard is
    /// touched.
    pub fn publish(&self, batch: PublishBatch) -> Result<u64, LorentzError> {
        // Validate and build off to the side (one staged store carries the
        // validated entries and the parsed defaults array).
        let mut staged = PredictionStore::new();
        staged.publish(batch)?;
        let mut maps: Vec<HashMap<u64, f64>> = vec![HashMap::new(); self.router.shards()];
        for (&packed, &capacity) in &staged.entries {
            maps[self.router.route_u64(packed)].insert(packed, capacity);
        }
        let _publish = self.publish_lock.lock();
        let version = self.version.load(Ordering::Relaxed) + 1;
        for (slot, entries) in self.shards.iter().zip(maps) {
            *slot.lock() = Arc::new(PredictionStore {
                version,
                entries,
                defaults: staged.defaults,
            });
        }
        self.version.store(version, Ordering::Relaxed);
        Ok(version)
    }

    /// Replaces the contents of one shard only — the hot-swap path a
    /// shard-local re-publish takes. Every batch entry must route to
    /// `shard` (a misrouted key would make lookups miss it); defaults in
    /// the batch become that shard's defaults, but only shard 0's defaults
    /// are ever served.
    ///
    /// # Errors
    /// [`LorentzError::InvalidConfig`] for an out-of-range shard index, a
    /// misrouted key, or invalid capacities; no shard is touched.
    pub fn publish_shard(&self, shard: usize, batch: PublishBatch) -> Result<u64, LorentzError> {
        if shard >= self.router.shards() {
            return Err(LorentzError::InvalidConfig(format!(
                "shard {shard} out of range (store has {} shards)",
                self.router.shards()
            )));
        }
        for (key, _) in &batch.entries {
            let routed = self.router.route_u64(key.pack());
            if routed != shard {
                return Err(LorentzError::InvalidConfig(format!(
                    "key {key} routes to shard {routed}, not {shard}"
                )));
            }
        }
        let mut staged = PredictionStore::new();
        staged.publish(batch)?;
        let _publish = self.publish_lock.lock();
        let version = self.version.load(Ordering::Relaxed) + 1;
        staged.version = version;
        *self.shards[shard].lock() = Arc::new(staged);
        self.version.store(version, Ordering::Relaxed);
        Ok(version)
    }

    /// Pins every shard's current snapshot (N refcount bumps, no data
    /// copy). The returned view is immutable: publishes swap in new
    /// snapshots and never touch one already handed out.
    pub fn snapshot(&self) -> ShardedStoreSnapshot {
        ShardedStoreSnapshot {
            shards: self.shards.iter().map(|slot| slot.lock().clone()).collect(),
            router: self.router,
        }
    }

    /// Serves a lookup against the current per-shard snapshots, counting
    /// the outcome into the `store.lookup.{hits,defaults,misses}`
    /// counters.
    ///
    /// # Errors
    /// See [`PredictionStore::lookup`].
    pub fn lookup(
        &self,
        offering: ServerOffering,
        levels: &[(FeatureId, ValueId)],
    ) -> Result<(f64, Explanation), LorentzError> {
        let result = self.snapshot().lookup(offering, levels);
        match &result {
            Ok((_, Explanation::StoreLookup { key: Some(_), .. })) => obs::STORE_HITS.inc(),
            Ok(_) => obs::STORE_DEFAULTS.inc(),
            Err(_) => obs::STORE_MISSES.inc(),
        }
        result
    }

    /// Serves many lookups against one pinned set of shard snapshots,
    /// appending one result per request to `out`. Metrics are amortized
    /// exactly like
    /// [`SharedPredictionStore::lookup_batch`](super::SharedPredictionStore::lookup_batch):
    /// one `store.lookup_batch.span_ns` observation and one update per
    /// outcome counter.
    pub fn lookup_batch(
        &self,
        requests: &[(ServerOffering, &[(FeatureId, ValueId)])],
        out: &mut Vec<Result<(f64, Explanation), LorentzError>>,
    ) {
        let span = obs::STORE_BATCH_SPAN_NS.span();
        let start = out.len();
        {
            let snapshot = self.snapshot();
            out.extend(
                requests
                    .iter()
                    .map(|&(offering, levels)| snapshot.lookup(offering, levels)),
            );
        }
        drop(span);
        let (mut hits, mut defaults, mut misses) = (0u64, 0u64, 0u64);
        for result in &out[start..] {
            match result {
                Ok((_, Explanation::StoreLookup { key: Some(_), .. })) => hits += 1,
                Ok(_) => defaults += 1,
                Err(_) => misses += 1,
            }
        }
        obs::STORE_BATCH_REQUESTS.add(requests.len() as u64);
        obs::STORE_HITS.add(hits);
        obs::STORE_DEFAULTS.add(defaults);
        obs::STORE_MISSES.add(misses);
    }

    /// The version stamped on the most recent publish (full or per-shard).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Relaxed)
    }

    /// Stored keys across every shard.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|slot| slot.lock().len()).sum()
    }

    /// Whether no shard holds any entry.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|slot| slot.lock().is_empty())
    }

    /// Keys resident in one shard (diagnostics and balance tests).
    ///
    /// # Errors
    /// [`LorentzError::InvalidConfig`] for an out-of-range shard index.
    pub fn shard_len(&self, shard: usize) -> Result<usize, LorentzError> {
        self.shards
            .get(shard)
            .map(|slot| slot.lock().len())
            .ok_or_else(|| {
                LorentzError::InvalidConfig(format!(
                    "shard {shard} out of range (store has {} shards)",
                    self.router.shards()
                ))
            })
    }
}

/// One pinned set of per-shard snapshots: the immutable view a batched
/// lookup (or one degraded-path request) probes. Cloning is N refcount
/// bumps.
#[derive(Debug, Clone)]
pub struct ShardedStoreSnapshot {
    shards: Box<[Arc<PredictionStore>]>,
    router: ShardRouter,
}

impl ShardedStoreSnapshot {
    /// Looks up the prediction for a request, preserving
    /// [`PredictionStore::lookup`] semantics exactly: levels are probed
    /// most granular first (each in the one shard its packed key routes
    /// to), then shard 0's per-offering default answers.
    ///
    /// # Errors
    /// [`LorentzError::NotFound`] if no key matches and no default exists
    /// for the offering.
    pub fn lookup(
        &self,
        offering: ServerOffering,
        levels: &[(FeatureId, ValueId)],
    ) -> Result<(f64, Explanation), LorentzError> {
        for &(feature, value) in levels {
            let key = StoreKey::new(offering, feature, value);
            let packed = key.pack();
            if let Some(&c) = self.shards[self.router.route_u64(packed)]
                .entries
                .get(&packed)
            {
                return Ok((
                    c,
                    Explanation::StoreLookup {
                        key: Some(key),
                        offering,
                    },
                ));
            }
        }
        match self.shards[0].defaults[usize::from(offering.code())] {
            Some(c) => Ok((
                c,
                Explanation::StoreLookup {
                    key: None,
                    offering,
                },
            )),
            None => Err(LorentzError::NotFound(format!(
                "no prediction and no default for offering {offering}"
            ))),
        }
    }

    /// The newest store version visible across the pinned shards.
    pub fn version(&self) -> u64 {
        self.shards.iter().map(|s| s.version()).max().unwrap_or(0)
    }

    /// How many shards this snapshot pins.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Stored keys across the pinned shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// Whether the pinned snapshots hold no entries.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const VERTICAL: FeatureId = FeatureId(0);
    const CUSTOMER: FeatureId = FeatureId(1);

    fn key(feature: FeatureId, value: u32) -> StoreKey {
        StoreKey::new(ServerOffering::GeneralPurpose, feature, ValueId(value))
    }

    fn batch(n: usize) -> PublishBatch {
        PublishBatch {
            entries: (0..n)
                .map(|i| (key(CUSTOMER, i as u32), 1.0 + i as f64))
                .collect(),
            defaults: vec![(ServerOffering::GeneralPurpose, 2.0)],
        }
    }

    #[test]
    fn rejects_non_power_of_two_shard_counts() {
        assert!(ShardedPredictionStore::new(3).is_err());
        assert!(ShardedPredictionStore::new(0).is_err());
        assert_eq!(ShardedPredictionStore::new(8).unwrap().shards(), 8);
    }

    #[test]
    fn sharded_lookup_matches_unsharded_for_every_key() {
        let mut flat = PredictionStore::new();
        flat.publish(batch(64)).unwrap();
        let sharded = ShardedPredictionStore::from_store(&flat, 8).unwrap();
        assert_eq!(sharded.len(), flat.len());
        assert_eq!(sharded.version(), flat.version());
        let snapshot = sharded.snapshot();
        for i in 0..64u32 {
            let levels = [(CUSTOMER, ValueId(i)), (VERTICAL, ValueId(0))];
            let flat_answer = flat
                .lookup(ServerOffering::GeneralPurpose, &levels)
                .unwrap();
            let sharded_answer = snapshot
                .lookup(ServerOffering::GeneralPurpose, &levels)
                .unwrap();
            assert_eq!(flat_answer.0, sharded_answer.0);
        }
        // Misses and defaults agree too.
        let miss = [(VERTICAL, ValueId(999))];
        assert_eq!(
            flat.lookup(ServerOffering::GeneralPurpose, &miss)
                .unwrap()
                .0,
            snapshot
                .lookup(ServerOffering::GeneralPurpose, &miss)
                .unwrap()
                .0,
        );
        assert!(flat.lookup(ServerOffering::Burstable, &miss).is_err());
        assert!(snapshot.lookup(ServerOffering::Burstable, &miss).is_err());
    }

    #[test]
    fn full_publish_bumps_one_version_across_all_shards() {
        let store = ShardedPredictionStore::new(4).unwrap();
        assert_eq!(store.publish(batch(16)).unwrap(), 1);
        assert_eq!(store.publish(batch(16)).unwrap(), 2);
        assert_eq!(store.version(), 2);
        assert_eq!(store.snapshot().version(), 2);
        assert_eq!(store.len(), 16);
    }

    #[test]
    fn publish_shard_touches_only_its_slot() {
        let store = ShardedPredictionStore::new(4).unwrap();
        store.publish(batch(32)).unwrap();
        let before = store.snapshot();
        // Re-publish one shard with only the keys that route to it.
        let target = store.shard_of_packed(key(CUSTOMER, 0).pack());
        let entries: Vec<(StoreKey, f64)> = (0..32u32)
            .map(|i| (key(CUSTOMER, i), 100.0))
            .filter(|(k, _)| store.shard_of_packed(k.pack()) == target)
            .collect();
        let replaced = entries.len();
        assert!(replaced > 0, "fixture keys all missed shard {target}");
        store
            .publish_shard(
                target,
                PublishBatch {
                    entries,
                    defaults: vec![],
                },
            )
            .unwrap();
        let after = store.snapshot();
        for shard in 0..4 {
            let was = &before.shards[shard];
            let now = &after.shards[shard];
            if shard == target {
                assert!(!Arc::ptr_eq(was, now), "published shard must swap");
                assert_eq!(now.len(), replaced);
            } else {
                assert!(Arc::ptr_eq(was, now), "untouched shard {shard} swapped");
            }
        }
    }

    #[test]
    fn publish_shard_rejects_misrouted_keys() {
        let store = ShardedPredictionStore::new(4).unwrap();
        // Find a key and a shard it does NOT route to.
        let k = key(CUSTOMER, 7);
        let wrong = (store.shard_of_packed(k.pack()) + 1) % 4;
        let err = store
            .publish_shard(
                wrong,
                PublishBatch {
                    entries: vec![(k, 1.0)],
                    defaults: vec![],
                },
            )
            .unwrap_err();
        assert!(err.to_string().contains("routes to shard"));
        assert!(store.publish_shard(9, PublishBatch::default()).is_err());
    }

    #[test]
    fn single_shard_degenerates_to_the_flat_store() {
        let store = ShardedPredictionStore::new(1).unwrap();
        store.publish(batch(8)).unwrap();
        let mut out = Vec::new();
        let levels = [(CUSTOMER, ValueId(3))];
        store.lookup_batch(&[(ServerOffering::GeneralPurpose, &levels[..])], &mut out);
        assert_eq!(out[0].as_ref().unwrap().0, 4.0);
        assert_eq!(
            store
                .lookup(ServerOffering::GeneralPurpose, &levels)
                .unwrap()
                .0,
            4.0
        );
    }
}
