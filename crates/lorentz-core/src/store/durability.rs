//! Crash-safe persistence for the prediction store.
//!
//! A bare `fs::write` of the store JSON can be observed half-written after
//! a crash, silently corrupted by bit rot, or clobbered by a concurrent
//! writer — and the serving path would load whatever bytes it found. This
//! module replaces it with a generation-numbered, checksummed scheme:
//!
//! * **Framing** — every snapshot is written as a fixed 20-byte header
//!   (magic `LRTZ`, format version, payload length, CRC32C) followed by
//!   the store JSON. Load verifies all four fields before parsing, so
//!   truncation, version skew, and bit flips surface as a typed
//!   [`StoreCorruption`] instead of a JSON parse error (or worse, a
//!   wrong-but-parseable store).
//! * **Generations** — each save commits a fresh `store.gen-N.json` via
//!   `tmp → fsync → atomic rename` (see [`lorentz_fault::RealIo`]), then
//!   atomically updates `store.manifest.json` to point at it. Old
//!   generations are retained (default 4) and pruned only after the new
//!   manifest is durable, so there is *always* a committed snapshot to
//!   fall back to.
//! * **Recovery** — [`DurableStore::load`] walks generations newest-first,
//!   skipping corrupt ones and counting each skip in
//!   `store.recovery.fallbacks`; a corrupt or missing manifest degrades to
//!   a directory scan. Only when every candidate fails does load give up.
//!
//! All I/O goes through the injectable [`SnapshotIo`] seam, and the commit
//! point carries a `fail_point!("store.save.commit")`, so the fault suite
//! can tear writes and kill the process mid-save deterministically.

use std::io;
use std::path::{Path, PathBuf};

use lorentz_fault::{default_io, fail_point, RealIo, SnapshotIo};
use lorentz_types::StoreCorruption;
use serde::{Deserialize, Serialize};
use thiserror::Error;

use crate::obs;
use crate::retry::{is_transient_io, retry_with_backoff, RetryPolicy};
use crate::store::PredictionStore;

/// Snapshot frame magic bytes.
pub const MAGIC: [u8; 4] = *b"LRTZ";
/// Snapshot format version this build reads and writes.
pub const FORMAT_VERSION: u16 = 1;
/// Fixed frame header length: magic + version + flags + length + CRC32C.
pub const HEADER_LEN: usize = 20;
/// File name of the generation manifest.
pub const MANIFEST_NAME: &str = "store.manifest.json";

/// Generations retained after a save, including the one just written.
pub const DEFAULT_KEEP_GENERATIONS: usize = 4;

// CRC32C (Castagnoli), reflected polynomial — the same checksum iSCSI and
// ext4 use for metadata. The implementation moved to lorentz-types with the
// shared frame codec; re-exported here for the store's existing callers.
pub use lorentz_types::framing::crc32c;

/// Wraps a snapshot payload in the framed header.
pub fn frame_snapshot(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes()); // flags, reserved
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32c(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validates a framed snapshot and returns its payload.
///
/// # Errors
/// The first integrity check that fails: header truncation, bad magic,
/// unknown version, payload truncation, or checksum mismatch.
pub fn unframe_snapshot(bytes: &[u8]) -> Result<&[u8], StoreCorruption> {
    if bytes.len() < HEADER_LEN {
        return Err(StoreCorruption::HeaderTruncated {
            got: bytes.len(),
            need: HEADER_LEN,
        });
    }
    if bytes[0..4] != MAGIC {
        return Err(StoreCorruption::BadMagic {
            found: [bytes[0], bytes[1], bytes[2], bytes[3]],
        });
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != FORMAT_VERSION {
        return Err(StoreCorruption::UnknownVersion(version));
    }
    let declared = u64::from_le_bytes(bytes[8..16].try_into().expect("8-byte slice"));
    let expected = u32::from_le_bytes(bytes[16..20].try_into().expect("4-byte slice"));
    let body = &bytes[HEADER_LEN..];
    if (body.len() as u64) < declared {
        return Err(StoreCorruption::Truncated {
            declared,
            got: body.len() as u64,
        });
    }
    let payload = &body[..declared as usize];
    let actual = crc32c(payload);
    if actual != expected {
        return Err(StoreCorruption::ChecksumMismatch { expected, actual });
    }
    Ok(payload)
}

/// The persisted generation index: which snapshot is current and which
/// older generations are still on disk for fallback.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct Manifest {
    format: u32,
    current: u64,
    generations: Vec<u64>,
}

/// Errors from [`DurableStore`] operations.
#[derive(Debug, Error)]
pub enum StoreError {
    /// An I/O operation failed permanently (after retries, if transient).
    #[error("store I/O error at {path}: {source}")]
    Io {
        /// Path the operation targeted.
        path: String,
        /// The underlying error.
        source: io::Error,
    },

    /// The store could not be serialized for persistence.
    #[error("store serialization failed: {0}")]
    Serialize(String),

    /// The directory holds no snapshot at all (fresh deployment).
    #[error("no store snapshot found in {dir}")]
    NoSnapshot {
        /// The directory searched.
        dir: String,
    },

    /// Every candidate generation failed integrity checks.
    #[error("store unrecoverable: all {attempts} generation(s) corrupt; newest failure: {last}")]
    Unrecoverable {
        /// How many generations were tried.
        attempts: usize,
        /// The corruption found in the newest generation.
        last: StoreCorruption,
    },
}

fn io_err(path: &Path, source: io::Error) -> StoreError {
    StoreError::Io {
        path: path.display().to_string(),
        source,
    }
}

/// A successfully recovered store plus how the recovery went.
#[derive(Debug)]
pub struct RecoveredStore {
    /// The recovered prediction store.
    pub store: PredictionStore,
    /// The generation it was loaded from.
    pub generation: u64,
    /// Generations skipped as corrupt or missing before this one.
    pub fallbacks: u64,
    /// What was wrong with each skipped generation, newest first.
    pub skipped: Vec<(u64, StoreCorruption)>,
    /// Set when the manifest was unreadable and recovery degraded to a
    /// directory scan.
    pub manifest_error: Option<StoreCorruption>,
}

/// Generation-numbered, checksummed persistence for [`PredictionStore`].
///
/// ```no_run
/// use lorentz_core::store::durability::DurableStore;
/// use lorentz_core::store::PredictionStore;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let durable = DurableStore::open("/var/lib/lorentz/store");
/// durable.save(&PredictionStore::new())?;
/// let recovered = durable.load()?;
/// assert_eq!(recovered.fallbacks, 0);
/// # Ok(())
/// # }
/// ```
pub struct DurableStore {
    dir: PathBuf,
    io: Box<dyn SnapshotIo>,
    keep: usize,
    retry: RetryPolicy,
}

impl DurableStore {
    /// Opens a durable store rooted at `dir`, using the default I/O
    /// implementation (fault-injectable under the `fault-injection`
    /// feature, plain filesystem otherwise).
    pub fn open(dir: impl Into<PathBuf>) -> Self {
        Self::with_io(dir, default_io())
    }

    /// Opens a durable store with an explicit [`SnapshotIo`].
    pub fn with_io(dir: impl Into<PathBuf>, io: Box<dyn SnapshotIo>) -> Self {
        Self {
            dir: dir.into(),
            io,
            keep: DEFAULT_KEEP_GENERATIONS,
            retry: RetryPolicy::default(),
        }
    }

    /// Sets how many generations each save retains (minimum 1).
    #[must_use]
    pub fn keep_generations(mut self, keep: usize) -> Self {
        self.keep = keep.max(1);
        self
    }

    /// Sets the retry policy for snapshot and manifest writes.
    #[must_use]
    pub fn retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn manifest_path(&self) -> PathBuf {
        self.dir.join(MANIFEST_NAME)
    }

    fn gen_path(&self, generation: u64) -> PathBuf {
        self.dir.join(format!("store.gen-{generation}.json"))
    }

    /// Reads and parses the manifest. `Ok(None)` when it does not exist.
    fn read_manifest(&self) -> Result<Option<Manifest>, StoreCorruption> {
        let path = self.manifest_path();
        let bytes = match self.io.read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(StoreCorruption::BadManifest(format!("read failed: {e}"))),
        };
        let text = String::from_utf8(bytes)
            .map_err(|e| StoreCorruption::BadManifest(format!("not UTF-8: {e}")))?;
        let manifest: Manifest = serde_json::from_str(&text)
            .map_err(|e| StoreCorruption::BadManifest(format!("parse failed: {e}")))?;
        Ok(Some(manifest))
    }

    /// Generation numbers found by scanning the directory for
    /// `store.gen-N.json` files.
    fn scan_generations(&self) -> Vec<u64> {
        let mut gens: Vec<u64> = self
            .io
            .list(&self.dir)
            .unwrap_or_default()
            .iter()
            .filter_map(|p| p.file_name()?.to_str())
            .filter_map(|name| {
                name.strip_prefix("store.gen-")?
                    .strip_suffix(".json")?
                    .parse()
                    .ok()
            })
            .collect();
        gens.sort_unstable();
        gens.dedup();
        gens
    }

    fn write_with_retry(&self, path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
        retry_with_backoff(&self.retry, is_transient_io, |attempt| {
            if attempt > 0 {
                obs::STORE_SAVE_RETRIES.inc();
            }
            self.io.write_atomic(path, bytes)
        })
        .map_err(|e| io_err(path, e))
    }

    /// Persists `store` as a new generation and commits it in the
    /// manifest, then prunes generations beyond the retention count.
    ///
    /// Returns the committed generation number. Crash-safety argument: the
    /// generation file and the manifest are each written atomically, and
    /// the manifest flips to the new generation only after the data file
    /// is durable — a crash at any point leaves the previous manifest (and
    /// its generations) intact.
    ///
    /// # Errors
    /// [`StoreError::Serialize`] when the store will not serialize,
    /// [`StoreError::Io`] when a write fails past the retry budget.
    pub fn save(&self, store: &PredictionStore) -> Result<u64, StoreError> {
        let prior = self.read_manifest().ok().flatten();
        let mut known = self.scan_generations();
        if let Some(m) = &prior {
            known.extend(m.generations.iter().copied());
            known.push(m.current);
            known.sort_unstable();
            known.dedup();
        }
        let generation = known.last().copied().unwrap_or(0) + 1;

        let payload =
            serde_json::to_string(store).map_err(|e| StoreError::Serialize(format!("{e}")))?;
        let gen_path = self.gen_path(generation);
        self.write_with_retry(&gen_path, &frame_snapshot(payload.as_bytes()))?;

        // The manifest lists only the generations we intend to keep; files
        // beyond the retention count are deleted after the manifest commits,
        // so every listed generation exists on disk at all times.
        known.push(generation);
        known.sort_unstable();
        known.dedup();
        let retained: Vec<u64> = known.iter().rev().take(self.keep).copied().rev().collect();
        let manifest = Manifest {
            format: 1,
            current: generation,
            generations: retained.clone(),
        };
        let manifest_json = serde_json::to_string_pretty(&manifest)
            .map_err(|e| StoreError::Serialize(format!("{e}")))?;
        self.write_with_retry(&self.manifest_path(), manifest_json.as_bytes())?;

        // The commit point: a crash here must leave a loadable store.
        fail_point!("store.save.commit");

        for &old in known.iter().filter(|g| !retained.contains(g)) {
            let _ = self.io.remove(&self.gen_path(old));
        }
        obs::STORE_SAVE_GENERATIONS.inc();
        Ok(generation)
    }

    /// Loads the newest intact generation, falling back past corrupt ones.
    ///
    /// Every skipped generation increments `store.recovery.fallbacks`; the
    /// returned [`RecoveredStore`] reports exactly what was skipped and
    /// why.
    ///
    /// # Errors
    /// [`StoreError::NoSnapshot`] when the directory holds no generation
    /// at all, [`StoreError::Unrecoverable`] when every generation fails
    /// its integrity checks.
    pub fn load(&self) -> Result<RecoveredStore, StoreError> {
        obs::STORE_RECOVERY_LOADS.inc();

        let (mut candidates, manifest_error) = match self.read_manifest() {
            Ok(Some(m)) => {
                let mut gens = m.generations.clone();
                gens.push(m.current);
                gens.sort_unstable();
                gens.dedup();
                (gens, None)
            }
            Ok(None) => (self.scan_generations(), None),
            Err(corruption) => (self.scan_generations(), Some(corruption)),
        };
        candidates.reverse(); // newest first

        let mut skipped: Vec<(u64, StoreCorruption)> = Vec::new();
        for &generation in &candidates {
            match self.try_load_generation(generation) {
                Ok(store) => {
                    return Ok(RecoveredStore {
                        store,
                        generation,
                        fallbacks: skipped.len() as u64,
                        skipped,
                        manifest_error,
                    });
                }
                Err(corruption) => {
                    obs::STORE_RECOVERY_FALLBACKS.inc();
                    skipped.push((generation, corruption));
                }
            }
        }

        match skipped.into_iter().next() {
            None => Err(StoreError::NoSnapshot {
                dir: self.dir.display().to_string(),
            }),
            Some((_, last)) => Err(StoreError::Unrecoverable {
                attempts: candidates.len(),
                last,
            }),
        }
    }

    fn try_load_generation(&self, generation: u64) -> Result<PredictionStore, StoreCorruption> {
        let path = self.gen_path(generation);
        let bytes = match self.io.read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return Err(StoreCorruption::MissingGeneration {
                    generation,
                    path: path.display().to_string(),
                })
            }
            Err(e) => return Err(StoreCorruption::BadPayload(format!("read failed: {e}"))),
        };
        let payload = unframe_snapshot(&bytes)?;
        let text = std::str::from_utf8(payload)
            .map_err(|e| StoreCorruption::BadPayload(format!("not UTF-8: {e}")))?;
        serde_json::from_str(text).map_err(|e| StoreCorruption::BadPayload(format!("{e}")))
    }
}

impl std::fmt::Debug for DurableStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableStore")
            .field("dir", &self.dir)
            .field("keep", &self.keep)
            .finish_non_exhaustive()
    }
}

/// Atomically writes `bytes` to `path` (`tmp → fsync → rename`), retrying
/// transient failures under `policy`. The shared helper behind every CLI
/// output write — partially-written files can never be observed at `path`.
///
/// # Errors
/// The underlying I/O error once the retry budget is exhausted.
pub fn atomic_write(path: &Path, bytes: &[u8], policy: &RetryPolicy) -> io::Result<()> {
    retry_with_backoff(policy, is_transient_io, |_| {
        RealIo.write_atomic(path, bytes)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::PublishBatch;
    use lorentz_types::{FeatureId, ServerOffering, StoreKey, ValueId};

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("lorentz-durability-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_store() -> PredictionStore {
        let mut store = PredictionStore::new();
        store
            .publish(PublishBatch {
                entries: vec![(
                    StoreKey::new(ServerOffering::GeneralPurpose, FeatureId(1), ValueId(2)),
                    4.0,
                )],
                defaults: vec![(ServerOffering::GeneralPurpose, 2.0)],
            })
            .unwrap();
        store
    }

    #[test]
    fn crc32c_matches_known_vector() {
        // The canonical CRC32C check value (RFC 3720 appendix B.4 style).
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(b""), 0);
    }

    #[test]
    fn frame_round_trips_and_detects_each_corruption() {
        let framed = frame_snapshot(b"hello store");
        assert_eq!(unframe_snapshot(&framed).unwrap(), b"hello store");

        // Header truncation.
        assert!(matches!(
            unframe_snapshot(&framed[..10]),
            Err(StoreCorruption::HeaderTruncated { got: 10, need: 20 })
        ));

        // Bad magic.
        let mut bad = framed.clone();
        bad[0] = b'X';
        assert!(matches!(
            unframe_snapshot(&bad),
            Err(StoreCorruption::BadMagic { .. })
        ));

        // Unknown version.
        let mut bad = framed.clone();
        bad[4] = 0xFF;
        bad[5] = 0xFF;
        assert!(matches!(
            unframe_snapshot(&bad),
            Err(StoreCorruption::UnknownVersion(0xFFFF))
        ));

        // Payload truncation.
        let truncated = &framed[..framed.len() - 3];
        assert!(matches!(
            unframe_snapshot(truncated),
            Err(StoreCorruption::Truncated { .. })
        ));

        // Bit flip in the payload.
        let mut bad = framed.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert!(matches!(
            unframe_snapshot(&bad),
            Err(StoreCorruption::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn save_load_round_trips_with_generations() {
        let dir = tmp_dir("roundtrip");
        let durable = DurableStore::open(&dir);
        let store = sample_store();
        assert_eq!(durable.save(&store).unwrap(), 1);
        assert_eq!(durable.save(&store).unwrap(), 2);

        let recovered = durable.load().unwrap();
        assert_eq!(recovered.generation, 2);
        assert_eq!(recovered.fallbacks, 0);
        assert!(recovered.manifest_error.is_none());
        assert_eq!(recovered.store.len(), store.len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pruning_keeps_only_the_retention_window() {
        let dir = tmp_dir("prune");
        let durable = DurableStore::open(&dir).keep_generations(2);
        let store = sample_store();
        for expected in 1..=4 {
            assert_eq!(durable.save(&store).unwrap(), expected);
        }
        let gens = durable.scan_generations();
        assert_eq!(gens, vec![3, 4]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_dir_reports_no_snapshot() {
        let dir = tmp_dir("empty");
        let err = DurableStore::open(&dir).load().unwrap_err();
        assert!(matches!(err, StoreError::NoSnapshot { .. }));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_survives_serde_round_trip() {
        let m = Manifest {
            format: 1,
            current: 7,
            generations: vec![5, 6, 7],
        };
        let json = serde_json::to_string(&m).unwrap();
        let back: Manifest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }
}
