//! The online prediction store (§4, Fig. 8 step C).
//!
//! Production Lorentz precomputes one SKU recommendation per
//! `[hierarchy level, feature value, server offering]` key in a daily batch
//! and copies them to a low-latency store with data versioning. At inference
//! the store returns the prediction for the *most granular* hierarchy level
//! present in the request whose value is stored; if nothing matches, a
//! per-offering default is returned.
//!
//! Keys are typed and packed: a [`StoreKey`] (offering, [`FeatureId`],
//! interned [`ValueId`]) indexes the entry map through its `u64` packed
//! form, so the serving path never allocates or compares strings. The JSON
//! snapshot keeps a string-keyed map (`"offering|feature|value"` → capacity)
//! via manual serde impls, preserving a readable persisted format.

pub mod durability;
pub mod sharded;

pub use durability::{atomic_write, DurableStore, RecoveredStore, StoreError};
pub use sharded::{ShardedPredictionStore, ShardedStoreSnapshot};

use crate::explain::Explanation;
use crate::obs;
use lorentz_types::{FeatureId, LorentzError, ServerOffering, StoreKey, ValueId};
use serde::{Deserialize, Serialize, Value};
use std::collections::HashMap;

/// A versioned, in-process stand-in for the paper's authenticated online
/// prediction store. Each [`publish`](PredictionStore::publish) replaces the
/// whole entry set atomically and bumps the version, mirroring the
/// ETL-copy-then-switch deployment.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PredictionStore {
    version: u64,
    /// Packed [`StoreKey`] → recommended primary capacity.
    entries: HashMap<u64, f64>,
    /// Fallback capacity per offering code when no key matches.
    defaults: [Option<f64>; ServerOffering::ALL.len()],
}

/// A batch of predictions to publish.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PublishBatch {
    /// `(key, capacity)` pairs.
    pub entries: Vec<(StoreKey, f64)>,
    /// Per-offering default capacities.
    pub defaults: Vec<(ServerOffering, f64)>,
}

impl PredictionStore {
    /// Creates an empty store at version 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current data version (0 = nothing published yet).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Atomically replaces the store contents and bumps the version.
    ///
    /// # Errors
    /// Returns [`LorentzError::InvalidConfig`] if any capacity is
    /// non-positive or non-finite.
    pub fn publish(&mut self, batch: PublishBatch) -> Result<u64, LorentzError> {
        for (_, c) in &batch.entries {
            if !c.is_finite() || *c <= 0.0 {
                return Err(LorentzError::InvalidConfig(format!(
                    "store capacities must be positive, got {c}"
                )));
            }
        }
        for (_, c) in &batch.defaults {
            if !c.is_finite() || *c <= 0.0 {
                return Err(LorentzError::InvalidConfig(format!(
                    "store defaults must be positive, got {c}"
                )));
            }
        }
        self.entries = batch
            .entries
            .into_iter()
            .map(|(k, c)| (k.pack(), c))
            .collect();
        self.defaults = [None; ServerOffering::ALL.len()];
        for (o, c) in batch.defaults {
            self.defaults[usize::from(o.code())] = Some(c);
        }
        self.version += 1;
        obs::STORE_PUBLISHES.inc();
        Ok(self.version)
    }

    /// Looks up the prediction for a request.
    ///
    /// `levels` is the request's `(feature, interned value)` pairs ordered
    /// **most granular first**; the first stored key wins. Returns the
    /// capacity and an [`Explanation::StoreLookup`] describing the match.
    /// The probe is pure integer hashing — no allocation, no string
    /// comparison.
    ///
    /// # Errors
    /// Returns [`LorentzError::NotFound`] if no key matches and no default
    /// exists for the offering.
    pub fn lookup(
        &self,
        offering: ServerOffering,
        levels: &[(FeatureId, ValueId)],
    ) -> Result<(f64, Explanation), LorentzError> {
        for &(feature, value) in levels {
            let key = StoreKey::new(offering, feature, value);
            if let Some(&c) = self.entries.get(&key.pack()) {
                return Ok((
                    c,
                    Explanation::StoreLookup {
                        key: Some(key),
                        offering,
                    },
                ));
            }
        }
        match self.defaults[usize::from(offering.code())] {
            Some(c) => Ok((
                c,
                Explanation::StoreLookup {
                    key: None,
                    offering,
                },
            )),
            None => Err(LorentzError::NotFound(format!(
                "no prediction and no default for offering {offering}"
            ))),
        }
    }
}

// Snapshot compatibility shim: persisted stores keep the string-keyed JSON
// shape (`entries` as an object keyed by the canonical `StoreKey` display
// form, `defaults` keyed by offering name) while the in-memory form stays
// packed.
impl Serialize for PredictionStore {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .entries
            .iter()
            .map(|(&packed, &c)| {
                let key = StoreKey::unpack(packed).expect("store only holds packed StoreKeys");
                (key.to_string(), Value::Float(c))
            })
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let defaults: Vec<(String, Value)> = ServerOffering::ALL
            .iter()
            .filter_map(|&o| {
                self.defaults[usize::from(o.code())].map(|c| (o.name().to_owned(), Value::Float(c)))
            })
            .collect();
        Value::Map(vec![
            ("version".into(), Value::UInt(self.version)),
            ("entries".into(), Value::Map(entries)),
            ("defaults".into(), Value::Map(defaults)),
        ])
    }
}

impl Deserialize for PredictionStore {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let field = |name: &str| {
            v.get_field(name)
                .ok_or_else(|| serde::Error::custom(format!("store snapshot missing '{name}'")))
        };
        let version = u64::from_value(field("version")?)?;
        let mut entries = HashMap::new();
        for (k, c) in field("entries")?
            .as_map()
            .ok_or_else(|| serde::Error::custom("store entries must be a map"))?
        {
            let key: StoreKey = k
                .parse()
                .map_err(|e| serde::Error::custom(format!("{e}")))?;
            entries.insert(key.pack(), f64::from_value(c)?);
        }
        let mut defaults = [None; ServerOffering::ALL.len()];
        for (k, c) in field("defaults")?
            .as_map()
            .ok_or_else(|| serde::Error::custom("store defaults must be a map"))?
        {
            let offering: ServerOffering = k
                .parse()
                .map_err(|e: LorentzError| serde::Error::custom(format!("{e}")))?;
            defaults[usize::from(offering.code())] = Some(f64::from_value(c)?);
        }
        Ok(Self {
            version,
            entries,
            defaults,
        })
    }
}

/// A thread-safe handle over a [`PredictionStore`] for concurrent serving:
/// many simultaneous readers, with publishes swapping the entry set
/// atomically — the in-process analogue of the §4 online store's
/// copy-then-switch deployment.
///
/// Internally the store is an immutable snapshot behind an
/// `Arc`: readers take a mutex only long enough to clone the `Arc` out of
/// the slot (a reference-count bump, no data copy), then probe the snapshot
/// entirely lock-free. A [`publish`](SharedPredictionStore::publish) builds
/// the next snapshot off to the side and swaps it into the slot, so readers
/// never wait on a publisher and a publisher never waits for readers to
/// drain — the zero-downtime re-publish primitive the serving engine is
/// built on.
#[derive(Debug, Default)]
pub struct SharedPredictionStore {
    slot: parking_lot::Mutex<std::sync::Arc<PredictionStore>>,
}

impl SharedPredictionStore {
    /// Creates an empty shared store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps an existing store.
    pub fn from_store(store: PredictionStore) -> Self {
        Self {
            slot: parking_lot::Mutex::new(std::sync::Arc::new(store)),
        }
    }

    /// Atomically replaces the contents (readers see either the old or the
    /// new version, never a mix). In-flight lookups keep their snapshot
    /// alive through its `Arc` and finish against the old version; the old
    /// snapshot is freed when the last such reader drops it.
    ///
    /// # Errors
    /// Returns [`LorentzError::InvalidConfig`] for invalid batches; the
    /// previous contents remain served.
    pub fn publish(&self, batch: PublishBatch) -> Result<u64, LorentzError> {
        // Validate and build outside the slot lock so readers are blocked
        // only for the pointer swap itself.
        let mut staged = PredictionStore::new();
        staged.publish(batch)?;
        let mut guard = self.slot.lock();
        // Publishers serialize on the slot lock, which keeps versions
        // monotone regardless of how many publish concurrently.
        staged.version = guard.version + 1;
        let v = staged.version;
        *guard = std::sync::Arc::new(staged);
        Ok(v)
    }

    /// The current snapshot: a cheap `Arc` clone of the published store
    /// (reference-count bump, no data copy). The snapshot is immutable —
    /// concurrent publishes swap in a *new* snapshot and never touch one
    /// already handed out, so holders can probe it lock-free for as long as
    /// they like at whatever version they captured.
    pub fn snapshot(&self) -> std::sync::Arc<PredictionStore> {
        self.slot.lock().clone()
    }

    /// Serves a lookup against the current snapshot, counting the outcome
    /// into the `store.lookup.{hits,defaults,misses}` counters.
    ///
    /// # Errors
    /// See [`PredictionStore::lookup`].
    pub fn lookup(
        &self,
        offering: ServerOffering,
        levels: &[(FeatureId, ValueId)],
    ) -> Result<(f64, Explanation), LorentzError> {
        let result = self.snapshot().lookup(offering, levels);
        match &result {
            Ok((_, Explanation::StoreLookup { key: Some(_), .. })) => obs::STORE_HITS.inc(),
            Ok(_) => obs::STORE_DEFAULTS.inc(),
            Err(_) => obs::STORE_MISSES.inc(),
        }
        result
    }

    /// Serves many lookups against one snapshot, appending one result per
    /// request to `out`. All results come from the same store version — the
    /// snapshot is captured once for the whole batch — and the metrics are
    /// amortized with it: one `store.lookup_batch.span_ns` observation and
    /// one update per outcome counter, tallied from the appended results.
    pub fn lookup_batch(
        &self,
        requests: &[(ServerOffering, &[(FeatureId, ValueId)])],
        out: &mut Vec<Result<(f64, Explanation), LorentzError>>,
    ) {
        let span = obs::STORE_BATCH_SPAN_NS.span();
        let start = out.len();
        {
            let snapshot = self.snapshot();
            out.extend(
                requests
                    .iter()
                    .map(|&(offering, levels)| snapshot.lookup(offering, levels)),
            );
        }
        drop(span);
        let (mut hits, mut defaults, mut misses) = (0u64, 0u64, 0u64);
        for result in &out[start..] {
            match result {
                Ok((_, Explanation::StoreLookup { key: Some(_), .. })) => hits += 1,
                Ok(_) => defaults += 1,
                Err(_) => misses += 1,
            }
        }
        obs::STORE_BATCH_REQUESTS.add(requests.len() as u64);
        obs::STORE_HITS.add(hits);
        obs::STORE_DEFAULTS.add(defaults);
        obs::STORE_MISSES.add(misses);
    }

    /// Current data version.
    pub fn version(&self) -> u64 {
        self.snapshot().version
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.snapshot().len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.snapshot().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // In the tests feature 0 plays the coarse "VerticalName" level and
    // feature 1 the fine "CloudCustomerGuid" level; value ids are
    // per-feature interned ids.
    const VERTICAL: FeatureId = FeatureId(0);
    const CUSTOMER: FeatureId = FeatureId(1);
    const INSURANCE: ValueId = ValueId(0);
    const ACME: ValueId = ValueId(0);
    const UNKNOWN: ValueId = ValueId(99);

    fn key(offering: ServerOffering, feature: FeatureId, value: ValueId) -> StoreKey {
        StoreKey::new(offering, feature, value)
    }

    fn store() -> PredictionStore {
        let mut s = PredictionStore::new();
        s.publish(PublishBatch {
            entries: vec![
                (
                    key(ServerOffering::GeneralPurpose, VERTICAL, INSURANCE),
                    8.0,
                ),
                (key(ServerOffering::GeneralPurpose, CUSTOMER, ACME), 16.0),
            ],
            defaults: vec![(ServerOffering::GeneralPurpose, 2.0)],
        })
        .unwrap();
        s
    }

    #[test]
    fn most_granular_match_wins() {
        let s = store();
        let (c, expl) = s
            .lookup(
                ServerOffering::GeneralPurpose,
                &[(CUSTOMER, ACME), (VERTICAL, INSURANCE)],
            )
            .unwrap();
        assert_eq!(c, 16.0);
        match expl {
            Explanation::StoreLookup { key: Some(k), .. } => {
                assert_eq!(k.feature, CUSTOMER);
                assert_eq!(k.value, ACME);
            }
            other => panic!("expected a store hit, got {other:?}"),
        }
    }

    #[test]
    fn falls_through_to_coarser_levels() {
        let s = store();
        let (c, _) = s
            .lookup(
                ServerOffering::GeneralPurpose,
                &[(CUSTOMER, UNKNOWN), (VERTICAL, INSURANCE)],
            )
            .unwrap();
        assert_eq!(c, 8.0);
    }

    #[test]
    fn default_when_nothing_matches() {
        let s = store();
        let (c, expl) = s
            .lookup(ServerOffering::GeneralPurpose, &[(VERTICAL, UNKNOWN)])
            .unwrap();
        assert_eq!(c, 2.0);
        assert!(matches!(expl, Explanation::StoreLookup { key: None, .. }));
        assert!(expl.to_string().contains("default"));
    }

    #[test]
    fn missing_offering_errors() {
        let s = store();
        assert!(s
            .lookup(ServerOffering::Burstable, &[(VERTICAL, INSURANCE)])
            .is_err());
    }

    #[test]
    fn offerings_are_isolated() {
        let mut s = store();
        s.publish(PublishBatch {
            entries: vec![(key(ServerOffering::Burstable, VERTICAL, INSURANCE), 1.0)],
            defaults: vec![(ServerOffering::Burstable, 1.0)],
        })
        .unwrap();
        // After republish, the GeneralPurpose entries are gone (atomic swap).
        assert!(s
            .lookup(ServerOffering::GeneralPurpose, &[(VERTICAL, INSURANCE)])
            .is_err());
        let (c, _) = s
            .lookup(ServerOffering::Burstable, &[(VERTICAL, INSURANCE)])
            .unwrap();
        assert_eq!(c, 1.0);
    }

    #[test]
    fn publish_bumps_version_and_validates() {
        let mut s = PredictionStore::new();
        assert_eq!(s.version(), 0);
        s.publish(PublishBatch::default()).unwrap();
        assert_eq!(s.version(), 1);
        let bad = PublishBatch {
            entries: vec![(key(ServerOffering::Burstable, VERTICAL, ACME), -1.0)],
            defaults: vec![],
        };
        assert!(s.publish(bad).is_err());
        assert_eq!(s.version(), 1, "failed publish must not bump version");
    }

    #[test]
    fn store_serde_round_trip_keeps_string_keys() {
        let s = store();
        let json = serde_json::to_string(&s).unwrap();
        // The snapshot is string-keyed even though the store is packed.
        assert!(json.contains("\"general_purpose|0|0\""), "{json}");
        assert!(json.contains("\"defaults\""));
        let back: PredictionStore = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn malformed_snapshots_are_rejected() {
        assert!(serde_json::from_str::<PredictionStore>("{\"version\": 1}").is_err());
        let bad_key = "{\"version\":1,\"entries\":{\"nope|0|0\":4.0},\"defaults\":{}}";
        assert!(serde_json::from_str::<PredictionStore>(bad_key).is_err());
        let bad_offering = "{\"version\":1,\"entries\":{},\"defaults\":{\"huge\":4.0}}";
        assert!(serde_json::from_str::<PredictionStore>(bad_offering).is_err());
    }

    #[test]
    fn shared_store_serves_consistent_versions_under_concurrent_publish() {
        let shared = SharedPredictionStore::from_store(store());
        let batch_for = |capacity: f64| PublishBatch {
            entries: vec![(
                key(ServerOffering::GeneralPurpose, VERTICAL, INSURANCE),
                capacity,
            )],
            defaults: vec![(ServerOffering::GeneralPurpose, capacity)],
        };
        std::thread::scope(|scope| {
            // Publisher: alternate between two consistent worlds.
            let publisher = scope.spawn(|| {
                for i in 0..50u64 {
                    let cap = if i % 2 == 0 { 4.0 } else { 64.0 };
                    shared.publish(batch_for(cap)).unwrap();
                }
            });
            // Readers: the key and the default always agree within one read
            // world (both 4 or both 64 after the first publish). The batch
            // lookup holds one read lock, so the pair can never tear.
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..200 {
                        let mut results = Vec::new();
                        shared.lookup_batch(
                            &[
                                (ServerOffering::GeneralPurpose, &[(VERTICAL, INSURANCE)][..]),
                                (ServerOffering::GeneralPurpose, &[(VERTICAL, UNKNOWN)][..]),
                            ],
                            &mut results,
                        );
                        let (hit, _) = results[0].as_ref().unwrap();
                        let (fallback, _) = results[1].as_ref().unwrap();
                        // Initial world: hit 8 / default 2; published
                        // worlds: 4/4 or 64/64.
                        let consistent = (*hit == 8.0 && *fallback == 2.0)
                            || (hit == fallback && (*hit == 4.0 || *hit == 64.0));
                        assert!(consistent, "torn read: hit {hit}, fallback {fallback}");
                    }
                });
            }
            publisher.join().unwrap();
        });
        assert!(shared.version() >= 51); // base store was already v1
        assert_eq!(shared.len(), 1);
    }

    #[test]
    fn snapshots_are_immutable_arcs_surviving_publish() {
        let shared = SharedPredictionStore::from_store(store());
        let before = shared.snapshot();
        let v_before = before.version();
        shared.publish(PublishBatch::default()).unwrap();
        // The held snapshot is untouched by the publish: same version, and
        // its entries still answer.
        assert_eq!(before.version(), v_before);
        assert!(before
            .lookup(ServerOffering::GeneralPurpose, &[(VERTICAL, INSURANCE)])
            .is_ok());
        // A fresh snapshot sees the new world and shares no allocation with
        // the old one.
        let after = shared.snapshot();
        assert_eq!(after.version(), v_before + 1);
        assert!(!std::sync::Arc::ptr_eq(&before, &after));
        // Without an intervening publish, snapshotting is a pure refcount
        // bump on the same allocation.
        assert!(std::sync::Arc::ptr_eq(&after, &shared.snapshot()));
    }

    #[test]
    fn shared_store_versions_are_monotone() {
        let shared = SharedPredictionStore::new();
        let v1 = shared.publish(PublishBatch::default()).unwrap();
        let v2 = shared.publish(PublishBatch::default()).unwrap();
        assert!(v2 > v1);
        assert_eq!(shared.version(), v2);
        assert!(shared.is_empty());
        let snap = shared.snapshot();
        assert_eq!(snap.version(), v2);
    }
}
