//! Simulation kernels: synthetic fleet generation, workload synthesis,
//! §5.2 upscaling, and §5.3 personalization-simulation steps.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use lorentz_simdata::fleet::FleetConfig;
use lorentz_simdata::persim::{PersonalizationSim, PersonalizationSimConfig};
use lorentz_simdata::upscale::{upscale_fleet, UpscaleConfig};
use lorentz_telemetry::generators::{SamplingConfig, WorkloadGenerator};
use lorentz_telemetry::WorkloadSpec;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_workload_generation(c: &mut Criterion) {
    let spec = WorkloadSpec::typical_oltp(4.0);
    let cfg = SamplingConfig {
        duration_secs: 86_400.0,
        mean_interval_secs: 60.0,
        jitter_frac: 0.2,
    };
    c.bench_function("sim/generate_1day_workload", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(1);
            spec.generate(black_box(&cfg), &mut rng)
        })
    });
}

fn bench_fleet_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/fleet_generate");
    group.sample_size(10);
    for n in [50usize, 200] {
        let cfg = FleetConfig {
            n_servers: n,
            sampling: SamplingConfig {
                duration_secs: 86_400.0,
                mean_interval_secs: 60.0,
                jitter_frac: 0.2,
            },
            ..FleetConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(n), &cfg, |b, cfg| {
            b.iter(|| cfg.generate().unwrap())
        });
    }
    group.finish();
}

fn bench_upscale(c: &mut Criterion) {
    let base = lorentz_bench::bench_fleet(200);
    c.bench_function("sim/upscale_200_servers", |b| {
        b.iter(|| {
            let mut fleet = base.clone();
            upscale_fleet(black_box(&mut fleet), &UpscaleConfig::default()).unwrap()
        })
    });
}

fn bench_persim_step(c: &mut Criterion) {
    let mut sim = PersonalizationSim::new(PersonalizationSimConfig::default()).unwrap();
    c.bench_function("sim/persim_step", |b| b.iter(|| black_box(sim.step())));
}

criterion_group!(
    benches,
    bench_workload_generation,
    bench_fleet_generation,
    bench_upscale,
    bench_persim_step
);
criterion_main!(benches);
