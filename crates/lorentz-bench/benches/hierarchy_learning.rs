//! Hierarchy-learning kernels: the HALO strength matrix and chain
//! traversal behind Figure 5 and the hierarchical provisioner.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use lorentz_bench::bench_fleet;
use lorentz_hierarchy::{hierarchy_strength_matrix, learn_hierarchy, HierarchyConfig};

fn bench_strength_matrix(c: &mut Criterion) {
    let mut group = c.benchmark_group("hierarchy/strength_matrix");
    for n in [200usize, 800] {
        let synth = bench_fleet(n);
        let table = synth.fleet.profiles().clone();
        group.bench_with_input(BenchmarkId::from_parameter(n), &table, |b, table| {
            b.iter(|| hierarchy_strength_matrix(black_box(table)))
        });
    }
    group.finish();
}

fn bench_chain(c: &mut Criterion) {
    let synth = bench_fleet(800);
    let table = synth.fleet.profiles().clone();
    let cfg = HierarchyConfig::default();
    c.bench_function("hierarchy/learn_chain_800rows", |b| {
        b.iter(|| learn_hierarchy(black_box(&table), &cfg).unwrap())
    });
}

criterion_group!(benches, bench_strength_matrix, bench_chain);
criterion_main!(benches);
