//! ML substrate kernels: quantile binning, histogram tree fitting, and
//! gradient boosting — the §3.3 model internals.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use lorentz_ml::{
    Binner, Dataset, DecisionTree, GradientBoosting, GradientBoostingConfig, TreeConfig,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn synthetic_dataset(rows: usize, features: usize) -> Dataset {
    let mut rng = SmallRng::seed_from_u64(7);
    let columns: Vec<Vec<f64>> = (0..features)
        .map(|_| (0..rows).map(|_| rng.gen_range(-10.0..10.0)).collect())
        .collect();
    let labels: Vec<f64> = (0..rows)
        .map(|r| {
            let x0 = columns[0][r];
            let x1 = columns[features.min(2) - 1][r];
            x0 * 0.5 + (x1 * 0.3).sin() * 2.0 + rng.gen_range(-0.1..0.1)
        })
        .collect();
    let names = (0..features).map(|i| format!("f{i}")).collect();
    Dataset::new(names, columns, labels).unwrap()
}

fn bench_binner(c: &mut Criterion) {
    let mut group = c.benchmark_group("ml/binner_fit");
    for rows in [1_000usize, 10_000] {
        let data = synthetic_dataset(rows, 7);
        group.bench_with_input(BenchmarkId::from_parameter(rows), &data, |b, data| {
            b.iter(|| Binner::fit(black_box(data), 256).unwrap())
        });
    }
    group.finish();
}

fn bench_tree(c: &mut Criterion) {
    let mut group = c.benchmark_group("ml/tree_fit_depth5");
    for rows in [1_000usize, 10_000] {
        let data = synthetic_dataset(rows, 7);
        let cfg = TreeConfig {
            max_depth: 5,
            ..TreeConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(rows), &data, |b, data| {
            b.iter(|| DecisionTree::fit(black_box(data), &cfg).unwrap())
        });
    }
    group.finish();

    let data = synthetic_dataset(10_000, 7);
    let tree = DecisionTree::fit(
        &data,
        &TreeConfig {
            max_depth: 5,
            ..TreeConfig::default()
        },
    )
    .unwrap();
    let row = data.row(0);
    c.bench_function("ml/tree_predict_row", |b| {
        b.iter(|| tree.predict_row(black_box(&row)))
    });
}

fn bench_boosting(c: &mut Criterion) {
    let data = synthetic_dataset(2_000, 7);
    let cfg = GradientBoostingConfig {
        n_trees: 50,
        ..GradientBoostingConfig::default()
    };
    c.bench_function("ml/gbdt_fit_2000rows_50trees", |b| {
        b.iter(|| GradientBoosting::fit(black_box(&data), &cfg).unwrap())
    });
    let model = GradientBoosting::fit(&data, &cfg).unwrap();
    let row = data.row(0);
    c.bench_function("ml/gbdt_predict_row", |b| {
        b.iter(|| model.predict_row(black_box(&row)))
    });
}

criterion_group!(benches, bench_binner, bench_tree, bench_boosting);
criterion_main!(benches);
