//! Training-path benchmarks behind the pinned `BENCH_train.json` baseline:
//! Stage-1 rightsizing at fleet scale, HALO hierarchy learning, the TE+GBT
//! fit, and end-to-end `train()`.
//!
//! The default sweep runs at 100k traces; set `LORENTZ_TRAIN_BENCH_1M=1` to
//! also run the (memory-hungry, minutes-long) 1M-trace Stage-1 sweep.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use lorentz_bench::train_fixture;
use lorentz_core::fleet::FleetDataset;
use lorentz_core::pipeline::LorentzPipeline;
use lorentz_core::{LorentzConfig, Rightsizer, RightsizerConfig, Stage1Scratch};
use lorentz_hierarchy::{learn_hierarchy, HierarchyConfig};
use lorentz_ml::TargetEncoder;
use lorentz_telemetry::TraceColumns;
use lorentz_types::{ServerOffering, SkuCatalog};

/// One day of 5-minute bins — the paper's Stage-1 granularity.
const BINS: usize = 288;
/// The default benchmark scale.
const SCALE: usize = 100_000;

fn quick_config() -> LorentzConfig {
    // Same reduced ensemble as the train_determinism golden: big enough to
    // exercise every stage, small enough to keep e2e iterations in seconds.
    let mut config = LorentzConfig::paper_defaults();
    config.target_encoding.boosting.n_trees = 15;
    config.hierarchical.min_bucket = 3;
    config
}

/// Sequential row-oriented Stage-1: the pre-columnar baseline, kept
/// benchmarked so every run reports a live before/after pair.
fn stage1_row(c: &mut Criterion) {
    let mut group = c.benchmark_group("train/stage1_row");
    group.sample_size(10);
    let fleet = train_fixture(SCALE, BINS);
    let sizer = Rightsizer::new(&RightsizerConfig::default()).unwrap();
    let catalogs: Vec<SkuCatalog> = ServerOffering::ALL
        .iter()
        .map(|&o| SkuCatalog::azure_postgres(o))
        .collect();
    group.bench_with_input(BenchmarkId::from_parameter(SCALE), &fleet, |b, fleet| {
        b.iter(|| {
            let mut labels = Vec::with_capacity(fleet.len());
            for i in 0..fleet.len() {
                let catalog = &catalogs[fleet.offerings()[i] as usize];
                let outcome = sizer
                    .rightsize(&fleet.traces()[i], &fleet.user_capacities()[i], catalog)
                    .unwrap();
                labels.push(outcome.capacity.primary());
            }
            black_box(labels)
        })
    });
    group.finish();
}

/// One columnar Stage-1 sweep, packing included — the same work
/// [`LorentzPipeline::train`] performs for Stage 1 at the given thread
/// count (`0` = one worker per core).
fn columnar_sweep(
    fleet: &FleetDataset,
    sizer: &Rightsizer,
    catalogs: &[SkuCatalog],
    max_threads: usize,
) -> Vec<f64> {
    let n = fleet.len();
    let columns = TraceColumns::from_traces(fleet.traces());
    let threads = if max_threads == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        max_threads
    }
    .min(n)
    .max(1);
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        let columns = &columns;
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                scope.spawn(move || {
                    let lo = w * chunk;
                    let hi = ((w + 1) * chunk).min(n);
                    let mut scratch = Stage1Scratch::default();
                    (lo..hi)
                        .map(|i| {
                            let catalog = &catalogs[fleet.offerings()[i] as usize];
                            sizer
                                .rightsize_columns(
                                    columns.trace(i),
                                    &fleet.user_capacities()[i],
                                    catalog,
                                    &mut scratch,
                                )
                                .unwrap()
                                .capacity
                                .primary()
                        })
                        .collect::<Vec<f64>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("bench worker panicked"))
            .collect()
    })
}

/// Columnar Stage-1 on a single worker: the algorithmic (sorted fast path +
/// batched candidate sweep) speedup, isolated from parallelism.
fn stage1_columnar(c: &mut Criterion) {
    let mut group = c.benchmark_group("train/stage1_columnar");
    group.sample_size(10);
    let fleet = train_fixture(SCALE, BINS);
    let sizer = Rightsizer::new(&RightsizerConfig::default()).unwrap();
    let catalogs: Vec<SkuCatalog> = ServerOffering::ALL
        .iter()
        .map(|&o| SkuCatalog::azure_postgres(o))
        .collect();
    group.bench_with_input(BenchmarkId::from_parameter(SCALE), &fleet, |b, fleet| {
        b.iter(|| black_box(columnar_sweep(fleet, &sizer, &catalogs, 1)))
    });
    group.finish();
}

/// The full Stage-1 sweep as `train()` runs it: columnar + one worker per
/// core. This is the "after" row paired against `train/stage1_row`.
fn stage1_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("train/stage1_parallel");
    group.sample_size(10);
    let fleet = train_fixture(SCALE, BINS);
    let sizer = Rightsizer::new(&RightsizerConfig::default()).unwrap();
    let catalogs: Vec<SkuCatalog> = ServerOffering::ALL
        .iter()
        .map(|&o| SkuCatalog::azure_postgres(o))
        .collect();
    group.bench_with_input(BenchmarkId::from_parameter(SCALE), &fleet, |b, fleet| {
        b.iter(|| black_box(columnar_sweep(fleet, &sizer, &catalogs, 0)))
    });
    group.finish();
}

fn hierarchy(c: &mut Criterion) {
    let mut group = c.benchmark_group("train/hierarchy");
    group.sample_size(10);
    let fleet = train_fixture(SCALE, 2);
    let cfg = HierarchyConfig::default();
    group.bench_with_input(
        BenchmarkId::from_parameter(SCALE),
        fleet.profiles(),
        |b, table| b.iter(|| learn_hierarchy(black_box(table), &cfg).unwrap()),
    );
    group.finish();
}

fn te_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("train/te_fit");
    group.sample_size(10);
    let fleet = train_fixture(SCALE, 2);
    let labels: Vec<f64> = fleet
        .user_capacities()
        .iter()
        .map(|c| c.primary())
        .collect();
    let te = lorentz_core::provisioner::TargetEncodingConfig::default();
    group.bench_with_input(
        BenchmarkId::from_parameter(SCALE),
        fleet.profiles(),
        |b, table| {
            b.iter(|| {
                TargetEncoder::fit(
                    black_box(table),
                    &labels,
                    te.statistic,
                    te.missing,
                    te.smoothing,
                )
                .unwrap()
            })
        },
    );
    group.finish();
}

fn te_gbt_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("train/te_gbt_fit");
    group.sample_size(10);
    let fleet = train_fixture(SCALE, 2);
    let labels: Vec<f64> = fleet
        .user_capacities()
        .iter()
        .map(|c| c.primary())
        .collect();
    let catalog = SkuCatalog::azure_postgres(ServerOffering::GeneralPurpose);
    let mut te = lorentz_core::provisioner::TargetEncodingConfig::default();
    te.boosting.n_trees = 15;
    group.bench_with_input(
        BenchmarkId::from_parameter(SCALE),
        fleet.profiles(),
        |b, table| {
            b.iter(|| {
                lorentz_core::provisioner::TargetEncodingProvisioner::fit(
                    black_box(table),
                    &labels,
                    &catalog,
                    te,
                )
                .unwrap()
            })
        },
    );
    group.finish();
}

fn e2e_train(c: &mut Criterion) {
    let mut group = c.benchmark_group("train/e2e");
    group.sample_size(10);
    let fleet = train_fixture(SCALE, BINS);
    group.bench_with_input(BenchmarkId::from_parameter(SCALE), &fleet, |b, fleet| {
        b.iter(|| {
            LorentzPipeline::new(quick_config())
                .unwrap()
                .train(black_box(fleet))
                .unwrap()
        })
    });
    group.finish();
}

/// Opt-in 1M-trace Stage-1 sweep (shorter traces to bound memory).
fn stage1_row_1m(c: &mut Criterion) {
    if std::env::var("LORENTZ_TRAIN_BENCH_1M").is_err() {
        return;
    }
    let mut group = c.benchmark_group("train/stage1_row");
    group.sample_size(10);
    let fleet = train_fixture(1_000_000, 48);
    let sizer = Rightsizer::new(&RightsizerConfig::default()).unwrap();
    let catalogs: Vec<SkuCatalog> = ServerOffering::ALL
        .iter()
        .map(|&o| SkuCatalog::azure_postgres(o))
        .collect();
    group.bench_with_input(
        BenchmarkId::from_parameter(1_000_000),
        &fleet,
        |b, fleet| {
            b.iter(|| {
                let mut labels = Vec::with_capacity(fleet.len());
                for i in 0..fleet.len() {
                    let catalog = &catalogs[fleet.offerings()[i] as usize];
                    let outcome = sizer
                        .rightsize(&fleet.traces()[i], &fleet.user_capacities()[i], catalog)
                        .unwrap();
                    labels.push(outcome.capacity.primary());
                }
                black_box(labels)
            })
        },
    );
    group.finish();
}

/// Opt-in 1M-trace columnar parallel sweep, paired with `stage1_row_1m`.
fn stage1_columnar_1m(c: &mut Criterion) {
    if std::env::var("LORENTZ_TRAIN_BENCH_1M").is_err() {
        return;
    }
    let mut group = c.benchmark_group("train/stage1_parallel");
    group.sample_size(10);
    let fleet = train_fixture(1_000_000, 48);
    let sizer = Rightsizer::new(&RightsizerConfig::default()).unwrap();
    let catalogs: Vec<SkuCatalog> = ServerOffering::ALL
        .iter()
        .map(|&o| SkuCatalog::azure_postgres(o))
        .collect();
    group.bench_with_input(
        BenchmarkId::from_parameter(1_000_000),
        &fleet,
        |b, fleet| b.iter(|| black_box(columnar_sweep(fleet, &sizer, &catalogs, 0))),
    );
    group.finish();
}

criterion_group!(
    benches,
    stage1_row,
    stage1_row_1m,
    stage1_columnar,
    stage1_parallel,
    stage1_columnar_1m,
    hierarchy,
    te_fit,
    te_gbt_fit,
    e2e_train
);
criterion_main!(benches);
