//! Stage-1 kernels: the slack/throttling statistics (Eq. 3–6) and the
//! complete rightsizing optimizer (Eq. 9) that regenerate Figures 1, 2, 4,
//! and 9.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use lorentz_bench::bench_fleet;
use lorentz_core::{Rightsizer, RightsizerConfig};
use lorentz_types::{Capacity, ServerOffering, SkuCatalog};

fn bench_statistics(c: &mut Criterion) {
    let fleet = bench_fleet(64);
    let sizer = Rightsizer::new(&RightsizerConfig::default()).unwrap();
    let trace = &fleet.ground_truth[0];
    let cap = Capacity::scalar(8.0);

    c.bench_function("stage1/throttling_1day_trace", |b| {
        b.iter(|| sizer.throttling(black_box(trace), black_box(&cap)).unwrap())
    });
    c.bench_function("stage1/slack_ratio_1day_trace", |b| {
        b.iter(|| {
            sizer
                .slack_ratio(black_box(trace), black_box(&cap))
                .unwrap()
        })
    });
}

fn bench_rightsize(c: &mut Criterion) {
    let fleet = bench_fleet(64);
    let sizer = Rightsizer::new(&RightsizerConfig::default()).unwrap();
    let catalog = SkuCatalog::azure_postgres(ServerOffering::GeneralPurpose);
    let trace = &fleet.fleet.traces()[0];
    let user = &fleet.fleet.user_capacities()[0];

    c.bench_function("stage1/rightsize_single_workload", |b| {
        b.iter(|| {
            sizer
                .rightsize(black_box(trace), black_box(user), black_box(&catalog))
                .unwrap()
        })
    });

    let mut group = c.benchmark_group("stage1/rightsize_fleet");
    for n in [16usize, 64] {
        let fleet = bench_fleet(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &fleet, |b, fleet| {
            b.iter(|| {
                for i in 0..fleet.fleet.len() {
                    let cat = SkuCatalog::azure_postgres(fleet.fleet.offerings()[i]);
                    sizer
                        .rightsize(
                            &fleet.fleet.traces()[i],
                            &fleet.fleet.user_capacities()[i],
                            &cat,
                        )
                        .unwrap();
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_statistics, bench_rightsize);
criterion_main!(benches);
