//! Serving-path kernels: prediction-store lookups and the single vs
//! batched recommend entry points (Fig. 8 step D, the online half).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lorentz_bench::bench_fleet;
use lorentz_core::store::PublishBatch;
use lorentz_core::{
    LorentzConfig, LorentzPipeline, ModelKind, RecommendRequest, ShardedPredictionStore,
    SharedPredictionStore, TrainedLorentz,
};
use lorentz_types::{FeatureId, ResourcePath, ServerOffering, StoreKey, ValueId};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const BATCH: usize = 256;

/// An owned request (profile strings decoded back out of the fleet's
/// vocabularies) so the borrowed `RecommendRequest`s can be rebuilt cheaply.
struct OwnedRequest {
    profile: Vec<Option<String>>,
    offering: ServerOffering,
    path: ResourcePath,
}

fn serving_fixture() -> (TrainedLorentz, Vec<OwnedRequest>) {
    let synth = bench_fleet(300);
    let table = synth.fleet.profiles();
    let requests: Vec<OwnedRequest> = (0..BATCH)
        .map(|i| {
            let row = i % table.rows();
            let x = table.row(row);
            let profile = table
                .schema()
                .feature_ids()
                .map(|f| x.get(f).map(|id| table.vocab(f).value(id).to_owned()))
                .collect();
            OwnedRequest {
                profile,
                offering: synth.fleet.offerings()[row],
                path: synth.fleet.paths()[row],
            }
        })
        .collect();
    let trained = LorentzPipeline::new(LorentzConfig::paper_defaults())
        .unwrap()
        .train(&synth.fleet)
        .unwrap();
    (trained, requests)
}

fn borrow<'a>(owned: &'a [OwnedRequest]) -> Vec<RecommendRequest<'a>> {
    owned
        .iter()
        .map(|r| RecommendRequest {
            profile: r.profile.iter().map(|v| v.as_deref()).collect(),
            offering: r.offering,
            path: r.path,
        })
        .collect()
}

fn bench_store_lookup(c: &mut Criterion) {
    let (trained, _) = serving_fixture();
    let store = trained.store();
    // A fully-specified level stack: fine-to-coarse ids 0..n. Misses on the
    // fine levels and falls through — the worst-case probe count.
    let levels: Vec<(FeatureId, ValueId)> = (0..trained.profiles().schema().len())
        .map(|i| (FeatureId(i), ValueId(0)))
        .collect();
    c.bench_function("serve/store_lookup_packed", |b| {
        b.iter(|| {
            store
                .lookup(
                    black_box(ServerOffering::GeneralPurpose),
                    black_box(&levels),
                )
                .unwrap()
        })
    });
}

fn bench_recommend(c: &mut Criterion) {
    let (trained, owned) = serving_fixture();
    let requests = borrow(&owned);
    c.bench_function("serve/recommend_single_x256", |b| {
        b.iter(|| {
            for r in &requests {
                let _ = black_box(trained.recommend(black_box(r), ModelKind::Hierarchical));
            }
        })
    });
    c.bench_function("serve/recommend_batch_256", |b| {
        b.iter(|| trained.recommend_batch(black_box(&requests), ModelKind::Hierarchical))
    });
}

fn bench_recommend_store_path(c: &mut Criterion) {
    let (trained, owned) = serving_fixture();
    let requests = borrow(&owned);
    c.bench_function("serve/store_single_x256", |b| {
        b.iter(|| {
            for r in &requests {
                let _ = black_box(trained.recommend_from_store(black_box(r)));
            }
        })
    });
    c.bench_function("serve/store_batch_256", |b| {
        b.iter(|| trained.recommend_batch_from_store(black_box(&requests)))
    });
}

/// The hot-swap read path: snapshot capture (`Arc` clone) + packed probe,
/// both on a quiet store and while a publisher republishes continuously —
/// the latter demonstrates that reads proceed during concurrent publish
/// instead of waiting for writers to drain.
fn bench_hot_swap_snapshot(c: &mut Criterion) {
    let n_keys = 8usize;
    let batch = PublishBatch {
        entries: (0..n_keys)
            .map(|i| {
                (
                    StoreKey::new(ServerOffering::GeneralPurpose, FeatureId(i), ValueId(0)),
                    4.0,
                )
            })
            .collect(),
        defaults: vec![(ServerOffering::GeneralPurpose, 2.0)],
    };
    let levels: Vec<(FeatureId, ValueId)> =
        (0..n_keys).map(|i| (FeatureId(i), ValueId(0))).collect();
    let shared = Arc::new(SharedPredictionStore::new());
    shared.publish(batch.clone()).unwrap();
    c.bench_function("serve/shared_snapshot_lookup", |b| {
        b.iter(|| {
            shared
                .snapshot()
                .lookup(
                    black_box(ServerOffering::GeneralPurpose),
                    black_box(&levels),
                )
                .unwrap()
        })
    });
    let stop = Arc::new(AtomicBool::new(false));
    let publisher = {
        let shared = Arc::clone(&shared);
        let stop = Arc::clone(&stop);
        let batch = batch.clone();
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                shared.publish(batch.clone()).unwrap();
            }
        })
    };
    c.bench_function("serve/snapshot_lookup_during_publish", |b| {
        b.iter(|| {
            shared
                .snapshot()
                .lookup(
                    black_box(ServerOffering::GeneralPurpose),
                    black_box(&levels),
                )
                .unwrap()
        })
    });
    stop.store(true, Ordering::Relaxed);
    publisher.join().unwrap();
}

/// The sharded read path: snapshot capture + routed probe against an
/// 8-shard store, quiet and while a publisher hot-swaps ONE shard in a
/// loop — readers on the untouched shards should not notice (per-shard
/// `Arc` slots, no global lock).
fn bench_sharded_lookup(c: &mut Criterion) {
    let n_keys = 8usize;
    let entries: Vec<(StoreKey, f64)> = (0..n_keys)
        .map(|i| {
            (
                StoreKey::new(ServerOffering::GeneralPurpose, FeatureId(i), ValueId(0)),
                4.0,
            )
        })
        .collect();
    let batch = PublishBatch {
        entries: entries.clone(),
        defaults: vec![(ServerOffering::GeneralPurpose, 2.0)],
    };
    let levels: Vec<(FeatureId, ValueId)> =
        (0..n_keys).map(|i| (FeatureId(i), ValueId(0))).collect();
    let sharded = Arc::new(ShardedPredictionStore::new(8).unwrap());
    sharded.publish(batch).unwrap();
    c.bench_function("serve/sharded_snapshot_lookup", |b| {
        b.iter(|| {
            sharded
                .snapshot()
                .lookup(
                    black_box(ServerOffering::GeneralPurpose),
                    black_box(&levels),
                )
                .unwrap()
        })
    });
    // Republish one key's shard continuously; the probe sweeps all levels,
    // so most probes hit shards the publisher never touches.
    let hot_key = entries[0].0;
    let hot_shard = sharded.shard_of_packed(hot_key.pack());
    let stop = Arc::new(AtomicBool::new(false));
    let publisher = {
        let sharded = Arc::clone(&sharded);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let batch = PublishBatch {
                entries: vec![(hot_key, 4.0)],
                defaults: Vec::new(),
            };
            while !stop.load(Ordering::Relaxed) {
                sharded.publish_shard(hot_shard, batch.clone()).unwrap();
            }
        })
    };
    c.bench_function("serve/sharded_lookup_during_shard_publish", |b| {
        b.iter(|| {
            sharded
                .snapshot()
                .lookup(
                    black_box(ServerOffering::GeneralPurpose),
                    black_box(&levels),
                )
                .unwrap()
        })
    });
    stop.store(true, Ordering::Relaxed);
    publisher.join().unwrap();
}

criterion_group!(
    benches,
    bench_store_lookup,
    bench_recommend,
    bench_recommend_store_path,
    bench_hot_swap_snapshot,
    bench_sharded_lookup
);
criterion_main!(benches);
