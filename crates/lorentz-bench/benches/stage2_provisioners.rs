//! Stage-2 kernels: training and inference of both provisioners — the
//! models behind Figures 10–12 — plus the full per-offering pipeline train.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lorentz_bench::bench_fleet;
use lorentz_core::provisioner::TargetEncodingConfig;
use lorentz_core::{
    HierarchicalConfig, HierarchicalProvisioner, LorentzConfig, LorentzPipeline, Provisioner,
    TargetEncodingProvisioner,
};
use lorentz_ml::GradientBoostingConfig;
use lorentz_types::{ServerOffering, SkuCatalog};

fn training_data(n: usize) -> (lorentz_types::ProfileTable, Vec<f64>, SkuCatalog) {
    let synth = bench_fleet(n);
    let config = LorentzConfig::paper_defaults();
    let trained = LorentzPipeline::new(config)
        .unwrap()
        .train(&synth.fleet)
        .unwrap();
    let rows = synth
        .fleet
        .rows_for_offering(ServerOffering::GeneralPurpose);
    let table = synth.fleet.profiles().subset(&rows);
    let labels: Vec<f64> = rows.iter().map(|&r| trained.labels()[r]).collect();
    (
        table,
        labels,
        SkuCatalog::azure_postgres(ServerOffering::GeneralPurpose),
    )
}

fn bench_hierarchical(c: &mut Criterion) {
    let (table, labels, catalog) = training_data(400);
    let cfg = HierarchicalConfig {
        min_bucket: 5,
        ..HierarchicalConfig::default()
    };
    c.bench_function("stage2/hierarchical_fit_200rows", |b| {
        b.iter(|| {
            HierarchicalProvisioner::fit(
                black_box(&table),
                black_box(&labels),
                black_box(&catalog),
                cfg,
            )
            .unwrap()
        })
    });
    let model = HierarchicalProvisioner::fit(&table, &labels, &catalog, cfg).unwrap();
    let x = table.row(0);
    c.bench_function("stage2/hierarchical_recommend", |b| {
        b.iter(|| model.recommend(black_box(&x)).unwrap())
    });
}

fn bench_target_encoding(c: &mut Criterion) {
    let (table, labels, catalog) = training_data(400);
    let cfg = TargetEncodingConfig {
        boosting: GradientBoostingConfig {
            n_trees: 50,
            ..GradientBoostingConfig::default()
        },
        ..TargetEncodingConfig::default()
    };
    c.bench_function("stage2/target_encoding_fit_200rows_50trees", |b| {
        b.iter(|| {
            TargetEncodingProvisioner::fit(
                black_box(&table),
                black_box(&labels),
                black_box(&catalog),
                cfg,
            )
            .unwrap()
        })
    });
    let model = TargetEncodingProvisioner::fit(&table, &labels, &catalog, cfg).unwrap();
    let x = table.row(0);
    c.bench_function("stage2/target_encoding_recommend", |b| {
        b.iter(|| model.recommend(black_box(&x)).unwrap())
    });
}

fn bench_full_pipeline(c: &mut Criterion) {
    let synth = bench_fleet(200);
    let mut config = LorentzConfig::paper_defaults();
    config.target_encoding.boosting.n_trees = 25;
    let pipeline = LorentzPipeline::new(config).unwrap();
    c.bench_function("stage2/pipeline_train_200_servers", |b| {
        b.iter(|| pipeline.clone().train(black_box(&synth.fleet)).unwrap())
    });
}

criterion_group!(
    benches,
    bench_hierarchical,
    bench_target_encoding,
    bench_full_pipeline
);
criterion_main!(benches);
