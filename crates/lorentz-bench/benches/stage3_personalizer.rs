//! Stage-3 kernels: Algorithm-1 signal propagation across customer
//! profiles of varying size (up to the 10k-profile fan-out), the Eq. 14
//! adjustment, and λ-snapshot lookups racing a live publisher — the
//! machinery behind Figures 13 and 14 and the online feedback path.
//! `BENCH_stage3.json` at the repo root pins the baseline numbers.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use lorentz_core::{LambdaStore, Personalizer, PersonalizerConfig, SatisfactionSignal};
use lorentz_types::{
    CustomerId, ResourceGroupId, ResourcePath, ServerOffering, SkuCatalog, SubscriptionId,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn build_personalizer(subs: u32, rgs_per_sub: u32) -> Personalizer {
    let mut p = Personalizer::new(PersonalizerConfig::default()).unwrap();
    for s in 0..subs {
        for r in 0..rgs_per_sub {
            p.register(ResourcePath::new(
                CustomerId(1),
                SubscriptionId(s),
                ResourceGroupId(s * rgs_per_sub + r),
            ));
        }
    }
    p
}

/// A fleet where the signaling customer is small (9 profiles) and the
/// rest of the table is filler: isolates publish cost from Algorithm-1
/// fan-out, so any scaling left is the publish itself.
fn build_fleet_personalizer(filler_customers: u32, rgs_per_customer: u32) -> Personalizer {
    let mut p = build_personalizer(3, 3);
    for cust in 0..filler_customers {
        for r in 0..rgs_per_customer {
            p.register(ResourcePath::new(
                CustomerId(1000 + cust),
                SubscriptionId(0),
                ResourceGroupId(r),
            ));
        }
    }
    p
}

fn bench_apply_signal(c: &mut Criterion) {
    let mut group = c.benchmark_group("stage3/apply_signal");
    for (subs, rgs) in [(3u32, 3u32), (10, 10), (50, 20), (100, 100)] {
        let profiles = subs * rgs;
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{profiles}_rgs")),
            &(subs, rgs),
            |b, &(subs, rgs)| {
                let mut p = build_personalizer(subs, rgs);
                let signal = SatisfactionSignal::new(
                    ResourcePath::new(CustomerId(1), SubscriptionId(0), ResourceGroupId(0)),
                    ServerOffering::GeneralPurpose,
                    1.0,
                )
                .unwrap();
                b.iter(|| p.apply_signal(black_box(&signal)));
            },
        );
    }
    group.finish();
}

/// Apply-then-publish for one small signal against ever-larger resident
/// tables. Under the old full-flatten publisher this scaled with total
/// profile count; the epoch/delta publisher keeps it flat (O(keys the
/// signal touched), here 9).
fn bench_signal_publish(c: &mut Criterion) {
    let mut group = c.benchmark_group("stage3/signal_publish");
    for (fillers, rgs) in [(0u32, 0u32), (100, 10), (100, 100)] {
        let total = 9 + fillers * rgs;
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{total}_profiles")),
            &(fillers, rgs),
            |b, &(fillers, rgs)| {
                let store = LambdaStore::new(build_fleet_personalizer(fillers, rgs));
                let signal = SatisfactionSignal::new(
                    ResourcePath::new(CustomerId(1), SubscriptionId(0), ResourceGroupId(0)),
                    ServerOffering::GeneralPurpose,
                    1.0,
                )
                .unwrap();
                b.iter(|| {
                    store.apply_signal(black_box(&signal));
                    store.publish();
                });
            },
        );
    }
    group.finish();
}

fn bench_adjust(c: &mut Criterion) {
    let mut p = build_personalizer(3, 3);
    let path = ResourcePath::new(CustomerId(1), SubscriptionId(0), ResourceGroupId(0));
    p.set_lambda(path, ServerOffering::GeneralPurpose, 1.3);
    let catalog = SkuCatalog::azure_postgres(ServerOffering::GeneralPurpose);
    c.bench_function("stage3/lambda_adjust", |b| {
        b.iter(|| {
            p.adjust(
                black_box(4.0),
                black_box(&path),
                ServerOffering::GeneralPurpose,
                &catalog,
            )
        })
    });
}

fn bench_lambda_lookup(c: &mut Criterion) {
    let store = Arc::new(LambdaStore::new(build_personalizer(100, 100)));
    let hot = ResourcePath::new(CustomerId(1), SubscriptionId(0), ResourceGroupId(0));
    c.bench_function("stage3/lambda_snapshot_lookup", |b| {
        b.iter(|| {
            store
                .snapshot()
                .lambda(black_box(&hot), ServerOffering::GeneralPurpose)
        })
    });

    // The serving-path scenario: readers pin snapshots while the λ-writer
    // keeps applying signals and republishing the 10k-profile table.
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        let signal = SatisfactionSignal::new(hot, ServerOffering::GeneralPurpose, 1.0).unwrap();
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                store.apply_signal(&signal);
                store.publish();
            }
        })
    };
    c.bench_function("stage3/lambda_lookup_during_publish", |b| {
        b.iter(|| {
            store
                .snapshot()
                .lambda(black_box(&hot), ServerOffering::GeneralPurpose)
        })
    });
    stop.store(true, Ordering::Relaxed);
    writer.join().unwrap();
}

criterion_group!(
    benches,
    bench_apply_signal,
    bench_signal_publish,
    bench_adjust,
    bench_lambda_lookup
);
criterion_main!(benches);
